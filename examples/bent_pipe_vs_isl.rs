//! ISLs vs bent-pipe ground relays (paper Appendix A), in brief.
//!
//! Compares Paris → Moscow over Kuiper K1 with laser inter-satellite links
//! against the same shell with no ISLs, where long-haul traffic bounces
//! through a grid of candidate ground-station relays.
//!
//! Run with: `cargo run --release --example bent_pipe_vs_isl`

use hypatia::experiments::bent_pipe::{run, BentPipeConfig};
use hypatia::util::SimDuration;
use hypatia_constellation::GroundStation;

fn main() {
    let cfg = BentPipeConfig {
        duration: SimDuration::from_secs(30),
        relay_spacing_deg: 4.0,
        relay_margin_deg: 2.0,
    };
    println!("Paris -> Moscow over Kuiper K1, {} simulated\n", cfg.duration);

    let r = run(
        GroundStation::new("Paris", 48.8566, 2.3522),
        GroundStation::new("Moscow", 55.7558, 37.6173),
        &cfg,
    );

    for leg in [&r.isl, &r.bent_pipe] {
        let mbps = leg.bytes_received as f64 * 8.0 / cfg.duration.secs_f64() / 1e6;
        println!("[{}]", leg.label);
        println!("  mean computed RTT : {:>7.1} ms", leg.mean_computed_rtt_ms);
        println!("  TCP goodput       : {mbps:>7.2} Mbit/s");
        if let Some(path) = &leg.path_t0 {
            println!("  path at t=0       : {} nodes", path.len());
        }
        println!();
    }

    println!(
        "bent-pipe RTT penalty: {:.1} ms (paper: typically ~5 ms on this route)",
        r.bent_pipe.mean_computed_rtt_ms - r.isl.mean_computed_rtt_ms
    );
    println!("TCP behaves differently on bent-pipe: ACKs share each satellite's");
    println!("single GSL queue with data, inflating RTT estimates (Fig. 19).");
}
