//! Quickstart: ping across a LEO mega-constellation.
//!
//! Builds Kuiper's first shell (1,156 satellites), places ground stations
//! at two cities, and measures ping RTTs through the moving constellation
//! for ten simulated seconds.
//!
//! Run with: `cargo run --release --example quickstart`

use hypatia::prelude::*;

fn main() {
    // 1. Ground segment: two cities from the built-in dataset.
    let cities = hypatia::constellation::ground::top_cities(100);
    let constellation = std::sync::Arc::new(hypatia::constellation::presets::kuiper_k1(cities));
    println!(
        "built {}: {} satellites, {} ISLs, {} ground stations",
        constellation.name,
        constellation.num_satellites(),
        constellation.isls.len(),
        constellation.num_ground_stations()
    );

    // 2. Pick a pair and set up the simulator (defaults: 10 Mbit/s links,
    //    100-packet queues, forwarding recomputed every 100 ms).
    let src = constellation.gs_node(constellation.find_gs("Istanbul").unwrap());
    let dst = constellation.gs_node(constellation.find_gs("Nairobi").unwrap());
    let mut sim = Simulator::new(constellation.clone(), SimConfig::default(), vec![src, dst]);

    // 3. Ping every 100 ms for 10 s.
    let ping = sim.add_app(
        src,
        7,
        Box::new(PingApp::new(dst, SimDuration::from_millis(100), SimTime::from_secs(10))),
    );
    sim.run_until(SimTime::from_secs(11));

    // 4. Report.
    let app: &PingApp = sim.app_as(ping).unwrap();
    println!("\nIstanbul -> Nairobi over Kuiper K1:");
    println!("  pings sent {}, received {}", app.sent(), app.received());
    let rtts: Vec<f64> = app.rtts().iter().map(|&(_, r)| r.secs_f64() * 1e3).collect();
    let min = rtts.iter().copied().fold(f64::INFINITY, f64::min);
    let max = rtts.iter().copied().fold(0.0, f64::max);
    println!("  RTT min {min:.1} ms, max {max:.1} ms");
    println!(
        "  geodesic (speed-of-light) RTT: {:.1} ms",
        constellation.ground_stations[constellation.find_gs("Istanbul").unwrap()]
            .geodesic_rtt(&constellation.ground_stations[constellation.find_gs("Nairobi").unwrap()])
            .secs_f64()
            * 1e3
    );
    println!("  simulator processed {} events", sim.stats.events);
}
