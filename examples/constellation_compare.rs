//! Compare the three proposed mega-constellations on one route.
//!
//! For a chosen city pair, tracks the snapshot RTT and path structure over
//! two minutes on Starlink S1, Kuiper K1 and Telesat T1 — the §5 analysis
//! of the paper in miniature — and emits each constellation's TLE set.
//!
//! Run with: `cargo run --release --example constellation_compare`

use hypatia::routing::forwarding::compute_forwarding_state;
use hypatia::routing::path::PairTracker;
use hypatia::scenario::ConstellationChoice;
use hypatia::util::time::TimeSteps;
use hypatia::util::{SimDuration, SimTime};
use hypatia_constellation::ground::top_cities;

fn main() {
    let (src_city, dst_city) = ("New York", "London");
    println!("route: {src_city} -> {dst_city}, horizon 120 s, 1 s snapshots\n");
    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "constellation", "sats", "min RTT", "max RTT", "hops", "changes", "outage"
    );

    for choice in [
        ConstellationChoice::StarlinkS1,
        ConstellationChoice::KuiperK1,
        ConstellationChoice::TelesatT1,
    ] {
        let c = choice.build(top_cities(40));
        let src = c.gs_node(c.find_gs(src_city).unwrap());
        let dst = c.gs_node(c.find_gs(dst_city).unwrap());

        let mut tracker = PairTracker::new(src, dst, false);
        for t in TimeSteps::new(SimTime::ZERO, SimTime::from_secs(120), SimDuration::from_secs(1)) {
            let state = compute_forwarding_state(&c, t, &[dst]);
            tracker.observe(&c, &state);
        }

        println!(
            "{:<14} {:>6} {:>8.1}ms {:>8.1}ms {:>5}-{:<2} {:>8} {:>7}s",
            choice.name(),
            c.num_satellites(),
            tracker.min_rtt.map_or(f64::NAN, |r| r.secs_f64() * 1e3),
            tracker.max_rtt.map_or(f64::NAN, |r| r.secs_f64() * 1e3),
            tracker.min_hops.unwrap_or(0),
            tracker.max_hops.unwrap_or(0),
            tracker.path_changes,
            tracker.disconnected_steps
        );

        // The paper's TLE-generation step: emit the first satellite's TLE.
        let tle = &c.generate_tles(24)[0];
        println!("    sample TLE:\n      {}\n      {}", tle.format_line1(), tle.format_line2());
    }

    println!();
    println!("Expect: Telesat T1 lowest/most stable RTTs despite the fewest");
    println!("satellites (10° min elevation); Starlink the most path churn.");
}
