//! Congestion control over a moving constellation: NewReno vs Vegas vs
//! CUBIC on the same LEO path, no competing traffic (paper §4.2).
//!
//! Run with: `cargo run --release --example congestion_study`

use hypatia::experiments::tcp_single::{run, CcKind};
use hypatia::scenario::{ConstellationChoice, ScenarioBuilder};
use hypatia::util::SimDuration;

fn main() {
    let scenario = ScenarioBuilder::new(ConstellationChoice::KuiperK1).top_cities(100).build();
    let duration = SimDuration::from_secs(30);
    let (src, dst) = ("Manila", "Dalian");
    println!("flow: {src} -> {dst} over Kuiper K1, {duration} of simulated time\n");

    println!(
        "{:<9} {:>10} {:>10} {:>9} {:>9} {:>10}",
        "CC", "goodput", "mean RTT", "fast rtx", "RTOs", "reordered"
    );
    for cc in [CcKind::NewReno, CcKind::Vegas, CcKind::Cubic, CcKind::Bbr] {
        let r = run(&scenario, src, dst, cc, duration).expect("known cities");
        let mean_rtt = if r.rtt_series.is_empty() {
            f64::NAN
        } else {
            r.rtt_series.iter().map(|&(_, x)| x).sum::<f64>() / r.rtt_series.len() as f64
        };
        println!(
            "{:<9} {:>7.2}Mb {:>8.1}ms {:>9} {:>9} {:>10}",
            cc.name(),
            r.goodput_mbps(duration),
            mean_rtt,
            r.fast_retransmits,
            r.timeouts,
            r.reordered_arrivals
        );
    }

    println!();
    println!("Takeaway (paper §4.2): loss-based CC fills queues and misreads");
    println!("reordering as loss; delay-based CC misreads path-RTT changes as");
    println!("congestion. Both signals are unreliable over LEO dynamics.");
}
