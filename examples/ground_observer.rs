//! The sky from a ground station: who can I talk to right now?
//!
//! Renders the ground-observer view (paper Fig. 12) for a city of your
//! choice over Kuiper K1, plus its connectivity windows over ten minutes.
//!
//! Run with: `cargo run --release --example ground_observer [city]`

use hypatia::scenario::ConstellationChoice;
use hypatia::util::{SimDuration, SimTime};
use hypatia_constellation::ground::top_cities;
use hypatia_viz::ground_view::{connectivity_windows, GroundView};

fn main() {
    let city = std::env::args().nth(1).unwrap_or_else(|| "Saint Petersburg".into());
    let gses = top_cities(100);
    let gs = gses
        .iter()
        .find(|g| g.name.eq_ignore_ascii_case(&city))
        .unwrap_or_else(|| panic!("unknown city {city:?} — try e.g. \"Tokyo\""))
        .clone();

    let c = ConstellationChoice::KuiperK1.build(vec![gs.clone()]);
    let view = GroundView::compute(&c, &gs, SimTime::ZERO);
    println!("{}", view.render_ascii(100, 16));
    let connectable = view.satellites.iter().filter(|s| s.connectable).count();
    println!(
        "{} satellites above the horizon, {} connectable (elevation >= {}°)\n",
        view.satellites.len(),
        connectable,
        view.min_elevation_deg
    );

    println!("connectivity over the next 10 minutes (5 s granularity):");
    let windows =
        connectivity_windows(&c, &gs, SimDuration::from_secs(600), SimDuration::from_secs(5));
    for w in &windows {
        println!(
            "  {:>6.0}s – {:>6.0}s : {}",
            w.from.secs_f64(),
            w.until.secs_f64(),
            if w.connected { "connected" } else { "NO COVERAGE" }
        );
    }
    if windows.iter().all(|w| w.connected) {
        println!("  (continuously covered — try \"Saint Petersburg\" for gaps)");
    }
}
