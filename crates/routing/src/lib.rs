//! Time-stepped routing state for Hypatia.
//!
//! The paper (§3.1) computes "the forwarding state of satellites and ground
//! stations at a configurable time granularity, with the default being
//! 100 ms": at each step a delay-weighted graph is built from the live
//! geometry and shortest-path forwarding state is derived; in between,
//! latencies keep following satellite motion while the forwarding state is
//! held fixed.
//!
//! * [`graph`] — the delay-weighted snapshot graph (ISLs + visible GSLs);
//! * [`dijkstra`] — per-destination shortest-path trees (the scalable
//!   default, exactly equivalent to the paper's Floyd–Warshall);
//! * [`floyd_warshall`] — the paper's all-pairs algorithm, used for
//!   validation and small topologies;
//! * [`forwarding`] — forwarding state per time-step and lazy schedules;
//! * [`path`] — path extraction, RTT evaluation, change tracking;
//! * [`incremental`] — dynamic SSSP repair between consecutive snapshots:
//!   graph diffing, Ramalingam–Reps-style tree repair, and the
//!   churn-threshold full-recompute fallback, with output byte-identical
//!   to full Dijkstra;
//! * [`ksp`] — Yen's K shortest loopless paths (multipath/TE studies);
//! * [`multipath`] — loop-free downhill-alternate forwarding (the §5.4
//!   traffic-engineering direction, usable directly by the simulator);
//! * [`parallel`] — the deterministic parallel snapshot pipeline: ordered
//!   fan-out of independent time-steps across worker threads, plus the
//!   bounded-prefetch schedule the packet simulator consumes;
//! * [`churn`] — per-snapshot next-hop churn and unreachable-pair
//!   metrics, the routing-level view of fault injection
//!   (`hypatia-fault`): masked snapshots simply omit failed components,
//!   so forwarding states reconverge around them.

pub mod churn;
pub mod dijkstra;
pub mod floyd_warshall;
pub mod forwarding;
pub mod graph;
pub mod incremental;
pub mod ksp;
pub mod multipath;
pub mod parallel;
pub mod path;

pub use churn::{churn_between, SnapshotChurn};
pub use dijkstra::DijkstraScratch;
pub use forwarding::{
    compute_forwarding_state, compute_forwarding_state_masked, ForwardingState, Unreachable,
};
pub use graph::{DelayGraph, SnapshotBuffers};
pub use incremental::{
    GraphDiff, IncrementalRouter, RepairScratch, RouterStats, RoutingConfig, RoutingMode,
};
pub use parallel::{Prefetcher, SnapshotWorker};
pub use path::{extract_path, path_rtt_at, PairTracker};
