//! Per-snapshot route-churn and reachability metrics.
//!
//! When the topology degrades (fault injection) or simply evolves
//! (satellite motion), consecutive forwarding states differ. This
//! module quantifies *how much*: which source→destination pairs changed
//! their next hop at a snapshot boundary, and which pairs have no route
//! at all. The failure-resilience experiment reports both per failure
//! rate; they are also useful on nominal runs as a reconvergence
//! measure (paper §3.1 studies forwarding-state granularity).

use crate::forwarding::ForwardingState;
use hypatia_constellation::NodeId;

/// Churn and reachability between two consecutive forwarding states,
/// over a fixed set of source nodes and the states' destination set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotChurn {
    /// Pairs whose first hop changed between the two states (counting
    /// only pairs routable in both).
    pub changed_pairs: u64,
    /// Pairs routable in both states.
    pub stable_denominator: u64,
    /// Pairs with no route in the *current* state (`src != dst` only).
    pub unreachable_pairs: u64,
    /// All `src != dst` pairs examined.
    pub total_pairs: u64,
}

impl SnapshotChurn {
    /// Fraction of comparable pairs whose next hop changed, in `[0, 1]`.
    pub fn churn_fraction(&self) -> f64 {
        if self.stable_denominator == 0 {
            0.0
        } else {
            self.changed_pairs as f64 / self.stable_denominator as f64
        }
    }

    /// Fraction of pairs with no route in the current state, in `[0, 1]`.
    pub fn unreachable_fraction(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            self.unreachable_pairs as f64 / self.total_pairs as f64
        }
    }
}

/// Compare consecutive forwarding states over `srcs × cur.dests`.
///
/// `prev` and `cur` must have been computed towards the same
/// destination set (the usual sweep invariant); pairs with `src == dst`
/// are skipped.
pub fn churn_between(
    prev: &ForwardingState,
    cur: &ForwardingState,
    srcs: &[NodeId],
) -> SnapshotChurn {
    let mut out = SnapshotChurn::default();
    for &src in srcs {
        for &dst in &cur.dests {
            if src == dst {
                continue;
            }
            out.total_pairs += 1;
            let now = cur.next_hop(src, dst);
            if now.is_none() {
                out.unreachable_pairs += 1;
            }
            if let (Some(before), Some(now)) = (prev.next_hop(src, dst), now) {
                out.stable_denominator += 1;
                if before != now {
                    out.changed_pairs += 1;
                }
            }
        }
    }
    out
}

/// Reachability of a single state over `srcs × state.dests` (no
/// previous state to diff against): only the unreachable counters are
/// populated.
pub fn reachability_of(state: &ForwardingState, srcs: &[NodeId]) -> SnapshotChurn {
    let mut out = SnapshotChurn::default();
    for &src in srcs {
        for &dst in &state.dests {
            if src == dst {
                continue;
            }
            out.total_pairs += 1;
            if state.next_hop(src, dst).is_none() {
                out.unreachable_pairs += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forwarding::{compute_forwarding_state, compute_forwarding_state_masked};
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_constellation::Constellation;
    use hypatia_fault::{FaultSchedule, FaultSpec, FaultState, OutageWindow};
    use hypatia_util::{SimDuration, SimTime};

    fn constellation() -> Constellation {
        Constellation::build(
            "churn",
            vec![ShellSpec::new("A", 550.0, 10, 10, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 5.0, 5.0), GroundStation::new("b", -10.0, 140.0)],
            GslConfig::new(10.0),
        )
    }

    #[test]
    fn identical_states_have_zero_churn() {
        let c = constellation();
        let dests = vec![c.gs_node(0), c.gs_node(1)];
        let srcs = dests.clone();
        let st = compute_forwarding_state(&c, SimTime::ZERO, &dests);
        let churn = churn_between(&st, &st, &srcs);
        assert_eq!(churn.changed_pairs, 0);
        assert_eq!(churn.total_pairs, 2);
        assert_eq!(churn.churn_fraction(), 0.0);
    }

    #[test]
    fn weather_outage_shows_up_as_unreachable() {
        let c = constellation();
        let dests = vec![c.gs_node(0), c.gs_node(1)];
        let srcs = dests.clone();
        let spec = FaultSpec {
            gsl_weather: vec![OutageWindow { target: 1, from_s: 0.0, until_s: 60.0 }],
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(60));
        let state = FaultState::at(&sched, SimTime::ZERO);
        let before = compute_forwarding_state(&c, SimTime::ZERO, &dests);
        let after = compute_forwarding_state_masked(&c, SimTime::ZERO, &dests, Some(&state));
        let churn = churn_between(&before, &after, &srcs);
        // Both directions of the a<->b pair are dark: gs 1 can neither
        // send nor receive.
        assert_eq!(churn.unreachable_pairs, 2);
        assert_eq!(churn.unreachable_fraction(), 1.0);
        let reach = reachability_of(&after, &srcs);
        assert_eq!(reach.unreachable_pairs, 2);
    }

    #[test]
    fn fractions_are_safe_on_empty_inputs() {
        let churn = SnapshotChurn::default();
        assert_eq!(churn.churn_fraction(), 0.0);
        assert_eq!(churn.unreachable_fraction(), 0.0);
    }

    #[test]
    fn empty_snapshot_has_no_pairs() {
        // A state with no destinations (or no sources) yields the all-zero
        // churn record, not a division by zero or a phantom pair.
        let c = constellation();
        let srcs = vec![c.gs_node(0), c.gs_node(1)];
        let empty = compute_forwarding_state(&c, SimTime::ZERO, &[]);
        let churn = churn_between(&empty, &empty, &srcs);
        assert_eq!(churn, SnapshotChurn::default());
        assert_eq!(reachability_of(&empty, &srcs), SnapshotChurn::default());

        let full = compute_forwarding_state(&c, SimTime::ZERO, &srcs);
        assert_eq!(churn_between(&full, &full, &[]), SnapshotChurn::default());
    }

    #[test]
    fn dark_destination_contributes_no_churn_denominator() {
        // A destination that is unreachable in one of the two states must
        // not count towards the churn denominator: the repair-threshold
        // decision would otherwise read a dark snapshot as route churn.
        let c = constellation();
        let dests = vec![c.gs_node(0), c.gs_node(1)];
        let srcs = dests.clone();
        let spec = FaultSpec {
            gsl_weather: vec![OutageWindow { target: 1, from_s: 0.0, until_s: 60.0 }],
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(60));
        let state = FaultState::at(&sched, SimTime::ZERO);
        let before = compute_forwarding_state(&c, SimTime::ZERO, &dests);
        let after = compute_forwarding_state_masked(&c, SimTime::ZERO, &dests, Some(&state));
        let churn = churn_between(&before, &after, &srcs);
        assert_eq!(churn.stable_denominator, 0, "dark pairs are not comparable");
        assert_eq!(churn.changed_pairs, 0);
        assert_eq!(churn.churn_fraction(), 0.0);
        assert_eq!(churn.unreachable_fraction(), 1.0);
    }

    #[test]
    fn zero_delta_snapshots_are_churn_free_and_diff_empty() {
        // Two snapshots of the same instant: the forwarding states match,
        // the churn record is clean, and the graph diff the incremental
        // router would take is empty (its repair is then a no-op).
        let c = constellation();
        let dests = vec![c.gs_node(0), c.gs_node(1)];
        let a = compute_forwarding_state(&c, SimTime::ZERO, &dests);
        let b = compute_forwarding_state(&c, SimTime::ZERO, &dests);
        let churn = churn_between(&a, &b, &dests);
        assert_eq!(churn.changed_pairs, 0);
        assert_eq!(churn.unreachable_pairs, 0);

        let g = crate::graph::DelayGraph::snapshot(&c, SimTime::ZERO);
        let diff = crate::incremental::GraphDiff::between(&g, &g);
        assert!(diff.inserted.is_empty() && diff.deleted.is_empty());
        assert_eq!(diff.weight_changed, 0);
        assert_eq!(diff.churn_fraction(), 0.0);
    }
}
