//! Per-destination shortest-path trees.
//!
//! The paper computes all-pairs shortest paths with Floyd–Warshall; only
//! the paths *towards ground stations* ever matter for forwarding, so we
//! run one Dijkstra per destination instead — identical results (verified
//! against [`crate::floyd_warshall`] by property test) at a fraction of the
//! cost on constellation-scale graphs.
//!
//! Determinism: the heap orders by `(distance, node)`, and relaxation is
//! strict, so equal-cost ties always resolve towards the smaller node id
//! regardless of iteration order.

use crate::graph::DelayGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Distance sentinel for unreachable nodes.
pub const UNREACHABLE: u64 = u64::MAX;

/// Result of a single-destination shortest-path computation.
#[derive(Debug, Clone)]
pub struct SpTree {
    /// The destination this tree routes towards.
    pub dst: u32,
    /// `dist_ns[v]` = shortest delay from `v` to `dst` (ns), or
    /// [`UNREACHABLE`].
    pub dist_ns: Vec<u64>,
    /// `next_hop[v]` = the neighbour `v` forwards to on its shortest path
    /// to `dst`; `None` if unreachable or `v == dst`.
    pub next_hop: Vec<Option<u32>>,
}

/// Reusable working memory for [`shortest_path_tree_into`]: the binary
/// heap and the settled bitmap survive across calls, so a per-destination
/// tree computation allocates nothing once the scratch has warmed up.
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    settled: Vec<bool>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl DijkstraScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SpTree {
    /// An empty tree, to be filled by [`shortest_path_tree_into`].
    pub fn empty() -> Self {
        SpTree { dst: 0, dist_ns: Vec::new(), next_hop: Vec::new() }
    }
}

/// Compute the shortest-path tree towards `dst`.
///
/// Because every edge in a [`DelayGraph`] is symmetric, running Dijkstra
/// *from* `dst` yields distances *to* `dst`, and each settled node's parent
/// is exactly its next hop towards `dst`.
pub fn shortest_path_tree(graph: &DelayGraph, dst: u32) -> SpTree {
    let mut scratch = DijkstraScratch::new();
    let mut tree = SpTree::empty();
    shortest_path_tree_into(graph, dst, &mut scratch, &mut tree);
    tree
}

/// As [`shortest_path_tree`], but reusing both the caller's scratch and
/// the output tree's buffers. Produces exactly the same tree.
pub fn shortest_path_tree_into(
    graph: &DelayGraph,
    dst: u32,
    scratch: &mut DijkstraScratch,
    out: &mut SpTree,
) {
    let n = graph.num_nodes();
    assert!((dst as usize) < n, "destination {dst} out of range");
    out.dst = dst;
    out.dist_ns.clear();
    out.dist_ns.resize(n, UNREACHABLE);
    out.next_hop.clear();
    out.next_hop.resize(n, None);
    scratch.settled.clear();
    scratch.settled.resize(n, false);
    scratch.heap.clear();

    let dist = &mut out.dist_ns;
    let next_hop = &mut out.next_hop;
    let settled = &mut scratch.settled;
    let heap = &mut scratch.heap;
    dist[dst as usize] = 0;
    heap.push(Reverse((0, dst)));

    while let Some(Reverse((d, u))) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        // Endpoints terminate paths: a node that may not transit (a ground
        // station in an ISL constellation) is settled but never expanded,
        // except the tree's own destination.
        if u != dst && !graph.may_transit(u as usize) {
            continue;
        }
        for e in graph.edges(u as usize) {
            let v = e.to as usize;
            if settled[v] {
                continue;
            }
            let nd = d + e.delay_ns;
            // Strict improvement, or equal-cost tie resolved towards the
            // smaller parent id for determinism.
            let better = nd < dist[v] || (nd == dist[v] && next_hop[v].is_some_and(|old| u < old));
            if better {
                dist[v] = nd;
                // v's next hop towards dst is the node we relaxed from.
                next_hop[v] = Some(u);
                heap.push(Reverse((nd, v as u32)));
            }
        }
    }
}

impl SpTree {
    /// Shortest one-way delay from `src` to the tree's destination, ns.
    pub fn distance_ns(&self, src: u32) -> Option<u64> {
        let d = self.dist_ns[src as usize];
        (d != UNREACHABLE).then_some(d)
    }

    /// Walk the tree from `src` to the destination. Returns `None` when
    /// `src` cannot reach it. The returned path includes both endpoints.
    pub fn path_from(&self, src: u32) -> Option<Vec<u32>> {
        if self.dist_ns[src as usize] == UNREACHABLE {
            return None;
        }
        let mut path = vec![src];
        let mut cur = src;
        while cur != self.dst {
            cur = self.next_hop[cur as usize]?;
            path.push(cur);
            assert!(path.len() <= self.dist_ns.len(), "next-hop cycle detected");
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DelayGraph;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_constellation::Constellation;
    use hypatia_util::SimTime;

    fn constellation() -> Constellation {
        Constellation::build(
            "d",
            vec![ShellSpec::new("A", 550.0, 5, 6, 53.0)],
            IslLayout::PlusGrid,
            vec![
                GroundStation::new("a", 10.0, 10.0),
                GroundStation::new("b", -20.0, 120.0),
                GroundStation::new("pole", 89.0, 0.0),
            ],
            GslConfig::new(25.0),
        )
    }

    #[test]
    fn distance_to_self_is_zero() {
        let c = constellation();
        let g = DelayGraph::snapshot(&c, SimTime::ZERO);
        let dst = c.gs_node(0).0;
        let tree = shortest_path_tree(&g, dst);
        assert_eq!(tree.distance_ns(dst), Some(0));
        assert_eq!(tree.path_from(dst), Some(vec![dst]));
    }

    #[test]
    fn paths_are_consistent_with_distances() {
        let c = constellation();
        let g = DelayGraph::snapshot(&c, SimTime::ZERO);
        let dst = c.gs_node(1).0;
        let tree = shortest_path_tree(&g, dst);
        for src in 0..g.num_nodes() as u32 {
            if let Some(path) = tree.path_from(src) {
                // Sum the edge delays along the path; must equal dist.
                let mut sum = 0u64;
                for w in path.windows(2) {
                    sum += g
                        .edge_delay(w[0] as usize, w[1] as usize)
                        .expect("path uses a non-edge")
                        .nanos();
                }
                assert_eq!(Some(sum), tree.distance_ns(src), "src {src}");
            }
        }
    }

    #[test]
    fn unreachable_pole_gs() {
        let c = constellation();
        let g = DelayGraph::snapshot(&c, SimTime::ZERO);
        let pole = c.gs_node(2).0;
        let tree = shortest_path_tree(&g, c.gs_node(0).0);
        assert_eq!(
            tree.distance_ns(pole),
            None,
            "53°-inclination shell at l=25° must not reach 89°N"
        );
        assert_eq!(tree.path_from(pole), None);
    }

    #[test]
    fn triangle_inequality_over_tree() {
        // dist(u) ≤ dist(v) + w(u,v) for every edge — no relaxation missed.
        let c = constellation();
        let g = DelayGraph::snapshot(&c, SimTime::from_secs(30));
        let tree = shortest_path_tree(&g, c.gs_node(0).0);
        for u in 0..g.num_nodes() {
            for e in g.edges(u) {
                let du = tree.dist_ns[u];
                let dv = tree.dist_ns[e.to as usize];
                if dv != UNREACHABLE {
                    assert!(
                        du <= dv + e.delay_ns,
                        "violated at edge {u}->{}: {du} > {dv}+{}",
                        e.to,
                        e.delay_ns
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let c = constellation();
        let g = DelayGraph::snapshot(&c, SimTime::from_millis(700));
        let a = shortest_path_tree(&g, c.gs_node(1).0);
        let b = shortest_path_tree(&g, c.gs_node(1).0);
        assert_eq!(a.dist_ns, b.dist_ns);
        assert_eq!(a.next_hop, b.next_hop);
    }

    #[test]
    fn symmetric_pair_distances_match() {
        // dist(a→b) must equal dist(b→a) in a symmetric graph.
        let c = constellation();
        let g = DelayGraph::snapshot(&c, SimTime::ZERO);
        let (na, nb) = (c.gs_node(0).0, c.gs_node(1).0);
        let ta = shortest_path_tree(&g, na);
        let tb = shortest_path_tree(&g, nb);
        assert_eq!(ta.distance_ns(nb), tb.distance_ns(na));
    }
}
