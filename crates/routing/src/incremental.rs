//! Incremental snapshot routing: dynamic SSSP repair seeded from the
//! previous snapshot's shortest-path trees.
//!
//! Between consecutive forwarding-state snapshots only the edge *weights*
//! drift (satellites move) and a handful of GSL/visibility (or fault)
//! edges flip, yet the baseline pipeline reruns full Dijkstra from every
//! destination each step. This module diffs consecutive [`DelayGraph`]
//! snapshots ([`GraphDiff`]), classifies affected vertices in the spirit
//! of Ramalingam–Reps, and repairs each destination's [`SpTree`] in place
//! ([`repair_shortest_path_tree`]); [`IncrementalRouter`] wraps the policy
//! (full vs. repair, churn-threshold fallback) plus the per-worker caches.
//!
//! # Determinism and byte-identity
//!
//! The full Dijkstra in [`crate::dijkstra`] produces, for every vertex
//! `v`, the exact shortest distance and the *minimum-id optimal parent*:
//! `next_hop[v] = min { u : edge (u,v) of weight w, dist[u] + w == dist[v],
//! and u may transit (or u == dst) }`. With strictly positive weights
//! every optimal parent settles strictly before `v`, so each one gets to
//! relax `v`, and the `u < old` tie-break keeps the smallest id. The
//! repair therefore recomputes exact distances (warm-start Dijkstra from
//! the previous tree, run to a tense-edge-free fixed point) and then
//! rebuilds `next_hop` canonically from the distances alone. The result is
//! byte-identical to a from-scratch computation regardless of which
//! previous snapshot seeded the repair — which is what lets per-worker
//! caches process snapshots at any thread count and in any order. A
//! zero-weight edge would break the strictly-before argument, so such
//! snapshots (never produced by real geometry) fall back to full Dijkstra.

use crate::dijkstra::{shortest_path_tree_into, DijkstraScratch, SpTree, UNREACHABLE};
use crate::forwarding::ForwardingState;
use crate::graph::{DelayGraph, Edge};
use hypatia_constellation::NodeId;
use hypatia_util::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How forwarding states are computed across consecutive snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RoutingMode {
    /// Full per-destination Dijkstra every snapshot (the escape hatch).
    Full,
    /// Repair the previous snapshot's trees; identical output.
    #[default]
    Incremental,
}

impl RoutingMode {
    /// Canonical spelling, as accepted by [`RoutingMode::parse`].
    pub fn as_str(&self) -> &'static str {
        match self {
            RoutingMode::Full => "full",
            RoutingMode::Incremental => "incremental",
        }
    }

    /// Parse `"full"` / `"incremental"`.
    pub fn parse(s: &str) -> Option<RoutingMode> {
        match s {
            "full" => Some(RoutingMode::Full),
            "incremental" => Some(RoutingMode::Incremental),
            _ => None,
        }
    }
}

/// Routing-pipeline configuration shared by the parallel sweep, the
/// simulator prefetcher, and the bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// Full recompute vs. incremental repair.
    pub mode: RoutingMode,
    /// Fall back to full Dijkstra when the fraction of flipped (inserted +
    /// deleted) directed edges between consecutive snapshots exceeds this.
    /// Weight-only drift never counts towards churn.
    pub repair_churn_threshold: f64,
}

impl Default for RoutingConfig {
    fn default() -> Self {
        RoutingConfig { mode: RoutingMode::default(), repair_churn_threshold: 0.10 }
    }
}

impl RoutingConfig {
    /// Always-full configuration.
    pub fn full() -> Self {
        RoutingConfig { mode: RoutingMode::Full, ..Default::default() }
    }

    /// Incremental configuration with the default churn threshold.
    pub fn incremental() -> Self {
        RoutingConfig { mode: RoutingMode::Incremental, ..Default::default() }
    }
}

/// Structural difference between two consecutive snapshot graphs.
///
/// Weight deltas are counted (they affect every ISL every snapshot);
/// topology flips are listed explicitly, since those are what the
/// churn-threshold fallback decision is about.
#[derive(Debug, Clone, Default)]
pub struct GraphDiff {
    /// Directed edges present in `cur` but not `prev`.
    pub inserted: Vec<(u32, u32)>,
    /// Directed edges present in `prev` but not `cur`.
    pub deleted: Vec<(u32, u32)>,
    /// Directed edges present in both with a different weight.
    pub weight_changed: usize,
    /// Directed edges present in both with the same weight.
    pub unchanged: usize,
    /// Smallest edge weight in `cur` (ns); [`u64::MAX`] when edgeless.
    pub min_delay_ns: u64,
    /// Directed edge count of `prev`.
    pub prev_edges: usize,
    /// Directed edge count of `cur`.
    pub cur_edges: usize,
}

fn find_delay(edges: &[Edge], to: u32) -> Option<u64> {
    edges.iter().find(|e| e.to == to).map(|e| e.delay_ns)
}

impl GraphDiff {
    /// Diff two snapshots (allocating convenience).
    pub fn between(prev: &DelayGraph, cur: &DelayGraph) -> GraphDiff {
        let mut diff = GraphDiff::default();
        diff.diff_into(prev, cur);
        diff
    }

    /// Diff two snapshots of the same node set, reusing this diff's
    /// buffers. Graphs with differing node counts are not diffable.
    pub fn diff_into(&mut self, prev: &DelayGraph, cur: &DelayGraph) {
        assert_eq!(prev.num_nodes(), cur.num_nodes(), "snapshots differ in node count");
        self.inserted.clear();
        self.deleted.clear();
        self.weight_changed = 0;
        self.unchanged = 0;
        self.min_delay_ns = u64::MAX;
        self.prev_edges = prev.num_edges();
        self.cur_edges = cur.num_edges();
        for u in 0..cur.num_nodes() {
            let pe = prev.edges(u);
            let ce = cur.edges(u);
            for e in ce {
                self.min_delay_ns = self.min_delay_ns.min(e.delay_ns);
            }
            // Snapshot adjacency order is construction-stable, so when the
            // neighbour sets match, the lists are positionally identical.
            if pe.len() == ce.len() && pe.iter().zip(ce).all(|(a, b)| a.to == b.to) {
                for (a, b) in pe.iter().zip(ce) {
                    if a.delay_ns == b.delay_ns {
                        self.unchanged += 1;
                    } else {
                        self.weight_changed += 1;
                    }
                }
                continue;
            }
            for e in ce {
                match find_delay(pe, e.to) {
                    None => self.inserted.push((u as u32, e.to)),
                    Some(w) if w == e.delay_ns => self.unchanged += 1,
                    Some(_) => self.weight_changed += 1,
                }
            }
            for e in pe {
                if find_delay(ce, e.to).is_none() {
                    self.deleted.push((u as u32, e.to));
                }
            }
        }
    }

    /// Fraction of directed edges that flipped (inserted or deleted),
    /// relative to the larger of the two snapshots. Zero-safe.
    pub fn churn_fraction(&self) -> f64 {
        let denom = self.prev_edges.max(self.cur_edges).max(1);
        (self.inserted.len() + self.deleted.len()) as f64 / denom as f64
    }

    /// Does `cur` contain a zero-weight edge (repair would lose the
    /// canonical-parent tie-break)?
    pub fn has_zero_delay(&self) -> bool {
        self.min_delay_ns == 0 && self.cur_edges > 0
    }
}

/// Reusable working memory for [`repair_shortest_path_tree`]: the
/// previous tree's children lists (CSR), the BFS order, and the repair
/// heap all persist across calls.
#[derive(Debug, Default)]
pub struct RepairScratch {
    /// `child_offsets[u]..child_offsets[u+1]` indexes `children` for `u`.
    child_offsets: Vec<u32>,
    /// Children of each vertex in the previous tree (`next_hop[v] == u`).
    children: Vec<u32>,
    /// Counting-sort cursors, then reused as the BFS queue.
    cursor: Vec<u32>,
    /// BFS visitation order over the old tree.
    order: Vec<u32>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl RepairScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Repair `tree` — an exact shortest-path tree of a *previous* snapshot
/// with the same node set and transit flags — into the exact tree for
/// `graph`, byte-identical to [`shortest_path_tree_into`] on `graph`.
///
/// Three passes: (1) re-derive distances along the old tree under the new
/// weights (vertices whose old path broke become unreachable for now);
/// (2) seed a heap with every vertex a single relaxation improves (the
/// "affected" set) and run Dijkstra repair to a fixed point, which yields
/// exact distances; (3) rebuild every `next_hop` as the minimum-id optimal
/// parent, the canonical form full Dijkstra produces.
///
/// `graph` must not contain zero-weight edges (callers check via
/// [`GraphDiff::has_zero_delay`] and fall back to full Dijkstra).
pub fn repair_shortest_path_tree(
    graph: &DelayGraph,
    tree: &mut SpTree,
    scratch: &mut RepairScratch,
) {
    let n = graph.num_nodes();
    let dst = tree.dst;
    assert_eq!(tree.dist_ns.len(), n, "tree/snapshot node count mismatch");

    // Pass 1a: children lists of the old tree, by counting sort.
    scratch.child_offsets.clear();
    scratch.child_offsets.resize(n + 1, 0);
    for hop in tree.next_hop.iter().flatten() {
        scratch.child_offsets[*hop as usize + 1] += 1;
    }
    for v in 0..n {
        scratch.child_offsets[v + 1] += scratch.child_offsets[v];
    }
    scratch.cursor.clear();
    scratch.cursor.extend_from_slice(&scratch.child_offsets[..n]);
    scratch.children.clear();
    scratch.children.resize(tree.next_hop.iter().flatten().count(), 0);
    for (v, hop) in tree.next_hop.iter().enumerate() {
        if let Some(u) = hop {
            let at = scratch.cursor[*u as usize];
            scratch.children[at as usize] = v as u32;
            scratch.cursor[*u as usize] = at + 1;
        }
    }

    // Pass 1b: BFS from dst over the old tree, re-deriving distances with
    // the new weights. A vertex whose parent edge disappeared (or whose
    // parent is itself cut off) keeps UNREACHABLE; pass 2 re-discovers it
    // if any live path remains.
    let dist = &mut tree.dist_ns;
    dist.iter_mut().for_each(|d| *d = UNREACHABLE);
    dist[dst as usize] = 0;
    scratch.order.clear();
    scratch.order.push(dst);
    let mut head = 0;
    while head < scratch.order.len() {
        let u = scratch.order[head];
        head += 1;
        let du = dist[u as usize];
        let (lo, hi) = (scratch.child_offsets[u as usize], scratch.child_offsets[u as usize + 1]);
        for i in lo..hi {
            let v = scratch.children[i as usize];
            if let Some(w) = find_delay(graph.edges(v as usize), u) {
                dist[v as usize] = du + w;
                scratch.order.push(v);
            }
        }
    }

    // Pass 2: seed every vertex a single relaxation improves, then repair
    // to a fixed point. Labels only decrease, each label is the length of
    // a real transit-valid path, and at termination no edge is tense, so
    // the labels are the exact constrained shortest distances.
    let heap = &mut scratch.heap;
    heap.clear();
    for u in 0..n {
        let du = dist[u];
        if du == UNREACHABLE || (u as u32 != dst && !graph.may_transit(u)) {
            continue;
        }
        for e in graph.edges(u) {
            let nd = du + e.delay_ns;
            if nd < dist[e.to as usize] {
                dist[e.to as usize] = nd;
                heap.push(Reverse((nd, e.to)));
            }
        }
    }
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        if u != dst && !graph.may_transit(u as usize) {
            continue; // endpoints terminate paths, as in full Dijkstra
        }
        for e in graph.edges(u as usize) {
            let nd = d + e.delay_ns;
            if nd < dist[e.to as usize] {
                dist[e.to as usize] = nd;
                heap.push(Reverse((nd, e.to)));
            }
        }
    }

    // Pass 3: canonical next hops — the minimum-id optimal parent. Edges
    // are symmetric, so v's in-edges are read off its own adjacency list.
    for v in 0..n {
        if v as u32 == dst || dist[v] == UNREACHABLE {
            tree.next_hop[v] = None;
            continue;
        }
        let dv = dist[v];
        let mut best = u32::MAX;
        for e in graph.edges(v) {
            let u = e.to;
            if (u == dst || graph.may_transit(u as usize))
                && dist[u as usize] != UNREACHABLE
                && dist[u as usize] + e.delay_ns == dv
                && u < best
            {
                best = u;
            }
        }
        debug_assert!(best != u32::MAX, "reachable vertex {v} has no optimal parent");
        tree.next_hop[v] = (best != u32::MAX).then_some(best);
    }
}

/// Why a snapshot was (or was not) repaired — tallied in [`RouterStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Snapshots computed in total.
    pub snapshots: u64,
    /// Snapshots repaired incrementally.
    pub repaired: u64,
    /// Snapshots computed by full Dijkstra because the mode says so.
    pub full_mode: u64,
    /// Full recomputes because no valid cache existed (first snapshot, or
    /// the destination set / node count changed).
    pub fallback_first: u64,
    /// Full recomputes because topology churn exceeded the threshold.
    pub fallback_churn: u64,
    /// Full recomputes because the snapshot contains a zero-weight edge.
    pub fallback_zero_delay: u64,
}

/// Per-worker incremental routing engine: previous snapshot + exact trees
/// + scratch buffers, and the full-vs-repair policy.
///
/// Every worker of a parallel sweep owns one router. Because repair output
/// is byte-identical to full recompute from *any* valid cache state, the
/// pipeline's results do not depend on which steps a worker happened to
/// process, so any thread count and any snapshot order produce identical
/// bytes.
#[derive(Debug)]
pub struct IncrementalRouter {
    config: RoutingConfig,
    /// Is (`prev_graph`, `trees`, `dests`) a coherent cache?
    valid: bool,
    prev_graph: DelayGraph,
    dests: Vec<NodeId>,
    trees: Vec<SpTree>,
    scratch: DijkstraScratch,
    repair: RepairScratch,
    diff: GraphDiff,
    /// Decision counters (exposed for benches and tests).
    pub stats: RouterStats,
}

impl Default for IncrementalRouter {
    fn default() -> Self {
        IncrementalRouter::new(RoutingConfig::default())
    }
}

impl IncrementalRouter {
    /// A router with no cached state yet.
    pub fn new(config: RoutingConfig) -> Self {
        IncrementalRouter {
            config,
            valid: false,
            prev_graph: DelayGraph::default(),
            dests: Vec::new(),
            trees: Vec::new(),
            scratch: DijkstraScratch::new(),
            repair: RepairScratch::new(),
            diff: GraphDiff::default(),
            stats: RouterStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> RoutingConfig {
        self.config
    }

    /// Drop the cached snapshot; the next compute runs full Dijkstra.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Compute the forwarding state of `graph` at `t` towards `dests`
    /// into `out`, repairing from the cached previous snapshot when the
    /// policy allows. Byte-identical to
    /// [`crate::forwarding::compute_forwarding_state_into`] in all modes.
    pub fn compute_into(
        &mut self,
        graph: &DelayGraph,
        t: SimTime,
        dests: &[NodeId],
        out: &mut ForwardingState,
    ) {
        self.stats.snapshots += 1;
        let repairable = match self.config.mode {
            RoutingMode::Full => {
                self.stats.full_mode += 1;
                false
            }
            RoutingMode::Incremental => {
                if !self.valid
                    || self.dests != dests
                    || self.prev_graph.num_nodes() != graph.num_nodes()
                {
                    self.stats.fallback_first += 1;
                    false
                } else {
                    self.diff.diff_into(&self.prev_graph, graph);
                    if self.diff.has_zero_delay() {
                        self.stats.fallback_zero_delay += 1;
                        false
                    } else if self.diff.churn_fraction() > self.config.repair_churn_threshold {
                        self.stats.fallback_churn += 1;
                        false
                    } else {
                        true
                    }
                }
            }
        };

        if repairable {
            self.stats.repaired += 1;
            for tree in &mut self.trees {
                repair_shortest_path_tree(graph, tree, &mut self.repair);
            }
        } else {
            self.dests.clear();
            self.dests.extend_from_slice(dests);
            self.trees.resize_with(dests.len(), SpTree::empty);
            for (tree, d) in self.trees.iter_mut().zip(dests) {
                shortest_path_tree_into(graph, d.0, &mut self.scratch, tree);
            }
        }

        // Cache the snapshot the trees now describe (except in full mode,
        // where the cache is dead weight).
        if self.config.mode == RoutingMode::Incremental {
            self.prev_graph.clone_from(graph);
            self.valid = true;
        }

        ForwardingState::fill_from_trees(out, t, dests, &self.trees, graph.num_nodes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forwarding::compute_forwarding_state_on;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_constellation::Constellation;
    use hypatia_fault::{FaultSchedule, FaultSpec, FaultState, OutageWindow};
    use hypatia_util::{SimDuration, SimTime};

    fn constellation() -> Constellation {
        Constellation::build(
            "inc",
            vec![ShellSpec::new("A", 550.0, 6, 6, 53.0)],
            IslLayout::PlusGrid,
            vec![
                GroundStation::new("a", 10.0, 10.0),
                GroundStation::new("b", -20.0, 120.0),
                GroundStation::new("c", 48.0, 2.0),
            ],
            GslConfig::new(25.0),
        )
    }

    fn assert_trees_identical(a: &SpTree, b: &SpTree, ctx: &str) {
        assert_eq!(a.dst, b.dst, "{ctx}: dst");
        assert_eq!(a.dist_ns, b.dist_ns, "{ctx}: distances");
        assert_eq!(a.next_hop, b.next_hop, "{ctx}: next hops");
    }

    #[test]
    fn repair_matches_full_under_weight_drift() {
        let c = constellation();
        let dst = c.gs_node(0).0;
        let mut tree =
            crate::dijkstra::shortest_path_tree(&DelayGraph::snapshot(&c, SimTime::ZERO), dst);
        let mut scratch = RepairScratch::new();
        // Walk forward in time: every ISL weight drifts, GSLs flip as
        // satellites rise and set.
        for secs in [5u64, 10, 30, 90, 180] {
            let g = DelayGraph::snapshot(&c, SimTime::from_secs(secs));
            repair_shortest_path_tree(&g, &mut tree, &mut scratch);
            let full = crate::dijkstra::shortest_path_tree(&g, dst);
            assert_trees_identical(&tree, &full, &format!("t={secs}s"));
        }
    }

    #[test]
    fn repair_matches_full_across_fault_flips() {
        let c = constellation();
        let t = SimTime::from_secs(20);
        let spec = FaultSpec {
            sat_outages: vec![
                OutageWindow { target: 3, from_s: 10.0, until_s: 40.0 },
                OutageWindow { target: 17, from_s: 10.0, until_s: 40.0 },
            ],
            gsl_weather: vec![OutageWindow { target: 1, from_s: 10.0, until_s: 40.0 }],
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(60));
        let dark = FaultState::at(&sched, t);
        let nominal = DelayGraph::snapshot(&c, t);
        let masked = DelayGraph::snapshot_masked(&c, t, Some(&dark));
        let mut scratch = RepairScratch::new();
        for dst in [c.gs_node(0).0, c.gs_node(2).0] {
            // Fault appears: repair nominal tree onto the masked graph.
            let mut tree = crate::dijkstra::shortest_path_tree(&nominal, dst);
            repair_shortest_path_tree(&masked, &mut tree, &mut scratch);
            assert_trees_identical(
                &tree,
                &crate::dijkstra::shortest_path_tree(&masked, dst),
                "fault onset",
            );
            // Fault clears: repair the masked tree back onto nominal.
            repair_shortest_path_tree(&nominal, &mut tree, &mut scratch);
            assert_trees_identical(
                &tree,
                &crate::dijkstra::shortest_path_tree(&nominal, dst),
                "fault recovery",
            );
        }
    }

    #[test]
    fn router_is_byte_identical_to_full_pipeline() {
        let c = constellation();
        let dests = vec![c.gs_node(0), c.gs_node(1)];
        let mut router = IncrementalRouter::new(RoutingConfig::incremental());
        let mut out = ForwardingState::empty();
        for secs in 0..8u64 {
            let t = SimTime::from_secs(secs * 15);
            let g = DelayGraph::snapshot(&c, t);
            router.compute_into(&g, t, &dests, &mut out);
            let reference = compute_forwarding_state_on(&g, t, &dests);
            assert_eq!(out.computed_at, reference.computed_at);
            assert_eq!(out.dests, reference.dests);
            for (a, b) in out.trees.iter().zip(&reference.trees) {
                assert_trees_identical(a, b, &format!("t={}s", secs * 15));
            }
            assert_eq!(out.dest_lookup, reference.dest_lookup);
        }
        assert!(router.stats.repaired >= 6, "drift steps should repair: {:?}", router.stats);
        assert_eq!(router.stats.fallback_first, 1, "{:?}", router.stats);
    }

    #[test]
    fn first_snapshot_and_dest_change_fall_back_to_full() {
        let c = constellation();
        let g = DelayGraph::snapshot(&c, SimTime::ZERO);
        let mut router = IncrementalRouter::new(RoutingConfig::incremental());
        let mut out = ForwardingState::empty();
        router.compute_into(&g, SimTime::ZERO, &[c.gs_node(0)], &mut out);
        assert_eq!(router.stats.fallback_first, 1);
        // Changing the destination set invalidates the cache.
        router.compute_into(&g, SimTime::ZERO, &[c.gs_node(0), c.gs_node(1)], &mut out);
        assert_eq!(router.stats.fallback_first, 2);
        // Same dests again: repairable (zero-delta diff).
        router.compute_into(&g, SimTime::ZERO, &[c.gs_node(0), c.gs_node(1)], &mut out);
        assert_eq!(router.stats.repaired, 1, "{:?}", router.stats);
    }

    #[test]
    fn churn_threshold_forces_full_recompute() {
        let c = constellation();
        let t = SimTime::from_secs(20);
        // Take down a third of the satellites: a huge topology flip.
        let spec = FaultSpec {
            sat_outages: (0..12)
                .map(|s| OutageWindow { target: s, from_s: 10.0, until_s: 40.0 })
                .collect(),
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(60));
        let dark = FaultState::at(&sched, t);
        let dests = vec![c.gs_node(0)];
        let mut router = IncrementalRouter::new(RoutingConfig {
            mode: RoutingMode::Incremental,
            repair_churn_threshold: 0.05,
        });
        let mut out = ForwardingState::empty();
        let nominal = DelayGraph::snapshot(&c, t);
        router.compute_into(&nominal, t, &dests, &mut out);
        let masked = DelayGraph::snapshot_masked(&c, t, Some(&dark));
        router.compute_into(&masked, t, &dests, &mut out);
        assert_eq!(router.stats.fallback_churn, 1, "{:?}", router.stats);
        // The fallback still yields the exact reference state.
        let reference = compute_forwarding_state_on(&masked, t, &dests);
        for (a, b) in out.trees.iter().zip(&reference.trees) {
            assert_trees_identical(a, b, "churn fallback");
        }
    }

    #[test]
    fn full_mode_never_diffs_or_repairs() {
        let c = constellation();
        let dests = vec![c.gs_node(0)];
        let mut router = IncrementalRouter::new(RoutingConfig::full());
        let mut out = ForwardingState::empty();
        for secs in [0u64, 15, 30] {
            let g = DelayGraph::snapshot(&c, SimTime::from_secs(secs));
            router.compute_into(&g, SimTime::from_secs(secs), &dests, &mut out);
        }
        assert_eq!(router.stats.full_mode, 3);
        assert_eq!(router.stats.repaired, 0);
    }

    #[test]
    fn diff_between_identical_snapshots_is_empty() {
        let c = constellation();
        let g = DelayGraph::snapshot(&c, SimTime::from_secs(7));
        let diff = GraphDiff::between(&g, &g);
        assert!(diff.inserted.is_empty() && diff.deleted.is_empty());
        assert_eq!(diff.weight_changed, 0);
        assert_eq!(diff.unchanged, g.num_edges());
        assert_eq!(diff.churn_fraction(), 0.0);
        assert!(!diff.has_zero_delay());
        assert!(diff.min_delay_ns > 0, "real geometry has positive delays");
    }

    #[test]
    fn diff_counts_fault_flips_symmetrically() {
        let c = constellation();
        let t = SimTime::from_secs(20);
        let spec = FaultSpec {
            sat_outages: vec![OutageWindow { target: 5, from_s: 0.0, until_s: 40.0 }],
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(60));
        let dark = FaultState::at(&sched, t);
        let nominal = DelayGraph::snapshot(&c, t);
        let masked = DelayGraph::snapshot_masked(&c, t, Some(&dark));
        let onset = GraphDiff::between(&nominal, &masked);
        assert!(onset.inserted.is_empty());
        assert_eq!(onset.deleted.len(), nominal.num_edges() - masked.num_edges());
        assert!(onset.deleted.iter().all(|&(a, b)| a == 5 || b == 5));
        // The reverse diff mirrors inserts and deletes.
        let recovery = GraphDiff::between(&masked, &nominal);
        assert_eq!(recovery.inserted.len(), onset.deleted.len());
        assert!(recovery.deleted.is_empty());
        assert!((onset.churn_fraction() - recovery.churn_fraction()).abs() < 1e-12);
    }

    #[test]
    fn diff_counts_pure_weight_drift() {
        let c = constellation();
        let g0 = DelayGraph::snapshot(&c, SimTime::ZERO);
        let g1 = DelayGraph::snapshot(&c, SimTime::from_millis(100));
        let diff = GraphDiff::between(&g0, &g1);
        assert!(diff.weight_changed > 0, "ISL delays must drift over 100 ms");
        // A 100 ms step flips at most a few GSLs.
        assert!(
            diff.churn_fraction() < 0.05,
            "churn {} unexpectedly high: {} ins / {} del",
            diff.churn_fraction(),
            diff.inserted.len(),
            diff.deleted.len()
        );
    }

    #[test]
    fn mode_parsing_round_trips() {
        for mode in [RoutingMode::Full, RoutingMode::Incremental] {
            assert_eq!(RoutingMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(RoutingMode::parse("bogus"), None);
        assert_eq!(RoutingMode::default(), RoutingMode::Incremental);
    }
}
