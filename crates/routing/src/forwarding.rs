//! Forwarding state at a time-step, and lazy schedules over a run.
//!
//! The simulator consumes, per time-step, a map `(node, destination) →
//! next hop` restricted to the destinations that actually terminate
//! traffic. Any routing strategy expressible as static routes fits this
//! shape (paper §3.1); the default is shortest-delay via per-destination
//! Dijkstra trees.

use crate::dijkstra::{shortest_path_tree_into, DijkstraScratch, SpTree};
use crate::graph::{DelayGraph, SnapshotBuffers};
use crate::multipath::{multipath_tree_with, MultipathTree};
use hypatia_constellation::{Constellation, NodeId};
use hypatia_fault::FaultState;
use hypatia_util::{SimDuration, SimTime};
use std::fmt;

/// A typed "no route" error: `dst` cannot be reached from `src` in the
/// snapshot a lookup was made against (or `dst` is not a destination of
/// that state at all).
///
/// Under fault injection the snapshot graph can partition, so
/// unreachability is an expected outcome that callers must handle —
/// the `try_*` lookup variants return this instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unreachable {
    /// The node the lookup started from.
    pub src: NodeId,
    /// The destination that could not be reached.
    pub dst: NodeId,
}

impl fmt::Display for Unreachable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no route from node {} to node {}", self.src.0, self.dst.0)
    }
}

impl std::error::Error for Unreachable {}

/// Sentinel in the dense destination lookup: "not a destination".
const NOT_A_DEST: u32 = u32::MAX;

/// Build the dense `NodeId → destination index` table used on the
/// per-packet hot path (replaces an `O(dests)` linear scan).
fn build_dest_lookup(dests: &[NodeId], num_nodes: usize) -> Vec<u32> {
    let mut lookup = vec![NOT_A_DEST; num_nodes];
    for (i, d) in dests.iter().enumerate() {
        lookup[d.index()] = i as u32;
    }
    lookup
}

/// The forwarding state of the whole network towards a set of destinations,
/// valid for one time-step.
#[derive(Debug, Clone)]
pub struct ForwardingState {
    /// The instant this state was computed for.
    pub computed_at: SimTime,
    /// The destinations, in the order given at computation time.
    pub dests: Vec<NodeId>,
    pub(crate) trees: Vec<SpTree>,
    /// Dense `node index → index into trees` (or [`NOT_A_DEST`]), built
    /// once at construction so per-packet lookups are O(1).
    pub(crate) dest_lookup: Vec<u32>,
}

impl ForwardingState {
    /// An empty state, to be filled by [`compute_forwarding_state_into`].
    pub fn empty() -> Self {
        ForwardingState {
            computed_at: SimTime::ZERO,
            dests: Vec::new(),
            trees: Vec::new(),
            dest_lookup: Vec::new(),
        }
    }

    /// Next hop of `node` towards `dst`, or `None` when `dst` is currently
    /// unreachable (or `node == dst`).
    pub fn next_hop(&self, node: NodeId, dst: NodeId) -> Option<NodeId> {
        let idx = self.dest_index(dst)?;
        self.trees[idx].next_hop[node.index()].map(NodeId)
    }

    /// Shortest one-way delay from `node` to `dst` at computation time.
    pub fn distance(&self, node: NodeId, dst: NodeId) -> Option<SimDuration> {
        let idx = self.dest_index(dst)?;
        self.trees[idx].distance_ns(node.0).map(SimDuration::from_nanos)
    }

    /// Full path from `node` to `dst` (inclusive), if reachable.
    pub fn path(&self, node: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let idx = self.dest_index(dst)?;
        Some(self.trees[idx].path_from(node.0)?.into_iter().map(NodeId).collect())
    }

    /// The shortest-path tree towards `dst`, if it is a known destination.
    pub fn tree(&self, dst: NodeId) -> Option<&SpTree> {
        Some(&self.trees[self.dest_index(dst)?])
    }

    /// As [`Self::next_hop`], but with a typed error naming the
    /// unreachable pair instead of a bare `None`.
    pub fn try_next_hop(&self, node: NodeId, dst: NodeId) -> Result<NodeId, Unreachable> {
        self.next_hop(node, dst).ok_or(Unreachable { src: node, dst })
    }

    /// As [`Self::distance`], but with a typed error.
    pub fn try_distance(&self, node: NodeId, dst: NodeId) -> Result<SimDuration, Unreachable> {
        self.distance(node, dst).ok_or(Unreachable { src: node, dst })
    }

    /// As [`Self::path`], but with a typed error.
    pub fn try_path(&self, node: NodeId, dst: NodeId) -> Result<Vec<NodeId>, Unreachable> {
        self.path(node, dst).ok_or(Unreachable { src: node, dst })
    }

    #[inline]
    fn dest_index(&self, dst: NodeId) -> Option<usize> {
        let idx = *self.dest_lookup.get(dst.index())?;
        (idx != NOT_A_DEST).then_some(idx as usize)
    }

    /// Fill `out` from already-computed trees, reusing its buffers. Used
    /// by the incremental router, which keeps the authoritative trees in
    /// its own cache; the copy is byte-identical to what
    /// [`compute_forwarding_state_into`] builds from the same snapshot.
    pub(crate) fn fill_from_trees(
        out: &mut ForwardingState,
        t: SimTime,
        dests: &[NodeId],
        trees: &[SpTree],
        num_nodes: usize,
    ) {
        out.computed_at = t;
        out.dests.clear();
        out.dests.extend_from_slice(dests);
        out.trees.resize_with(trees.len(), SpTree::empty);
        for (dst, src) in out.trees.iter_mut().zip(trees) {
            dst.dst = src.dst;
            dst.dist_ns.clone_from(&src.dist_ns);
            dst.next_hop.clone_from(&src.next_hop);
        }
        out.dest_lookup.clear();
        out.dest_lookup.resize(num_nodes, NOT_A_DEST);
        for (i, d) in dests.iter().enumerate() {
            out.dest_lookup[d.index()] = i as u32;
        }
    }
}

/// Compute the forwarding state of `constellation` at `t` towards `dests`.
pub fn compute_forwarding_state(
    constellation: &Constellation,
    t: SimTime,
    dests: &[NodeId],
) -> ForwardingState {
    let graph = DelayGraph::snapshot(constellation, t);
    compute_forwarding_state_on(&graph, t, dests)
}

/// As [`compute_forwarding_state`] but reusing an existing snapshot graph.
pub fn compute_forwarding_state_on(
    graph: &DelayGraph,
    t: SimTime,
    dests: &[NodeId],
) -> ForwardingState {
    let mut scratch = DijkstraScratch::new();
    let mut out = ForwardingState::empty();
    compute_forwarding_state_into(graph, t, dests, &mut scratch, &mut out);
    out
}

/// As [`compute_forwarding_state_on`] but writing into an existing state,
/// reusing its tree buffers and the caller's Dijkstra scratch. Produces
/// exactly the same state as the allocating path.
pub fn compute_forwarding_state_into(
    graph: &DelayGraph,
    t: SimTime,
    dests: &[NodeId],
    scratch: &mut DijkstraScratch,
    out: &mut ForwardingState,
) {
    out.computed_at = t;
    out.dests.clear();
    out.dests.extend_from_slice(dests);
    out.trees.resize_with(dests.len(), SpTree::empty);
    for (tree, d) in out.trees.iter_mut().zip(dests) {
        shortest_path_tree_into(graph, d.0, scratch, tree);
    }
    out.dest_lookup.clear();
    out.dest_lookup.resize(graph.num_nodes(), NOT_A_DEST);
    for (i, d) in dests.iter().enumerate() {
        out.dest_lookup[d.index()] = i as u32;
    }
}

/// Compute a forwarding state reusing per-worker snapshot and Dijkstra
/// buffers (the building block of the parallel pipeline: only the returned
/// state itself is freshly allocated, because it is handed away).
pub fn compute_forwarding_state_with(
    buffers: &mut SnapshotBuffers,
    scratch: &mut DijkstraScratch,
    constellation: &Constellation,
    t: SimTime,
    dests: &[NodeId],
) -> ForwardingState {
    compute_forwarding_state_with_mask(buffers, scratch, constellation, t, dests, None)
}

/// As [`compute_forwarding_state_with`], but routing around faulted
/// components: the snapshot graph omits every node and link `faults`
/// marks down (see
/// [`SnapshotBuffers::snapshot_masked`](crate::graph::SnapshotBuffers::snapshot_masked)).
/// With `faults == None` this is exactly the nominal computation.
pub fn compute_forwarding_state_with_mask(
    buffers: &mut SnapshotBuffers,
    scratch: &mut DijkstraScratch,
    constellation: &Constellation,
    t: SimTime,
    dests: &[NodeId],
    faults: Option<&FaultState>,
) -> ForwardingState {
    let graph = buffers.snapshot_masked(constellation, t, faults);
    let mut out = ForwardingState::empty();
    compute_forwarding_state_into(graph, t, dests, scratch, &mut out);
    out
}

/// Compute the forwarding state at `t` with faulted components masked
/// out of the snapshot graph.
pub fn compute_forwarding_state_masked(
    constellation: &Constellation,
    t: SimTime,
    dests: &[NodeId],
    faults: Option<&FaultState>,
) -> ForwardingState {
    let graph = DelayGraph::snapshot_masked(constellation, t, faults);
    compute_forwarding_state_on(&graph, t, dests)
}

/// Multipath forwarding state: downhill alternates towards each
/// destination (see [`crate::multipath`]), valid for one time-step.
#[derive(Debug, Clone)]
pub struct MultipathState {
    /// The instant this state was computed for.
    pub computed_at: SimTime,
    /// The destinations, in computation order.
    pub dests: Vec<NodeId>,
    trees: Vec<MultipathTree>,
    /// Dense `node index → index into trees` (or [`NOT_A_DEST`]).
    dest_lookup: Vec<u32>,
}

impl MultipathState {
    /// Flow-stable next hop of `node` towards `dst` (falls back to the
    /// shortest-path hop when no alternate qualifies).
    pub fn next_hop(&self, node: NodeId, dst: NodeId, flow_hash: u64) -> Option<NodeId> {
        let idx = self.dest_index(dst)?;
        self.trees[idx].pick(node.0, flow_hash).map(NodeId)
    }

    /// The multipath tree towards `dst`.
    pub fn tree(&self, dst: NodeId) -> Option<&MultipathTree> {
        Some(&self.trees[self.dest_index(dst)?])
    }

    #[inline]
    fn dest_index(&self, dst: NodeId) -> Option<usize> {
        let idx = *self.dest_lookup.get(dst.index())?;
        (idx != NOT_A_DEST).then_some(idx as usize)
    }
}

/// Compute multipath forwarding state at `t` towards `dests` with the
/// given stretch bound.
pub fn compute_multipath_state(
    constellation: &Constellation,
    t: SimTime,
    dests: &[NodeId],
    stretch: f64,
) -> MultipathState {
    let graph = DelayGraph::snapshot(constellation, t);
    compute_multipath_state_on(&graph, t, dests, stretch)
}

/// As [`compute_multipath_state`] but reusing an existing snapshot graph.
pub fn compute_multipath_state_on(
    graph: &DelayGraph,
    t: SimTime,
    dests: &[NodeId],
    stretch: f64,
) -> MultipathState {
    let mut scratch = DijkstraScratch::new();
    let trees =
        dests.iter().map(|d| multipath_tree_with(graph, d.0, stretch, &mut scratch)).collect();
    let dest_lookup = build_dest_lookup(dests, graph.num_nodes());
    MultipathState { computed_at: t, dests: dests.to_vec(), trees, dest_lookup }
}

/// A lazily-evaluated schedule of forwarding states at a fixed granularity
/// (paper default: 100 ms). States are computed on demand — storing every
/// state of a constellation-scale run would cost gigabytes.
pub struct ForwardingSchedule<'a> {
    constellation: &'a Constellation,
    dests: Vec<NodeId>,
    /// Recomputation interval.
    pub step: SimDuration,
}

impl<'a> ForwardingSchedule<'a> {
    /// Create a schedule towards `dests` at granularity `step`.
    pub fn new(constellation: &'a Constellation, dests: Vec<NodeId>, step: SimDuration) -> Self {
        assert!(!step.is_zero(), "time-step must be positive");
        ForwardingSchedule { constellation, dests, step }
    }

    /// The step index in force at time `t`.
    pub fn step_index(&self, t: SimTime) -> u64 {
        SimDuration::from_nanos(t.nanos()) / self.step
    }

    /// The instant at which step `k` takes effect.
    pub fn step_time(&self, k: u64) -> SimTime {
        SimTime::ZERO + self.step * k
    }

    /// Compute the state for step `k`.
    pub fn state_for_step(&self, k: u64) -> ForwardingState {
        compute_forwarding_state(self.constellation, self.step_time(k), &self.dests)
    }

    /// Compute the state in force at an arbitrary time `t`.
    pub fn state_at(&self, t: SimTime) -> ForwardingState {
        self.state_for_step(self.step_index(t))
    }

    /// The destinations this schedule routes towards.
    pub fn dests(&self) -> &[NodeId] {
        &self.dests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;

    fn constellation() -> Constellation {
        Constellation::build(
            "fwd",
            vec![ShellSpec::new("A", 550.0, 10, 10, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 5.0, 5.0), GroundStation::new("b", -10.0, 140.0)],
            GslConfig::new(10.0),
        )
    }

    #[test]
    fn next_hop_walk_reaches_destination() {
        let c = constellation();
        let dests = vec![c.gs_node(0), c.gs_node(1)];
        let st = compute_forwarding_state(&c, SimTime::ZERO, &dests);
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            cur = st.next_hop(cur, dst).expect("reachable");
            hops += 1;
            assert!(hops <= c.num_nodes(), "cycle");
        }
        assert!(hops >= 2, "GS→GS must traverse at least one satellite");
    }

    #[test]
    fn path_matches_next_hop_walk() {
        let c = constellation();
        let dests = vec![c.gs_node(1)];
        let st = compute_forwarding_state(&c, SimTime::from_secs(42), &dests);
        let path = st.path(c.gs_node(0), c.gs_node(1)).unwrap();
        assert_eq!(path.first(), Some(&c.gs_node(0)));
        assert_eq!(path.last(), Some(&c.gs_node(1)));
        for w in path.windows(2) {
            assert_eq!(st.next_hop(w[0], c.gs_node(1)), Some(w[1]));
        }
    }

    #[test]
    fn unknown_destination_returns_none() {
        let c = constellation();
        let st = compute_forwarding_state(&c, SimTime::ZERO, &[c.gs_node(0)]);
        assert_eq!(st.next_hop(c.gs_node(1), c.gs_node(1)), None);
        assert_eq!(st.distance(NodeId(0), c.gs_node(1)), None);
    }

    #[test]
    fn try_lookups_name_the_unreachable_pair() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let st = compute_forwarding_state(&c, SimTime::ZERO, &[src]);
        // dst is not a destination of this state: every try_* lookup
        // reports the pair instead of panicking.
        let err = st.try_next_hop(src, dst).unwrap_err();
        assert_eq!(err, Unreachable { src, dst });
        assert_eq!(st.try_distance(src, dst).unwrap_err(), Unreachable { src, dst });
        assert_eq!(st.try_path(src, dst).unwrap_err(), Unreachable { src, dst });
        assert!(err.to_string().contains(&format!("{}", src.0)));
        // A reachable pair goes through the Ok arm.
        let st = compute_forwarding_state(&c, SimTime::ZERO, &[dst]);
        assert!(st.try_next_hop(src, dst).is_ok());
        assert_eq!(st.try_path(src, dst).unwrap().last(), Some(&dst));
    }

    #[test]
    fn weather_partition_is_a_typed_unreachable() {
        use hypatia_fault::{FaultSchedule, FaultSpec, FaultState, OutageWindow};
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        // Weather takes out every GSL of the destination's ground station.
        let spec = FaultSpec {
            gsl_weather: vec![OutageWindow { target: 1, from_s: 0.0, until_s: 60.0 }],
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(120));
        let dark = FaultState::at(&sched, SimTime::from_secs(10));
        let st = compute_forwarding_state_masked(&c, SimTime::from_secs(10), &[dst], Some(&dark));
        assert_eq!(st.try_next_hop(src, dst), Err(Unreachable { src, dst }));
        // Once the sky clears, the same pair routes again.
        let clear = FaultState::at(&sched, SimTime::from_secs(90));
        let st = compute_forwarding_state_masked(&c, SimTime::from_secs(90), &[dst], Some(&clear));
        assert!(st.try_next_hop(src, dst).is_ok());
    }

    #[test]
    fn masked_forwarding_routes_around_a_failed_satellite() {
        use hypatia_fault::{FaultSchedule, FaultSpec, FaultState, OutageWindow};
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let nominal = compute_forwarding_state(&c, SimTime::ZERO, &[dst]);
        let path = nominal.path(src, dst).expect("nominal route exists");
        // Fail a mid-path transit satellite (the endpoints' only GSL
        // satellites could partition the pair, which is a different test).
        let victim = path[path.len() / 2].0;
        assert!(c.is_satellite(path[path.len() / 2]));
        let spec = FaultSpec {
            sat_outages: vec![OutageWindow { target: victim, from_s: 0.0, until_s: 60.0 }],
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(60));
        let state = FaultState::at(&sched, SimTime::ZERO);
        let masked = compute_forwarding_state_masked(&c, SimTime::ZERO, &[dst], Some(&state));
        let rerouted = masked.try_path(src, dst).expect("a 10x10 grid survives one failure");
        assert!(
            rerouted.iter().all(|&n| n.0 != victim),
            "rerouted path {rerouted:?} still uses failed satellite {victim}"
        );
        let d_nominal = nominal.distance(src, dst).unwrap();
        let d_masked = masked.distance(src, dst).unwrap();
        assert!(d_masked >= d_nominal, "detour cannot be shorter than the shortest path");
    }

    #[test]
    fn schedule_step_indexing() {
        let c = constellation();
        let sched = ForwardingSchedule::new(&c, vec![c.gs_node(0)], SimDuration::from_millis(100));
        assert_eq!(sched.step_index(SimTime::ZERO), 0);
        assert_eq!(sched.step_index(SimTime::from_millis(99)), 0);
        assert_eq!(sched.step_index(SimTime::from_millis(100)), 1);
        assert_eq!(sched.step_index(SimTime::from_millis(250)), 2);
        assert_eq!(sched.step_time(2), SimTime::from_millis(200));
    }

    #[test]
    fn schedule_state_at_matches_step_state() {
        let c = constellation();
        let dests = vec![c.gs_node(0), c.gs_node(1)];
        let sched = ForwardingSchedule::new(&c, dests, SimDuration::from_millis(100));
        let a = sched.state_at(SimTime::from_millis(150));
        let b = sched.state_for_step(1);
        assert_eq!(a.computed_at, b.computed_at);
        // Compare a few entries.
        for node in 0..c.num_nodes() as u32 {
            assert_eq!(
                a.next_hop(NodeId(node), c.gs_node(1)),
                b.next_hop(NodeId(node), c.gs_node(1))
            );
        }
    }

    /// Regression: in an ISL constellation, ground stations are endpoints —
    /// a third GS between two endpoints must never appear as a relay, even
    /// when bouncing through it would be geometrically shorter.
    #[test]
    fn ground_stations_never_relay_in_isl_constellations() {
        use hypatia_constellation::presets;
        let c = presets::starlink_s1(vec![
            GroundStation::new("Paris", 48.8566, 2.3522),
            GroundStation::new("Luanda", -8.8390, 13.2894),
            GroundStation::new("Lagos", 6.5244, 3.3792), // right on the route
        ]);
        assert!(!c.gs_relay);
        for secs in [0u64, 60, 120] {
            let st = compute_forwarding_state(&c, SimTime::from_secs(secs), &[c.gs_node(1)]);
            if let Some(path) = st.path(c.gs_node(0), c.gs_node(1)) {
                for &node in &path[1..path.len() - 1] {
                    assert!(c.is_satellite(node), "GS {node} used as relay at t={secs}: {path:?}");
                }
            }
        }
    }

    /// Bent-pipe constellations *do* relay through ground stations.
    #[test]
    fn bent_pipe_constellations_allow_gs_relay() {
        use hypatia_constellation::presets;
        let c = presets::kuiper_k1_bent_pipe(vec![
            GroundStation::new("Paris", 48.8566, 2.3522),
            GroundStation::new("Moscow", 55.7558, 37.6173),
            GroundStation::new("relay", 52.0, 20.0),
        ]);
        assert!(c.gs_relay);
        let st = compute_forwarding_state(&c, SimTime::ZERO, &[c.gs_node(1)]);
        let path = st.path(c.gs_node(0), c.gs_node(1)).expect("bent-pipe path");
        let interior_gses = path[1..path.len() - 1].iter().filter(|&&n| !c.is_satellite(n)).count();
        assert!(interior_gses >= 1, "expected a GS relay in {path:?}");
    }

    #[test]
    fn distance_is_monotone_along_path() {
        let c = constellation();
        let dst = c.gs_node(1);
        let st = compute_forwarding_state(&c, SimTime::ZERO, &[dst]);
        if let Some(path) = st.path(c.gs_node(0), dst) {
            let mut last = SimDuration::MAX;
            for node in path {
                let d = st.distance(node, dst).unwrap();
                assert!(d < last, "distance must strictly decrease towards dst");
                last = d;
            }
        }
    }
}
