//! Loop-free multipath forwarding (downhill alternates).
//!
//! The paper's §5.4/§6 takeaway is that single shortest-path routing
//! concentrates traffic ("there will be substantial value in using
//! non-shortest path and multi-path routing across such busy regions").
//! This module computes, per node and destination, the set of *downhill
//! alternates*: neighbours strictly closer to the destination whose total
//! detour stays within a stretch bound. Forwarding over any mix of
//! downhill alternates is loop-free by construction — every hop strictly
//! decreases the remaining distance — so flows can be spread (e.g. by
//! flow hash) without any inter-node coordination.

use crate::dijkstra::{shortest_path_tree_into, DijkstraScratch, SpTree, UNREACHABLE};
use crate::graph::DelayGraph;

/// Per-destination alternate sets layered over a shortest-path tree.
#[derive(Debug, Clone)]
pub struct MultipathTree {
    /// The underlying shortest-path tree.
    pub tree: SpTree,
    /// `alternates[v]`: neighbours of `v` that are strictly closer to the
    /// destination, with `w(v,n) + dist(n) ≤ stretch · dist(v)`. Sorted by
    /// resulting path delay (the primary next hop first). Empty when
    /// unreachable or `v` is the destination.
    pub alternates: Vec<Vec<u32>>,
    /// The stretch bound used.
    pub stretch: f64,
}

/// Compute downhill alternates towards `dst` with the given `stretch`
/// (≥ 1.0; 1.0 admits only exact ties with the shortest path).
pub fn multipath_tree(graph: &DelayGraph, dst: u32, stretch: f64) -> MultipathTree {
    multipath_tree_with(graph, dst, stretch, &mut DijkstraScratch::new())
}

/// As [`multipath_tree`], reusing the caller's Dijkstra scratch — the
/// per-destination loop of a multipath forwarding state shares one heap.
pub fn multipath_tree_with(
    graph: &DelayGraph,
    dst: u32,
    stretch: f64,
    scratch: &mut DijkstraScratch,
) -> MultipathTree {
    assert!(stretch >= 1.0, "stretch must be ≥ 1.0: {stretch}");
    let mut tree = SpTree::empty();
    shortest_path_tree_into(graph, dst, scratch, &mut tree);
    let n = graph.num_nodes();
    let mut alternates: Vec<Vec<u32>> = vec![Vec::new(); n];

    for (v, slot) in alternates.iter_mut().enumerate() {
        let dv = tree.dist_ns[v];
        if dv == UNREACHABLE || v as u32 == dst {
            continue;
        }
        let budget = (dv as f64 * stretch).floor() as u64;
        let mut cands: Vec<(u64, u32)> = Vec::new();
        for e in graph.edges(v) {
            let dn = tree.dist_ns[e.to as usize];
            if dn == UNREACHABLE {
                continue;
            }
            // Downhill: the neighbour must be strictly closer (loop
            // freedom); the path through it must respect the stretch.
            if dn < dv && e.delay_ns + dn <= budget {
                // A non-transit neighbour (GS endpoint) can only be the
                // destination itself, which the dn < dv check admits.
                if e.to == dst || graph.may_transit(e.to as usize) {
                    cands.push((e.delay_ns + dn, e.to));
                }
            }
        }
        cands.sort_unstable();
        *slot = cands.into_iter().map(|(_, to)| to).collect();
    }

    MultipathTree { tree, alternates, stretch }
}

impl MultipathTree {
    /// The alternates of `node` (primary next hop first).
    pub fn alternates(&self, node: u32) -> &[u32] {
        &self.alternates[node as usize]
    }

    /// Pick an alternate for a flow identified by `flow_hash` (stable
    /// per-flow choice avoids intra-flow reordering). Falls back to the
    /// tree's next hop when no alternate qualifies.
    pub fn pick(&self, node: u32, flow_hash: u64) -> Option<u32> {
        let alts = self.alternates(node);
        if alts.is_empty() {
            return self.tree.next_hop[node as usize];
        }
        Some(alts[(flow_hash % alts.len() as u64) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_constellation::Constellation;
    use hypatia_util::SimTime;

    fn setup() -> (Constellation, DelayGraph, u32, u32) {
        let c = Constellation::build(
            "mp",
            vec![ShellSpec::new("A", 550.0, 10, 10, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 5.0, 5.0), GroundStation::new("b", -15.0, 100.0)],
            GslConfig::new(10.0),
        );
        let g = DelayGraph::snapshot(&c, SimTime::ZERO);
        let (src, dst) = (c.gs_node(0).0, c.gs_node(1).0);
        (c, g, src, dst)
    }

    #[test]
    fn primary_next_hop_is_always_an_alternate() {
        let (_, g, _, dst) = setup();
        let mp = multipath_tree(&g, dst, 1.3);
        for v in 0..g.num_nodes() as u32 {
            if let Some(primary) = mp.tree.next_hop[v as usize] {
                if v == dst {
                    continue;
                }
                assert!(
                    mp.alternates(v).contains(&primary),
                    "node {v}: primary {primary} missing from {:?}",
                    mp.alternates(v)
                );
                // And it is the first (cheapest) entry.
                assert_eq!(mp.alternates(v)[0], primary);
            }
        }
    }

    #[test]
    fn alternates_strictly_decrease_distance() {
        let (_, g, _, dst) = setup();
        let mp = multipath_tree(&g, dst, 1.5);
        for v in 0..g.num_nodes() {
            for &a in mp.alternates(v as u32) {
                assert!(
                    mp.tree.dist_ns[a as usize] < mp.tree.dist_ns[v],
                    "alternate {a} of {v} not downhill"
                );
            }
        }
    }

    #[test]
    fn any_alternate_walk_terminates_within_stretch() {
        // Follow the *worst* alternate at every hop: the walk must reach
        // dst (loop-freedom) and its total delay must respect the per-hop
        // budget composition.
        let (_, g, src, dst) = setup();
        let stretch = 1.25;
        let mp = multipath_tree(&g, dst, stretch);
        if mp.tree.dist_ns[src as usize] == UNREACHABLE {
            return;
        }
        let mut cur = src;
        let mut total = 0u64;
        let mut hops = 0;
        while cur != dst {
            let alts = mp.alternates(cur);
            assert!(!alts.is_empty(), "stuck at {cur}");
            let worst = *alts.last().unwrap();
            total += g.edge_delay(cur as usize, worst as usize).unwrap().nanos();
            cur = worst;
            hops += 1;
            assert!(hops <= g.num_nodes(), "loop detected");
        }
        // Downhill + stretch at every hop bounds the whole walk by
        // stretch × shortest.
        let shortest = mp.tree.dist_ns[src as usize];
        assert!(
            total as f64 <= shortest as f64 * stretch + 1.0,
            "walk {total} vs bound {}",
            shortest as f64 * stretch
        );
    }

    #[test]
    fn stretch_one_yields_only_shortest_paths() {
        let (_, g, _, dst) = setup();
        let mp = multipath_tree(&g, dst, 1.0);
        for v in 0..g.num_nodes() {
            for &a in mp.alternates(v as u32) {
                let through =
                    g.edge_delay(v, a as usize).unwrap().nanos() + mp.tree.dist_ns[a as usize];
                assert_eq!(through, mp.tree.dist_ns[v], "non-shortest alternate at stretch 1");
            }
        }
    }

    #[test]
    fn larger_stretch_offers_at_least_as_many_alternates() {
        let (_, g, _, dst) = setup();
        let tight = multipath_tree(&g, dst, 1.05);
        let loose = multipath_tree(&g, dst, 1.5);
        let count = |mp: &MultipathTree| -> usize {
            (0..g.num_nodes()).map(|v| mp.alternates(v as u32).len()).sum()
        };
        assert!(count(&loose) >= count(&tight));
        assert!(count(&loose) > count(&tight), "stretch 1.5 should unlock alternates");
    }

    #[test]
    fn pick_is_flow_stable_and_falls_back() {
        let (_, g, src, dst) = setup();
        let mp = multipath_tree(&g, dst, 1.3);
        let a = mp.pick(src, 12345);
        let b = mp.pick(src, 12345);
        assert_eq!(a, b, "same flow must pick the same alternate");
        assert!(a.is_some());
        // dst itself has no alternates and no next hop.
        assert_eq!(mp.pick(dst, 1), None);
    }

    #[test]
    fn ground_stations_are_not_alternates() {
        let (c, g, _, dst) = setup();
        let mp = multipath_tree(&g, dst, 2.0);
        for v in 0..g.num_nodes() {
            for &a in mp.alternates(v as u32) {
                assert!(
                    a == dst || c.is_satellite(hypatia_constellation::NodeId(a)),
                    "GS {a} offered as transit alternate"
                );
            }
        }
    }
}
