//! Floyd–Warshall all-pairs shortest paths — the paper's algorithm.
//!
//! Hypatia's networkx module computes forwarding state with Floyd–Warshall.
//! We keep it (a) as a validation oracle for the Dijkstra trees used at
//! scale, and (b) for small topologies where its simplicity wins. O(n³)
//! time and O(n²) memory: fine for hundreds of nodes, not for thousands.

use crate::dijkstra::UNREACHABLE;
use crate::graph::DelayGraph;

/// All-pairs shortest paths with next-hop reconstruction.
#[derive(Debug, Clone)]
pub struct AllPairs {
    n: usize,
    /// Row-major `dist[u*n + v]`, ns; [`UNREACHABLE`] when disconnected.
    dist_ns: Vec<u64>,
    /// Row-major `next[u*n + v]`: u's next hop towards v, `u32::MAX` = none.
    next: Vec<u32>,
}

const NO_HOP: u32 = u32::MAX;

/// Run Floyd–Warshall over a snapshot graph.
pub fn floyd_warshall(graph: &DelayGraph) -> AllPairs {
    let n = graph.num_nodes();
    let mut dist = vec![UNREACHABLE; n * n];
    let mut next = vec![NO_HOP; n * n];

    for u in 0..n {
        dist[u * n + u] = 0;
        for e in graph.edges(u) {
            let v = e.to as usize;
            // Parallel edges: keep the cheaper one.
            if e.delay_ns < dist[u * n + v] {
                dist[u * n + v] = e.delay_ns;
                next[u * n + v] = e.to;
            }
        }
    }

    for k in 0..n {
        // A node that may not transit can never be the interior pivot of a
        // path (ground stations in ISL constellations are endpoints only).
        if !graph.may_transit(k) {
            continue;
        }
        for u in 0..n {
            let duk = dist[u * n + k];
            if duk == UNREACHABLE {
                continue;
            }
            for v in 0..n {
                let dkv = dist[k * n + v];
                if dkv == UNREACHABLE {
                    continue;
                }
                let through = duk + dkv;
                let cur = dist[u * n + v];
                // Strict improvement, or deterministic tie-break towards
                // the smaller first hop (matching the Dijkstra trees).
                if through < cur || (through == cur && next[u * n + k] < next[u * n + v]) {
                    dist[u * n + v] = through;
                    next[u * n + v] = next[u * n + k];
                }
            }
        }
    }

    AllPairs { n, dist_ns: dist, next }
}

impl AllPairs {
    /// Shortest delay from `u` to `v`, ns.
    pub fn distance_ns(&self, u: u32, v: u32) -> Option<u64> {
        let d = self.dist_ns[u as usize * self.n + v as usize];
        (d != UNREACHABLE).then_some(d)
    }

    /// `u`'s next hop towards `v`.
    pub fn next_hop(&self, u: u32, v: u32) -> Option<u32> {
        if u == v {
            return None;
        }
        let h = self.next[u as usize * self.n + v as usize];
        (h != NO_HOP).then_some(h)
    }

    /// Reconstruct the full path from `u` to `v` (inclusive of endpoints).
    pub fn path(&self, u: u32, v: u32) -> Option<Vec<u32>> {
        if u == v {
            return Some(vec![u]);
        }
        self.distance_ns(u, v)?;
        let mut path = vec![u];
        let mut cur = u;
        while cur != v {
            cur = self.next_hop(cur, v)?;
            path.push(cur);
            assert!(path.len() <= self.n, "next-hop cycle");
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_path_tree;
    use crate::graph::DelayGraph;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_constellation::Constellation;
    use hypatia_util::SimTime;
    use proptest::prelude::*;

    fn build(orbits: u32, per: u32, t_secs: u64) -> (Constellation, DelayGraph) {
        let c = Constellation::build(
            "fw",
            vec![ShellSpec::new("A", 550.0, orbits, per, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 0.0, 0.0), GroundStation::new("b", 30.0, 100.0)],
            GslConfig::new(25.0),
        );
        let g = DelayGraph::snapshot(&c, SimTime::from_secs(t_secs));
        (c, g)
    }

    #[test]
    fn self_distance_zero() {
        let (_, g) = build(3, 4, 0);
        let ap = floyd_warshall(&g);
        for u in 0..g.num_nodes() as u32 {
            assert_eq!(ap.distance_ns(u, u), Some(0));
            assert_eq!(ap.next_hop(u, u), None);
        }
    }

    #[test]
    fn distances_symmetric() {
        let (_, g) = build(4, 5, 13);
        let ap = floyd_warshall(&g);
        for u in 0..g.num_nodes() as u32 {
            for v in 0..g.num_nodes() as u32 {
                assert_eq!(ap.distance_ns(u, v), ap.distance_ns(v, u), "{u} {v}");
            }
        }
    }

    #[test]
    fn path_reconstruction_sums_to_distance() {
        let (_, g) = build(4, 4, 5);
        let ap = floyd_warshall(&g);
        for u in 0..g.num_nodes() as u32 {
            for v in 0..g.num_nodes() as u32 {
                if let Some(path) = ap.path(u, v) {
                    let mut sum = 0u64;
                    for w in path.windows(2) {
                        sum += g.edge_delay(w[0] as usize, w[1] as usize).unwrap().nanos();
                    }
                    assert_eq!(Some(sum), ap.distance_ns(u, v));
                }
            }
        }
    }

    /// The crucial equivalence: Floyd–Warshall ≡ per-destination Dijkstra.
    /// This validates replacing the paper's algorithm at scale.
    #[test]
    fn agrees_with_dijkstra() {
        for t in [0u64, 30, 120] {
            let (_, g) = build(5, 6, t);
            let ap = floyd_warshall(&g);
            for dst in 0..g.num_nodes() as u32 {
                let tree = shortest_path_tree(&g, dst);
                for src in 0..g.num_nodes() as u32 {
                    assert_eq!(
                        tree.distance_ns(src),
                        ap.distance_ns(src, dst),
                        "src {src} dst {dst} t {t}"
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Random shell geometries: distances agree between both algorithms.
        #[test]
        fn dijkstra_equivalence_random(orbits in 2u32..6, per in 3u32..7,
                                       t in 0u64..5000) {
            let (c, g) = build(orbits, per, t);
            let ap = floyd_warshall(&g);
            for gs in 0..c.num_ground_stations() {
                let dst = c.gs_node(gs).0;
                let tree = shortest_path_tree(&g, dst);
                for src in 0..g.num_nodes() as u32 {
                    prop_assert_eq!(tree.distance_ns(src), ap.distance_ns(src, dst));
                }
            }
        }
    }
}
