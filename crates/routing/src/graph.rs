//! The delay-weighted snapshot graph.
//!
//! At a given instant the network is a graph whose vertices are satellites
//! and ground stations and whose edges are the static ISLs plus the GSLs
//! currently above the minimum elevation angle. Edge weights are one-way
//! propagation delays in integer nanoseconds (distance / c), which makes
//! shortest-delay routing identical to the paper's networkx computation.

use hypatia_constellation::gsl::usable_satellites;
use hypatia_constellation::{Constellation, NodeId};
use hypatia_fault::FaultState;
use hypatia_orbit::geodesy::propagation_delay_km;
use hypatia_util::{SimDuration, SimTime, Vec3};

/// A directed edge with a propagation-delay weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Target node index.
    pub to: u32,
    /// One-way propagation delay, ns.
    pub delay_ns: u64,
}

/// A snapshot graph in compressed-sparse-row form: one flat edge array
/// plus per-node offsets. A single allocation-free layout makes snapshot
/// rebuilds cheap (see [`SnapshotBuffers`]) and keeps Dijkstra's inner
/// loop on contiguous memory.
#[derive(Debug, Clone)]
pub struct DelayGraph {
    /// `offsets[v]..offsets[v+1]` indexes `edges` for node `v`.
    offsets: Vec<u32>,
    /// All directed edges, grouped by source node.
    edges: Vec<Edge>,
    /// `transit[v]`: may `v` appear as an *interior* node of a path?
    /// Satellites always may; ground stations only in bent-pipe
    /// constellations (`Constellation::gs_relay`). Endpoints are exempt.
    transit: Vec<bool>,
    /// Positions used to build the snapshot (satellites first), for reuse.
    pub positions: Vec<Vec3>,
}

/// Reusable scratch for building [`DelayGraph`] snapshots without
/// per-step allocation: the position buffer, the unsorted edge staging
/// area, and the CSR fill cursors all persist across calls.
#[derive(Debug, Default)]
pub struct SnapshotBuffers {
    /// Staging: `(source, edge)` pairs before the counting sort.
    pairs: Vec<(u32, Edge)>,
    /// Per-node write cursor during the counting sort.
    cursor: Vec<u32>,
    graph: DelayGraph,
}

impl SnapshotBuffers {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the snapshot of `constellation` at `t`, reusing every buffer
    /// from the previous call. The returned graph is identical to
    /// [`DelayGraph::snapshot`]'s.
    pub fn snapshot(&mut self, constellation: &Constellation, t: SimTime) -> &DelayGraph {
        self.snapshot_masked(constellation, t, None)
    }

    /// As [`Self::snapshot`], but omitting every edge that `faults` marks
    /// down: ISLs whose link (or either endpoint satellite) has failed,
    /// and GSLs to failed satellites or weather-attenuated ground
    /// stations. With `faults == None` (or an all-up state) the graph is
    /// identical to the unmasked snapshot. The fault state must have been
    /// compiled for this constellation.
    pub fn snapshot_masked(
        &mut self,
        constellation: &Constellation,
        t: SimTime,
        faults: Option<&FaultState>,
    ) -> &DelayGraph {
        constellation.positions_at_into(t, &mut self.graph.positions);
        self.rebuild(constellation, t, faults);
        &self.graph
    }

    /// The graph built by the last [`Self::snapshot`] call.
    pub fn graph(&self) -> &DelayGraph {
        &self.graph
    }

    /// Consume the buffers, keeping the built graph.
    pub fn into_graph(self) -> DelayGraph {
        self.graph
    }

    /// Rebuild `self.graph`'s edges from `self.graph.positions` (already
    /// filled for time `t`), skipping edges masked by `faults`.
    fn rebuild(&mut self, constellation: &Constellation, t: SimTime, faults: Option<&FaultState>) {
        let g = &mut self.graph;
        let n = constellation.num_nodes();
        assert_eq!(g.positions.len(), n, "position snapshot size");
        let n_sats = constellation.num_satellites();
        let positions = &g.positions;

        // Stage every directed edge, then counting-sort by source node.
        // The staging order (ISLs first, then GSLs in ground-station
        // order) matches the old nested-Vec construction, and the sort is
        // stable, so per-node adjacency order is unchanged.
        self.pairs.clear();
        for &(a, b) in &constellation.isls {
            if let Some(f) = faults {
                if !f.isl_link_up(a, b) {
                    continue;
                }
            }
            let d = positions[a as usize].distance(positions[b as usize]);
            let delay = propagation_delay_km(d).nanos();
            self.pairs.push((a, Edge { to: b, delay_ns: delay }));
            self.pairs.push((b, Edge { to: a, delay_ns: delay }));
        }
        for (gs_idx, _gs) in constellation.ground_stations.iter().enumerate() {
            if let Some(f) = faults {
                if f.gs_weather_down(gs_idx) {
                    continue;
                }
            }
            let gs_node = constellation.gs_node(gs_idx).0;
            let gs_pos = positions[n_sats + gs_idx];
            for vis in usable_satellites(constellation, gs_pos, &positions[..n_sats], t) {
                if let Some(f) = faults {
                    if f.satellite_down(vis.sat_idx) {
                        continue;
                    }
                }
                let delay = propagation_delay_km(vis.range_km).nanos();
                self.pairs.push((gs_node, Edge { to: vis.sat_idx as u32, delay_ns: delay }));
                self.pairs.push((vis.sat_idx as u32, Edge { to: gs_node, delay_ns: delay }));
            }
        }

        g.offsets.clear();
        g.offsets.resize(n + 1, 0);
        for &(src, _) in &self.pairs {
            g.offsets[src as usize + 1] += 1;
        }
        for v in 0..n {
            g.offsets[v + 1] += g.offsets[v];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&g.offsets[..n]);
        g.edges.clear();
        g.edges.resize(self.pairs.len(), Edge { to: 0, delay_ns: 0 });
        for &(src, edge) in &self.pairs {
            let at = self.cursor[src as usize];
            g.edges[at as usize] = edge;
            self.cursor[src as usize] = at + 1;
        }

        g.transit.clear();
        g.transit.extend(
            (0..n).map(|i| constellation.may_transit(hypatia_constellation::NodeId(i as u32))),
        );
    }
}

impl Default for DelayGraph {
    fn default() -> Self {
        DelayGraph {
            offsets: vec![0],
            edges: Vec::new(),
            transit: Vec::new(),
            positions: Vec::new(),
        }
    }
}

impl DelayGraph {
    /// Build the snapshot graph of `constellation` at time `t`.
    pub fn snapshot(constellation: &Constellation, t: SimTime) -> DelayGraph {
        let mut buffers = SnapshotBuffers::new();
        buffers.snapshot(constellation, t);
        buffers.into_graph()
    }

    /// Build the snapshot graph at `t` with faulted components masked
    /// out (see [`SnapshotBuffers::snapshot_masked`]).
    pub fn snapshot_masked(
        constellation: &Constellation,
        t: SimTime,
        faults: Option<&FaultState>,
    ) -> DelayGraph {
        let mut buffers = SnapshotBuffers::new();
        buffers.snapshot_masked(constellation, t, faults);
        buffers.into_graph()
    }

    /// Build from an already-computed position snapshot (satellites first,
    /// then ground stations, as produced by `Constellation::positions_at`).
    pub fn from_positions(
        constellation: &Constellation,
        t: SimTime,
        positions: Vec<Vec3>,
    ) -> DelayGraph {
        let mut buffers = SnapshotBuffers::new();
        buffers.graph.positions = positions;
        buffers.rebuild(constellation, t, None);
        buffers.into_graph()
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Outgoing edges of `node`.
    #[inline]
    pub fn edges(&self, node: usize) -> &[Edge] {
        &self.edges[self.offsets[node] as usize..self.offsets[node + 1] as usize]
    }

    /// May `node` appear as an interior (transit) node of a path?
    #[inline]
    pub fn may_transit(&self, node: usize) -> bool {
        self.transit[node]
    }

    /// The delay of the direct edge `a → b`, if one exists.
    pub fn edge_delay(&self, a: usize, b: usize) -> Option<SimDuration> {
        self.edges(a)
            .iter()
            .find(|e| e.to as usize == b)
            .map(|e| SimDuration::from_nanos(e.delay_ns))
    }

    /// True if nodes `a` and `b` are directly linked.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.edges(a).iter().any(|e| e.to as usize == b)
    }

    /// The current one-way delay between two *linked* constellation nodes
    /// computed from live geometry at `t2` (possibly later than the snapshot
    /// instant). This is how the packet simulator keeps latencies continuous
    /// between forwarding updates.
    pub fn live_delay(
        constellation: &Constellation,
        a: NodeId,
        b: NodeId,
        t2: SimTime,
    ) -> SimDuration {
        propagation_delay_km(constellation.distance_km(a, b, t2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::presets;
    use hypatia_constellation::shell::ShellSpec;

    fn tiny() -> Constellation {
        Constellation::build(
            "tiny",
            vec![ShellSpec::new("A", 550.0, 3, 4, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("eq", 0.0, 0.0), GroundStation::new("mid", 40.0, 60.0)],
            GslConfig::new(25.0),
        )
    }

    #[test]
    fn graph_has_symmetric_edges() {
        let c = tiny();
        let g = DelayGraph::snapshot(&c, SimTime::ZERO);
        for u in 0..g.num_nodes() {
            for e in g.edges(u) {
                let back = g
                    .edges(e.to as usize)
                    .iter()
                    .find(|r| r.to as usize == u)
                    .expect("missing reverse edge");
                assert_eq!(back.delay_ns, e.delay_ns, "asymmetric delay {u}<->{}", e.to);
            }
        }
    }

    #[test]
    fn isl_edges_present_with_correct_delay() {
        let c = tiny();
        let t = SimTime::from_secs(10);
        let g = DelayGraph::snapshot(&c, t);
        let (a, b) = c.isls[0];
        let expect = propagation_delay_km(c.distance_km(NodeId(a), NodeId(b), t));
        assert_eq!(g.edge_delay(a as usize, b as usize), Some(expect));
    }

    #[test]
    fn gs_edges_only_to_visible_satellites() {
        let c = presets::kuiper_k1(vec![
            GroundStation::new("Singapore", 1.3521, 103.8198),
            GroundStation::new("NorthPole", 89.9, 0.0),
        ]);
        let g = DelayGraph::snapshot(&c, SimTime::ZERO);
        let sg = c.gs_node(0).index();
        let np = c.gs_node(1).index();
        assert!(!g.edges(sg).is_empty(), "Singapore should have GSLs");
        assert!(g.edges(np).is_empty(), "the pole must not reach K1");
        // GSL delay sanity: at 630 km altitude the one-way delay is
        // 2.1..4.2 ms-ish (range 630..1250 km).
        for e in g.edges(sg) {
            let ms = e.delay_ns as f64 / 1e6;
            assert!((2.0..5.0).contains(&ms), "GSL delay {ms} ms");
        }
    }

    #[test]
    fn num_edges_counts_both_directions() {
        let c = tiny();
        let g = DelayGraph::snapshot(&c, SimTime::ZERO);
        // 12 sats in +Grid → 24 undirected ISLs → 48 directed, plus GSLs.
        assert!(g.num_edges() >= 48);
        assert_eq!(g.num_edges() % 2, 0);
    }

    #[test]
    fn live_delay_tracks_motion() {
        let c = tiny();
        let (a, b) = c.isls[0];
        let d0 = DelayGraph::live_delay(&c, NodeId(a), NodeId(b), SimTime::ZERO);
        let d1 = DelayGraph::live_delay(&c, NodeId(a), NodeId(b), SimTime::from_secs(30));
        // Intra-orbit neighbours keep constant distance; inter-orbit vary.
        // Either way the call must return a positive, finite delay.
        assert!(d0 > SimDuration::ZERO && d1 > SimDuration::ZERO);
    }

    #[test]
    fn fault_mask_removes_exactly_the_failed_edges() {
        use hypatia_fault::{FaultSchedule, FaultSpec, FaultState, LinkCut, OutageWindow};
        let c = tiny();
        let t = SimTime::from_secs(5);
        let (cut_a, cut_b) = c.isls[0];
        let down_sat = 7u32;
        let spec = FaultSpec {
            sat_outages: vec![OutageWindow { target: down_sat, from_s: 0.0, until_s: 30.0 }],
            isl_cuts: vec![LinkCut { a: cut_a, b: cut_b, from_s: 0.0, until_s: 30.0 }],
            gsl_weather: vec![OutageWindow { target: 0, from_s: 0.0, until_s: 30.0 }],
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(60));
        let state = FaultState::at(&sched, t);

        let nominal = DelayGraph::snapshot(&c, t);
        let masked = DelayGraph::snapshot_masked(&c, t, Some(&state));
        assert!(masked.num_edges() < nominal.num_edges());
        // The cut ISL and every edge touching the failed satellite are gone.
        assert!(!masked.has_edge(cut_a as usize, cut_b as usize));
        assert!(masked.edges(down_sat as usize).is_empty());
        for u in 0..masked.num_nodes() {
            assert!(!masked.has_edge(u, down_sat as usize));
        }
        // Weather downs every GSL of ground station 0.
        assert!(masked.edges(c.gs_node(0).index()).is_empty());
        // After recovery the masked snapshot equals the nominal one.
        let later = FaultState::at(&sched, SimTime::from_secs(45));
        let recovered = DelayGraph::snapshot_masked(&c, t, Some(&later));
        assert_eq!(recovered.num_edges(), nominal.num_edges());
    }

    #[test]
    fn all_up_mask_is_identical_to_no_mask() {
        use hypatia_fault::{FaultSchedule, FaultSpec, FaultState};
        let c = tiny();
        let sched = FaultSchedule::compile(&FaultSpec::default(), &c, SimDuration::from_secs(10));
        let state = FaultState::new(&sched);
        let t = SimTime::from_secs(3);
        let nominal = DelayGraph::snapshot(&c, t);
        let masked = DelayGraph::snapshot_masked(&c, t, Some(&state));
        assert_eq!(nominal.num_edges(), masked.num_edges());
        for u in 0..nominal.num_nodes() {
            assert_eq!(nominal.edges(u), masked.edges(u), "adjacency of node {u}");
        }
    }

    #[test]
    fn edge_delays_change_over_time() {
        let c = tiny();
        let g0 = DelayGraph::snapshot(&c, SimTime::ZERO);
        let g1 = DelayGraph::snapshot(&c, SimTime::from_secs(60));
        // At least one ISL delay must differ (inter-orbit links vary as
        // satellites converge towards higher latitudes).
        let mut changed = false;
        for &(a, b) in &c.isls {
            let d0 = g0.edge_delay(a as usize, b as usize).unwrap();
            if let Some(d1) = g1.edge_delay(a as usize, b as usize) {
                if d0 != d1 {
                    changed = true;
                }
            }
        }
        assert!(changed, "no ISL delay changed over 60 s");
    }
}
