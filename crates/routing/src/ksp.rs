//! K-shortest paths (Yen's algorithm) — the substrate for the multi-path
//! routing and traffic-engineering work the paper calls for (§5.4:
//! "substantial value in using non-shortest path and multi-path routing
//! across such busy regions"; §7 lists multi-path routing as future work).
//!
//! Loopless paths, deterministic order (by delay, then lexicographic).

use crate::dijkstra::{shortest_path_tree_into, DijkstraScratch, SpTree};
use crate::graph::{DelayGraph, Edge};
use std::collections::BinaryHeap;

/// A path with its total one-way delay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedPath {
    /// Total delay, ns.
    pub delay_ns: u64,
    /// Node sequence (inclusive of both endpoints).
    pub nodes: Vec<u32>,
}

impl RankedPath {
    /// Hop count (edges).
    pub fn hops(&self) -> usize {
        self.nodes.len() - 1
    }
}

// Order candidates by (delay, nodes) for a deterministic K-set.
impl PartialOrd for RankedPath {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RankedPath {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.delay_ns, &self.nodes).cmp(&(other.delay_ns, &other.nodes))
    }
}

/// A graph view with edges/nodes masked out (Yen's spur computation).
struct MaskedGraph<'a> {
    inner: &'a DelayGraph,
    banned_edges: Vec<(u32, u32)>,
    banned_nodes: Vec<u32>,
}

/// Reusable working memory for the spur-path searches — one allocation
/// set for all of Yen's inner Dijkstra runs instead of one per spur.
#[derive(Default)]
struct SpurScratch {
    dist: Vec<u64>,
    prev: Vec<Option<u32>>,
    settled: Vec<bool>,
    heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
}

impl MaskedGraph<'_> {
    fn edges(&self, u: u32) -> impl Iterator<Item = Edge> + '_ {
        let node_banned = self.banned_nodes.contains(&u);
        self.inner
            .edges(u as usize)
            .iter()
            .filter(move |e| {
                !node_banned
                    && !self.banned_nodes.contains(&e.to)
                    && !self.banned_edges.contains(&(u, e.to))
            })
            .copied()
    }

    /// Dijkstra from `src` to `dst` on the masked graph.
    fn shortest(&self, src: u32, dst: u32, s: &mut SpurScratch) -> Option<RankedPath> {
        let n = self.inner.num_nodes();
        s.dist.clear();
        s.dist.resize(n, u64::MAX);
        s.prev.clear();
        s.prev.resize(n, None);
        s.settled.clear();
        s.settled.resize(n, false);
        s.heap.clear();
        s.dist[src as usize] = 0;
        s.heap.push(std::cmp::Reverse((0, src)));
        while let Some(std::cmp::Reverse((d, u))) = s.heap.pop() {
            if s.settled[u as usize] {
                continue;
            }
            s.settled[u as usize] = true;
            if u == dst {
                break;
            }
            // Non-transit nodes (GS endpoints) terminate paths; the search
            // origin (spur node) is exempt.
            if u != src && !self.inner.may_transit(u as usize) {
                continue;
            }
            for e in self.edges(u) {
                let v = e.to as usize;
                let nd = d + e.delay_ns;
                if nd < s.dist[v] || (nd == s.dist[v] && s.prev[v].is_some_and(|p| u < p)) {
                    s.dist[v] = nd;
                    s.prev[v] = Some(u);
                    s.heap.push(std::cmp::Reverse((nd, e.to)));
                }
            }
        }
        if s.dist[dst as usize] == u64::MAX {
            return None;
        }
        let mut nodes = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = s.prev[cur as usize].expect("path reconstruction");
            nodes.push(cur);
        }
        nodes.reverse();
        Some(RankedPath { delay_ns: s.dist[dst as usize], nodes })
    }
}

/// Yen's K shortest loopless paths from `src` to `dst`. Returns up to `k`
/// paths in ascending delay order (fewer when the graph has fewer).
pub fn k_shortest_paths(graph: &DelayGraph, src: u32, dst: u32, k: usize) -> Vec<RankedPath> {
    assert!(k >= 1, "k must be at least 1");
    let mut dijkstra = DijkstraScratch::default();
    let mut tree = SpTree::empty();
    shortest_path_tree_into(graph, dst, &mut dijkstra, &mut tree);
    let Some(first_nodes) = tree.path_from(src) else {
        return Vec::new();
    };
    let first =
        RankedPath { delay_ns: tree.distance_ns(src).expect("reachable"), nodes: first_nodes };

    let mut found = vec![first];
    // Min-heap of candidates (BinaryHeap is max; use Reverse).
    let mut candidates: BinaryHeap<std::cmp::Reverse<RankedPath>> = BinaryHeap::new();
    let mut spur_scratch = SpurScratch::default();

    for _ in 1..k {
        let last = found.last().expect("at least the shortest").clone();
        // Spur from every node of the previous path except the terminus.
        for i in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[i];
            let root = &last.nodes[..=i];

            // Ban the edges that would replicate already-found paths
            // sharing this root, and the root's interior nodes.
            let mut banned_edges = Vec::new();
            for p in &found {
                if p.nodes.len() > i && p.nodes[..=i] == *root {
                    if let Some(&next) = p.nodes.get(i + 1) {
                        banned_edges.push((spur_node, next));
                    }
                }
            }
            let banned_nodes: Vec<u32> = root[..i].to_vec();

            let masked = MaskedGraph { inner: graph, banned_edges, banned_nodes };
            if let Some(spur) = masked.shortest(spur_node, dst, &mut spur_scratch) {
                // Total = root delay + spur delay.
                let mut nodes = root[..i].to_vec();
                nodes.extend(&spur.nodes);
                let mut delay = spur.delay_ns;
                for w in root.windows(2) {
                    delay += graph
                        .edge_delay(w[0] as usize, w[1] as usize)
                        .expect("root edge exists")
                        .nanos();
                }
                let candidate = RankedPath { delay_ns: delay, nodes };
                if !found.contains(&candidate) {
                    candidates.push(std::cmp::Reverse(candidate));
                }
            }
        }
        // Next distinct best candidate.
        let mut next = None;
        while let Some(std::cmp::Reverse(c)) = candidates.pop() {
            if !found.contains(&c) {
                next = Some(c);
                break;
            }
        }
        match next {
            Some(c) => found.push(c),
            None => break,
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_constellation::Constellation;
    use hypatia_util::SimTime;

    fn setup() -> (Constellation, DelayGraph, u32, u32) {
        let c = Constellation::build(
            "ksp",
            vec![ShellSpec::new("A", 550.0, 10, 10, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 5.0, 5.0), GroundStation::new("b", -15.0, 100.0)],
            GslConfig::new(10.0),
        );
        let g = DelayGraph::snapshot(&c, SimTime::ZERO);
        let (src, dst) = (c.gs_node(0).0, c.gs_node(1).0);
        (c, g, src, dst)
    }

    #[test]
    fn first_path_is_the_shortest() {
        let (_, g, src, dst) = setup();
        let tree = crate::dijkstra::shortest_path_tree(&g, dst);
        let paths = k_shortest_paths(&g, src, dst, 1);
        assert_eq!(paths.len(), 1);
        assert_eq!(Some(paths[0].delay_ns), tree.distance_ns(src));
        assert_eq!(Some(paths[0].nodes.clone()), tree.path_from(src));
    }

    #[test]
    fn paths_are_sorted_and_distinct() {
        let (_, g, src, dst) = setup();
        let paths = k_shortest_paths(&g, src, dst, 6);
        assert!(paths.len() >= 3, "mesh should offer alternates, got {}", paths.len());
        for w in paths.windows(2) {
            assert!(w[0].delay_ns <= w[1].delay_ns, "not sorted");
            assert_ne!(w[0].nodes, w[1].nodes, "duplicate path");
        }
    }

    #[test]
    fn paths_are_loopless_and_valid() {
        let (_, g, src, dst) = setup();
        for p in k_shortest_paths(&g, src, dst, 5) {
            // No repeated nodes.
            let mut seen = std::collections::HashSet::new();
            for &n in &p.nodes {
                assert!(seen.insert(n), "loop at node {n} in {:?}", p.nodes);
            }
            // Every hop is an edge; delays sum correctly.
            let mut sum = 0;
            for w in p.nodes.windows(2) {
                sum += g
                    .edge_delay(w[0] as usize, w[1] as usize)
                    .expect("hop must be an edge")
                    .nanos();
            }
            assert_eq!(sum, p.delay_ns);
            assert_eq!(*p.nodes.first().unwrap(), src);
            assert_eq!(*p.nodes.last().unwrap(), dst);
        }
    }

    #[test]
    fn unreachable_returns_empty() {
        let c = Constellation::build(
            "kspx",
            vec![ShellSpec::new("A", 550.0, 4, 4, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 0.0, 0.0), GroundStation::new("pole", 89.0, 0.0)],
            GslConfig::new(25.0),
        );
        let g = DelayGraph::snapshot(&c, SimTime::ZERO);
        let paths = k_shortest_paths(&g, c.gs_node(0).0, c.gs_node(1).0, 3);
        assert!(paths.is_empty());
    }

    #[test]
    fn deterministic() {
        let (_, g, src, dst) = setup();
        let a = k_shortest_paths(&g, src, dst, 4);
        let b = k_shortest_paths(&g, src, dst, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn second_path_close_to_first_in_dense_mesh() {
        // +Grid offers near-equal-cost alternates; the 2nd path should be
        // within 50% of the 1st (the TE opportunity the paper points to).
        let (_, g, src, dst) = setup();
        let paths = k_shortest_paths(&g, src, dst, 2);
        assert_eq!(paths.len(), 2);
        assert!(
            (paths[1].delay_ns as f64) < paths[0].delay_ns as f64 * 1.5,
            "2nd path {} vs 1st {}",
            paths[1].delay_ns,
            paths[0].delay_ns
        );
    }
}
