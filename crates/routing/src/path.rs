//! Path extraction, RTT evaluation and change tracking over time.
//!
//! Implements the measurement machinery behind the paper's §4.1 and §5:
//! per-pair "computed" RTTs from snapshots, path-change counting ("if the
//! forwarding state computed in two successive time-steps shows any
//! different satellites composing the path, we count this as one path
//! change"), hop-count extremes and disconnection detection.

use crate::forwarding::ForwardingState;
use hypatia_constellation::{Constellation, NodeId};
use hypatia_orbit::geodesy::propagation_delay_km;
use hypatia_util::{SimDuration, SimTime};

/// Extract the current path from `src` to `dst` under `state` (inclusive of
/// both endpoints). `None` when disconnected.
pub fn extract_path(state: &ForwardingState, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    state.path(src, dst)
}

/// RTT of a held `path` evaluated against live geometry at time `t`:
/// twice the sum of the one-way propagation delays of its links. This is
/// how latencies stay continuous between forwarding-state updates.
pub fn path_rtt_at(constellation: &Constellation, path: &[NodeId], t: SimTime) -> SimDuration {
    assert!(path.len() >= 2, "path needs at least two nodes");
    let mut one_way = SimDuration::ZERO;
    for w in path.windows(2) {
        one_way += propagation_delay_km(constellation.distance_km(w[0], w[1], t));
    }
    one_way * 2
}

/// The satellite subsequence of a path (for the paper's change criterion).
pub fn satellites_of(constellation: &Constellation, path: &[NodeId]) -> Vec<NodeId> {
    path.iter().copied().filter(|&n| constellation.is_satellite(n)).collect()
}

/// One observation of a pair at one time-step.
#[derive(Debug, Clone)]
pub struct PairObservation {
    /// Snapshot instant.
    pub t: SimTime,
    /// Path (inclusive), or `None` when disconnected.
    pub path: Option<Vec<NodeId>>,
    /// Snapshot RTT (2 × shortest one-way delay), or `None` if disconnected.
    pub rtt: Option<SimDuration>,
}

/// Accumulates per-pair statistics across time-steps.
#[derive(Debug, Clone)]
pub struct PairTracker {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Number of path changes (different satellite sequences between two
    /// consecutive *connected* observations).
    pub path_changes: usize,
    /// Number of steps observed with no path.
    pub disconnected_steps: usize,
    /// Total steps observed.
    pub steps: usize,
    /// Minimum snapshot RTT seen.
    pub min_rtt: Option<SimDuration>,
    /// Maximum snapshot RTT seen.
    pub max_rtt: Option<SimDuration>,
    /// Minimum hop count (edges in the path) seen.
    pub min_hops: Option<usize>,
    /// Maximum hop count seen.
    pub max_hops: Option<usize>,
    /// Satellite sequence of the last connected observation.
    last_sats: Option<Vec<NodeId>>,
    /// Full series (kept only when `record_series` was requested).
    series: Option<Vec<PairObservation>>,
}

impl PairTracker {
    /// New tracker. With `record_series`, every observation is retained
    /// (needed for plotting Fig. 3-style time series; costly for all-pairs
    /// sweeps).
    pub fn new(src: NodeId, dst: NodeId, record_series: bool) -> Self {
        PairTracker {
            src,
            dst,
            path_changes: 0,
            disconnected_steps: 0,
            steps: 0,
            min_rtt: None,
            max_rtt: None,
            min_hops: None,
            max_hops: None,
            last_sats: None,
            series: record_series.then(Vec::new),
        }
    }

    /// Observe the pair under the forwarding state of one time-step.
    pub fn observe(&mut self, constellation: &Constellation, state: &ForwardingState) {
        let t = state.computed_at;
        let path = extract_path(state, self.src, self.dst);
        let rtt = state.distance(self.src, self.dst).map(|d| d * 2);
        self.steps += 1;

        match &path {
            Some(p) => {
                let hops = p.len() - 1;
                self.min_hops = Some(self.min_hops.map_or(hops, |m| m.min(hops)));
                self.max_hops = Some(self.max_hops.map_or(hops, |m| m.max(hops)));
                let sats = satellites_of(constellation, p);
                if let Some(prev) = &self.last_sats {
                    if *prev != sats {
                        self.path_changes += 1;
                    }
                }
                self.last_sats = Some(sats);
            }
            None => self.disconnected_steps += 1,
        }
        if let Some(r) = rtt {
            self.min_rtt = Some(self.min_rtt.map_or(r, |m| m.min(r)));
            self.max_rtt = Some(self.max_rtt.map_or(r, |m| m.max(r)));
        }
        if let Some(series) = &mut self.series {
            series.push(PairObservation { t, path, rtt });
        }
    }

    /// The recorded series (empty slice if recording was off).
    pub fn series(&self) -> &[PairObservation] {
        self.series.as_deref().unwrap_or(&[])
    }

    /// `max RTT / min RTT`, if both were observed.
    pub fn rtt_ratio(&self) -> Option<f64> {
        match (self.max_rtt, self.min_rtt) {
            (Some(max), Some(min)) if !min.is_zero() => Some(max.secs_f64() / min.secs_f64()),
            _ => None,
        }
    }

    /// `max hops - min hops`, if observed.
    pub fn hop_count_delta(&self) -> Option<usize> {
        Some(self.max_hops? - self.min_hops?)
    }

    /// `max hops / min hops`, if observed.
    pub fn hop_count_ratio(&self) -> Option<f64> {
        let (max, min) = (self.max_hops?, self.min_hops?);
        (min > 0).then(|| max as f64 / min as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forwarding::compute_forwarding_state;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::presets;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_util::time::TimeSteps;

    fn constellation() -> Constellation {
        Constellation::build(
            "p",
            vec![ShellSpec::new("A", 550.0, 10, 10, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 5.0, 5.0), GroundStation::new("b", -15.0, 100.0)],
            GslConfig::new(10.0),
        )
    }

    #[test]
    fn path_rtt_matches_snapshot_distance_at_snapshot_time() {
        let c = constellation();
        let t = SimTime::from_secs(10);
        let st = compute_forwarding_state(&c, t, &[c.gs_node(1)]);
        if let Some(path) = extract_path(&st, c.gs_node(0), c.gs_node(1)) {
            let live = path_rtt_at(&c, &path, t);
            let snap = st.distance(c.gs_node(0), c.gs_node(1)).unwrap() * 2;
            let diff = live.secs_f64() - snap.secs_f64();
            assert!(diff.abs() < 1e-9, "live {live} vs snapshot {snap}");
        } else {
            panic!("expected connectivity in test constellation");
        }
    }

    #[test]
    fn satellites_of_strips_ground_stations() {
        let c = constellation();
        let st = compute_forwarding_state(&c, SimTime::ZERO, &[c.gs_node(1)]);
        let path = extract_path(&st, c.gs_node(0), c.gs_node(1)).unwrap();
        let sats = satellites_of(&c, &path);
        assert_eq!(sats.len(), path.len() - 2);
        assert!(sats.iter().all(|&s| c.is_satellite(s)));
    }

    #[test]
    fn tracker_accumulates_over_steps() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let mut tracker = PairTracker::new(src, dst, true);
        for t in TimeSteps::new(SimTime::ZERO, SimTime::from_secs(60), SimDuration::from_secs(5)) {
            let st = compute_forwarding_state(&c, t, &[dst]);
            tracker.observe(&c, &st);
        }
        assert_eq!(tracker.steps, 12);
        assert_eq!(tracker.series().len(), 12);
        assert!(tracker.min_rtt.is_some());
        assert!(tracker.max_rtt.unwrap() >= tracker.min_rtt.unwrap());
        assert!(tracker.min_hops.unwrap() >= 2);
    }

    #[test]
    fn tracker_counts_path_changes_on_kuiper() {
        // Over 200 s the paper observes a handful of path changes for a
        // typical pair on K1; assert we see at least one and fewer than 40
        // with a coarse 5 s step.
        let c = presets::kuiper_k1(vec![
            GroundStation::new("Istanbul", 41.0082, 28.9784),
            GroundStation::new("Nairobi", -1.2921, 36.8219),
        ]);
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let mut tracker = PairTracker::new(src, dst, false);
        for t in TimeSteps::new(SimTime::ZERO, SimTime::from_secs(200), SimDuration::from_secs(5)) {
            let st = compute_forwarding_state(&c, t, &[dst]);
            tracker.observe(&c, &st);
        }
        assert!(tracker.path_changes >= 1, "no path change in 200 s");
        assert!(tracker.path_changes < 40, "implausible churn {}", tracker.path_changes);
        assert_eq!(tracker.disconnected_steps, 0, "Istanbul–Nairobi should stay connected");
    }

    #[test]
    fn ratio_helpers() {
        let c = constellation();
        let mut tr = PairTracker::new(c.gs_node(0), c.gs_node(1), false);
        tr.min_rtt = Some(SimDuration::from_millis(40));
        tr.max_rtt = Some(SimDuration::from_millis(60));
        tr.min_hops = Some(4);
        tr.max_hops = Some(6);
        assert!((tr.rtt_ratio().unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(tr.hop_count_delta(), Some(2));
        assert!((tr.hop_count_ratio().unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn no_series_when_not_recording() {
        let c = constellation();
        let mut tr = PairTracker::new(c.gs_node(0), c.gs_node(1), false);
        let st = compute_forwarding_state(&c, SimTime::ZERO, &[c.gs_node(1)]);
        tr.observe(&c, &st);
        assert!(tr.series().is_empty());
        assert_eq!(tr.steps, 1);
    }
}
