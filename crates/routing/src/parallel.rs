//! Deterministic parallel snapshot-routing pipeline.
//!
//! Per-time-step routing snapshots are embarrassingly parallel: each step's
//! `DelayGraph` + per-destination Dijkstra trees depend only on the
//! constellation geometry at that instant. This module fans steps out
//! across a crossbeam scoped-thread worker pool and hands the results back
//! **in step order**, so every consumer observes exactly the sequence the
//! serial loop would produce — bit-for-bit, for any worker-thread count.
//!
//! Parallelism is only ever *across* independent snapshots (or scenario
//! instances), never inside one simulation's event loop, per the DESIGN §5
//! dependency policy: determinism stays a feature.
//!
//! Two shapes are provided:
//!
//! * [`for_each_step_ordered`] / [`map_steps_ordered`] — bounded-memory
//!   fan-out over a known step range, for sweep experiments
//!   (`hypatia::experiments::{pair_sweep, granularity}`);
//! * [`Prefetcher`] — a background pool that computes steps `k+1..k+P`
//!   while a consumer (the netsim event loop) is still busy with step `k`.

use crate::dijkstra::DijkstraScratch;
use crate::forwarding::ForwardingState;
use crate::graph::SnapshotBuffers;
use crate::incremental::{IncrementalRouter, RoutingConfig};
use hypatia_constellation::{Constellation, NodeId};
use hypatia_fault::FaultState;
use hypatia_util::SimTime;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Resolve a requested worker count: `0` means "all available cores".
pub fn worker_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Run `compute(scratch, k)` for every `k in 0..n_steps` on `threads`
/// workers and feed the results to `consume(k, result)` **in step order**.
///
/// Each worker owns one `make_scratch()` value (reusable buffers), pulls
/// step indices from a shared counter, and sends `(k, result)` over a
/// bounded channel, so at most `prefetch + threads` results are in flight
/// — memory stays bounded however far the workers run ahead.
///
/// With `threads == 1` the loop runs inline on the caller's thread; the
/// parallel path produces the same `consume` call sequence by
/// construction, which is what makes thread count a pure performance knob.
pub fn for_each_step_ordered<T, S, MS, F, C>(
    n_steps: u64,
    threads: usize,
    prefetch: usize,
    make_scratch: MS,
    compute: F,
    mut consume: C,
) where
    T: Send,
    MS: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> T + Sync,
    C: FnMut(u64, T),
{
    let threads = worker_threads(threads);
    if threads == 1 || n_steps <= 1 {
        let mut scratch = make_scratch();
        for k in 0..n_steps {
            let r = compute(&mut scratch, k);
            consume(k, r);
        }
        return;
    }

    let next_step = AtomicU64::new(0);
    let (tx, rx) = crossbeam::channel::bounded::<(u64, T)>(prefetch.max(1));
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next_step = &next_step;
            let make_scratch = &make_scratch;
            let compute = &compute;
            scope.spawn(move |_| {
                let mut scratch = make_scratch();
                loop {
                    let k = next_step.fetch_add(1, Ordering::Relaxed);
                    if k >= n_steps {
                        break;
                    }
                    let r = compute(&mut scratch, k);
                    if tx.send((k, r)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        // Reorder out-of-order arrivals; release to the consumer strictly
        // by step index.
        let mut pending: BTreeMap<u64, T> = BTreeMap::new();
        let mut next = 0u64;
        for (k, r) in rx.iter() {
            pending.insert(k, r);
            while let Some(r) = pending.remove(&next) {
                consume(next, r);
                next += 1;
            }
        }
        while let Some(r) = pending.remove(&next) {
            consume(next, r);
            next += 1;
        }
        assert_eq!(next, n_steps, "parallel pipeline lost a step");
    })
    .expect("snapshot worker panicked");
}

/// As [`for_each_step_ordered`], collecting the results into a `Vec`
/// indexed by step.
pub fn map_steps_ordered<T, S, MS, F>(
    n_steps: u64,
    threads: usize,
    make_scratch: MS,
    compute: F,
) -> Vec<T>
where
    T: Send,
    MS: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> T + Sync,
{
    let mut out = Vec::with_capacity(n_steps as usize);
    let prefetch = 2 * worker_threads(threads);
    for_each_step_ordered(n_steps, threads, prefetch, make_scratch, compute, |_, r| out.push(r));
    out
}

/// Per-worker reusable routing state: snapshot staging buffers plus the
/// incremental routing engine (previous-snapshot cache, Dijkstra/repair
/// scratch). One of these lives on each worker thread for the lifetime of
/// a sweep, so steady-state snapshot-routing does not allocate graphs,
/// heaps, or position buffers — and, in incremental mode, repairs each
/// worker's trees from whatever snapshot that worker computed last.
///
/// Which steps a worker happens to process depends on thread scheduling,
/// so the per-worker caches see a nondeterministic step subsequence. That
/// is safe because repair output is byte-identical to a full recompute
/// from *any* cached snapshot (see [`crate::incremental`]): results never
/// depend on thread count or step assignment.
#[derive(Debug, Default)]
pub struct SnapshotWorker {
    /// Snapshot-graph construction buffers (CSR arrays, positions).
    pub buffers: SnapshotBuffers,
    /// Dijkstra working memory for non-router uses (heap, settled set).
    pub scratch: DijkstraScratch,
    /// The full-vs-incremental routing engine with its snapshot cache.
    pub router: IncrementalRouter,
}

impl SnapshotWorker {
    /// Fresh worker buffers with the default routing configuration
    /// (incremental repair).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh worker buffers with an explicit routing configuration.
    pub fn with_config(config: RoutingConfig) -> Self {
        SnapshotWorker { router: IncrementalRouter::new(config), ..Default::default() }
    }

    /// Snapshot the constellation at `t` and compute forwarding state
    /// towards `dests`, reusing this worker's buffers and (in incremental
    /// mode) repairing from the previously computed snapshot.
    pub fn forwarding_state(
        &mut self,
        constellation: &Constellation,
        t: SimTime,
        dests: &[NodeId],
    ) -> ForwardingState {
        self.forwarding_state_masked(constellation, t, dests, None)
    }

    /// As [`Self::forwarding_state`], routing around faulted components.
    /// Fault transitions reach the router as edge deletions/insertions in
    /// the snapshot diff, so repair handles them like any other churn (and
    /// falls back to full Dijkstra past the churn threshold). Because the
    /// fault state is derived purely from an immutable schedule and repair
    /// is byte-identical to full recompute, prefetch workers calling this
    /// produce states bit-identical to the inline recomputation path.
    pub fn forwarding_state_masked(
        &mut self,
        constellation: &Constellation,
        t: SimTime,
        dests: &[NodeId],
        faults: Option<&FaultState>,
    ) -> ForwardingState {
        let graph = self.buffers.snapshot_masked(constellation, t, faults);
        let mut out = ForwardingState::empty();
        self.router.compute_into(graph, t, dests, &mut out);
        out
    }
}

/// Compute the forwarding state for every instant in `times` (towards
/// `dests`) on `threads` workers and hand each state to
/// `consume(step_index, state)` in time order. `threads == 0` uses every
/// core; `threads == 1` is the serial reference the parallel path is
/// bit-identical to.
pub fn sweep_forwarding_states<C>(
    constellation: &Constellation,
    times: &[SimTime],
    dests: &[NodeId],
    threads: usize,
    consume: C,
) where
    C: FnMut(usize, ForwardingState),
{
    sweep_forwarding_states_with(
        constellation,
        times,
        dests,
        threads,
        RoutingConfig::default(),
        consume,
    );
}

/// As [`sweep_forwarding_states`], with an explicit routing configuration
/// (full recompute vs. incremental repair, churn threshold). Output is
/// byte-identical across configurations and thread counts; the
/// configuration only changes how fast the states are produced.
pub fn sweep_forwarding_states_with<C>(
    constellation: &Constellation,
    times: &[SimTime],
    dests: &[NodeId],
    threads: usize,
    routing: RoutingConfig,
    mut consume: C,
) where
    C: FnMut(usize, ForwardingState),
{
    let threads = worker_threads(threads).min(times.len().max(1));
    for_each_step_ordered(
        times.len() as u64,
        threads,
        2 * threads,
        || SnapshotWorker::with_config(routing),
        |worker, k| worker.forwarding_state(constellation, times[k as usize], dests),
        |k, state| consume(k as usize, state),
    );
}

/// A bounded-prefetch background pipeline over an open-ended step
/// sequence: workers compute `f(step)` for `start, start+1, ...` while the
/// consumer is still busy with earlier steps, keeping at most
/// `prefetch + threads` results in flight.
///
/// Consumption is strictly in order ([`Prefetcher::take`]), so the
/// observable sequence is identical to calling `f` inline — the netsim
/// event loop stays deterministic while its forwarding recomputation
/// overlaps with packet processing. Dropping the `Prefetcher` stops the
/// workers.
pub struct Prefetcher<T: Send + 'static> {
    rx: Option<crossbeam::channel::Receiver<(u64, T)>>,
    pending: BTreeMap<u64, T>,
    next: u64,
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<T: Send + 'static> Prefetcher<T> {
    /// Start `threads` background workers computing `f(scratch, k)` for
    /// `k = start, start+1, ...` with at most `prefetch` finished results
    /// buffered. Each worker owns one `make_scratch()` value.
    pub fn spawn<S, MS, F>(
        start: u64,
        threads: usize,
        prefetch: usize,
        make_scratch: MS,
        f: F,
    ) -> Self
    where
        MS: Fn() -> S + Send + Sync + 'static,
        F: Fn(&mut S, u64) -> T + Send + Sync + 'static,
    {
        let threads = worker_threads(threads);
        let (tx, rx) = crossbeam::channel::bounded::<(u64, T)>(prefetch.max(1));
        let stop = Arc::new(AtomicBool::new(false));
        let counter = Arc::new(AtomicU64::new(0));
        let shared = Arc::new((make_scratch, f));
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let tx = tx.clone();
            let stop = stop.clone();
            let counter = counter.clone();
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || {
                let (make_scratch, f) = &*shared;
                let mut scratch = make_scratch();
                while !stop.load(Ordering::Relaxed) {
                    let k = start + counter.fetch_add(1, Ordering::Relaxed);
                    let r = f(&mut scratch, k);
                    if tx.send((k, r)).is_err() {
                        break;
                    }
                }
            }));
        }
        Prefetcher { rx: Some(rx), pending: BTreeMap::new(), next: start, stop, handles }
    }

    /// Take the result for step `k`. Steps must be consumed in order,
    /// starting at the `start` passed to [`Prefetcher::spawn`]; blocks
    /// until the workers have produced step `k`.
    pub fn take(&mut self, k: u64) -> T {
        assert_eq!(k, self.next, "prefetched steps must be consumed in order");
        let rx = self.rx.as_ref().expect("prefetcher already shut down");
        loop {
            if let Some(r) = self.pending.remove(&k) {
                self.next = k + 1;
                return r;
            }
            let (i, r) = rx.recv().expect("prefetch worker died");
            self.pending.insert(i, r);
        }
    }
}

impl<T: Send + 'static> Drop for Prefetcher<T> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Dropping the receiver makes every blocked `send` fail, so the
        // workers unblock and exit.
        self.rx = None;
        self.pending.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_util::SimDuration;

    fn constellation() -> Constellation {
        Constellation::build(
            "par",
            vec![ShellSpec::new("A", 550.0, 8, 8, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 5.0, 5.0), GroundStation::new("b", -10.0, 120.0)],
            GslConfig::new(15.0),
        )
    }

    #[test]
    fn map_steps_ordered_matches_serial_for_any_thread_count() {
        // A compute function whose result depends on the step index in a
        // way that would expose any ordering bug.
        let serial = map_steps_ordered(50, 1, || 0u64, |_, k| k * k + 7);
        for threads in [2, 3, 8] {
            let par = map_steps_ordered(50, threads, || 0u64, |_, k| k * k + 7);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn for_each_step_consumes_in_order() {
        let mut seen = Vec::new();
        for_each_step_ordered(
            40,
            4,
            4,
            || (),
            |_, k| k,
            |k, r| {
                assert_eq!(k, r);
                seen.push(k);
            },
        );
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_states_identical_serial_vs_parallel() {
        let c = constellation();
        let dests = vec![c.gs_node(0), c.gs_node(1)];
        let times: Vec<SimTime> =
            (0..12).map(|k| SimTime::ZERO + SimDuration::from_millis(500) * k).collect();
        let collect = |threads: usize| {
            let mut out = Vec::new();
            sweep_forwarding_states(&c, &times, &dests, threads, |k, st| {
                out.push((k, format!("{st:?}")));
            });
            out
        };
        let serial = collect(1);
        for threads in [2, 4, 8] {
            assert_eq!(serial, collect(threads), "threads={threads}");
        }
    }

    #[test]
    fn sweep_states_identical_full_vs_incremental() {
        let c = constellation();
        let dests = vec![c.gs_node(0), c.gs_node(1)];
        let times: Vec<SimTime> =
            (0..10).map(|k| SimTime::ZERO + SimDuration::from_millis(500) * k).collect();
        let collect = |threads: usize, routing: RoutingConfig| {
            let mut out = Vec::new();
            sweep_forwarding_states_with(&c, &times, &dests, threads, routing, |k, st| {
                out.push((k, format!("{st:?}")));
            });
            out
        };
        let reference = collect(1, RoutingConfig::full());
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                reference,
                collect(threads, RoutingConfig::incremental()),
                "incremental sweep diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn prefetcher_yields_steps_in_order() {
        let mut pf = Prefetcher::spawn(3, 4, 4, || (), |_, k| k * 10);
        for k in 3..30 {
            assert_eq!(pf.take(k), k * 10);
        }
        // Dropping mid-stream stops the workers without hanging.
        drop(pf);
    }

    #[test]
    fn prefetcher_matches_inline_forwarding_state() {
        let c = Arc::new(constellation());
        let dests = vec![c.gs_node(0), c.gs_node(1)];
        let step = SimDuration::from_millis(100);
        let mut pf = {
            let c = c.clone();
            let dests = dests.clone();
            Prefetcher::spawn(1, 2, 3, SnapshotWorker::new, move |w: &mut SnapshotWorker, k| {
                w.forwarding_state(&c, SimTime::ZERO + step * k, &dests)
            })
        };
        for k in 1..8u64 {
            let want =
                crate::forwarding::compute_forwarding_state(&c, SimTime::ZERO + step * k, &dests);
            let got = pf.take(k);
            assert_eq!(format!("{want:?}"), format!("{got:?}"), "step {k}");
        }
    }
}
