//! Deterministic snapshot encoding for checkpoint/restore.
//!
//! The simulator's state is a closed set of integers: integer-nanosecond
//! times, packet ids, queue entries ordered by `(time, key)`, xoshiro RNG
//! words, and counters. Serializing those exactly — no floats except as
//! raw IEEE-754 bits, no platform-dependent hashing or pointer order —
//! preserves the total event order, so a restored run replays the same
//! event sequence and produces byte-identical artifacts (the property the
//! engine's determinism tests already pin for serial-vs-sharded runs).
//!
//! The container is deliberately boring:
//!
//! ```text
//! magic (8B) | version (4B) | config fingerprint (8B) | body ... | fnv1a64 checksum (8B)
//! ```
//!
//! * the **magic** rejects files that are not snapshots at all;
//! * the **version** rejects snapshots written by an incompatible layout
//!   (bumped whenever the body encoding changes);
//! * the **config fingerprint** rejects resuming into a simulator built
//!   from a different spec (shard count, queue kind, mode, rates, ...) —
//!   a restore only overwrites *mutable* state, so the immutable skeleton
//!   must match;
//! * the **checksum** covers everything before it and rejects torn or
//!   corrupted files (a process SIGKILLed mid-write must never poison a
//!   later resume; writers also go through a temp-file + rename).
//!
//! All multi-byte values are little-endian. Section tags (4 ASCII bytes)
//! are sprinkled between major state blocks so a decoding bug fails fast
//! with a named location instead of silently misreading downstream bytes.

use crate::event::Event;
use crate::packet::{Packet, Payload, Segment};
use hypatia_constellation::NodeId;
use hypatia_util::hash::Fnv1a64;
use hypatia_util::{SimDuration, SimTime};
use std::fmt;
use std::path::Path;

/// First 8 bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"HYPSNAP\0";
/// Current body-layout version. Bump on any encoding change.
pub const VERSION: u32 = 1;

/// Why a checkpoint could not be written or read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (formatted `std::io::Error`, kept as a string so
    /// the error stays `Clone` + `PartialEq` for tests and manifests).
    Io(String),
    /// The file does not start with [`MAGIC`]: not a snapshot at all.
    BadMagic,
    /// The snapshot was written by a different body layout.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The trailing FNV-1a-64 over the file contents does not match:
    /// torn write or bit rot.
    ChecksumMismatch,
    /// The snapshot was taken from a simulator built with a different
    /// configuration (shards, queue kind, mode, rates, node count, ...).
    ConfigMismatch {
        /// Fingerprint found in the file header.
        found: u64,
        /// Fingerprint of the simulator attempting the restore.
        expected: u64,
    },
    /// The body decoded inconsistently (truncation, bad tag, count
    /// mismatch against the rebuilt simulator).
    Malformed(String),
    /// A component (e.g. a custom [`crate::Application`]) does not
    /// implement state capture.
    Unsupported(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            CheckpointError::UnsupportedVersion { found, expected } => {
                write!(f, "unsupported snapshot version {found} (this build reads {expected})")
            }
            CheckpointError::ChecksumMismatch => {
                write!(f, "snapshot checksum mismatch (torn write or corruption)")
            }
            CheckpointError::ConfigMismatch { found, expected } => write!(
                f,
                "snapshot was taken under a different configuration \
                 (fingerprint {found:#018x}, this run is {expected:#018x})"
            ),
            CheckpointError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            CheckpointError::Unsupported(what) => {
                write!(f, "checkpoint unsupported: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

/// Append-only snapshot encoder. Construct with a config fingerprint,
/// `put_*` the body, then [`SnapWriter::write_file`] (or
/// [`SnapWriter::finish`] for in-memory use).
#[derive(Debug)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Start a snapshot: magic + version + the given config fingerprint.
    pub fn new(fingerprint: u64) -> Self {
        let mut w = SnapWriter { buf: Vec::with_capacity(4096) };
        w.buf.extend_from_slice(&MAGIC);
        w.buf.extend_from_slice(&VERSION.to_le_bytes());
        w.put_u64(fingerprint);
        w
    }

    /// Append a 4-ASCII-byte section tag (see [`SnapReader::expect_tag`]).
    pub fn put_tag(&mut self, tag: &[u8; 4]) {
        self.buf.extend_from_slice(tag);
    }

    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    pub fn put_bool(&mut self, x: bool) {
        self.buf.push(x as u8);
    }

    pub fn put_u16(&mut self, x: u16) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// A `usize` count, always as 8 bytes (cross-platform layout).
    pub fn put_usize(&mut self, x: usize) {
        self.put_u64(x as u64);
    }

    /// An `f64` as its raw IEEE-754 bits: bit-exact round trip, NaN-safe.
    pub fn put_f64(&mut self, x: f64) {
        self.put_u64(x.to_bits());
    }

    pub fn put_time(&mut self, t: SimTime) {
        self.put_u64(t.nanos());
    }

    pub fn put_dur(&mut self, d: SimDuration) {
        self.put_u64(d.nanos());
    }

    /// `Option<u64>` as a presence byte + value.
    pub fn put_opt_u64(&mut self, x: Option<u64>) {
        match x {
            Some(v) => {
                self.put_bool(true);
                self.put_u64(v);
            }
            None => self.put_bool(false),
        }
    }

    pub fn put_opt_time(&mut self, t: Option<SimTime>) {
        self.put_opt_u64(t.map(SimTime::nanos));
    }

    pub fn put_opt_dur(&mut self, d: Option<SimDuration>) {
        self.put_opt_u64(d.map(SimDuration::nanos));
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// A packet, field by field.
    pub fn put_packet(&mut self, p: &Packet) {
        self.put_u64(p.id);
        self.put_u32(p.src.0);
        self.put_u32(p.dst.0);
        self.put_u16(p.src_port);
        self.put_u16(p.dst_port);
        self.put_u32(p.size_bytes);
        self.put_payload(&p.payload);
        self.put_time(p.injected_at);
        self.put_u16(p.hops);
        self.put_u64(p.flow_hash);
    }

    fn put_payload(&mut self, payload: &Payload) {
        match payload {
            Payload::Ping { seq } => {
                self.put_u8(0);
                self.put_u64(*seq);
            }
            Payload::Pong { seq, ping_injected_at } => {
                self.put_u8(1);
                self.put_u64(*seq);
                self.put_time(*ping_injected_at);
            }
            Payload::Udp { flow, seq, payload_bytes } => {
                self.put_u8(2);
                self.put_u32(*flow);
                self.put_u64(*seq);
                self.put_u32(*payload_bytes);
            }
            Payload::Seg(seg) => {
                self.put_u8(3);
                self.put_u64(seg.seq);
                self.put_u32(seg.payload_bytes);
                self.put_u64(seg.ack);
                self.put_time(seg.ts);
                self.put_time(seg.ts_echo);
                self.put_bool(seg.fin);
            }
        }
    }

    /// An event, tag + fields.
    pub fn put_event(&mut self, e: &Event) {
        match e {
            Event::TxComplete { node, device } => {
                self.put_u8(0);
                self.put_u32(*node);
                self.put_u32(*device);
            }
            Event::Arrival { node, packet } => {
                self.put_u8(1);
                self.put_u32(*node);
                self.put_packet(packet);
            }
            Event::ForwardingUpdate { step } => {
                self.put_u8(2);
                self.put_u64(*step);
            }
            Event::AppTimer { app, timer_id } => {
                self.put_u8(3);
                self.put_u32(*app);
                self.put_u64(*timer_id);
            }
            Event::FaultUpdate { index } => {
                self.put_u8(4);
                self.put_u64(*index);
            }
            Event::FluidUpdate { index } => {
                self.put_u8(5);
                self.put_u64(*index);
            }
        }
    }

    /// Seal the snapshot: append the FNV-1a-64 of everything so far and
    /// return the full file image.
    pub fn finish(mut self) -> Vec<u8> {
        let mut h = Fnv1a64::new();
        h.write(&self.buf);
        let sum = h.finish();
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }

    /// Seal and write to `path` atomically: the bytes land in a sibling
    /// temp file first and are renamed into place, so a crash mid-write
    /// leaves either the previous snapshot or none — never a torn one.
    pub fn write_file(self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.finish();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("snap.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

/// Snapshot decoder over an in-memory image. Validates the container
/// (magic, version, checksum, fingerprint) up front; `get_*` then decode
/// the body sequentially, failing with [`CheckpointError::Malformed`] on
/// truncation.
#[derive(Debug)]
pub struct SnapReader {
    data: Vec<u8>,
    pos: usize,
}

impl SnapReader {
    /// Read and validate the file at `path` against the expected config
    /// fingerprint. Returns a reader positioned at the start of the body.
    pub fn open(path: &Path, expected_fingerprint: u64) -> Result<Self, CheckpointError> {
        let data = std::fs::read(path)?;
        Self::from_bytes(data, expected_fingerprint)
    }

    /// Validate an in-memory snapshot image (see [`SnapReader::open`]).
    pub fn from_bytes(data: Vec<u8>, expected_fingerprint: u64) -> Result<Self, CheckpointError> {
        // Smallest valid file: magic + version + fingerprint + checksum.
        if data.len() < MAGIC.len() + 4 + 8 + 8 {
            return Err(CheckpointError::Malformed("file shorter than header".into()));
        }
        if data[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        // Checksum first: a corrupted version field should read as
        // corruption, not as a bogus version.
        let body_end = data.len() - 8;
        let mut h = Fnv1a64::new();
        h.write(&data[..body_end]);
        let stored =
            u64::from_le_bytes(data[body_end..].try_into().expect("8-byte checksum slice"));
        if h.finish() != stored {
            return Err(CheckpointError::ChecksumMismatch);
        }
        let mut r = SnapReader { data, pos: MAGIC.len() };
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version, expected: VERSION });
        }
        let fingerprint = r.get_u64()?;
        if fingerprint != expected_fingerprint {
            return Err(CheckpointError::ConfigMismatch {
                found: fingerprint,
                expected: expected_fingerprint,
            });
        }
        r.data.truncate(body_end);
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        if self.pos + n > self.data.len() {
            return Err(CheckpointError::Malformed(format!(
                "truncated at offset {} (need {n} more bytes)",
                self.pos
            )));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consume a section tag, failing with the expected/found pair when
    /// the stream has drifted out of alignment.
    pub fn expect_tag(&mut self, tag: &[u8; 4]) -> Result<(), CheckpointError> {
        let found = self.take(4)?;
        if found != tag {
            return Err(CheckpointError::Malformed(format!(
                "section tag mismatch: expected {:?}, found {:?}",
                String::from_utf8_lossy(tag),
                String::from_utf8_lossy(found),
            )));
        }
        Ok(())
    }

    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_bool(&mut self) -> Result<bool, CheckpointError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CheckpointError::Malformed(format!("bad bool byte {b:#x}"))),
        }
    }

    pub fn get_u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2-byte slice")))
    }

    pub fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    pub fn get_usize(&mut self) -> Result<usize, CheckpointError> {
        Ok(self.get_u64()? as usize)
    }

    pub fn get_f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_time(&mut self) -> Result<SimTime, CheckpointError> {
        Ok(SimTime::from_nanos(self.get_u64()?))
    }

    pub fn get_dur(&mut self) -> Result<SimDuration, CheckpointError> {
        Ok(SimDuration::from_nanos(self.get_u64()?))
    }

    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        Ok(if self.get_bool()? { Some(self.get_u64()?) } else { None })
    }

    pub fn get_opt_time(&mut self) -> Result<Option<SimTime>, CheckpointError> {
        Ok(self.get_opt_u64()?.map(SimTime::from_nanos))
    }

    pub fn get_opt_dur(&mut self) -> Result<Option<SimDuration>, CheckpointError> {
        Ok(self.get_opt_u64()?.map(SimDuration::from_nanos))
    }

    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let n = self.get_usize()?;
        Ok(self.take(n)?.to_vec())
    }

    pub fn get_packet(&mut self) -> Result<Packet, CheckpointError> {
        Ok(Packet {
            id: self.get_u64()?,
            src: NodeId(self.get_u32()?),
            dst: NodeId(self.get_u32()?),
            src_port: self.get_u16()?,
            dst_port: self.get_u16()?,
            size_bytes: self.get_u32()?,
            payload: self.get_payload()?,
            injected_at: self.get_time()?,
            hops: self.get_u16()?,
            flow_hash: self.get_u64()?,
        })
    }

    fn get_payload(&mut self) -> Result<Payload, CheckpointError> {
        match self.get_u8()? {
            0 => Ok(Payload::Ping { seq: self.get_u64()? }),
            1 => Ok(Payload::Pong { seq: self.get_u64()?, ping_injected_at: self.get_time()? }),
            2 => Ok(Payload::Udp {
                flow: self.get_u32()?,
                seq: self.get_u64()?,
                payload_bytes: self.get_u32()?,
            }),
            3 => Ok(Payload::Seg(Segment {
                seq: self.get_u64()?,
                payload_bytes: self.get_u32()?,
                ack: self.get_u64()?,
                ts: self.get_time()?,
                ts_echo: self.get_time()?,
                fin: self.get_bool()?,
            })),
            t => Err(CheckpointError::Malformed(format!("bad payload tag {t}"))),
        }
    }

    pub fn get_event(&mut self) -> Result<Event, CheckpointError> {
        match self.get_u8()? {
            0 => Ok(Event::TxComplete { node: self.get_u32()?, device: self.get_u32()? }),
            1 => Ok(Event::Arrival { node: self.get_u32()?, packet: self.get_packet()? }),
            2 => Ok(Event::ForwardingUpdate { step: self.get_u64()? }),
            3 => Ok(Event::AppTimer { app: self.get_u32()?, timer_id: self.get_u64()? }),
            4 => Ok(Event::FaultUpdate { index: self.get_u64()? }),
            5 => Ok(Event::FluidUpdate { index: self.get_u64()? }),
            t => Err(CheckpointError::Malformed(format!("bad event tag {t}"))),
        }
    }

    /// True once the whole body has been consumed — restore asserts this
    /// so trailing garbage (or an under-read) is an error, not a shrug.
    pub fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Fail unless the body was consumed exactly.
    pub fn expect_end(&self) -> Result<(), CheckpointError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(CheckpointError::Malformed(format!(
                "{} unread bytes at end of body",
                self.data.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FP: u64 = 0xDEAD_BEEF_0BAD_F00D;

    fn sample_packet() -> Packet {
        Packet {
            id: crate::packet::packet_id(NodeId(7), 42),
            src: NodeId(7),
            dst: NodeId(1300),
            src_port: 4096,
            dst_port: 80,
            size_bytes: 1500,
            payload: Payload::Seg(Segment {
                seq: 123_456_789,
                payload_bytes: 1380,
                ack: 99,
                ts: SimTime::from_millis(250),
                ts_echo: SimTime::from_millis(245),
                fin: true,
            }),
            injected_at: SimTime::from_millis(240),
            hops: 9,
            flow_hash: 0x1234_5678_9ABC_DEF0,
        }
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new(FP);
        w.put_tag(b"TEST");
        w.put_u8(0xAB);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_usize(12345);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_time(SimTime::from_secs(3));
        w.put_dur(SimDuration::from_micros(7));
        w.put_opt_u64(Some(5));
        w.put_opt_u64(None);
        w.put_opt_time(Some(SimTime::MAX));
        w.put_bytes(b"hello");
        let mut r = SnapReader::from_bytes(w.finish(), FP).expect("valid image");
        r.expect_tag(b"TEST").unwrap();
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_usize().unwrap(), 12345);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_time().unwrap(), SimTime::from_secs(3));
        assert_eq!(r.get_dur().unwrap(), SimDuration::from_micros(7));
        assert_eq!(r.get_opt_u64().unwrap(), Some(5));
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_opt_time().unwrap(), Some(SimTime::MAX));
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        r.expect_end().unwrap();
    }

    #[test]
    fn packets_and_events_round_trip() {
        let events = vec![
            Event::TxComplete { node: 3, device: 1 },
            Event::Arrival { node: 99, packet: sample_packet() },
            Event::ForwardingUpdate { step: 17 },
            Event::AppTimer { app: 4, timer_id: u64::MAX },
            Event::FaultUpdate { index: 2 },
            Event::FluidUpdate { index: 5 },
        ];
        let mut w = SnapWriter::new(FP);
        w.put_usize(events.len());
        for e in &events {
            w.put_event(e);
        }
        let payloads = [
            Payload::Ping { seq: 1 },
            Payload::Pong { seq: 1, ping_injected_at: SimTime::from_millis(3) },
            Payload::Udp { flow: 8, seq: 1000, payload_bytes: 1440 },
        ];
        for p in payloads {
            w.put_packet(&Packet { payload: p, ..sample_packet() });
        }
        let mut r = SnapReader::from_bytes(w.finish(), FP).expect("valid image");
        let n = r.get_usize().unwrap();
        let back: Vec<Event> = (0..n).map(|_| r.get_event().unwrap()).collect();
        assert_eq!(back, events);
        for p in payloads {
            assert_eq!(r.get_packet().unwrap(), Packet { payload: p, ..sample_packet() });
        }
        r.expect_end().unwrap();
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = SnapWriter::new(FP).finish();
        bytes[0] ^= 0xFF;
        // Re-checksum so only the magic is wrong.
        let end = bytes.len() - 8;
        let mut h = Fnv1a64::new();
        h.write(&bytes[..end]);
        let sum = h.finish().to_le_bytes();
        bytes[end..].copy_from_slice(&sum);
        assert_eq!(SnapReader::from_bytes(bytes, FP).unwrap_err(), CheckpointError::BadMagic);
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut bytes = SnapWriter::new(FP).finish();
        bytes[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
        let end = bytes.len() - 8;
        let mut h = Fnv1a64::new();
        h.write(&bytes[..end]);
        let sum = h.finish().to_le_bytes();
        bytes[end..].copy_from_slice(&sum);
        assert_eq!(
            SnapReader::from_bytes(bytes, FP).unwrap_err(),
            CheckpointError::UnsupportedVersion { found: VERSION + 1, expected: VERSION }
        );
    }

    #[test]
    fn rejects_corruption_anywhere() {
        let mut w = SnapWriter::new(FP);
        for i in 0..64u64 {
            w.put_u64(i);
        }
        let clean = w.finish();
        for pos in [0, 9, 20, clean.len() / 2, clean.len() - 1] {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x01;
            let err = SnapReader::from_bytes(bytes, FP).unwrap_err();
            // Flipping the magic *and* failing the checksum both count as
            // rejection; a checksum hit must never decode.
            assert!(
                matches!(err, CheckpointError::ChecksumMismatch | CheckpointError::BadMagic),
                "flip at {pos} gave {err:?}"
            );
        }
        // Truncation is also rejected.
        let short = clean[..clean.len() - 3].to_vec();
        assert!(SnapReader::from_bytes(short, FP).is_err());
    }

    #[test]
    fn rejects_config_fingerprint_mismatch() {
        let bytes = SnapWriter::new(FP).finish();
        assert_eq!(
            SnapReader::from_bytes(bytes, FP ^ 1).unwrap_err(),
            CheckpointError::ConfigMismatch { found: FP, expected: FP ^ 1 }
        );
    }

    #[test]
    fn truncated_body_reads_are_malformed_not_panics() {
        let mut w = SnapWriter::new(FP);
        w.put_u32(7);
        let mut r = SnapReader::from_bytes(w.finish(), FP).expect("valid image");
        assert_eq!(r.get_u32().unwrap(), 7);
        assert!(matches!(r.get_u64().unwrap_err(), CheckpointError::Malformed(_)));
        // Tag misalignment names both sides.
        let mut w = SnapWriter::new(FP);
        w.put_tag(b"AAAA");
        let mut r = SnapReader::from_bytes(w.finish(), FP).expect("valid image");
        let err = r.expect_tag(b"BBBB").unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed(ref m) if m.contains("BBBB")), "{err}");
    }

    #[test]
    fn expect_end_flags_unread_bytes() {
        let mut w = SnapWriter::new(FP);
        w.put_u64(1);
        let r = SnapReader::from_bytes(w.finish(), FP).expect("valid image");
        assert!(!r.at_end());
        assert!(matches!(r.expect_end().unwrap_err(), CheckpointError::Malformed(_)));
    }

    #[test]
    fn write_file_is_atomic_and_reopens() {
        let dir = std::env::temp_dir().join("hypatia-checkpoint-test");
        let path = dir.join("nested").join("t.snap");
        let mut w = SnapWriter::new(FP);
        w.put_u64(0x5EED);
        w.write_file(&path).expect("write snapshot");
        assert!(!path.with_extension("snap.tmp").exists(), "temp file renamed away");
        let mut r = SnapReader::open(&path, FP).expect("reopen");
        assert_eq!(r.get_u64().unwrap(), 0x5EED);
        r.expect_end().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = std::env::temp_dir().join("hypatia-checkpoint-no-such-file.snap");
        assert!(matches!(SnapReader::open(&path, FP).unwrap_err(), CheckpointError::Io(_)));
    }
}
