//! The shard executor of the sharded conservative event engine.
//!
//! The node set is partitioned into spatial `Partition` shards. Each
//! `Shard` owns the devices, applications, per-node counters, event
//! queue, trace, and stats of its nodes, and executes windows of events
//! independently of every other shard. The only cross-shard interaction is
//! a packet arrival (a transmission whose next hop another shard owns),
//! which is buffered in a per-destination-shard outbox and delivered by
//! the coordinator at the next barrier — safe because the coordinator
//! never opens a window longer than the minimum cross-shard propagation
//! delay (the conservative lookahead), so an arrival can never land
//! inside the window that produced it.
//!
//! # Determinism
//!
//! Every event carries a canonical key (see `Shard::alloc_key`) of the form
//! `((origin + 1) << 32) | per-origin counter`, where `origin` is the node
//! whose handler scheduled it; coordinator-level events (forwarding swaps,
//! fault updates) use keys below `1 << 32` so they sort before node events
//! at the same instant. Queues order by `(time, key)`, so each node's
//! handlers run in an order independent of how nodes are grouped into
//! shards — which makes the per-origin counters, packet ids, loss-RNG
//! draws, and trace tags of a sharded run bit-identical to the serial
//! reference engine at `sim_shards = 1`.

use crate::app::{AppAction, AppCtx, Application};
use crate::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use crate::config::SimConfig;
use crate::device::{Device, DeviceKind};
use crate::event::{Event, EventQueue};
use crate::node::Node;
use crate::packet::{flow_hash, packet_id, Packet, Payload};
use crate::stats::SimStats;
use crate::trace::{Trace, TraceKind};
use hypatia_constellation::{Constellation, NodeId};
use hypatia_fault::{FaultEvent, FaultState};
use hypatia_orbit::geodesy::propagation_delay_km;
use hypatia_routing::forwarding::{ForwardingState, MultipathState};
use hypatia_util::hash::Fnv1a64;
use hypatia_util::rng::DetRng;
use hypatia_util::{DataRate, SimDuration, SimTime};
use std::sync::Arc;

/// Canonical key of a forwarding-state swap: sorts before every other
/// same-instant event.
pub(crate) const FORWARDING_KEY: u64 = 0;

/// Canonical key of fault-schedule entry `index`: after the forwarding
/// swap, before any node event, in schedule order.
pub(crate) fn fault_key(index: u64) -> u64 {
    1 + index
}

/// Canonical key of fluid-boundary `index`: after every same-instant
/// forwarding/fault key, before any node event (node keys start at
/// `1 << 32`). Boundary schedules stay far below `2^31` entries.
pub(crate) fn fluid_key(index: u64) -> u64 {
    debug_assert!(index < 1 << 31, "fluid boundary index overflows its key range");
    (1 << 31) + index
}

/// Upper bound on relative speed between any two nodes, km/s (two LEO
/// satellites head-on; ground stations are far slower). Used to shrink the
/// lookahead window so distances measured at the window start stay valid
/// throughout it.
const MAX_RELATIVE_SPEED_KM_S: f64 = 16.0;

/// The spatial partition of the node set.
///
/// Satellites are split into contiguous id ranges — satellite ids are
/// plane-major, so ranges are blocks of adjacent orbital planes and most
/// ISLs (intra-plane, and inter-plane within a block) stay shard-local.
/// Ground stations are dealt round-robin; their cross-shard lookahead
/// bound is the shell altitude, which their shard assignment cannot
/// change.
#[derive(Debug)]
pub(crate) struct Partition {
    /// Owning shard of each node, by node index.
    owner: Vec<u32>,
    shards: usize,
    /// ISL pairs whose endpoints live on different shards — the dynamic
    /// part of the lookahead bound, re-measured each epoch.
    cross_isls: Vec<(NodeId, NodeId)>,
    /// Static lower bound on any cross-shard GSL distance (the minimum
    /// shell altitude, minus slack for geodetic-radius differences), or
    /// `+inf` when no ground stations exist.
    gsl_bound_km: f64,
}

impl Partition {
    /// Partition `constellation` into (at most) `requested` shards.
    pub(crate) fn new(constellation: &Constellation, requested: usize) -> Partition {
        let n_sats = constellation.num_satellites();
        let shards = requested.max(1).min(n_sats.max(1));
        let mut owner = vec![0u32; constellation.num_nodes()];
        for (s, o) in owner.iter_mut().enumerate().take(n_sats) {
            *o = (s * shards / n_sats) as u32;
        }
        for g in 0..constellation.num_ground_stations() {
            owner[n_sats + g] = (g % shards) as u32;
        }
        let cross_isls = constellation
            .isls
            .iter()
            .filter(|&&(a, b)| owner[a as usize] != owner[b as usize])
            .map(|&(a, b)| (NodeId(a), NodeId(b)))
            .collect();
        let gsl_bound_km = if shards > 1 && constellation.num_ground_stations() > 0 {
            let min_alt =
                constellation.shells.iter().map(|s| s.altitude_km).fold(f64::INFINITY, f64::min);
            // A satellite at altitude h is never closer than h to the
            // ground; 30 km of slack covers the spherical-vs-ellipsoidal
            // radius difference in the two position models.
            (min_alt - 30.0).max(50.0)
        } else {
            f64::INFINITY
        };
        Partition { owner, shards, cross_isls, gsl_bound_km }
    }

    /// Number of shards (≥ 1; `requested` clamped to the satellite count).
    pub(crate) fn shards(&self) -> usize {
        self.shards
    }

    /// Owning shard of `node`.
    pub(crate) fn owner(&self, node: NodeId) -> usize {
        self.owner[node.index()] as usize
    }

    /// Conservative lookahead window with geometry evaluated at `geom_t`:
    /// no transmission started inside a window of this length can arrive
    /// on another shard before the window ends. `None` when no
    /// cross-shard link exists at all (windows may then be unbounded).
    ///
    /// Derivation: a cross-shard hop spans at least
    /// `d_min(geom_t) − v_rel · w` km at any instant of a window of
    /// length `w`, so `w ≤ d_min / (c + v_rel)` guarantees
    /// `arrival = t + d/c ≥ window end`. Since `v_rel ≪ c`, shaving 0.1%
    /// off the propagation delay of `d_min` more than covers the motion
    /// term.
    pub(crate) fn lookahead_at(
        &self,
        constellation: &Constellation,
        geom_t: SimTime,
    ) -> Option<SimDuration> {
        let mut d_min = self.gsl_bound_km;
        for &(a, b) in &self.cross_isls {
            d_min = d_min.min(constellation.distance_km(a, b, geom_t));
        }
        if !d_min.is_finite() {
            return None;
        }
        let margin =
            (1.0 - MAX_RELATIVE_SPEED_KM_S / hypatia_util::constants::C_VACUUM_KM_PER_S).min(0.999);
        let ns = (propagation_delay_km(d_min.max(0.0)).nanos() as f64 * margin) as u64;
        Some(SimDuration::from_nanos(ns.max(1)))
    }
}

/// A cross-shard packet arrival, parked in an outbox until the barrier.
#[derive(Debug)]
pub(crate) struct Outbound {
    pub(crate) at: SimTime,
    pub(crate) key: u64,
    pub(crate) node: u32,
    pub(crate) packet: Packet,
}

pub(crate) struct AppEntry {
    pub(crate) app: Option<Box<dyn Application>>,
    pub(crate) node: NodeId,
    pub(crate) port: u16,
}

/// One shard of the simulation: the nodes it owns, their event queue, and
/// every piece of state their handlers touch.
pub(crate) struct Shard {
    pub(crate) id: usize,
    constellation: Arc<Constellation>,
    config: SimConfig,
    partition: Arc<Partition>,
    pub(crate) now: SimTime,
    pub(crate) queue: EventQueue,
    /// Full-size node vector; devices and port bindings exist only on
    /// owned nodes (events are only ever dispatched at owned nodes).
    pub(crate) nodes: Vec<Node>,
    /// Sparse application table indexed by global app id; only apps on
    /// owned nodes are populated.
    apps: Vec<Option<AppEntry>>,
    fwd: Arc<ForwardingState>,
    mp: Option<Arc<MultipathState>>,
    /// This shard's replica of the live fault state; every schedule entry
    /// is applied to every shard at the barrier it falls on.
    pub(crate) fault_state: Option<FaultState>,
    /// Per-origin-node event-key counters (canonical key low bits).
    node_key_seq: Vec<u32>,
    /// Per-origin-node packet-id counters.
    node_packet_seq: Vec<u32>,
    /// Per-node GSL loss processes, seeded from `(loss_seed, node)` so
    /// draws are independent of cross-node event interleaving.
    loss_rngs: Vec<DetRng>,
    /// Cross-shard arrivals produced this window, by destination shard.
    pub(crate) outbox: Vec<Vec<Outbound>>,
    pub(crate) trace: Trace,
    pub(crate) stats: SimStats,
}

impl Shard {
    pub(crate) fn new(
        id: usize,
        constellation: Arc<Constellation>,
        config: &SimConfig,
        partition: Arc<Partition>,
        fwd: Arc<ForwardingState>,
        mp: Option<Arc<MultipathState>>,
    ) -> Shard {
        let num_nodes = constellation.num_nodes();
        let mut nodes: Vec<Node> = (0..num_nodes).map(|i| Node::new(NodeId(i as u32))).collect();
        for &(a, b) in &constellation.isls {
            if partition.owner(NodeId(a)) == id {
                nodes[a as usize].add_device(Device::new(
                    DeviceKind::Isl { peer: NodeId(b) },
                    config.effective_isl_rate(),
                    config.queue_packets,
                    config.utilization_bucket,
                ));
            }
            if partition.owner(NodeId(b)) == id {
                nodes[b as usize].add_device(Device::new(
                    DeviceKind::Isl { peer: NodeId(a) },
                    config.effective_isl_rate(),
                    config.queue_packets,
                    config.utilization_bucket,
                ));
            }
        }
        for (i, node) in nodes.iter_mut().enumerate() {
            if partition.owner(NodeId(i as u32)) == id {
                node.add_device(Device::new(
                    DeviceKind::Gsl,
                    config.effective_gsl_rate(),
                    config.queue_packets,
                    config.utilization_bucket,
                ));
            }
        }
        let loss_rngs = (0..num_nodes)
            .map(|i| {
                let mut h = Fnv1a64::new();
                h.write_u64(config.loss_seed);
                h.write_u32(i as u32);
                DetRng::new(h.finish())
            })
            .collect();
        let fault_state = config.faults.as_ref().map(|s| FaultState::at(s, SimTime::ZERO));
        Shard {
            id,
            constellation,
            config: config.clone(),
            partition,
            now: SimTime::ZERO,
            queue: EventQueue::with_kind(config.queue),
            nodes,
            apps: Vec::new(),
            fwd,
            mp,
            fault_state,
            node_key_seq: vec![0; num_nodes],
            node_packet_seq: vec![0; num_nodes],
            loss_rngs,
            outbox: Vec::new(),
            trace: Trace::with_sampling(config.trace_limit, config.trace_sample_every),
            stats: SimStats::default(),
        }
    }

    /// Size the outbox for `shards` destinations (once, by the facade).
    pub(crate) fn init_outbox(&mut self, shards: usize) {
        self.outbox = (0..shards).map(|_| Vec::new()).collect();
    }

    /// Swap in new forwarding (and multipath) state at a barrier.
    pub(crate) fn set_forwarding(
        &mut self,
        fwd: Arc<ForwardingState>,
        mp: Option<Arc<MultipathState>>,
    ) {
        self.fwd = fwd;
        self.mp = mp;
    }

    /// Apply one fault-schedule entry to this shard's replica.
    pub(crate) fn apply_fault(&mut self, event: &FaultEvent) {
        self.fault_state.as_mut().expect("fault event without live state").apply(event);
    }

    /// Set residual device rates pushed by the coordinator's fluid solver
    /// (hybrid mode): each change names a directed link — `(node, peer)`
    /// for an ISL, `(node, GSL_PEER)` for the node's shared GSL device —
    /// and the rate its device serializes at from now on. Non-owned nodes
    /// are skipped, so broadcasting the full change set to every shard is
    /// correct. A transmission already in flight keeps the rate it
    /// started with (rates are sampled at `start_tx`), which is the same
    /// on every engine because changes apply at canonical instants.
    pub(crate) fn apply_link_rates(&mut self, changes: &[((u32, u32), DataRate)]) {
        for &((node, peer), rate) in changes {
            if self.partition.owner(NodeId(node)) != self.id {
                continue;
            }
            let n = &mut self.nodes[node as usize];
            let idx = if peer == crate::fluid::GSL_PEER {
                n.gsl_device()
            } else {
                n.device_for(NodeId(peer))
            };
            if let Some(idx) = idx {
                n.devices[idx].rate = rate;
            }
        }
    }

    /// Allocate the canonical key of an event originated by `origin`'s
    /// handler. Keys increase in the origin node's execution order, which
    /// is shard-count-independent.
    fn alloc_key(&mut self, origin: u32) -> u64 {
        let seq = self.node_key_seq[origin as usize];
        self.node_key_seq[origin as usize] = seq.checked_add(1).expect("node key space exhausted");
        ((origin as u64 + 1) << 32) | seq as u64
    }

    fn alloc_packet_id(&mut self, origin: u32) -> u64 {
        let seq = self.node_packet_seq[origin as usize];
        self.node_packet_seq[origin as usize] =
            seq.checked_add(1).expect("packet id space exhausted");
        packet_id(NodeId(origin), seq)
    }

    /// Install application `idx` at `(node, port)` and run its `on_start`.
    pub(crate) fn install_app(
        &mut self,
        idx: u32,
        node: NodeId,
        port: u16,
        app: Box<dyn Application>,
        now: SimTime,
    ) {
        self.install_app_multi(idx, node, &[port], app, now);
    }

    /// Install application `idx` bound to every port in `ports` (bulk
    /// applications owning one flow endpoint per port) and run its
    /// `on_start`. The app's context port is `ports[0]`.
    pub(crate) fn install_app_multi(
        &mut self,
        idx: u32,
        node: NodeId,
        ports: &[u16],
        app: Box<dyn Application>,
        now: SimTime,
    ) {
        assert!(!ports.is_empty(), "an application needs at least one port");
        while self.apps.len() <= idx as usize {
            self.apps.push(None);
        }
        for &port in ports {
            self.nodes[node.index()].bind_port(port, idx);
        }
        if let Some((flows, bytes)) = app.flow_footprint() {
            self.stats.flow_count += flows;
            self.stats.flow_state_bytes += bytes;
        }
        self.apps[idx as usize] = Some(AppEntry { app: Some(app), node, port: ports[0] });
        self.now = self.now.max(now);
        // Setup records sort under a fresh key of the app's node, exactly
        // as the serial engine assigns it.
        let key = self.alloc_key(node.0);
        self.trace.set_key(key);
        self.with_app(idx, |app, ctx| app.on_start(ctx));
    }

    /// Borrow installed application `idx`, downcast to its concrete type.
    pub(crate) fn app_as<T: Application>(&self, idx: u32) -> Option<&T> {
        self.apps.get(idx as usize)?.as_ref()?.app.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// Pop and handle every event due at or before `end_inclusive`.
    /// Cross-shard arrivals land in [`Shard::outbox`]; everything else is
    /// shard-local.
    pub(crate) fn run_window(&mut self, end_inclusive: SimTime) {
        while let Some((t, key, event)) = self.queue.pop_entry_before(end_inclusive) {
            debug_assert!(t >= self.now, "time went backwards on shard {}", self.id);
            self.now = t;
            self.stats.events += 1;
            self.trace.set_key(key);
            self.handle(event);
        }
    }

    /// Dispatch one node-level event. Coordinator events (forwarding
    /// swaps, fault updates) never reach a shard's handler in sharded
    /// mode; in serial mode the facade intercepts them before dispatch.
    pub(crate) fn handle(&mut self, event: Event) {
        match event {
            Event::Arrival { node, packet } => self.arrival(node, packet),
            Event::TxComplete { node, device } => self.tx_complete(node, device),
            Event::AppTimer { app, timer_id } => {
                self.with_app(app, |a, ctx| a.on_timer(ctx, timer_id));
            }
            Event::ForwardingUpdate { .. }
            | Event::FaultUpdate { .. }
            | Event::FluidUpdate { .. } => {
                unreachable!("coordinator event dispatched to a shard")
            }
        }
    }

    fn arrival(&mut self, node: u32, packet: Packet) {
        debug_assert_eq!(self.partition.owner(NodeId(node)), self.id, "arrival on wrong shard");
        // A packet propagating towards a satellite that failed mid-flight
        // is lost with it. Ground-station nodes never fail (weather only
        // attenuates their GSLs), so they always receive.
        if let Some(f) = &self.fault_state {
            if self.constellation.is_satellite(NodeId(node)) && f.satellite_down(node as usize) {
                self.stats.fault_drops += 1;
                self.trace.record_flow(
                    self.now,
                    NodeId(node),
                    packet.id,
                    packet.flow_hash,
                    TraceKind::FaultDrop,
                );
                return;
            }
        }
        self.stats.hop_deliveries += 1;
        self.trace.record_flow(
            self.now,
            NodeId(node),
            packet.id,
            packet.flow_hash,
            TraceKind::Arrive,
        );
        self.process_at_node(node, packet);
    }

    /// Is the directed hop `a -> b` usable under the live fault state?
    fn link_up(&self, a: NodeId, b: NodeId) -> bool {
        let Some(f) = &self.fault_state else { return true };
        if f.all_up() {
            return true;
        }
        let n_sats = self.constellation.num_satellites();
        match (self.constellation.is_satellite(a), self.constellation.is_satellite(b)) {
            (true, true) => f.isl_link_up(a.0, b.0),
            (true, false) => f.gsl_link_up(a.index(), b.index() - n_sats),
            (false, true) => f.gsl_link_up(b.index(), a.index() - n_sats),
            // GS <-> GS links do not exist in the topology.
            (false, false) => true,
        }
    }

    /// A packet is at `node`: deliver locally or forward.
    fn process_at_node(&mut self, node: u32, packet: Packet) {
        if packet.dst.0 == node {
            self.deliver(node, packet);
        } else {
            self.forward(node, packet);
        }
    }

    fn deliver(&mut self, node: u32, packet: Packet) {
        self.stats.delivered += 1;
        self.trace.record_flow(
            self.now,
            NodeId(node),
            packet.id,
            packet.flow_hash,
            TraceKind::Deliver,
        );
        self.stats.payload_bytes_delivered += packet.payload_bytes() as u64;
        match packet.payload {
            // Kernel-style echo: answer pings without an application.
            Payload::Ping { seq } => {
                self.stats.pings_echoed += 1;
                let pong = Packet {
                    id: self.alloc_packet_id(node),
                    src: NodeId(node),
                    dst: packet.src,
                    src_port: packet.dst_port,
                    dst_port: packet.src_port,
                    size_bytes: packet.size_bytes,
                    payload: Payload::Pong { seq, ping_injected_at: packet.injected_at },
                    injected_at: self.now,
                    hops: 0,
                    flow_hash: 0, // stamped by inject
                };
                self.inject(pong);
            }
            _ => match self.nodes[node as usize].app_on_port(packet.dst_port) {
                Some(app) => self.with_app(app, |a, ctx| a.on_packet(ctx, &packet)),
                None => self.stats.unclaimed += 1,
            },
        }
    }

    fn forward(&mut self, node: u32, packet: Packet) {
        // `packet.flow_hash` was computed once at injection; forwarding a
        // packet costs no hashing at all.
        let chosen = match &self.mp {
            Some(mp) => mp.next_hop(NodeId(node), packet.dst, packet.flow_hash),
            None => self.fwd.next_hop(NodeId(node), packet.dst),
        };
        let Some(next_hop) = chosen else {
            self.stats.routing_drops += 1;
            self.trace.record_flow(
                self.now,
                NodeId(node),
                packet.id,
                packet.flow_hash,
                TraceKind::RoutingDrop,
            );
            return;
        };
        // Between a fault event and the next forwarding recomputation the
        // state may still point into a failed component: those packets are
        // lost (the paper's lossless-handoff rule covers reassignment, not
        // destruction of the link).
        if !self.link_up(NodeId(node), next_hop) {
            self.stats.fault_drops += 1;
            self.trace.record_flow(
                self.now,
                NodeId(node),
                packet.id,
                packet.flow_hash,
                TraceKind::FaultDrop,
            );
            return;
        }
        let Some(dev_idx) = self.nodes[node as usize].device_for(next_hop) else {
            self.stats.routing_drops += 1;
            self.trace.record_flow(
                self.now,
                NodeId(node),
                packet.id,
                packet.flow_hash,
                TraceKind::RoutingDrop,
            );
            return;
        };
        let packet_id = packet.id;
        let packet_flow = packet.flow_hash;
        match self.nodes[node as usize].devices[dev_idx].enqueue(packet, next_hop, self.now) {
            Ok(Some(ser)) => {
                let key = self.alloc_key(node);
                self.queue.schedule_keyed(
                    self.now + ser,
                    key,
                    Event::TxComplete { node, device: dev_idx as u32 },
                );
            }
            Ok(None) => {}
            Err(_) => {
                self.stats.queue_drops += 1;
                self.trace.record_flow(
                    self.now,
                    NodeId(node),
                    packet_id,
                    packet_flow,
                    TraceKind::QueueDrop,
                );
            }
        }
    }

    fn tx_complete(&mut self, node: u32, device: u32) {
        let is_gsl = matches!(
            self.nodes[node as usize].devices[device as usize].kind,
            crate::device::DeviceKind::Gsl
        );
        let (done, next) = self.nodes[node as usize].devices[device as usize].tx_complete(self.now);
        if let Some(ser) = next {
            let key = self.alloc_key(node);
            self.queue.schedule_keyed(self.now + ser, key, Event::TxComplete { node, device });
        }
        // The link may have been cut while the packet serialized: it never
        // makes it onto the channel. The device keeps draining — each
        // queued packet is judged at its own transmission instant.
        if !self.link_up(NodeId(node), done.next_hop) {
            self.stats.fault_drops += 1;
            self.trace.record_flow(
                self.now,
                NodeId(node),
                done.packet.id,
                done.packet.flow_hash,
                TraceKind::FaultDrop,
            );
            return;
        }
        // Channel impairment: GSL transmissions may be lost (weather model
        // stand-in; disabled by default).
        if is_gsl
            && self.config.gsl_loss_rate > 0.0
            && self.loss_rngs[node as usize].next_f64() < self.config.gsl_loss_rate
        {
            self.stats.channel_drops += 1;
            self.trace.record_flow(
                self.now,
                NodeId(node),
                done.packet.id,
                done.packet.flow_hash,
                TraceKind::ChannelDrop,
            );
            return;
        }
        // Propagation from live geometry — frozen runs pin geometry to t=0.
        let geom_t = if self.config.freeze_at_epoch { SimTime::ZERO } else { self.now };
        let distance = self.constellation.distance_km(NodeId(node), done.next_hop, geom_t);
        let prop = propagation_delay_km(distance);
        let mut packet = done.packet;
        packet.hops += 1;
        let at = self.now + prop;
        let key = self.alloc_key(node);
        let dst_shard = self.partition.owner(done.next_hop);
        if dst_shard == self.id {
            self.queue.schedule_keyed(at, key, Event::Arrival { node: done.next_hop.0, packet });
        } else {
            self.outbox[dst_shard].push(Outbound { at, key, node: done.next_hop.0, packet });
        }
    }

    /// Put a freshly-created packet into the network at its source node.
    /// The flow hash is stamped here — once per packet, never per hop.
    fn inject(&mut self, mut packet: Packet) {
        packet.flow_hash = flow_hash(packet.src, packet.dst, packet.src_port, packet.dst_port);
        self.stats.injected += 1;
        self.trace.record_flow(
            self.now,
            packet.src,
            packet.id,
            packet.flow_hash,
            TraceKind::Inject,
        );
        self.process_at_node(packet.src.0, packet);
    }

    /// Run `f` on app `idx` with a fresh context, then apply its actions.
    pub(crate) fn with_app(&mut self, idx: u32, f: impl FnOnce(&mut dyn Application, &mut AppCtx)) {
        let (node, port) = {
            let entry = self.apps[idx as usize].as_ref().expect("app on wrong shard");
            (entry.node, entry.port)
        };
        let mut app = self.apps[idx as usize]
            .as_mut()
            .expect("app on wrong shard")
            .app
            .take()
            .expect("re-entrant app dispatch");
        let mut ctx = AppCtx::new(self.now, node, port);
        f(app.as_mut(), &mut ctx);
        let actions = ctx.take_actions();
        self.apps[idx as usize].as_mut().expect("app slot vanished").app = Some(app);
        self.apply_actions(idx, node, port, actions);
    }

    /// Serialize this shard's mutable state into a checkpoint body.
    ///
    /// Takes `&mut self` because the event queue can only be walked in
    /// canonical order by draining it; every entry is re-inserted with its
    /// original `(time, key)`, which reproduces the identical total order,
    /// so the live run is unaffected.
    ///
    /// Only called at a barrier, where the outbox is empty by the engine's
    /// window invariant — a populated outbox is a logic error and is
    /// rejected rather than silently dropped.
    pub(crate) fn save(&mut self, w: &mut SnapWriter) -> Result<(), CheckpointError> {
        if self.outbox.iter().any(|ob| !ob.is_empty()) {
            return Err(CheckpointError::Malformed(format!(
                "shard {} has undelivered cross-shard packets at a checkpoint barrier",
                self.id
            )));
        }
        w.put_tag(b"SHRD");
        w.put_usize(self.id);
        w.put_time(self.now);

        w.put_tag(b"EVTQ");
        let mut entries = Vec::with_capacity(self.queue.len());
        while let Some(entry) = self.queue.pop_entry_before(SimTime::MAX) {
            entries.push(entry);
        }
        w.put_usize(entries.len());
        for (t, key, event) in &entries {
            w.put_time(*t);
            w.put_u64(*key);
            w.put_event(event);
        }
        for (t, key, event) in entries {
            self.queue.schedule_keyed(t, key, event);
        }

        w.put_tag(b"NODS");
        w.put_usize(self.nodes.len());
        for node in &self.nodes {
            w.put_usize(node.devices.len());
            for device in &node.devices {
                device.save(w);
            }
        }

        w.put_tag(b"APPS");
        w.put_usize(self.apps.len());
        for slot in &self.apps {
            match slot {
                Some(entry) => {
                    w.put_bool(true);
                    let app = entry.app.as_ref().ok_or_else(|| {
                        CheckpointError::Malformed("checkpoint during app dispatch".into())
                    })?;
                    app.save_state(w)?;
                }
                None => w.put_bool(false),
            }
        }

        w.put_tag(b"CTRS");
        w.put_usize(self.node_key_seq.len());
        for &seq in &self.node_key_seq {
            w.put_u32(seq);
        }
        for &seq in &self.node_packet_seq {
            w.put_u32(seq);
        }

        w.put_tag(b"RNGS");
        w.put_usize(self.loss_rngs.len());
        for rng in &self.loss_rngs {
            for word in rng.state() {
                w.put_u64(word);
            }
        }

        w.put_tag(b"TRAC");
        self.trace.save(w);
        w.put_tag(b"STAT");
        self.stats.save(w);
        Ok(())
    }

    /// Restore the state captured by [`Shard::save`] into a freshly
    /// rebuilt shard (same constellation, config, partition, and installed
    /// applications). Forwarding state and the fault replica are *not*
    /// restored here — the facade recomputes/replays them, since they are
    /// derived deterministically from the spec and the restored clock.
    pub(crate) fn restore(&mut self, r: &mut SnapReader) -> Result<(), CheckpointError> {
        r.expect_tag(b"SHRD")?;
        let id = r.get_usize()?;
        if id != self.id {
            return Err(CheckpointError::Malformed(format!(
                "shard id mismatch: snapshot has {id}, rebuilt shard is {}",
                self.id
            )));
        }
        self.now = r.get_time()?;

        r.expect_tag(b"EVTQ")?;
        // Discard the rebuild's bootstrap events (app on_start timers and
        // sends): the snapshot's queue is the complete pending set.
        while self.queue.pop_entry_before(SimTime::MAX).is_some() {}
        let n_events = r.get_usize()?;
        for _ in 0..n_events {
            let t = r.get_time()?;
            let key = r.get_u64()?;
            let event = r.get_event()?;
            self.queue.schedule_keyed(t, key, event);
        }

        r.expect_tag(b"NODS")?;
        let n_nodes = r.get_usize()?;
        if n_nodes != self.nodes.len() {
            return Err(CheckpointError::Malformed(format!(
                "snapshot has {n_nodes} nodes, rebuilt shard has {}",
                self.nodes.len()
            )));
        }
        for node in &mut self.nodes {
            let n_devices = r.get_usize()?;
            if n_devices != node.devices.len() {
                return Err(CheckpointError::Malformed(format!(
                    "node {} has {n_devices} devices in the snapshot, {} rebuilt",
                    node.id.0,
                    node.devices.len()
                )));
            }
            for device in &mut node.devices {
                device.restore(r)?;
            }
        }

        r.expect_tag(b"APPS")?;
        let n_apps = r.get_usize()?;
        if n_apps != self.apps.len() {
            return Err(CheckpointError::Malformed(format!(
                "snapshot has {n_apps} app slots, rebuilt shard has {}",
                self.apps.len()
            )));
        }
        for (idx, slot) in self.apps.iter_mut().enumerate() {
            let present = r.get_bool()?;
            match slot {
                Some(entry) if present => {
                    let app = entry.app.as_mut().ok_or_else(|| {
                        CheckpointError::Malformed("restore during app dispatch".into())
                    })?;
                    app.restore_state(r)?;
                }
                None if !present => {}
                _ => {
                    return Err(CheckpointError::Malformed(format!(
                        "app slot {idx} presence mismatch between snapshot and rebuild"
                    )));
                }
            }
        }

        r.expect_tag(b"CTRS")?;
        let n_ctrs = r.get_usize()?;
        if n_ctrs != self.node_key_seq.len() {
            return Err(CheckpointError::Malformed(format!(
                "snapshot has {n_ctrs} node counters, rebuilt shard has {}",
                self.node_key_seq.len()
            )));
        }
        for seq in &mut self.node_key_seq {
            *seq = r.get_u32()?;
        }
        for seq in &mut self.node_packet_seq {
            *seq = r.get_u32()?;
        }

        r.expect_tag(b"RNGS")?;
        let n_rngs = r.get_usize()?;
        if n_rngs != self.loss_rngs.len() {
            return Err(CheckpointError::Malformed(format!(
                "snapshot has {n_rngs} loss RNGs, rebuilt shard has {}",
                self.loss_rngs.len()
            )));
        }
        for rng in &mut self.loss_rngs {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = r.get_u64()?;
            }
            *rng = DetRng::from_state(s);
        }

        r.expect_tag(b"TRAC")?;
        self.trace.restore(r)?;
        r.expect_tag(b"STAT")?;
        self.stats.restore(r)?;
        for ob in &mut self.outbox {
            ob.clear();
        }
        Ok(())
    }

    /// Check this shard's conservation invariants (audit mode): every
    /// packet a device was offered is transmitted, dropped, queued, or
    /// in flight, and no queue exceeds its configured capacity. Arrivals
    /// pending in the event queue are counted by the caller, which owns
    /// the cross-shard view.
    pub(crate) fn audit_devices(&self, out: &mut Vec<crate::audit::AuditViolation>) {
        let t_ns = self.now.nanos();
        for node in &self.nodes {
            for (d, device) in node.devices.iter().enumerate() {
                let s = &device.stats;
                let accounted = s.packets_tx + s.drops + device.occupancy();
                if s.packets_in != accounted {
                    out.push(crate::audit::AuditViolation::DeviceConservation {
                        t_ns,
                        node: node.id.0,
                        device: d as u32,
                        offered: s.packets_in,
                        accounted,
                    });
                }
                let (queue_len, capacity) =
                    (device.queue_len() as u64, device.queue_capacity as u64);
                if queue_len > capacity {
                    out.push(crate::audit::AuditViolation::QueueOverCapacity {
                        t_ns,
                        node: node.id.0,
                        device: d as u32,
                        queue_len,
                        capacity,
                    });
                }
            }
        }
    }

    /// Packets sitting in this shard's pending `Arrival` events (in-flight
    /// on the wire). Drains and re-inserts the queue, like [`Shard::save`].
    pub(crate) fn in_flight_arrivals(&mut self) -> u64 {
        let mut entries = Vec::with_capacity(self.queue.len());
        let mut arrivals = 0u64;
        while let Some(entry) = self.queue.pop_entry_before(SimTime::MAX) {
            if matches!(entry.2, Event::Arrival { .. }) {
                arrivals += 1;
            }
            entries.push(entry);
        }
        for (t, key, event) in entries {
            self.queue.schedule_keyed(t, key, event);
        }
        arrivals
    }

    fn apply_actions(&mut self, app_idx: u32, node: NodeId, port: u16, actions: Vec<AppAction>) {
        for action in actions {
            match action {
                AppAction::Send { dst, dst_port, size_bytes, payload } => {
                    let packet = Packet {
                        id: self.alloc_packet_id(node.0),
                        src: node,
                        dst,
                        src_port: port,
                        dst_port,
                        size_bytes,
                        payload,
                        injected_at: self.now,
                        hops: 0,
                        flow_hash: 0, // stamped by inject
                    };
                    self.inject(packet);
                }
                AppAction::SendFrom { src_port, dst, dst_port, size_bytes, payload } => {
                    let packet = Packet {
                        id: self.alloc_packet_id(node.0),
                        src: node,
                        dst,
                        src_port,
                        dst_port,
                        size_bytes,
                        payload,
                        injected_at: self.now,
                        hops: 0,
                        flow_hash: 0, // stamped by inject
                    };
                    self.inject(packet);
                }
                AppAction::Timer { delay, timer_id } => {
                    let key = self.alloc_key(node.0);
                    self.queue.schedule_keyed(
                        self.now + delay,
                        key,
                        Event::AppTimer { app: app_idx, timer_id },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;

    fn constellation() -> Constellation {
        Constellation::build(
            "shardtest",
            vec![ShellSpec::new("A", 550.0, 6, 8, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 5.0, 5.0), GroundStation::new("b", -10.0, 60.0)],
            GslConfig::new(10.0),
        )
    }

    #[test]
    fn partition_covers_every_node_and_clamps() {
        let c = constellation();
        for requested in [1, 2, 4, 8, 1000] {
            let p = Partition::new(&c, requested);
            assert!(p.shards() >= 1 && p.shards() <= c.num_satellites().max(1));
            assert!(p.shards() <= requested.max(1));
            // Every shard owns at least one satellite (contiguous ranges
            // of `i * shards / n` are never empty when shards <= n).
            let mut seen = vec![false; p.shards()];
            for s in 0..c.num_satellites() {
                seen[p.owner(c.sat_node(s))] = true;
            }
            assert!(seen.iter().all(|&s| s), "empty shard at requested={requested}");
            for g in 0..c.num_ground_stations() {
                assert!(p.owner(c.gs_node(g)) < p.shards());
            }
        }
    }

    #[test]
    fn satellite_partition_is_contiguous() {
        let c = constellation();
        let p = Partition::new(&c, 4);
        let owners: Vec<usize> = (0..c.num_satellites()).map(|s| p.owner(c.sat_node(s))).collect();
        for w in owners.windows(2) {
            assert!(w[0] <= w[1], "satellite shard ids must be non-decreasing: {owners:?}");
        }
    }

    #[test]
    fn lookahead_bounded_by_cross_shard_geometry() {
        let c = constellation();
        let single = Partition::new(&c, 1);
        // One shard: no cross-shard links, unbounded lookahead.
        assert!(single.lookahead_at(&c, SimTime::ZERO).is_none());

        let p = Partition::new(&c, 4);
        let w = p.lookahead_at(&c, SimTime::ZERO).expect("cross-shard links exist");
        // The window can never exceed the GSL bound (520 km ≈ 1.73 ms)
        // and must stay a useful parallel window (≥ 100 µs).
        assert!(w <= propagation_delay_km(520.0), "window too long: {w:?}");
        assert!(w >= SimDuration::from_micros(100), "window collapsed: {w:?}");

        // The window is a lower bound on every cross-shard ISL's
        // propagation delay at the measurement instant.
        for &(a, b) in &p.cross_isls {
            let prop = propagation_delay_km(c.distance_km(a, b, SimTime::ZERO));
            assert!(w <= prop, "window {w:?} exceeds cross-shard ISL delay {prop:?}");
        }
    }
}
