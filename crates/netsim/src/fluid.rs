//! Fluid-flow modelling: a max-min fair rate solver for bulk traffic.
//!
//! Packet-level simulation charges every packet of every flow at least one
//! event per hop, so long-lived bulk flows dominate the event budget of
//! large workloads even though their behaviour is macroscopically simple:
//! a constant-rate flow on a stable path delivers `rate × time` bytes.
//! This module models such flows *analytically*. Each fluid flow is
//! assigned a per-link bandwidth share by progressive filling
//! (water-filling: all unfrozen flows rise at the same rate; a flow
//! freezes when it reaches its offered demand or when a link on its path
//! saturates — the classic max-min fair allocation), and delivered bytes
//! are integrated in closed form between events. Rates only change when
//! the network changes, so the solver re-runs exactly at:
//!
//! * forwarding-state swaps (paths move),
//! * fault-schedule updates (links and satellites come and go),
//! * fluid-flow install and finish boundaries (demand appears/vanishes).
//!
//! Between those instants the rate vector is constant and integration is
//! exact — bulk traffic costs O(re-solves), not O(packets).
//!
//! # Hybrid coupling
//!
//! In [`SimMode::Hybrid`] the aggregate fluid load of each directed link
//! is subtracted from that link device's capacity, so packet-level queues
//! (pings, TCP control traffic, short flows) serialize against the
//! *residual* rate. Fluid flows see full capacity (they are the bulk
//! majority and max-min filling already shares it); packet traffic sees
//! what the bulk load leaves behind, floored at 1% of capacity so a
//! saturated link still drains its queue deterministically.
//!
//! # Determinism
//!
//! Solver state lives in the simulation coordinator, never in a shard.
//! Re-solves happen at canonical global-event instants — the same
//! `(time, key)` points both engines already serialize coordinator work
//! through — and the allocation is a pure function of (forwarding state,
//! fault state, flow table), evaluated in a deterministic order
//! (`BTreeMap` links, install-order bundles). Observables are therefore
//! bit-identical at any `sim_shards` and for either queue kind.

use crate::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use crate::packet::HEADER_BYTES;
use hypatia_constellation::{Constellation, NodeId};
use hypatia_fault::FaultState;
use hypatia_routing::forwarding::ForwardingState;
use hypatia_util::{DataRate, SimTime};
use std::collections::BTreeMap;

/// How the simulator treats bulk flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Every flow is packet-level (the reference engine; the default).
    #[default]
    Packet,
    /// Bulk flows are fluid; packet traffic sees full link capacity
    /// (no coupling — the analytic fast path for bulk-only studies).
    Fluid,
    /// Bulk flows are fluid *and* their per-link load is subtracted from
    /// device capacity, so packet-level traffic sees the residual.
    Hybrid,
}

impl SimMode {
    /// Display / spec name.
    pub fn name(self) -> &'static str {
        match self {
            SimMode::Packet => "packet",
            SimMode::Fluid => "fluid",
            SimMode::Hybrid => "hybrid",
        }
    }

    /// Parse a spec value (`packet`, `fluid`, or `hybrid`).
    pub fn parse(s: &str) -> Option<SimMode> {
        match s {
            "packet" => Some(SimMode::Packet),
            "fluid" => Some(SimMode::Fluid),
            "hybrid" => Some(SimMode::Hybrid),
            _ => None,
        }
    }
}

/// Sentinel peer code identifying a node's shared GSL device in a
/// [`LinkKey`] (ISL links carry the actual peer node index).
pub(crate) const GSL_PEER: u32 = u32::MAX;

/// A directed link device: `(node, peer)` for an ISL, `(node, GSL_PEER)`
/// for the node's single shared GSL device — mirroring the packet model,
/// where all of a node's ground↔satellite traffic serializes through one
/// queue.
pub(crate) type LinkKey = (u32, u32);

/// Relative tolerance for freeze decisions in the water-filling loop.
const EPS: f64 = 1e-12;

/// Flows sharing `(src, dst, demand, payload, stop)` — they are
/// symmetric under max-min fairness, so the solver allocates per bundle
/// and multiplies, keeping the fill O(bundles), not O(flows).
#[derive(Debug)]
struct Bundle {
    src: NodeId,
    dst: NodeId,
    /// Offered wire rate per flow, bits/s (headers included, matching how
    /// packet sources pace themselves).
    demand_bps: u64,
    /// Goodput-countable bytes per `payload + HEADER_BYTES` wire bytes.
    payload_bytes: u32,
    stop_at: SimTime,
    /// Global flow ids of the member flows (install order).
    flow_ids: Vec<u32>,
    /// Allocated wire rate per flow, bits/s (0 when expired, unroutable,
    /// or fault-masked).
    rate_bps: f64,
    /// Integrated wire bytes per flow.
    wire_bytes: f64,
}

impl Bundle {
    fn payload_fraction(&self) -> f64 {
        self.payload_bytes as f64 / (self.payload_bytes as f64 + HEADER_BYTES as f64)
    }
}

/// The coordinator-owned fluid network: flow table, link loads, and the
/// max-min solver. See the module docs for the invariants.
#[derive(Debug)]
pub struct FluidNet {
    isl_cap_bps: f64,
    gsl_cap_bps: f64,
    bundles: Vec<Bundle>,
    /// `(src, dst, demand, payload, stop) → bundle index`.
    index: BTreeMap<(u32, u32, u64, u32, u64), usize>,
    /// Distinct future flow-finish instants, sorted; `next_boundary`
    /// events re-solve with the finished demand removed.
    boundaries: Vec<SimTime>,
    next_boundary: usize,
    /// Aggregate fluid load per directed link, bits/s (last solve).
    link_load: BTreeMap<LinkKey, f64>,
    /// Residual rates already pushed to packet devices (hybrid mode), so
    /// unchanged links cost nothing at the next solve.
    pushed: BTreeMap<LinkKey, u64>,
    last_advanced: SimTime,
    resolves: u64,
}

impl FluidNet {
    /// An empty fluid network over links of the given capacities.
    pub fn new(isl_rate: DataRate, gsl_rate: DataRate) -> Self {
        FluidNet {
            isl_cap_bps: isl_rate.bps() as f64,
            gsl_cap_bps: gsl_rate.bps() as f64,
            bundles: Vec::new(),
            index: BTreeMap::new(),
            boundaries: Vec::new(),
            next_boundary: 0,
            link_load: BTreeMap::new(),
            pushed: BTreeMap::new(),
            last_advanced: SimTime::ZERO,
            resolves: 0,
        }
    }

    /// Install one fluid flow: `demand` offered wire rate from `src` to
    /// `dst` until `stop_at`, accounting `payload_bytes` of goodput per
    /// `payload_bytes + HEADER_BYTES` on the wire. Rates take effect at
    /// the next re-solve.
    pub fn add_flow(
        &mut self,
        flow_id: u32,
        src: NodeId,
        dst: NodeId,
        demand: DataRate,
        payload_bytes: u32,
        stop_at: SimTime,
    ) {
        assert!(src != dst, "fluid flow to self");
        assert!(demand.bps() > 0, "fluid flow needs positive demand");
        assert!(payload_bytes > 0, "fluid flow needs a positive payload size");
        let key = (src.0, dst.0, demand.bps(), payload_bytes, stop_at.nanos());
        match self.index.get(&key) {
            Some(&i) => self.bundles[i].flow_ids.push(flow_id),
            None => {
                self.index.insert(key, self.bundles.len());
                self.bundles.push(Bundle {
                    src,
                    dst,
                    demand_bps: demand.bps(),
                    payload_bytes,
                    stop_at,
                    flow_ids: vec![flow_id],
                    rate_bps: 0.0,
                    wire_bytes: 0.0,
                });
            }
        }
    }

    /// Rebuild the finish-boundary schedule: distinct stop instants
    /// strictly after `now`, sorted. Called once per install batch.
    pub(crate) fn rebuild_boundaries(&mut self, now: SimTime) {
        let mut stops: Vec<SimTime> =
            self.bundles.iter().map(|b| b.stop_at).filter(|&t| t > now).collect();
        stops.sort_unstable();
        stops.dedup();
        self.boundaries = stops;
        self.next_boundary = 0;
    }

    /// The next finish boundary `(time, index)` still pending, if any.
    pub(crate) fn next_boundary(&self) -> Option<(SimTime, u64)> {
        self.boundaries.get(self.next_boundary).map(|&t| (t, self.next_boundary as u64))
    }

    /// Integrate delivered bytes from the last advance up to `t` with the
    /// current (piecewise-constant) rate vector. Exact: rates only change
    /// at re-solve instants, and every re-solve advances first.
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.last_advanced, "fluid integration went backwards");
        if t <= self.last_advanced {
            return;
        }
        let dt = t.since(self.last_advanced).secs_f64();
        for b in &mut self.bundles {
            if b.rate_bps > 0.0 {
                b.wire_bytes += b.rate_bps * dt / 8.0;
            }
        }
        self.last_advanced = t;
    }

    /// Recompute the max-min fair rate vector over the current forwarding
    /// and fault state. Flows whose `stop_at <= t`, whose destination is
    /// unreachable, or whose path crosses a failed component get rate 0
    /// (their packets would be dropped; fluid models the same outcome as
    /// zero throughput). Also advances the finish-boundary cursor past `t`.
    pub fn resolve(
        &mut self,
        t: SimTime,
        fwd: &ForwardingState,
        faults: Option<&FaultState>,
        constellation: &Constellation,
    ) {
        self.resolves += 1;
        while self.next_boundary < self.boundaries.len() && self.boundaries[self.next_boundary] <= t
        {
            self.next_boundary += 1;
        }

        // Trace each active bundle's path onto directed link devices.
        let mut link_of: BTreeMap<LinkKey, usize> = BTreeMap::new();
        let mut link_keys: Vec<LinkKey> = Vec::new();
        let mut active: Vec<usize> = Vec::new();
        let mut links_of: Vec<Vec<usize>> = Vec::new();
        for (bi, b) in self.bundles.iter_mut().enumerate() {
            b.rate_bps = 0.0;
            if t >= b.stop_at {
                continue;
            }
            let Some(path) = fwd.path(b.src, b.dst) else { continue };
            if let Some(f) = faults {
                if !path.windows(2).all(|w| hop_up(f, constellation, w[0], w[1])) {
                    continue;
                }
            }
            let mut ids = Vec::with_capacity(path.len() - 1);
            for w in path.windows(2) {
                let key = link_key(constellation, w[0], w[1]);
                let next = link_keys.len();
                let id = *link_of.entry(key).or_insert_with(|| {
                    link_keys.push(key);
                    next
                });
                ids.push(id);
            }
            active.push(bi);
            links_of.push(ids);
        }

        // Progressive filling in incremental form. Every unfrozen flow's
        // rate rises uniformly from zero, so a single scalar water level
        // describes all of them; a bundle freezes when the level reaches
        // its demand (sorted-demand pointer) or a link on its path
        // saturates (per-link member lists). Link weights are updated
        // only when a bundle freezes, so the fill costs
        // O(rounds × links + Σ path length) instead of the naive
        // O(rounds × Σ path length) — the difference between millisecond
        // and second re-solves at 10⁵ flows over 10⁴ bundles.
        let caps: Vec<f64> = link_keys.iter().map(|&k| self.cap_for(k)).collect();
        let mut residual = caps.clone();
        let mut rate = vec![0.0f64; active.len()];
        let mut frozen = vec![false; active.len()];
        // Unfrozen flow multiplicity per link, and the active bundles
        // crossing it. Multiplicities are integers, so the incremental
        // subtraction below is exact: a fully frozen link reaches
        // weight 0.0, not rounding dust.
        let mut weight = vec![0.0f64; link_keys.len()];
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); link_keys.len()];
        for (ai, ids) in links_of.iter().enumerate() {
            let m = self.bundles[active[ai]].flow_ids.len() as f64;
            for &l in ids {
                weight[l] += m;
                members[l].push(ai);
            }
        }
        let mut by_demand: Vec<usize> = (0..active.len()).collect();
        by_demand.sort_by_key(|&ai| self.bundles[active[ai]].demand_bps);
        let mut dptr = 0;
        let mut level = 0.0f64;
        let mut unfrozen = active.len();
        while unfrozen > 0 {
            while dptr < by_demand.len() && frozen[by_demand[dptr]] {
                dptr += 1;
            }
            // Next freeze: whichever comes first — a link saturating or
            // the lowest unfrozen demand. Unfrozen rates all equal
            // `level`, so the demand gap needs only the sorted head.
            let mut inc = f64::INFINITY;
            for (&w, &r) in weight.iter().zip(&residual) {
                if w > 0.0 {
                    inc = inc.min((r / w).max(0.0));
                }
            }
            if let Some(&ai) = by_demand.get(dptr) {
                inc = inc.min(self.bundles[active[ai]].demand_bps as f64 - level);
            }
            let inc = if inc.is_finite() { inc.max(0.0) } else { 0.0 };
            level += inc;
            for (r, &w) in residual.iter_mut().zip(&weight) {
                *r -= w * inc;
            }
            let mut newly = 0;
            let freeze =
                |ai: usize, frozen: &mut Vec<bool>, weight: &mut Vec<f64>, newly: &mut usize| {
                    frozen[ai] = true;
                    *newly += 1;
                    let m = self.bundles[active[ai]].flow_ids.len() as f64;
                    for &l in &links_of[ai] {
                        weight[l] -= m;
                    }
                };
            while let Some(&ai) = by_demand.get(dptr) {
                if frozen[ai] {
                    dptr += 1;
                    continue;
                }
                if level < self.bundles[active[ai]].demand_bps as f64 * (1.0 - EPS) {
                    break;
                }
                rate[ai] = level;
                freeze(ai, &mut frozen, &mut weight, &mut newly);
                dptr += 1;
            }
            for l in 0..link_keys.len() {
                if weight[l] > 0.0 && residual[l] <= caps[l] * EPS {
                    for &ai in &members[l] {
                        if !frozen[ai] {
                            rate[ai] = level;
                            freeze(ai, &mut frozen, &mut weight, &mut newly);
                        }
                    }
                }
            }
            if newly == 0 {
                // Numerical backstop: a zero increment with nothing newly
                // frozen would loop forever; freeze the remainder at their
                // current (already max-min) rates.
                break;
            }
            unfrozen -= newly;
        }

        for (ai, &bi) in active.iter().enumerate() {
            self.bundles[bi].rate_bps = if frozen[ai] { rate[ai] } else { level };
        }
        self.link_load.clear();
        for (ai, ids) in links_of.iter().enumerate() {
            let load = rate[ai] * self.bundles[active[ai]].flow_ids.len() as f64;
            if load > 0.0 {
                for &l in ids {
                    *self.link_load.entry(link_keys[l]).or_insert(0.0) += load;
                }
            }
        }
    }

    /// Residual device rates that changed since the last push (hybrid
    /// coupling): loaded links get `capacity − fluid load`, floored at 1%
    /// of capacity; links whose load vanished are restored to capacity.
    /// Deterministic order (`BTreeMap` iteration).
    pub(crate) fn residual_changes(&mut self) -> Vec<(LinkKey, DataRate)> {
        let mut desired: BTreeMap<LinkKey, u64> = BTreeMap::new();
        for (&key, &load) in &self.link_load {
            let cap = self.cap_for(key);
            let resid = (cap - load).max(cap * 0.01);
            desired.insert(key, (resid.round() as u64).max(1));
        }
        let mut changes = Vec::new();
        for &key in self.pushed.keys() {
            if !desired.contains_key(&key) {
                changes.push((key, DataRate::from_bps(self.cap_for(key).round() as u64)));
            }
        }
        self.pushed.retain(|k, _| desired.contains_key(k));
        for (&key, &bps) in &desired {
            if self.pushed.get(&key) != Some(&bps) {
                self.pushed.insert(key, bps);
                changes.push((key, DataRate::from_bps(bps)));
            }
        }
        changes
    }

    fn cap_for(&self, key: LinkKey) -> f64 {
        if key.1 == GSL_PEER {
            self.gsl_cap_bps
        } else {
            self.isl_cap_bps
        }
    }

    /// Fluid flows installed (active or finished).
    pub fn flow_count(&self) -> u64 {
        self.bundles.iter().map(|b| b.flow_ids.len() as u64).sum()
    }

    /// Re-solves performed.
    pub fn resolves(&self) -> u64 {
        self.resolves
    }

    /// Total goodput-countable bytes delivered by fluid flows so far
    /// (wire bytes × payload fraction, summed over every flow).
    pub fn delivered_payload_bytes(&self) -> u64 {
        let total: f64 = self
            .bundles
            .iter()
            .map(|b| b.wire_bytes * b.payload_fraction() * b.flow_ids.len() as f64)
            .sum();
        total as u64
    }

    /// Delivered payload bytes per flow `(flow_id, bytes)`, in install
    /// order within each bundle. Flows of one bundle share a rate, so
    /// they share a byte count exactly.
    pub fn per_flow_payload_bytes(&self) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        for b in &self.bundles {
            let bytes = b.wire_bytes * b.payload_fraction();
            out.extend(b.flow_ids.iter().map(|&id| (id, bytes)));
        }
        out
    }

    /// Current wire rate of every flow `(flow_id, bits/s)`.
    pub fn per_flow_rate_bps(&self) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        for b in &self.bundles {
            out.extend(b.flow_ids.iter().map(|&id| (id, b.rate_bps)));
        }
        out
    }

    /// Aggregate fluid load of every directed link, bits/s (last solve).
    pub fn link_loads(&self) -> impl Iterator<Item = ((u32, u32), f64)> + '_ {
        self.link_load.iter().map(|(&k, &v)| (k, v))
    }

    /// Links whose allocated fluid load exceeds their capacity beyond the
    /// relative tolerance `tol`, as `(link, load_bps, capacity_bps)`.
    /// The max-min fill never oversubscribes by construction, so a
    /// non-empty result is a solver bug — exactly what audit mode exists
    /// to catch.
    pub fn overloaded_links(&self, tol: f64) -> Vec<(LinkKey, f64, f64)> {
        self.link_load
            .iter()
            .filter(|&(&key, &load)| load > self.cap_for(key) * (1.0 + tol))
            .map(|(&key, &load)| (key, load, self.cap_for(key)))
            .collect()
    }

    /// Serialize the solver's mutable state. The flow table itself
    /// (bundles, member flow ids, the install index) is rebuilt by
    /// re-running the experiment's deterministic install sequence, so only
    /// the integration state rides in the snapshot — plus the bundle and
    /// flow counts, which restore cross-checks against the rebuilt table.
    pub fn save(&self, w: &mut SnapWriter) {
        w.put_tag(b"FLUD");
        w.put_usize(self.bundles.len());
        for b in &self.bundles {
            w.put_usize(b.flow_ids.len());
            w.put_f64(b.rate_bps);
            w.put_f64(b.wire_bytes);
        }
        w.put_usize(self.boundaries.len());
        for &t in &self.boundaries {
            w.put_time(t);
        }
        w.put_usize(self.next_boundary);
        w.put_usize(self.link_load.len());
        for (&(a, b), &load) in &self.link_load {
            w.put_u32(a);
            w.put_u32(b);
            w.put_f64(load);
        }
        w.put_usize(self.pushed.len());
        for (&(a, b), &bps) in &self.pushed {
            w.put_u32(a);
            w.put_u32(b);
            w.put_u64(bps);
        }
        w.put_time(self.last_advanced);
        w.put_u64(self.resolves);
    }

    /// Restore the state captured by [`FluidNet::save`] into a fluid net
    /// whose flow table was rebuilt by the same install sequence.
    pub fn restore(&mut self, r: &mut SnapReader) -> Result<(), CheckpointError> {
        r.expect_tag(b"FLUD")?;
        let n = r.get_usize()?;
        if n != self.bundles.len() {
            return Err(CheckpointError::Malformed(format!(
                "snapshot has {n} fluid bundles, rebuilt net has {}",
                self.bundles.len()
            )));
        }
        for b in &mut self.bundles {
            let flows = r.get_usize()?;
            if flows != b.flow_ids.len() {
                return Err(CheckpointError::Malformed(format!(
                    "fluid bundle {}→{} has {} flows in the snapshot, {} rebuilt",
                    b.src,
                    b.dst,
                    flows,
                    b.flow_ids.len()
                )));
            }
            b.rate_bps = r.get_f64()?;
            b.wire_bytes = r.get_f64()?;
        }
        let nb = r.get_usize()?;
        self.boundaries = (0..nb).map(|_| r.get_time()).collect::<Result<_, _>>()?;
        self.next_boundary = r.get_usize()?;
        if self.next_boundary > self.boundaries.len() {
            return Err(CheckpointError::Malformed("fluid boundary cursor out of range".into()));
        }
        let nl = r.get_usize()?;
        self.link_load.clear();
        for _ in 0..nl {
            let a = r.get_u32()?;
            let b = r.get_u32()?;
            self.link_load.insert((a, b), r.get_f64()?);
        }
        let np = r.get_usize()?;
        self.pushed.clear();
        for _ in 0..np {
            let a = r.get_u32()?;
            let b = r.get_u32()?;
            self.pushed.insert((a, b), r.get_u64()?);
        }
        self.last_advanced = r.get_time()?;
        self.resolves = r.get_u64()?;
        Ok(())
    }
}

/// The directed link device a hop `a → b` serializes through: the ISL
/// device towards the peer when both are satellites, else `a`'s shared
/// GSL device.
fn link_key(constellation: &Constellation, a: NodeId, b: NodeId) -> LinkKey {
    if constellation.is_satellite(a) && constellation.is_satellite(b) {
        (a.0, b.0)
    } else {
        (a.0, GSL_PEER)
    }
}

/// Is the directed hop `a → b` usable under the live fault state?
/// Mirrors `Shard::link_up` exactly, so fluid flows are masked on the
/// same hops whose packets would be fault-dropped.
fn hop_up(f: &FaultState, constellation: &Constellation, a: NodeId, b: NodeId) -> bool {
    if f.all_up() {
        return true;
    }
    let n_sats = constellation.num_satellites();
    match (constellation.is_satellite(a), constellation.is_satellite(b)) {
        (true, true) => f.isl_link_up(a.0, b.0),
        (true, false) => f.gsl_link_up(a.index(), b.index() - n_sats),
        (false, true) => f.gsl_link_up(b.index(), a.index() - n_sats),
        (false, false) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_routing::graph::SnapshotBuffers;
    use hypatia_routing::incremental::{IncrementalRouter, RoutingConfig};
    use std::sync::Arc;

    fn constellation() -> Arc<Constellation> {
        Arc::new(Constellation::build(
            "fluidtest",
            vec![ShellSpec::new("A", 550.0, 10, 10, 53.0)],
            IslLayout::PlusGrid,
            vec![
                GroundStation::new("a", 5.0, 5.0),
                GroundStation::new("b", -10.0, 60.0),
                GroundStation::new("c", 40.0, -80.0),
            ],
            GslConfig::new(10.0),
        ))
    }

    fn forwarding(c: &Constellation, dests: &[NodeId]) -> ForwardingState {
        let mut buffers = SnapshotBuffers::new();
        let mut router = IncrementalRouter::new(RoutingConfig::default());
        let graph = buffers.snapshot_masked(c, SimTime::ZERO, None);
        let mut fwd = ForwardingState::empty();
        router.compute_into(graph, SimTime::ZERO, dests, &mut fwd);
        fwd
    }

    #[test]
    fn sim_mode_parses_spec_names() {
        assert_eq!(SimMode::parse("packet"), Some(SimMode::Packet));
        assert_eq!(SimMode::parse("fluid"), Some(SimMode::Fluid));
        assert_eq!(SimMode::parse("hybrid"), Some(SimMode::Hybrid));
        assert_eq!(SimMode::parse("analytic"), None);
        assert_eq!(SimMode::Hybrid.name(), "hybrid");
        assert_eq!(SimMode::default(), SimMode::Packet, "packet-level is the default");
    }

    #[test]
    fn unconstrained_flows_get_their_demand() {
        let c = constellation();
        let (a, b) = (c.gs_node(0), c.gs_node(1));
        let fwd = forwarding(&c, &[a, b]);
        let mut net = FluidNet::new(DataRate::from_mbps(10), DataRate::from_mbps(10));
        net.add_flow(0, a, b, DataRate::from_kbps(64), 1440, SimTime::from_secs(10));
        net.add_flow(1, a, b, DataRate::from_kbps(64), 1440, SimTime::from_secs(10));
        net.resolve(SimTime::ZERO, &fwd, None, &c);
        for (_, rate) in net.per_flow_rate_bps() {
            assert!((rate - 64_000.0).abs() < 1e-6, "rate {rate}");
        }
        // 2 s at 64 kbps each: wire bytes 16 kB/flow, payload fraction
        // 1440/1500.
        net.advance_to(SimTime::from_secs(2));
        let per_flow = net.per_flow_payload_bytes();
        assert_eq!(per_flow.len(), 2);
        for &(_, bytes) in &per_flow {
            assert!((bytes - 16_000.0 * 0.96).abs() < 1e-6, "bytes {bytes}");
        }
        assert_eq!(net.delivered_payload_bytes(), 30_720);
    }

    #[test]
    fn bottleneck_is_shared_max_min_fairly() {
        let c = constellation();
        let (a, b) = (c.gs_node(0), c.gs_node(1));
        let fwd = forwarding(&c, &[a, b]);
        // Both flows share (at least) a's GSL uplink: 10 Mbps across a
        // 6 Mbps + 8 Mbps demand pair → equal 5 Mbps shares (neither
        // demand is satisfiable below the fair share).
        let mut net = FluidNet::new(DataRate::from_mbps(10), DataRate::from_mbps(10));
        net.add_flow(0, a, b, DataRate::from_mbps(6), 1440, SimTime::from_secs(10));
        net.add_flow(1, a, b, DataRate::from_mbps(8), 1440, SimTime::from_secs(10));
        net.resolve(SimTime::ZERO, &fwd, None, &c);
        for (_, rate) in net.per_flow_rate_bps() {
            assert!((rate - 5e6).abs() < 1.0, "rate {rate}");
        }
        // A small-demand flow freezes at its demand and the leftover goes
        // to the big one: 1 Mbps + 9 Mbps.
        let mut net = FluidNet::new(DataRate::from_mbps(10), DataRate::from_mbps(10));
        net.add_flow(0, a, b, DataRate::from_mbps(1), 1440, SimTime::from_secs(10));
        net.add_flow(1, a, b, DataRate::from_mbps(20), 1440, SimTime::from_secs(10));
        net.resolve(SimTime::ZERO, &fwd, None, &c);
        let rates = net.per_flow_rate_bps();
        assert!((rates[0].1 - 1e6).abs() < 1.0, "small flow {:?}", rates);
        assert!((rates[1].1 - 9e6).abs() < 1.0, "big flow {:?}", rates);
    }

    #[test]
    fn allocation_never_exceeds_capacity() {
        let c = constellation();
        let gs: Vec<NodeId> = (0..3).map(|i| c.gs_node(i)).collect();
        let fwd = forwarding(&c, &gs);
        let mut net = FluidNet::new(DataRate::from_mbps(10), DataRate::from_mbps(10));
        let mut id = 0;
        for &src in &gs {
            for &dst in &gs {
                if src != dst {
                    for _ in 0..7 {
                        net.add_flow(id, src, dst, DataRate::from_mbps(3), 1440, SimTime::MAX);
                        id += 1;
                    }
                }
            }
        }
        net.resolve(SimTime::ZERO, &fwd, None, &c);
        for ((_, _), load) in net.link_loads() {
            assert!(load <= 10e6 * (1.0 + 1e-9), "overloaded link: {load}");
        }
        // Every flow got something (the topology routes all pairs).
        for (flow, rate) in net.per_flow_rate_bps() {
            assert!(rate > 0.0, "flow {flow} starved");
        }
    }

    #[test]
    fn finished_and_unroutable_flows_get_zero() {
        let c = constellation();
        let (a, b) = (c.gs_node(0), c.gs_node(1));
        let fwd = forwarding(&c, &[a, b]);
        let mut net = FluidNet::new(DataRate::from_mbps(10), DataRate::from_mbps(10));
        net.add_flow(0, a, b, DataRate::from_kbps(64), 1440, SimTime::from_secs(1));
        // Destination c is not in the forwarding state at all.
        net.add_flow(1, a, c.gs_node(2), DataRate::from_kbps(64), 1440, SimTime::from_secs(9));
        net.rebuild_boundaries(SimTime::ZERO);
        assert_eq!(net.next_boundary(), Some((SimTime::from_secs(1), 0)));
        net.resolve(SimTime::ZERO, &fwd, None, &c);
        let rates = net.per_flow_rate_bps();
        assert!(rates[0].1 > 0.0);
        assert_eq!(rates[1].1, 0.0, "unroutable flow must get rate 0");
        // Past its stop the first flow is expired; the cursor advances.
        net.advance_to(SimTime::from_secs(1));
        net.resolve(SimTime::from_secs(1), &fwd, None, &c);
        assert_eq!(net.per_flow_rate_bps()[0].1, 0.0, "finished flow keeps sending?");
        assert_eq!(net.next_boundary(), Some((SimTime::from_secs(9), 1)));
        // Bytes stop accumulating once the rate is zero.
        let before = net.delivered_payload_bytes();
        net.advance_to(SimTime::from_secs(5));
        assert_eq!(net.delivered_payload_bytes(), before);
    }

    #[test]
    fn faulted_paths_are_masked_to_zero() {
        use hypatia_fault::{FaultSchedule, FaultSpec, OutageWindow};
        let c = constellation();
        let (a, b) = (c.gs_node(0), c.gs_node(1));
        let fwd = forwarding(&c, &[a, b]);
        let path = fwd.path(a, b).expect("nominal path exists");
        let victim = path[path.len() / 2];
        assert!(c.is_satellite(victim));
        let spec = FaultSpec {
            sat_outages: vec![OutageWindow { target: victim.0, from_s: 0.0, until_s: 9.0 }],
            ..FaultSpec::default()
        };
        let schedule = FaultSchedule::compile(&spec, &c, hypatia_util::SimDuration::from_secs(10));
        let state = FaultState::at(&schedule, SimTime::from_secs(1));
        let mut net = FluidNet::new(DataRate::from_mbps(10), DataRate::from_mbps(10));
        net.add_flow(0, a, b, DataRate::from_kbps(64), 1440, SimTime::MAX);
        net.resolve(SimTime::ZERO, &fwd, Some(&state), &c);
        assert_eq!(net.per_flow_rate_bps()[0].1, 0.0, "path through a dead satellite");
        net.resolve(SimTime::ZERO, &fwd, None, &c);
        assert!(net.per_flow_rate_bps()[0].1 > 0.0, "recovers without the mask");
        assert_eq!(net.resolves(), 2);
    }

    #[test]
    fn no_links_report_overload_after_a_solve() {
        let c = constellation();
        let (a, b) = (c.gs_node(0), c.gs_node(1));
        let fwd = forwarding(&c, &[a, b]);
        let mut net = FluidNet::new(DataRate::from_mbps(10), DataRate::from_mbps(10));
        for i in 0..5 {
            net.add_flow(i, a, b, DataRate::from_mbps(10), 1440, SimTime::MAX);
        }
        net.resolve(SimTime::ZERO, &fwd, None, &c);
        assert!(net.overloaded_links(1e-9).is_empty());
        // Force an inconsistent load to prove the detector fires.
        net.link_load.insert((0, 1), 20e6);
        let over = net.overloaded_links(1e-9);
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].0, (0, 1));
        assert_eq!(over[0].2, 10e6);
    }

    #[test]
    fn save_restore_round_trips_solver_state() {
        use crate::checkpoint::{SnapReader, SnapWriter};
        let c = constellation();
        let (a, b) = (c.gs_node(0), c.gs_node(1));
        let fwd = forwarding(&c, &[a, b]);
        let build = |mbps: u64| {
            let mut net = FluidNet::new(DataRate::from_mbps(10), DataRate::from_mbps(10));
            net.add_flow(0, a, b, DataRate::from_mbps(mbps), 1440, SimTime::from_secs(1));
            net.add_flow(1, a, b, DataRate::from_mbps(mbps), 1440, SimTime::from_secs(2));
            net.rebuild_boundaries(SimTime::ZERO);
            net
        };
        let mut net = build(6);
        net.resolve(SimTime::ZERO, &fwd, None, &c);
        let _ = net.residual_changes();
        net.advance_to(SimTime::from_millis(700));
        let mut w = SnapWriter::new(1);
        net.save(&mut w);
        let mut back = build(6);
        let mut r = SnapReader::from_bytes(w.finish(), 1).unwrap();
        back.restore(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.resolves(), net.resolves());
        assert_eq!(back.delivered_payload_bytes(), net.delivered_payload_bytes());
        assert_eq!(back.next_boundary(), net.next_boundary());
        let loads: Vec<_> = net.link_loads().collect();
        assert_eq!(back.link_loads().collect::<Vec<_>>(), loads);
        assert_eq!(back.pushed, net.pushed);
        // Both continue identically.
        back.advance_to(SimTime::from_secs(1));
        net.advance_to(SimTime::from_secs(1));
        assert_eq!(back.delivered_payload_bytes(), net.delivered_payload_bytes());

        // A differently built flow table rejects the snapshot.
        let mut w = SnapWriter::new(1);
        net.save(&mut w);
        let mut wrong = FluidNet::new(DataRate::from_mbps(10), DataRate::from_mbps(10));
        wrong.add_flow(0, a, b, DataRate::from_mbps(6), 1440, SimTime::from_secs(1));
        let mut r = SnapReader::from_bytes(w.finish(), 1).unwrap();
        assert!(wrong.restore(&mut r).is_err());
    }

    #[test]
    fn residual_changes_floor_and_restore() {
        let c = constellation();
        let (a, b) = (c.gs_node(0), c.gs_node(1));
        let fwd = forwarding(&c, &[a, b]);
        let mut net = FluidNet::new(DataRate::from_mbps(10), DataRate::from_mbps(10));
        // 30 Mbps of demand through a 10 Mbps uplink: the loaded links
        // saturate, so their residual hits the 1% floor.
        for i in 0..3 {
            net.add_flow(i, a, b, DataRate::from_mbps(10), 1440, SimTime::from_secs(1));
        }
        net.resolve(SimTime::ZERO, &fwd, None, &c);
        let changes = net.residual_changes();
        assert!(!changes.is_empty());
        for &((_, _), rate) in &changes {
            assert!(rate.bps() >= 100_000, "residual below the 1% floor: {rate}");
            assert!(rate.bps() <= 10_000_000);
        }
        let saturated = changes.iter().filter(|&&(_, r)| r.bps() == 100_000).count();
        assert!(saturated >= 1, "no link hit the floor: {changes:?}");
        // Unchanged solve → no pushes; expired flows → full restore.
        net.resolve(SimTime::ZERO, &fwd, None, &c);
        assert!(net.residual_changes().is_empty(), "unchanged load re-pushed");
        net.resolve(SimTime::from_secs(1), &fwd, None, &c);
        let restored = net.residual_changes();
        assert_eq!(restored.len(), changes.len());
        for &(_, rate) in &restored {
            assert_eq!(rate.bps(), 10_000_000, "link not restored to capacity");
        }
        assert!(net.residual_changes().is_empty());
    }
}
