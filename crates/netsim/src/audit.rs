//! Runtime conservation audits.
//!
//! A long-running simulation that silently leaks packets or oversubscribes
//! a queue produces numbers that *look* plausible — exactly the failure
//! mode a service-mode deployment cannot debug after the fact. Audit mode
//! re-derives the engine's bookkeeping from first principles at every
//! epoch boundary and reports any divergence as a typed
//! [`AuditViolation`]:
//!
//! * **packet conservation** — every packet ever injected is delivered,
//!   dropped (routing/queue/channel/fault), or still in flight (queued in
//!   a device, being serialized, or propagating as a scheduled arrival);
//! * **device conservation** — per device, packets offered equals packets
//!   transmitted + dropped + still queued + in service;
//! * **queue occupancy** — no device queue exceeds its configured
//!   capacity;
//! * **fluid capacity** — in hybrid mode, the max–min solver's aggregate
//!   bundle rate on every link stays within that link's capacity.
//!
//! The checks are read-only and run outside the hot loop, so `audit=true`
//! costs one pass over the device tables per epoch — cheap enough to
//! leave on for any run whose answer matters.

use std::fmt;

/// A single invariant violation found by [`crate::Simulator::audit`].
#[derive(Debug, Clone, PartialEq)]
pub enum AuditViolation {
    /// Global packet conservation broke: injected packets are not all
    /// accounted for as delivered + dropped + in flight.
    PacketConservation {
        /// Simulation time of the audit.
        t_ns: u64,
        /// Packets injected since the start of the run.
        injected: u64,
        /// Packets delivered to an endpoint.
        delivered: u64,
        /// Packets dropped (routing + queue + channel + fault).
        dropped: u64,
        /// Packets queued, in serialization, or propagating.
        in_flight: u64,
    },
    /// A device's own counters disagree: packets offered to the device
    /// are not all transmitted, dropped, queued, or in service.
    DeviceConservation {
        /// Simulation time of the audit.
        t_ns: u64,
        /// Owning node index.
        node: u32,
        /// Device index within the node.
        device: u32,
        /// Packets ever offered to the device (`enqueue` calls).
        offered: u64,
        /// Transmitted + dropped + queued + in-service.
        accounted: u64,
    },
    /// A device queue holds more packets than its configured capacity.
    QueueOverCapacity {
        /// Simulation time of the audit.
        t_ns: u64,
        /// Owning node index.
        node: u32,
        /// Device index within the node.
        device: u32,
        /// Packets currently queued.
        queue_len: u64,
        /// Configured queue capacity.
        capacity: u64,
    },
    /// The fluid solver allocated more aggregate rate to a link than the
    /// link's capacity (beyond floating-point tolerance).
    FluidOverCapacity {
        /// Simulation time of the audit.
        t_ns: u64,
        /// Link endpoints as node indices (`u32::MAX` marks the GSL side).
        link: (u32, u32),
        /// Aggregate allocated rate on the link, bits/s.
        load_bps: f64,
        /// Link capacity, bits/s.
        capacity_bps: f64,
    },
}

impl AuditViolation {
    /// Stable short name for manifests and log lines.
    pub fn kind(&self) -> &'static str {
        match self {
            AuditViolation::PacketConservation { .. } => "packet_conservation",
            AuditViolation::DeviceConservation { .. } => "device_conservation",
            AuditViolation::QueueOverCapacity { .. } => "queue_over_capacity",
            AuditViolation::FluidOverCapacity { .. } => "fluid_over_capacity",
        }
    }

    /// Simulation time the violation was observed, in nanoseconds.
    pub fn t_ns(&self) -> u64 {
        match self {
            AuditViolation::PacketConservation { t_ns, .. }
            | AuditViolation::DeviceConservation { t_ns, .. }
            | AuditViolation::QueueOverCapacity { t_ns, .. }
            | AuditViolation::FluidOverCapacity { t_ns, .. } => *t_ns,
        }
    }
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::PacketConservation {
                t_ns,
                injected,
                delivered,
                dropped,
                in_flight,
            } => {
                write!(
                    f,
                    "packet conservation violated at t={t_ns}ns: injected {injected} != \
                     delivered {delivered} + dropped {dropped} + in-flight {in_flight} \
                     (= {})",
                    delivered + dropped + in_flight
                )
            }
            AuditViolation::DeviceConservation { t_ns, node, device, offered, accounted } => {
                write!(
                    f,
                    "device conservation violated at t={t_ns}ns on n{node}/d{device}: \
                     offered {offered} != accounted {accounted}"
                )
            }
            AuditViolation::QueueOverCapacity { t_ns, node, device, queue_len, capacity } => {
                write!(
                    f,
                    "queue over capacity at t={t_ns}ns on n{node}/d{device}: \
                     {queue_len} queued > capacity {capacity}"
                )
            }
            AuditViolation::FluidOverCapacity { t_ns, link, load_bps, capacity_bps } => {
                let (a, b) = link;
                write!(
                    f,
                    "fluid link ({a},{b}) over capacity at t={t_ns}ns: \
                     {load_bps:.1} bps allocated > {capacity_bps:.1} bps"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_times_are_stable() {
        let v = AuditViolation::PacketConservation {
            t_ns: 5,
            injected: 10,
            delivered: 4,
            dropped: 1,
            in_flight: 2,
        };
        assert_eq!(v.kind(), "packet_conservation");
        assert_eq!(v.t_ns(), 5);
        let d = AuditViolation::DeviceConservation {
            t_ns: 7,
            node: 1,
            device: 2,
            offered: 9,
            accounted: 8,
        };
        assert_eq!(d.kind(), "device_conservation");
        let q = AuditViolation::QueueOverCapacity {
            t_ns: 9,
            node: 1,
            device: 0,
            queue_len: 101,
            capacity: 100,
        };
        assert_eq!(q.kind(), "queue_over_capacity");
        let fl = AuditViolation::FluidOverCapacity {
            t_ns: 11,
            link: (3, u32::MAX),
            load_bps: 2e9,
            capacity_bps: 1e9,
        };
        assert_eq!(fl.kind(), "fluid_over_capacity");
        assert_eq!(fl.t_ns(), 11);
    }

    #[test]
    fn display_names_the_imbalance() {
        let v = AuditViolation::PacketConservation {
            t_ns: 1_000,
            injected: 10,
            delivered: 4,
            dropped: 1,
            in_flight: 2,
        };
        let s = v.to_string();
        assert!(s.contains("injected 10") && s.contains("(= 7)"), "{s}");
        let q = AuditViolation::QueueOverCapacity {
            t_ns: 2,
            node: 6,
            device: 1,
            queue_len: 101,
            capacity: 100,
        };
        assert!(q.to_string().contains("n6/d1"), "{q}");
    }
}
