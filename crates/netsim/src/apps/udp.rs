//! Constant-rate ("paced") UDP source and counting sink (paper §3.4: "each
//! GS-pair sends each other constant-rate, paced UDP traffic at the line
//! rate, and goodput is calculated as the total rate of network-wide
//! payload arrivals").

use crate::app::{AppCtx, Application, SaveResult};
use crate::checkpoint::{SnapReader, SnapWriter};
use crate::packet::{Packet, Payload, HEADER_BYTES};
use hypatia_constellation::NodeId;
use hypatia_util::{DataRate, DataSize, SimDuration, SimTime};

const TIMER_SEND: u64 = 0;

/// Paced constant-bit-rate UDP source.
pub struct UdpSource {
    dst: NodeId,
    flow: u32,
    /// Payload bytes per packet.
    payload_bytes: u32,
    /// Inter-packet gap achieving the target rate.
    gap: SimDuration,
    stop_at: SimTime,
    next_seq: u64,
}

impl UdpSource {
    /// Send `payload_bytes`-sized datagrams to `dst` such that the *wire*
    /// rate (payload + headers) equals `rate`, until `stop_at`.
    pub fn new(
        dst: NodeId,
        flow: u32,
        rate: DataRate,
        payload_bytes: u32,
        stop_at: SimTime,
    ) -> Self {
        assert!(payload_bytes > 0, "empty datagrams not allowed");
        let wire = DataSize::from_bytes((payload_bytes + HEADER_BYTES) as u64);
        let gap = rate.serialization_delay(wire);
        UdpSource { dst, flow, payload_bytes, gap, stop_at, next_seq: 0 }
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.next_seq
    }

    fn send_one(&mut self, ctx: &mut AppCtx) {
        ctx.send(
            self.dst,
            ctx.port,
            self.payload_bytes + HEADER_BYTES,
            Payload::Udp { flow: self.flow, seq: self.next_seq, payload_bytes: self.payload_bytes },
        );
        self.next_seq += 1;
    }
}

impl Application for UdpSource {
    fn on_start(&mut self, ctx: &mut AppCtx) {
        if ctx.now < self.stop_at {
            self.send_one(ctx);
            ctx.set_timer(self.gap, TIMER_SEND);
        }
    }

    fn on_packet(&mut self, _ctx: &mut AppCtx, _packet: &Packet) {
        // A pure source; ignores anything addressed to it.
    }

    fn on_timer(&mut self, ctx: &mut AppCtx, _timer_id: u64) {
        if ctx.now < self.stop_at {
            self.send_one(ctx);
            ctx.set_timer(self.gap, TIMER_SEND);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self, w: &mut SnapWriter) -> SaveResult {
        w.put_u64(self.next_seq);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> SaveResult {
        self.next_seq = r.get_u64()?;
        Ok(())
    }
}

/// Counting UDP sink: tracks received packets/bytes and loss (via sequence
/// gaps).
#[derive(Default)]
pub struct UdpSink {
    received: u64,
    payload_bytes: u64,
    max_seq_seen: Option<u64>,
    first_arrival: Option<SimTime>,
    last_arrival: Option<SimTime>,
}

impl UdpSink {
    /// A fresh sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packets received.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Payload bytes received.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Goodput over the observed arrival window, bits/s (None with < 2
    /// arrivals).
    pub fn goodput_bps(&self) -> Option<f64> {
        let (first, last) = (self.first_arrival?, self.last_arrival?);
        if last <= first {
            return None;
        }
        Some(self.payload_bytes as f64 * 8.0 / last.since(first).secs_f64())
    }

    /// Packets implied missing by the highest sequence seen.
    pub fn missing(&self) -> u64 {
        match self.max_seq_seen {
            Some(max) => (max + 1).saturating_sub(self.received),
            None => 0,
        }
    }
}

impl Application for UdpSink {
    fn on_start(&mut self, _ctx: &mut AppCtx) {}

    fn on_packet(&mut self, ctx: &mut AppCtx, packet: &Packet) {
        if let Payload::Udp { seq, payload_bytes, .. } = packet.payload {
            self.received += 1;
            self.payload_bytes += payload_bytes as u64;
            self.max_seq_seen = Some(self.max_seq_seen.map_or(seq, |m| m.max(seq)));
            self.first_arrival.get_or_insert(ctx.now);
            self.last_arrival = Some(ctx.now);
        }
    }

    fn on_timer(&mut self, _ctx: &mut AppCtx, _timer_id: u64) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self, w: &mut SnapWriter) -> SaveResult {
        w.put_u64(self.received);
        w.put_u64(self.payload_bytes);
        w.put_opt_u64(self.max_seq_seen);
        w.put_opt_time(self.first_arrival);
        w.put_opt_time(self.last_arrival);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> SaveResult {
        self.received = r.get_u64()?;
        self.payload_bytes = r.get_u64()?;
        self.max_seq_seen = r.get_opt_u64()?;
        self.first_arrival = r.get_opt_time()?;
        self.last_arrival = r.get_opt_time()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacing_gap_matches_rate() {
        // 1440+60 = 1500 B at 10 Mbps → 1.2 ms between packets.
        let src =
            UdpSource::new(NodeId(1), 0, DataRate::from_mbps(10), 1440, SimTime::from_secs(1));
        assert_eq!(src.gap, SimDuration::from_micros(1200));
    }

    #[test]
    fn source_sends_and_rearms() {
        let mut src =
            UdpSource::new(NodeId(1), 7, DataRate::from_mbps(10), 1440, SimTime::from_secs(1));
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 50);
        src.on_start(&mut ctx);
        assert_eq!(ctx.take_actions().len(), 2);
        assert_eq!(src.sent(), 1);
        // Past deadline: nothing.
        let mut ctx2 = AppCtx::new(SimTime::from_secs(2), NodeId(0), 50);
        src.on_timer(&mut ctx2, TIMER_SEND);
        assert!(ctx2.take_actions().is_empty());
    }

    fn udp_packet(seq: u64, payload: u32, at_ms: u64) -> (Packet, SimTime) {
        (
            Packet {
                id: seq,
                src: NodeId(0),
                dst: NodeId(1),
                src_port: 50,
                dst_port: 50,
                size_bytes: payload + HEADER_BYTES,
                payload: Payload::Udp { flow: 7, seq, payload_bytes: payload },
                injected_at: SimTime::ZERO,
                hops: 4,
                flow_hash: 0,
            },
            SimTime::from_millis(at_ms),
        )
    }

    #[test]
    fn sink_counts_and_detects_gaps() {
        let mut sink = UdpSink::new();
        for (seq, at) in [(0u64, 10u64), (1, 20), (3, 30)] {
            let (pkt, now) = udp_packet(seq, 1440, at);
            let mut ctx = AppCtx::new(now, NodeId(1), 50);
            sink.on_packet(&mut ctx, &pkt);
        }
        assert_eq!(sink.received(), 3);
        assert_eq!(sink.payload_bytes(), 3 * 1440);
        assert_eq!(sink.missing(), 1, "seq 2 was lost");
    }

    #[test]
    fn sink_goodput_over_window() {
        let mut sink = UdpSink::new();
        // 2 × 1250 B payload, 1 s apart → second packet adds 10 kbit over 1 s.
        for (seq, at) in [(0u64, 1000u64), (1, 2000)] {
            let (pkt, now) = udp_packet(seq, 1250, at);
            let mut ctx = AppCtx::new(now, NodeId(1), 50);
            sink.on_packet(&mut ctx, &pkt);
        }
        let g = sink.goodput_bps().unwrap();
        assert!((g - 20_000.0).abs() < 1e-6, "goodput {g}");
    }

    #[test]
    fn empty_sink_has_no_goodput() {
        assert!(UdpSink::new().goodput_bps().is_none());
        assert_eq!(UdpSink::new().missing(), 0);
    }
}
