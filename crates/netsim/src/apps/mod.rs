//! Built-in applications: ping, constant-rate UDP, and bursty on/off UDP.
//!
//! TCP endpoints live in the `hypatia-transport` crate, built on the same
//! [`crate::app::Application`] interface.

pub mod onoff;
pub mod ping;
pub mod udp;

pub use onoff::OnOffSource;
pub use ping::PingApp;
pub use udp::{UdpSink, UdpSource};
