//! The ping application (paper §4.1: "s sends d a ping every 1 ms, and logs
//! the response time").
//!
//! Echo replies are produced by the destination *node* (kernel-style), so
//! only the source runs an application. Replies carry the original
//! injection timestamp, making RTT computation stateless.

use crate::app::{AppCtx, Application, SaveResult};
use crate::checkpoint::{SnapReader, SnapWriter};
use crate::packet::{Packet, Payload};
use hypatia_constellation::NodeId;
use hypatia_util::{SimDuration, SimTime};

/// Wire size of a ping/pong packet, bytes.
pub const PING_SIZE_BYTES: u32 = 64;

const TIMER_SEND: u64 = 0;

/// Periodic ping source; records `(send time, RTT)` samples.
pub struct PingApp {
    dst: NodeId,
    interval: SimDuration,
    stop_at: SimTime,
    next_seq: u64,
    received: u64,
    rtts: Vec<(SimTime, SimDuration)>,
}

impl PingApp {
    /// Ping `dst` every `interval` until `stop_at`.
    pub fn new(dst: NodeId, interval: SimDuration, stop_at: SimTime) -> Self {
        assert!(!interval.is_zero(), "ping interval must be positive");
        PingApp { dst, interval, stop_at, next_seq: 0, received: 0, rtts: Vec::new() }
    }

    /// Pings sent.
    pub fn sent(&self) -> u64 {
        self.next_seq
    }

    /// Pongs received.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// `(ping send time, measured RTT)` samples, in arrival order.
    pub fn rtts(&self) -> &[(SimTime, SimDuration)] {
        &self.rtts
    }

    /// Loss fraction among probes whose replies could have returned.
    pub fn loss_fraction(&self) -> f64 {
        if self.next_seq == 0 {
            return 0.0;
        }
        1.0 - self.received as f64 / self.next_seq as f64
    }

    fn send_ping(&mut self, ctx: &mut AppCtx) {
        ctx.send(self.dst, ctx.port, PING_SIZE_BYTES, Payload::Ping { seq: self.next_seq });
        self.next_seq += 1;
    }
}

impl Application for PingApp {
    fn on_start(&mut self, ctx: &mut AppCtx) {
        if ctx.now < self.stop_at {
            self.send_ping(ctx);
            ctx.set_timer(self.interval, TIMER_SEND);
        }
    }

    fn on_packet(&mut self, ctx: &mut AppCtx, packet: &Packet) {
        if let Payload::Pong { ping_injected_at, .. } = packet.payload {
            self.received += 1;
            self.rtts.push((ping_injected_at, ctx.now.since(ping_injected_at)));
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx, timer_id: u64) {
        debug_assert_eq!(timer_id, TIMER_SEND);
        if ctx.now < self.stop_at {
            self.send_ping(ctx);
            ctx.set_timer(self.interval, TIMER_SEND);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self, w: &mut SnapWriter) -> SaveResult {
        w.put_u64(self.next_seq);
        w.put_u64(self.received);
        w.put_usize(self.rtts.len());
        for &(t, d) in &self.rtts {
            w.put_time(t);
            w.put_dur(d);
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> SaveResult {
        self.next_seq = r.get_u64()?;
        self.received = r.get_u64()?;
        let n = r.get_usize()?;
        self.rtts.clear();
        for _ in 0..n {
            let t = r.get_time()?;
            let d = r.get_dur()?;
            self.rtts.push((t, d));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sends_on_schedule() {
        let mut app = PingApp::new(NodeId(5), SimDuration::from_millis(10), SimTime::from_secs(1));
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 7);
        app.on_start(&mut ctx);
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 2, "one send + one timer");
        assert_eq!(app.sent(), 1);
    }

    #[test]
    fn stops_after_deadline() {
        let mut app = PingApp::new(NodeId(5), SimDuration::from_millis(10), SimTime::from_secs(1));
        let mut ctx = AppCtx::new(SimTime::from_secs(2), NodeId(0), 7);
        app.on_timer(&mut ctx, 0);
        assert!(ctx.take_actions().is_empty(), "must not send past stop_at");
    }

    #[test]
    fn records_rtt_from_pong() {
        let mut app = PingApp::new(NodeId(5), SimDuration::from_millis(10), SimTime::from_secs(1));
        let sent = SimTime::from_millis(100);
        let now = SimTime::from_millis(148);
        let mut ctx = AppCtx::new(now, NodeId(0), 7);
        let pong = Packet {
            id: 1,
            src: NodeId(5),
            dst: NodeId(0),
            src_port: 7,
            dst_port: 7,
            size_bytes: PING_SIZE_BYTES,
            payload: Payload::Pong { seq: 0, ping_injected_at: sent },
            injected_at: SimTime::from_millis(124),
            hops: 3,
            flow_hash: 0,
        };
        app.on_packet(&mut ctx, &pong);
        assert_eq!(app.received(), 1);
        assert_eq!(app.rtts(), &[(sent, SimDuration::from_millis(48))]);
    }

    #[test]
    fn loss_fraction_reflects_missing_pongs() {
        let mut app = PingApp::new(NodeId(5), SimDuration::from_millis(10), SimTime::from_secs(1));
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 7);
        app.on_start(&mut ctx);
        app.on_timer(&mut ctx, 0);
        app.on_timer(&mut ctx, 0);
        app.on_timer(&mut ctx, 0); // 4 sent, 0 received
        assert!((app.loss_fraction() - 1.0).abs() < 1e-12);
    }
}
