//! Bursty on/off UDP source.
//!
//! The paper's workloads are long-running flows and CBR; real access
//! traffic is bursty. This source alternates exponentially-distributed ON
//! periods (paced packets at the line rate) and OFF periods (silence),
//! driven by the deterministic PRNG so runs are reproducible. Useful for
//! studying queue dynamics and TE under realistic load.

use crate::app::{AppCtx, Application, SaveResult};
use crate::checkpoint::{SnapReader, SnapWriter};
use crate::packet::{Packet, Payload, HEADER_BYTES};
use hypatia_constellation::NodeId;
use hypatia_util::rng::DetRng;
use hypatia_util::{DataRate, DataSize, SimDuration, SimTime};

const TIMER_TICK: u64 = 0;

/// Exponential on/off CBR source.
pub struct OnOffSource {
    dst: NodeId,
    flow: u32,
    payload_bytes: u32,
    gap: SimDuration,
    mean_on: SimDuration,
    mean_off: SimDuration,
    stop_at: SimTime,
    rng: DetRng,
    /// Currently in an ON burst?
    on: bool,
    /// When the current period ends.
    period_end: SimTime,
    next_seq: u64,
    bursts: u64,
}

impl OnOffSource {
    /// A source that sends to `dst` at `rate` during ON periods.
    ///
    /// ON and OFF durations are exponential with the given means; `seed`
    /// fixes the burst pattern.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        dst: NodeId,
        flow: u32,
        rate: DataRate,
        payload_bytes: u32,
        mean_on: SimDuration,
        mean_off: SimDuration,
        stop_at: SimTime,
        seed: u64,
    ) -> Self {
        assert!(payload_bytes > 0, "empty datagrams not allowed");
        assert!(!mean_on.is_zero() && !mean_off.is_zero(), "period means must be positive");
        let wire = DataSize::from_bytes((payload_bytes + HEADER_BYTES) as u64);
        OnOffSource {
            dst,
            flow,
            payload_bytes,
            gap: rate.serialization_delay(wire),
            mean_on,
            mean_off,
            stop_at,
            rng: DetRng::new(seed),
            on: false,
            period_end: SimTime::ZERO,
            next_seq: 0,
            bursts: 0,
        }
    }

    /// Packets sent.
    pub fn sent(&self) -> u64 {
        self.next_seq
    }

    /// Completed ON bursts.
    pub fn bursts(&self) -> u64 {
        self.bursts
    }

    fn exp_sample(&mut self, mean: SimDuration) -> SimDuration {
        // Inverse-CDF; u in (0,1] to avoid ln(0).
        let u = 1.0 - self.rng.next_f64();
        mean.mul_f64(-u.ln())
    }

    fn start_period(&mut self, ctx: &mut AppCtx) {
        self.on = !self.on;
        let mean = if self.on { self.mean_on } else { self.mean_off };
        if self.on {
            self.bursts += 1;
        }
        let len = self.exp_sample(mean);
        self.period_end = ctx.now + len;
        // Tick immediately to either send (ON) or sleep until period end.
        self.tick(ctx);
    }

    fn send_one(&mut self, ctx: &mut AppCtx) {
        ctx.send(
            self.dst,
            ctx.port,
            self.payload_bytes + HEADER_BYTES,
            Payload::Udp { flow: self.flow, seq: self.next_seq, payload_bytes: self.payload_bytes },
        );
        self.next_seq += 1;
    }

    fn tick(&mut self, ctx: &mut AppCtx) {
        if ctx.now >= self.stop_at {
            return;
        }
        if ctx.now >= self.period_end {
            self.start_period(ctx);
            return;
        }
        if self.on {
            self.send_one(ctx);
            ctx.set_timer(self.gap.min(self.period_end.since(ctx.now)), TIMER_TICK);
        } else {
            ctx.set_timer(self.period_end.since(ctx.now), TIMER_TICK);
        }
    }
}

impl Application for OnOffSource {
    fn on_start(&mut self, ctx: &mut AppCtx) {
        // Begin with an OFF→ON toggle so the first period is ON.
        self.on = false;
        self.period_end = ctx.now;
        self.tick(ctx);
    }

    fn on_packet(&mut self, _ctx: &mut AppCtx, _packet: &Packet) {}

    fn on_timer(&mut self, ctx: &mut AppCtx, _timer_id: u64) {
        self.tick(ctx);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self, w: &mut SnapWriter) -> SaveResult {
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_bool(self.on);
        w.put_time(self.period_end);
        w.put_u64(self.next_seq);
        w.put_u64(self.bursts);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> SaveResult {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.get_u64()?;
        }
        self.rng = DetRng::from_state(s);
        self.on = r.get_bool()?;
        self.period_end = r.get_time()?;
        self.next_seq = r.get_u64()?;
        self.bursts = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppAction;

    fn source(seed: u64) -> OnOffSource {
        OnOffSource::new(
            NodeId(1),
            0,
            DataRate::from_mbps(10),
            1440,
            SimDuration::from_millis(100),
            SimDuration::from_millis(100),
            SimTime::from_secs(10),
            seed,
        )
    }

    /// Drive the app standalone by applying its own timer actions.
    fn drive(app: &mut OnOffSource, until: SimTime) -> u64 {
        let mut now = SimTime::ZERO;
        let mut ctx = AppCtx::new(now, NodeId(0), 9);
        app.on_start(&mut ctx);
        let mut pending: Vec<(SimTime, u64)> = Vec::new();
        let mut sent = 0u64;
        let drain = |ctx: &mut AppCtx, pending: &mut Vec<(SimTime, u64)>, sent: &mut u64| {
            for a in ctx.take_actions() {
                match a {
                    AppAction::Send { .. } | AppAction::SendFrom { .. } => *sent += 1,
                    AppAction::Timer { delay, timer_id } => {
                        pending.push((ctx.now + delay, timer_id))
                    }
                }
            }
        };
        drain(&mut ctx, &mut pending, &mut sent);
        while let Some(idx) =
            pending.iter().enumerate().min_by_key(|(_, &(t, _))| t).map(|(i, _)| i)
        {
            let (t, id) = pending.swap_remove(idx);
            if t > until {
                break;
            }
            now = t;
            let mut c = AppCtx::new(now, NodeId(0), 9);
            app.on_timer(&mut c, id);
            drain(&mut c, &mut pending, &mut sent);
        }
        sent
    }

    #[test]
    fn alternates_bursts_and_silence() {
        let mut app = source(42);
        let sent = drive(&mut app, SimTime::from_secs(5));
        assert!(app.bursts() >= 5, "bursts {}", app.bursts());
        assert_eq!(app.sent(), sent);
        // Duty cycle ~50%: full-rate 5 s would be ~4166 packets of 1500 B
        // at 10 Mbps; expect roughly half, with wide tolerance.
        assert!((800..3800).contains(&(sent as i64)), "sent {sent}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = source(7);
        let mut b = source(7);
        assert_eq!(drive(&mut a, SimTime::from_secs(3)), drive(&mut b, SimTime::from_secs(3)));
        let mut c = source(8);
        // Different seed → different burst pattern (overwhelmingly likely).
        assert_ne!(drive(&mut c, SimTime::from_secs(3)), drive(&mut a, SimTime::from_secs(0)));
    }

    #[test]
    fn stops_at_deadline() {
        let mut app = OnOffSource::new(
            NodeId(1),
            0,
            DataRate::from_mbps(10),
            1440,
            SimDuration::from_millis(50),
            SimDuration::from_millis(50),
            SimTime::from_millis(500),
            3,
        );
        drive(&mut app, SimTime::from_secs(10));
        let sent_at_deadline = app.sent();
        // No more sends past stop_at.
        let mut ctx = AppCtx::new(SimTime::from_secs(9), NodeId(0), 9);
        app.on_timer(&mut ctx, TIMER_TICK);
        assert!(ctx.take_actions().is_empty());
        assert_eq!(app.sent(), sent_at_deadline);
    }
}
