//! A deterministic packet-level discrete-event network simulator — the
//! ns-3 substrate of the Hypatia reproduction.
//!
//! The paper implements its packet simulator as an ns-3 module with these
//! satellite-specific semantics (§3.1–§3.2), all reproduced here:
//!
//! * **forwarding state** is recomputed at a configurable time-step
//!   (default 100 ms) and swapped atomically at step boundaries;
//! * **latencies stay continuous**: propagation delay of every transmission
//!   is computed from live orbital geometry at transmit time, even between
//!   forwarding updates;
//! * **one GSL device per node** (default): all of a node's ground↔satellite
//!   traffic serializes through a single queue, while each ISL has its own
//!   device — this asymmetry is what produces Appendix A's bent-pipe
//!   ACK-queueing effects;
//! * **drop-tail queues** sized in packets;
//! * **lossless GSL handoff**: packets already queued or in flight are
//!   delivered along their assigned link; only new packets follow the new
//!   forwarding state;
//! * **pre-filled MAC/ARP state**: there is no address-resolution traffic.
//!
//! Determinism: integer-nanosecond timestamps and a canonical total event
//! order `(time, key)` — where a key encodes the originating node and its
//! scheduling sequence — make every run bit-reproducible. The same order
//! governs both engines of the [`sim`] module: the serial reference loop
//! and the sharded conservative-parallel engine
//! ([`SimConfig::with_sim_shards`]), which partitions nodes into spatial
//! [`shard`]s executed concurrently up to the minimum cross-shard
//! propagation delay. Parallelism is a pure wall-clock knob: observables
//! are bit-identical at any shard count.
//!
//! Applications (ping, UDP CBR, bursty on/off here; TCP in
//! `hypatia-transport`) attach to nodes via the [`app::Application`] trait
//! and a port demux.
//!
//! Extensions beyond the paper's model (all off by default): hybrid
//! fluid/packet simulation ([`SimConfig::with_sim_mode`] — bulk flows
//! modelled analytically by the max-min fair [`fluid`] solver while
//! short flows and control traffic stay packet-level), per-kind
//! ISL/GSL rates, a deterministic GSL loss process (weather stand-in),
//! loop-free multipath forwarding ([`SimConfig::with_multipath`]), a
//! bounded per-packet [`trace`], and deterministic fault injection
//! ([`SimConfig::with_faults`]): a compiled `hypatia-fault` schedule of
//! satellite/ISL/GSL failures is applied mid-flight — forwarding
//! recomputation routes around whatever is down, and packets caught on a
//! failing component are dropped and traced.

pub mod app;
pub mod apps;
pub mod audit;
pub mod checkpoint;
pub mod config;
pub mod device;
pub mod event;
pub mod flow;
pub mod fluid;
pub mod node;
pub mod packet;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod trace;

pub use app::{AppCtx, Application};
pub use audit::AuditViolation;
pub use checkpoint::CheckpointError;
pub use config::SimConfig;
pub use event::QueueKind;
pub use flow::{BulkUdpSink, BulkUdpSource, FlowId};
pub use fluid::SimMode;
pub use packet::{Packet, Payload, Segment};
pub use sim::{EngineReport, Simulator};
pub use stats::SimStats;
