//! Global simulation counters.

use crate::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use hypatia_util::SimDuration;

/// Network-wide counters maintained by the simulator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Packets injected by applications (and auto-generated echo replies).
    pub injected: u64,
    /// Packets delivered to their destination node.
    pub delivered: u64,
    /// Payload bytes delivered (goodput numerator, headers excluded).
    pub payload_bytes_delivered: u64,
    /// Node-to-node hop deliveries (events; the simulation-cost driver).
    pub hop_deliveries: u64,
    /// Packets dropped because no route to the destination existed.
    pub routing_drops: u64,
    /// Packets dropped at full device queues.
    pub queue_drops: u64,
    /// Packets lost on the GSL channel (weather/impairment model).
    pub channel_drops: u64,
    /// Packets dropped by fault injection (in flight on a cut link, or
    /// arriving at / forwarded towards a failed component).
    pub fault_drops: u64,
    /// Packets delivered to a port with no bound application.
    pub unclaimed: u64,
    /// Ping packets answered by node-level echo.
    pub pings_echoed: u64,
    /// Forwarding-state recomputations performed.
    pub forwarding_updates: u64,
    /// Events processed.
    pub events: u64,
    /// Flows owned by installed applications that report a footprint
    /// (see `Application::flow_footprint`; 0 when no app reports one).
    pub flow_count: u64,
    /// Steady-state bytes of per-flow application state behind
    /// `flow_count` (both endpoints; excludes in-flight packets).
    pub flow_state_bytes: u64,
    /// Fluid flows installed (fluid/hybrid modes; coordinator-owned).
    pub fluid_flows: u64,
    /// Max-min rate re-solves performed by the fluid solver.
    pub fluid_resolves: u64,
    /// Payload bytes delivered analytically by fluid flows (excluded
    /// from `payload_bytes_delivered`, which stays packet-only).
    pub fluid_bytes_delivered: u64,
}

impl SimStats {
    /// Goodput in bits/s over `horizon` of simulated time.
    pub fn goodput_bps(&self, horizon: SimDuration) -> f64 {
        assert!(!horizon.is_zero(), "horizon must be positive");
        self.payload_bytes_delivered as f64 * 8.0 / horizon.secs_f64()
    }

    /// Total drops of any kind.
    pub fn total_drops(&self) -> u64 {
        self.routing_drops + self.queue_drops + self.channel_drops + self.fault_drops
    }

    /// Fold another counter set into this one. Every field is a sum, so
    /// merging per-shard stats in any order yields the same totals a
    /// serial run reports.
    pub fn merge(&mut self, other: &SimStats) {
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.payload_bytes_delivered += other.payload_bytes_delivered;
        self.hop_deliveries += other.hop_deliveries;
        self.routing_drops += other.routing_drops;
        self.queue_drops += other.queue_drops;
        self.channel_drops += other.channel_drops;
        self.fault_drops += other.fault_drops;
        self.unclaimed += other.unclaimed;
        self.pings_echoed += other.pings_echoed;
        self.forwarding_updates += other.forwarding_updates;
        self.events += other.events;
        self.flow_count += other.flow_count;
        self.flow_state_bytes += other.flow_state_bytes;
        self.fluid_flows += other.fluid_flows;
        self.fluid_resolves += other.fluid_resolves;
        self.fluid_bytes_delivered += other.fluid_bytes_delivered;
    }

    /// Steady-state application bytes per flow (`None` when no installed
    /// app reports a footprint). The million-flow scaling budget: this must
    /// stay within tens of bytes for bulk flow tables.
    pub fn bytes_per_flow(&self) -> Option<f64> {
        (self.flow_count > 0).then(|| self.flow_state_bytes as f64 / self.flow_count as f64)
    }

    /// Serialize every counter, in declaration order.
    pub fn save(&self, w: &mut SnapWriter) {
        for v in self.as_array() {
            w.put_u64(v);
        }
    }

    /// Restore the counters captured by [`SimStats::save`].
    pub fn restore(&mut self, r: &mut SnapReader) -> Result<(), CheckpointError> {
        let mut vals = [0u64; 17];
        for v in &mut vals {
            *v = r.get_u64()?;
        }
        *self = Self::from_array(vals);
        Ok(())
    }

    fn as_array(&self) -> [u64; 17] {
        [
            self.injected,
            self.delivered,
            self.payload_bytes_delivered,
            self.hop_deliveries,
            self.routing_drops,
            self.queue_drops,
            self.channel_drops,
            self.fault_drops,
            self.unclaimed,
            self.pings_echoed,
            self.forwarding_updates,
            self.events,
            self.flow_count,
            self.flow_state_bytes,
            self.fluid_flows,
            self.fluid_resolves,
            self.fluid_bytes_delivered,
        ]
    }

    fn from_array(v: [u64; 17]) -> SimStats {
        SimStats {
            injected: v[0],
            delivered: v[1],
            payload_bytes_delivered: v[2],
            hop_deliveries: v[3],
            routing_drops: v[4],
            queue_drops: v[5],
            channel_drops: v[6],
            fault_drops: v[7],
            unclaimed: v[8],
            pings_echoed: v[9],
            forwarding_updates: v[10],
            events: v[11],
            flow_count: v[12],
            flow_state_bytes: v[13],
            fluid_flows: v[14],
            fluid_resolves: v[15],
            fluid_bytes_delivered: v[16],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_arithmetic() {
        let stats = SimStats { payload_bytes_delivered: 1_250_000, ..Default::default() };
        // 1.25 MB over 1 s = 10 Mbit/s.
        assert!((stats.goodput_bps(SimDuration::from_secs(1)) - 1e7).abs() < 1e-6);
        assert!((stats.goodput_bps(SimDuration::from_secs(10)) - 1e6).abs() < 1e-6);
    }

    #[test]
    fn drop_totals() {
        let stats =
            SimStats { routing_drops: 3, queue_drops: 4, fault_drops: 2, ..Default::default() };
        assert_eq!(stats.total_drops(), 9);
    }

    #[test]
    fn merge_sums_every_field() {
        let a = SimStats {
            injected: 1,
            delivered: 2,
            payload_bytes_delivered: 3,
            hop_deliveries: 4,
            routing_drops: 5,
            queue_drops: 6,
            channel_drops: 7,
            fault_drops: 8,
            unclaimed: 9,
            pings_echoed: 10,
            forwarding_updates: 11,
            events: 12,
            flow_count: 13,
            flow_state_bytes: 14,
            fluid_flows: 15,
            fluid_resolves: 16,
            fluid_bytes_delivered: 17,
        };
        let mut b = a.clone();
        b.merge(&a);
        let doubled = SimStats {
            injected: 2,
            delivered: 4,
            payload_bytes_delivered: 6,
            hop_deliveries: 8,
            routing_drops: 10,
            queue_drops: 12,
            channel_drops: 14,
            fault_drops: 16,
            unclaimed: 18,
            pings_echoed: 20,
            forwarding_updates: 22,
            events: 24,
            flow_count: 26,
            flow_state_bytes: 28,
            fluid_flows: 30,
            fluid_resolves: 32,
            fluid_bytes_delivered: 34,
        };
        assert_eq!(b, doubled);
        // Merging a default is the identity.
        let mut c = a.clone();
        c.merge(&SimStats::default());
        assert_eq!(c, a);
    }

    #[test]
    fn bytes_per_flow_guard() {
        assert!(SimStats::default().bytes_per_flow().is_none());
        let s = SimStats { flow_count: 4, flow_state_bytes: 100, ..Default::default() };
        assert_eq!(s.bytes_per_flow(), Some(25.0));
    }

    #[test]
    fn save_restore_round_trips_every_field() {
        // Distinct values per field so a swapped pair cannot cancel out.
        let stats = SimStats::from_array(std::array::from_fn(|i| (i as u64 + 1) * 1000 + 7));
        let mut w = SnapWriter::new(0);
        stats.save(&mut w);
        let mut r = SnapReader::from_bytes(w.finish(), 0).expect("valid image");
        let mut back = SimStats::default();
        back.restore(&mut r).expect("restore");
        assert_eq!(back, stats);
        r.expect_end().unwrap();
    }
}
