//! The discrete-event queue.
//!
//! Events are totally ordered by `(time, key)`. The key is either an
//! insertion sequence ([`EventQueue::schedule`] — two events at the same
//! instant execute in the order they were scheduled) or an explicit
//! canonical key supplied by the caller ([`EventQueue::schedule_keyed`]).
//! The simulator uses canonical keys derived from the *originating* node,
//! which makes the total order independent of how the node set is sharded:
//! the sharded engine and the serial engine pop the same events in the
//! same per-node order. Either way, integer timestamps plus a total event
//! order make runs bit-reproducible.
//!
//! Two scheduler implementations preserve that exact total order:
//!
//! * [`QueueKind::Heap`] — a `BinaryHeap`, O(log n) per operation. The
//!   original implementation, kept as a differential-testing oracle and a
//!   `--queue heap` escape hatch.
//! * [`QueueKind::Calendar`] (default) — a hierarchical calendar queue: a
//!   timing wheel of [`NUM_SLOTS`] buckets, each [`SLOT_NS`] ns wide, with
//!   a `BinaryHeap` holding events beyond the wheel's horizon. Scheduling
//!   is O(1) (a push into an unsorted bucket); popping heapifies each
//!   bucket once as the wheel reaches it, which amortizes to
//!   O(log bucket-population) per event — and the bucket heap is tiny and
//!   cache-hot where a global heap spans every pending event. An occupancy
//!   bitmap lets the wheel jump straight to the next populated bucket, so
//!   sparse workloads never step through empty slots. This is ns-3's
//!   calendar-scheduler idea applied to integer-ns time, where bucket
//!   indexing is a shift and a mask.

use crate::packet::Packet;
use hypatia_util::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::mem;

/// Something that happens at an instant.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A device finished serializing its head-of-line packet.
    TxComplete {
        /// Owning node index.
        node: u32,
        /// Device index within the node.
        device: u32,
    },
    /// A packet arrives at a node (propagation complete).
    Arrival {
        /// Receiving node index.
        node: u32,
        /// The packet.
        packet: Packet,
    },
    /// Swap in the forwarding state of time-step `step`.
    ForwardingUpdate {
        /// Step index (t = step × granularity).
        step: u64,
    },
    /// An application timer fires.
    AppTimer {
        /// Application index.
        app: u32,
        /// Application-chosen timer id.
        timer_id: u64,
    },
    /// Apply fault-schedule entry `index` (a component fails or
    /// recovers) and chain-schedule the next entry. Packets already in
    /// flight are judged against the updated state when their
    /// transmission or arrival completes.
    FaultUpdate {
        /// Index into the run's compiled `FaultSchedule`.
        index: u64,
    },
    /// A fluid-flow finish boundary: re-solve the coordinator's fluid
    /// rate allocation with the finished demand removed, and
    /// chain-schedule the next boundary. Serial engine only — the
    /// sharded engine consumes boundaries at epoch starts.
    FluidUpdate {
        /// Index into the fluid network's sorted boundary schedule.
        index: u64,
    },
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

// Order by (time, seq) — BinaryHeap is a max-heap so we wrap in Reverse at
// the call sites; implement Ord accordingly.
impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Which scheduler implementation backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Binary min-heap over `(time, seq)`.
    Heap,
    /// Timing-wheel calendar queue with an overflow heap (the default).
    #[default]
    Calendar,
}

impl QueueKind {
    /// Parse a CLI name (`heap` / `calendar`).
    pub fn parse(s: &str) -> Option<QueueKind> {
        match s {
            "heap" => Some(QueueKind::Heap),
            "calendar" => Some(QueueKind::Calendar),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::Heap => "heap",
            QueueKind::Calendar => "calendar",
        }
    }
}

/// log2 of the calendar bucket width: 2^12 ns = 4.096 µs per slot. Narrow
/// slots keep each bucket's population — and therefore the cursor heap the
/// wheel pops from — small and cache-hot even when tens of thousands of
/// packet events are in flight (the high-goodput end of Fig. 2, where a
/// global heap's sift path is all cache misses).
const SLOT_NS_SHIFT: u32 = 12;
/// Calendar bucket width in nanoseconds.
pub const SLOT_NS: u64 = 1 << SLOT_NS_SHIFT;
/// Number of wheel slots (must be a power of two): with 4.096 µs slots,
/// 4096 slots give a ~16.8 ms horizon — past one serialization plus one
/// typical propagation delay, so the packet events that dominate the hot
/// loop land in the wheel. Slower timescales (forwarding updates, RTO
/// timers, ping intervals) go to the overflow heap, whose population is
/// per-flow/per-step — thousands of times smaller than the packet churn.
pub const NUM_SLOTS: usize = 1 << 12;
const SLOT_MASK: u64 = NUM_SLOTS as u64 - 1;

/// Occupancy-bitmap words (one bit per wheel slot).
const BITMAP_WORDS: usize = NUM_SLOTS / 64;

/// The calendar queue: a timing wheel plus an overflow heap.
///
/// Invariants (checked in debug builds):
/// * `cursor` is a min-heap (by `(at, seq)`) holding the events of every
///   absolute slot `<= cur_slot`, including late sub-slot-delay inserts —
///   a heap, not a sorted vector, so a late insert into a populated slot
///   is O(log slot-population) instead of an O(population) memmove;
/// * `slots[s & SLOT_MASK]` holds exactly the events whose absolute slot
///   `s` lies in `(cur_slot, cur_slot + NUM_SLOTS)` — a slot's vector is
///   drained when the wheel reaches it, before the same index can be
///   reused one rotation later — and `occupied` has bit `s & SLOT_MASK`
///   set iff that vector is non-empty, so advancing the wheel skips empty
///   slots with word-sized bitmap scans instead of touching their (cold)
///   `Vec` headers;
/// * `overflow` holds events at or beyond the horizon
///   (`(cur_slot + NUM_SLOTS) << SLOT_NS_SHIFT`), pulled into `cursor`
///   once their slot becomes current.
#[derive(Debug)]
struct CalendarQueue {
    slots: Vec<Vec<Reverse<Scheduled>>>,
    occupied: [u64; BITMAP_WORDS],
    cursor: BinaryHeap<Reverse<Scheduled>>,
    /// Absolute index (time >> SLOT_NS_SHIFT) of the current slot.
    cur_slot: u64,
    /// Events currently held in `slots` (not `cursor`/`overflow`).
    in_slots: usize,
    overflow: BinaryHeap<Reverse<Scheduled>>,
    len: usize,
}

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue {
            slots: (0..NUM_SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            cursor: BinaryHeap::new(),
            cur_slot: 0,
            in_slots: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    fn schedule(&mut self, s: Scheduled) {
        let abs_slot = s.at.nanos() >> SLOT_NS_SHIFT;
        if abs_slot <= self.cur_slot {
            // At (or before) the slot being drained: joins the cursor heap.
            self.cursor.push(Reverse(s));
        } else if abs_slot < self.cur_slot + NUM_SLOTS as u64 {
            let pos = (abs_slot & SLOT_MASK) as usize;
            self.slots[pos].push(Reverse(s));
            self.occupied[pos / 64] |= 1 << (pos % 64);
            self.in_slots += 1;
        } else {
            self.overflow.push(Reverse(s));
        }
        self.len += 1;
    }

    /// Distance (in slots, `1..NUM_SLOTS`) from `cur_slot` to the nearest
    /// occupied wheel slot. Requires `in_slots > 0`. A circular
    /// find-first-set over the occupancy bitmap: at most `BITMAP_WORDS + 1`
    /// word reads, all within one 512-byte array.
    fn next_occupied_distance(&self) -> u64 {
        let cur_pos = (self.cur_slot & SLOT_MASK) as usize;
        let start = (cur_pos + 1) % NUM_SLOTS;
        let mut word_idx = start / 64;
        let mut word = self.occupied[word_idx] & (!0u64 << (start % 64));
        for _ in 0..=BITMAP_WORDS {
            if word != 0 {
                let pos = word_idx * 64 + word.trailing_zeros() as usize;
                return (((pos + NUM_SLOTS - cur_pos - 1) % NUM_SLOTS) + 1) as u64;
            }
            word_idx = (word_idx + 1) % BITMAP_WORDS;
            word = self.occupied[word_idx];
        }
        unreachable!("in_slots > 0 but occupancy bitmap is empty")
    }

    /// Make `cursor` non-empty (requires `len > 0`): jump the wheel
    /// straight to the earliest populated slot — wheel or overflow,
    /// whichever is due first — and heapify that bucket.
    fn refill(&mut self) {
        debug_assert!(self.cursor.is_empty() && self.len > 0);
        let overflow_next =
            self.overflow.peek().map_or(u64::MAX, |Reverse(s)| s.at.nanos() >> SLOT_NS_SHIFT);
        let wheel_next = if self.in_slots == 0 {
            u64::MAX
        } else {
            self.cur_slot + self.next_occupied_distance()
        };
        let target = wheel_next.min(overflow_next);
        debug_assert!(target > self.cur_slot && target < u64::MAX);
        self.cur_slot = target;

        // Recycle the cursor's buffer: drain wheel + due-overflow events
        // into it, then heapify once — O(bucket) — instead of pushing one
        // at a time.
        let mut staging = mem::take(&mut self.cursor).into_vec();
        let pos = (self.cur_slot & SLOT_MASK) as usize;
        let slot = &mut self.slots[pos];
        if !slot.is_empty() {
            self.in_slots -= slot.len();
            staging.append(slot);
            self.occupied[pos / 64] &= !(1 << (pos % 64));
        }
        while let Some(Reverse(top)) = self.overflow.peek() {
            if top.at.nanos() >> SLOT_NS_SHIFT > self.cur_slot {
                break;
            }
            staging.push(self.overflow.pop().expect("peeked entry vanished"));
        }
        debug_assert!(!staging.is_empty());
        self.cursor = BinaryHeap::from(staging);
    }

    /// Borrow the next event in `(time, seq)` order without removing it.
    fn front(&mut self) -> Option<&Scheduled> {
        if self.len == 0 {
            return None;
        }
        if self.cursor.is_empty() {
            self.refill();
        }
        self.cursor.peek().map(|Reverse(s)| s)
    }

    fn pop(&mut self) -> Option<Scheduled> {
        self.front()?;
        self.len -= 1;
        self.cursor.pop().map(|Reverse(s)| s)
    }

    fn pop_before(&mut self, t_end: SimTime) -> Option<Scheduled> {
        if self.front()?.at > t_end {
            return None;
        }
        self.len -= 1;
        self.cursor.pop().map(|Reverse(s)| s)
    }
}

#[derive(Debug)]
enum QueueImpl {
    Heap(BinaryHeap<Reverse<Scheduled>>),
    // Boxed: the occupancy bitmap makes CalendarQueue ~600 B inline.
    Calendar(Box<CalendarQueue>),
}

/// The event queue.
#[derive(Debug)]
pub struct EventQueue {
    imp: QueueImpl,
    seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue backed by the default scheduler (calendar).
    pub fn new() -> Self {
        Self::with_kind(QueueKind::default())
    }

    /// An empty queue backed by the given scheduler. Pop order is
    /// identical for every kind; this is a performance knob only.
    pub fn with_kind(kind: QueueKind) -> Self {
        let imp = match kind {
            QueueKind::Heap => QueueImpl::Heap(BinaryHeap::new()),
            QueueKind::Calendar => QueueImpl::Calendar(Box::new(CalendarQueue::new())),
        };
        EventQueue { imp, seq: 0 }
    }

    /// The backing scheduler kind.
    pub fn kind(&self) -> QueueKind {
        match self.imp {
            QueueImpl::Heap(_) => QueueKind::Heap,
            QueueImpl::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Schedule `event` at absolute time `at`, tie-broken by insertion
    /// order among same-instant events.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.schedule_keyed(at, seq, event);
    }

    /// Schedule `event` at `at` with an explicit tie-break key. Same-instant
    /// events pop in increasing key order regardless of insertion order.
    /// Callers must not mix auto-sequenced and keyed scheduling on one
    /// queue unless they can rule out `(at, key)` collisions.
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, event: Event) {
        let s = Scheduled { at, seq: key, event };
        match &mut self.imp {
            QueueImpl::Heap(heap) => heap.push(Reverse(s)),
            QueueImpl::Calendar(cal) => cal.schedule(s),
        }
    }

    /// Pop the next event if any, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        match &mut self.imp {
            QueueImpl::Heap(heap) => heap.pop().map(|Reverse(s)| (s.at, s.event)),
            QueueImpl::Calendar(cal) => cal.pop().map(|s| (s.at, s.event)),
        }
    }

    /// Pop the next event only if it is due at or before `t_end` — the
    /// main loop's peek-then-pop collapsed into one queue operation.
    pub fn pop_before(&mut self, t_end: SimTime) -> Option<(SimTime, Event)> {
        match &mut self.imp {
            QueueImpl::Heap(heap) => {
                if heap.peek().is_none_or(|Reverse(s)| s.at > t_end) {
                    return None;
                }
                heap.pop().map(|Reverse(s)| (s.at, s.event))
            }
            QueueImpl::Calendar(cal) => cal.pop_before(t_end).map(|s| (s.at, s.event)),
        }
    }

    /// [`Self::pop_before`], but also returning the event's tie-break key.
    /// The sharded engine tags trace records with this key so traces from
    /// different shards merge into one canonical `(time, key)` order.
    pub fn pop_entry_before(&mut self, t_end: SimTime) -> Option<(SimTime, u64, Event)> {
        match &mut self.imp {
            QueueImpl::Heap(heap) => {
                if heap.peek().is_none_or(|Reverse(s)| s.at > t_end) {
                    return None;
                }
                heap.pop().map(|Reverse(s)| (s.at, s.seq, s.event))
            }
            QueueImpl::Calendar(cal) => cal.pop_before(t_end).map(|s| (s.at, s.seq, s.event)),
        }
    }

    /// Time of the next event without removing it. (The calendar backend
    /// may advance its wheel to locate the front, hence `&mut`.)
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.imp {
            QueueImpl::Heap(heap) => heap.peek().map(|Reverse(s)| s.at),
            QueueImpl::Calendar(cal) => cal.front().map(|s| s.at),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.imp {
            QueueImpl::Heap(heap) => heap.len(),
            QueueImpl::Calendar(cal) => cal.len,
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_util::rng::DetRng;

    fn both_kinds() -> [EventQueue; 2] {
        [EventQueue::with_kind(QueueKind::Heap), EventQueue::with_kind(QueueKind::Calendar)]
    }

    #[test]
    fn default_is_calendar() {
        assert_eq!(EventQueue::new().kind(), QueueKind::Calendar);
        assert_eq!(QueueKind::parse("heap"), Some(QueueKind::Heap));
        assert_eq!(QueueKind::parse("calendar"), Some(QueueKind::Calendar));
        assert_eq!(QueueKind::parse("wheel"), None);
        assert_eq!(QueueKind::Heap.name(), "heap");
        assert_eq!(QueueKind::Calendar.name(), "calendar");
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both_kinds() {
            q.schedule(SimTime::from_millis(30), Event::ForwardingUpdate { step: 3 });
            q.schedule(SimTime::from_millis(10), Event::ForwardingUpdate { step: 1 });
            q.schedule(SimTime::from_millis(20), Event::ForwardingUpdate { step: 2 });
            let order: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|(_, e)| match e {
                    Event::ForwardingUpdate { step } => step,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, vec![1, 2, 3]);
        }
    }

    #[test]
    fn fifo_within_same_instant() {
        for mut q in both_kinds() {
            let t = SimTime::from_secs(1);
            for step in 0..10 {
                q.schedule(t, Event::ForwardingUpdate { step });
            }
            let order: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|(_, e)| match e {
                    Event::ForwardingUpdate { step } => step,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn peek_does_not_remove() {
        for mut q in both_kinds() {
            q.schedule(SimTime::from_secs(5), Event::AppTimer { app: 0, timer_id: 7 });
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
            assert_eq!(q.len(), 1);
            assert!(q.pop().is_some());
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        for mut q in both_kinds() {
            q.schedule(SimTime::from_secs(2), Event::AppTimer { app: 0, timer_id: 2 });
            q.schedule(SimTime::from_secs(1), Event::AppTimer { app: 0, timer_id: 1 });
            let (t1, _) = q.pop().unwrap();
            assert_eq!(t1, SimTime::from_secs(1));
            q.schedule(SimTime::from_millis(1500), Event::AppTimer { app: 0, timer_id: 15 });
            let (t2, e2) = q.pop().unwrap();
            assert_eq!(t2, SimTime::from_millis(1500));
            assert!(matches!(e2, Event::AppTimer { timer_id: 15, .. }));
        }
    }

    #[test]
    fn pop_before_is_inclusive_and_leaves_later_events() {
        for mut q in both_kinds() {
            q.schedule(SimTime::from_millis(10), Event::ForwardingUpdate { step: 1 });
            q.schedule(SimTime::from_millis(20), Event::ForwardingUpdate { step: 2 });
            assert!(q.pop_before(SimTime::from_millis(5)).is_none());
            assert_eq!(q.len(), 2, "pop_before must not remove a later event");
            // Inclusive at exactly t_end.
            let (t, _) = q.pop_before(SimTime::from_millis(10)).unwrap();
            assert_eq!(t, SimTime::from_millis(10));
            assert!(q.pop_before(SimTime::from_millis(19)).is_none());
            let (t, _) = q.pop_before(SimTime::from_millis(25)).unwrap();
            assert_eq!(t, SimTime::from_millis(20));
            assert!(q.pop_before(SimTime::MAX).is_none());
        }
    }

    #[test]
    fn keyed_scheduling_orders_same_instant_events_by_key() {
        for mut q in both_kinds() {
            let t = SimTime::from_millis(5);
            // Insertion order deliberately disagrees with key order.
            q.schedule_keyed(t, 30, Event::ForwardingUpdate { step: 3 });
            q.schedule_keyed(t, 10, Event::ForwardingUpdate { step: 1 });
            q.schedule_keyed(SimTime::from_millis(1), 99, Event::ForwardingUpdate { step: 0 });
            q.schedule_keyed(t, 20, Event::ForwardingUpdate { step: 2 });
            let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop_entry_before(SimTime::MAX))
                .map(|(_, key, e)| match e {
                    Event::ForwardingUpdate { step } => (key, step),
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, vec![(99, 0), (10, 1), (20, 2), (30, 3)]);
        }
    }

    #[test]
    fn pop_entry_before_matches_pop_before() {
        for mut q in both_kinds() {
            q.schedule_keyed(SimTime::from_millis(10), 7, Event::ForwardingUpdate { step: 1 });
            assert!(q.pop_entry_before(SimTime::from_millis(9)).is_none());
            let (t, key, _) = q.pop_entry_before(SimTime::from_millis(10)).unwrap();
            assert_eq!((t, key), (SimTime::from_millis(10), 7));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn calendar_handles_same_slot_and_cross_slot_ties() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        // Two events in the same wheel slot, one a slot ahead, one far in
        // the overflow, then a same-instant tie with the overflow event.
        let in_slot = SimTime::from_nanos(SLOT_NS / 2);
        let far = SimTime::from_secs(30);
        q.schedule(far, Event::AppTimer { app: 9, timer_id: 0 });
        q.schedule(in_slot, Event::AppTimer { app: 1, timer_id: 0 });
        q.schedule(in_slot, Event::AppTimer { app: 2, timer_id: 0 });
        q.schedule(SimTime::from_nanos(SLOT_NS + 1), Event::AppTimer { app: 3, timer_id: 0 });
        q.schedule(far, Event::AppTimer { app: 10, timer_id: 0 });
        let apps: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::AppTimer { app, .. } => app,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(apps, vec![1, 2, 3, 9, 10]);
    }

    #[test]
    fn calendar_jumps_over_long_empty_stretches() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        // Hours apart: forces the wheel-empty jump path repeatedly.
        for h in (1..=5u64).rev() {
            q.schedule(SimTime::from_secs(h * 3600), Event::ForwardingUpdate { step: h });
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::ForwardingUpdate { step } => step,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    /// Regression for the slot-wraparound edge: events landing exactly at
    /// the wheel's bucket horizon (`cur_slot + NUM_SLOTS`) must go to the
    /// overflow heap — one nanosecond earlier is the last wheel slot — and
    /// both sides of the boundary must pop in exactly heap order, including
    /// after the wheel has advanced and slot indices have wrapped.
    #[test]
    fn boundary_at_the_bucket_horizon_pops_identically_on_both_queues() {
        let horizon_ns = SLOT_NS * NUM_SLOTS as u64;
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut cal = EventQueue::with_kind(QueueKind::Calendar);
        let mut id = 0u64;
        let mut schedule_both = |q1: &mut EventQueue, q2: &mut EventQueue, at_ns: u64| {
            q1.schedule(SimTime::from_nanos(at_ns), Event::AppTimer { app: 0, timer_id: id });
            q2.schedule(SimTime::from_nanos(at_ns), Event::AppTimer { app: 0, timer_id: id });
            id += 1;
        };

        // Around the horizon of a fresh wheel (cur_slot = 0): the start and
        // the last nanosecond of the final wheel slot, the first overflow
        // nanosecond (== the horizon), one slot beyond, and a same-instant
        // tie straddling the boundary.
        for at in [
            horizon_ns - SLOT_NS, // first ns of the last wheel slot
            horizon_ns - 1,       // last ns inside the wheel
            horizon_ns,           // exactly the bucket horizon: overflow
            horizon_ns,           // tie at the horizon: FIFO must hold
            horizon_ns + SLOT_NS, // one slot past the horizon
            horizon_ns - 1,       // late tie just inside the wheel
        ] {
            schedule_both(&mut heap, &mut cal, at);
        }
        let mut last_pop_ns = 0;
        for step in 0..6 {
            let a = heap.pop();
            let b = cal.pop();
            assert_eq!(a, b, "pop {step} diverged at the bucket horizon");
            let (t, _) = a.expect("queue drained early");
            assert!(t.nanos() >= last_pop_ns);
            last_pop_ns = t.nanos();
        }
        assert!(heap.is_empty() && cal.is_empty());

        // After the wheel has advanced past one full rotation, the same
        // boundary arithmetic applies relative to the new cur_slot, with
        // slot indices wrapped. Repeat the edge cases there.
        let base = last_pop_ns; // cursor now sits at this slot
        let new_horizon =
            (base >> SLOT_NS.trailing_zeros() << SLOT_NS.trailing_zeros()) + horizon_ns;
        for at in [new_horizon, new_horizon - 1, new_horizon + 7, base, new_horizon] {
            schedule_both(&mut heap, &mut cal, at);
        }
        for step in 0..5 {
            let a = heap.pop();
            let b = cal.pop();
            assert_eq!(a, b, "wrapped pop {step} diverged");
        }
        assert!(heap.is_empty() && cal.is_empty());
    }

    /// The differential property test the calendar queue's correctness
    /// argument rests on: both backends, driven by the same random mix of
    /// schedule/pop/pop_before operations (including same-instant ties,
    /// sub-slot deltas, and far-overflow times), must agree on every
    /// popped `(time, event)` and on `len()` at every step.
    #[test]
    fn differential_calendar_equals_heap_on_random_schedules() {
        let mut rng = DetRng::new(0xC0FFEE);
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut cal = EventQueue::with_kind(QueueKind::Calendar);
        // `now` mirrors the simulator contract: never schedule in the past.
        let mut now = SimTime::ZERO;
        let mut last_at = SimTime::ZERO;
        let mut scheduled = 0u64;
        let mut popped = 0u64;
        for op in 0..10_000u64 {
            match rng.next_below(10) {
                // 0..5: schedule (keeps the queues populated).
                0..=4 => {
                    // Mix of deltas: exact ties (0), sub-slot, a few slots,
                    // within-horizon milliseconds, and overflow seconds.
                    let delta = match rng.next_below(5) {
                        0 => 0,
                        1 => rng.next_below(SLOT_NS),
                        2 => rng.next_below(16 * SLOT_NS),
                        3 => rng.next_below(200_000_000),
                        _ => rng.next_below(20_000_000_000),
                    };
                    let at = SimTime::from_nanos(now.nanos() + delta);
                    heap.schedule(at, Event::AppTimer { app: 0, timer_id: op });
                    cal.schedule(at, Event::AppTimer { app: 0, timer_id: op });
                    scheduled += 1;
                }
                // 5..8: pop.
                5..=7 => {
                    let a = heap.pop();
                    let b = cal.pop();
                    assert_eq!(a, b, "pop diverged at op {op}");
                    if let Some((t, _)) = a {
                        assert!(t >= last_at, "heap order itself regressed");
                        last_at = t;
                        now = t;
                        popped += 1;
                    }
                }
                // 8: pop_before a horizon a random distance ahead.
                8 => {
                    let t_end = SimTime::from_nanos(now.nanos() + rng.next_below(500_000_000));
                    let a = heap.pop_before(t_end);
                    let b = cal.pop_before(t_end);
                    assert_eq!(a, b, "pop_before diverged at op {op}");
                    if let Some((t, _)) = a {
                        assert!(t <= t_end);
                        now = t;
                        last_at = t;
                        popped += 1;
                    }
                }
                // 9: peek.
                _ => {
                    assert_eq!(heap.peek_time(), cal.peek_time(), "peek diverged at op {op}");
                }
            }
            assert_eq!(heap.len(), cal.len(), "len diverged at op {op}");
        }
        assert!(scheduled > 4000 && popped > 1000, "exercise both paths: {scheduled}/{popped}");
        // Drain both completely: the tails must agree too.
        loop {
            let a = heap.pop();
            let b = cal.pop();
            assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }
}
