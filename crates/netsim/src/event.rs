//! The discrete-event queue.
//!
//! Events are totally ordered by `(time, insertion sequence)`: two events at
//! the same instant execute in the order they were scheduled. This, plus
//! integer timestamps, makes runs bit-reproducible.

use crate::packet::Packet;
use hypatia_util::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Something that happens at an instant.
#[derive(Debug, Clone)]
pub enum Event {
    /// A device finished serializing its head-of-line packet.
    TxComplete {
        /// Owning node index.
        node: u32,
        /// Device index within the node.
        device: u32,
    },
    /// A packet arrives at a node (propagation complete).
    Arrival {
        /// Receiving node index.
        node: u32,
        /// The packet.
        packet: Packet,
    },
    /// Swap in the forwarding state of time-step `step`.
    ForwardingUpdate {
        /// Step index (t = step × granularity).
        step: u64,
    },
    /// An application timer fires.
    AppTimer {
        /// Application index.
        app: u32,
        /// Application-chosen timer id.
        timer_id: u64,
    },
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

// Order by (time, seq) — BinaryHeap is a max-heap so we wrap in Reverse at
// the call sites; implement Ord accordingly.
impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Pop the next event if any, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), Event::ForwardingUpdate { step: 3 });
        q.schedule(SimTime::from_millis(10), Event::ForwardingUpdate { step: 1 });
        q.schedule(SimTime::from_millis(20), Event::ForwardingUpdate { step: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::ForwardingUpdate { step } => step,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for step in 0..10 {
            q.schedule(t, Event::ForwardingUpdate { step });
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::ForwardingUpdate { step } => step,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), Event::AppTimer { app: 0, timer_id: 7 });
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), Event::AppTimer { app: 0, timer_id: 2 });
        q.schedule(SimTime::from_secs(1), Event::AppTimer { app: 0, timer_id: 1 });
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1, SimTime::from_secs(1));
        q.schedule(SimTime::from_millis(1500), Event::AppTimer { app: 0, timer_id: 15 });
        let (t2, e2) = q.pop().unwrap();
        assert_eq!(t2, SimTime::from_millis(1500));
        assert!(matches!(e2, Event::AppTimer { timer_id: 15, .. }));
    }
}
