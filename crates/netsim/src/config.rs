//! Simulation configuration.

use crate::event::QueueKind;
use crate::fluid::SimMode;
use hypatia_fault::FaultSchedule;
use hypatia_routing::incremental::{RoutingConfig, RoutingMode};
use hypatia_util::{DataRate, SimDuration};
use std::sync::Arc;

/// Configuration knobs of a packet-level simulation, mirroring the paper's
/// experiment parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Line rate of every link (ISL and GSL devices alike; the paper sets
    /// these uniform per experiment, e.g. 10 Mbit/s in §4–§5).
    pub link_rate: DataRate,
    /// Drop-tail queue capacity per device, packets (paper: 100).
    pub queue_packets: usize,
    /// Forwarding-state recomputation granularity (paper default: 100 ms).
    pub fstate_step: SimDuration,
    /// Track per-device utilization at this bucket width (e.g. 1 s for the
    /// paper's Fig. 10/14/15); `None` disables tracking.
    pub utilization_bucket: Option<SimDuration>,
    /// Freeze the network at its t = 0 state: forwarding is computed once
    /// and link delays are evaluated at t = 0 forever. This is the paper's
    /// "static network" baseline (gray line of Fig. 10).
    pub freeze_at_epoch: bool,
    /// Override for ISL devices only (paper §7 flags capacity heterogeneity
    /// as an easy extension: laser ISLs and radio GSLs need not match).
    /// `None` = use `link_rate`.
    pub isl_rate: Option<DataRate>,
    /// Override for GSL devices only. `None` = use `link_rate`.
    pub gsl_rate: Option<DataRate>,
    /// Per-transmission loss probability on GSL links in `[0, 1)` — a
    /// weather/channel impairment stand-in (paper §7: "incorporating a
    /// weather model would enable work on reliability"). Deterministic:
    /// driven by a seeded PRNG.
    pub gsl_loss_rate: f64,
    /// Seed for the loss process.
    pub loss_seed: u64,
    /// Record up to this many per-packet trace events (0 = off).
    pub trace_limit: usize,
    /// Per-flow trace sampling: record packet events only for flows whose
    /// flow hash is divisible by this value (1 = record every flow, the
    /// default). Sampling keeps each selected flow's records *complete* —
    /// a journey is either fully traced or not traced at all — which is
    /// what makes sampled traces usable for per-flow time series at
    /// million-flow scale.
    pub trace_sample_every: u64,
    /// Loop-free multipath forwarding: spread flows over downhill
    /// alternates within this delay-stretch bound (e.g. `Some(1.2)` allows
    /// detours up to 20% longer). `None` = single shortest path (paper
    /// default). Addresses the paper's §5.4 routing/TE takeaway.
    pub multipath_stretch: Option<f64>,
    /// Background forwarding-state prefetch: number of worker threads that
    /// compute upcoming time-steps while the event loop consumes the
    /// current one (0 = compute inline, the default). States are consumed
    /// strictly in step order, so the simulation is bit-identical for any
    /// value — this is purely a wall-clock knob.
    pub fstate_threads: usize,
    /// How many forwarding-state steps may be computed ahead when
    /// `fstate_threads > 0` (bounds prefetch memory).
    pub fstate_prefetch: usize,
    /// Event-scheduler implementation. Pop order — and therefore every
    /// simulation result — is identical for every kind; this is purely a
    /// performance knob (and a differential-testing escape hatch).
    pub queue: QueueKind,
    /// Fault-injection scenario: a compiled, time-sorted schedule of
    /// satellite/ISL/GSL failures and repairs (see `hypatia-fault`).
    /// Fault events are applied mid-flight as simulator events,
    /// forwarding recomputation routes around whatever is down, and
    /// packets caught on a failing component are dropped and traced.
    /// `None` (the default) — and an empty schedule — leave every
    /// simulation result bit-identical to the fault-free simulator.
    pub faults: Option<Arc<FaultSchedule>>,
    /// How forwarding states are recomputed across steps: full Dijkstra
    /// every snapshot, or incremental repair of the previous snapshot's
    /// trees (the default). Output is byte-identical either way — this
    /// is purely a wall-clock knob, with `full` as the escape hatch.
    pub routing: RoutingConfig,
    /// Number of spatial shards the event engine partitions the node set
    /// into. `1` (the default) runs the serial reference engine; `N > 1`
    /// executes shards in parallel up to a conservative lookahead horizon
    /// derived from the minimum cross-shard propagation delay. Every
    /// simulation observable is bit-identical for any value — this is
    /// purely a wall-clock knob. Clamped to the satellite count.
    pub sim_shards: usize,
    /// How bulk flows are simulated: packet-level for everything (the
    /// default), analytically via the max-min fluid solver, or hybrid —
    /// fluid bulk flows whose aggregate per-link load is subtracted from
    /// device capacity so packet-level traffic sees the residual (see
    /// [`crate::fluid`]).
    pub sim_mode: SimMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_rate: DataRate::from_mbps(10),
            queue_packets: 100,
            fstate_step: SimDuration::from_millis(100),
            utilization_bucket: None,
            freeze_at_epoch: false,
            isl_rate: None,
            gsl_rate: None,
            gsl_loss_rate: 0.0,
            loss_seed: 7,
            trace_limit: 0,
            trace_sample_every: 1,
            multipath_stretch: None,
            fstate_threads: 0,
            fstate_prefetch: 4,
            queue: QueueKind::default(),
            faults: None,
            routing: RoutingConfig::default(),
            sim_shards: 1,
            sim_mode: SimMode::default(),
        }
    }
}

impl SimConfig {
    /// Builder-style: set the link rate.
    pub fn with_link_rate(mut self, rate: DataRate) -> Self {
        self.link_rate = rate;
        self
    }

    /// Builder-style: set the queue size in packets.
    pub fn with_queue_packets(mut self, packets: usize) -> Self {
        assert!(packets > 0, "queue must hold at least one packet");
        self.queue_packets = packets;
        self
    }

    /// Builder-style: set the forwarding-state granularity.
    pub fn with_fstate_step(mut self, step: SimDuration) -> Self {
        assert!(!step.is_zero(), "forwarding step must be positive");
        self.fstate_step = step;
        self
    }

    /// Builder-style: enable utilization tracking.
    pub fn with_utilization_bucket(mut self, bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket must be positive");
        self.utilization_bucket = Some(bucket);
        self
    }

    /// Builder-style: freeze the network at its t = 0 state.
    pub fn frozen(mut self) -> Self {
        self.freeze_at_epoch = true;
        self
    }

    /// Builder-style: give ISLs a different rate than GSLs.
    pub fn with_isl_rate(mut self, rate: DataRate) -> Self {
        self.isl_rate = Some(rate);
        self
    }

    /// Builder-style: give GSLs a different rate than ISLs.
    pub fn with_gsl_rate(mut self, rate: DataRate) -> Self {
        self.gsl_rate = Some(rate);
        self
    }

    /// Builder-style: drop each GSL transmission with probability `p`.
    pub fn with_gsl_loss(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss rate must be in [0, 1): {p}");
        self.gsl_loss_rate = p;
        self
    }

    /// Builder-style: enable loop-free multipath with the given stretch.
    pub fn with_multipath(mut self, stretch: f64) -> Self {
        assert!(stretch >= 1.0, "stretch must be >= 1.0: {stretch}");
        self.multipath_stretch = Some(stretch);
        self
    }

    /// Builder-style: enable per-packet tracing with the given buffer size.
    pub fn with_trace_limit(mut self, limit: usize) -> Self {
        self.trace_limit = limit;
        self
    }

    /// Builder-style: trace only flows whose flow hash divides `every`
    /// (1 = trace every flow).
    pub fn with_trace_sampling(mut self, every: u64) -> Self {
        assert!(every >= 1, "sampling interval must be at least 1");
        self.trace_sample_every = every;
        self
    }

    /// Builder-style: compute forwarding states for upcoming steps on
    /// `threads` background workers, at most `prefetch` steps ahead.
    /// Results are identical to inline computation for any thread count.
    pub fn with_fstate_prefetch(mut self, threads: usize, prefetch: usize) -> Self {
        assert!(prefetch > 0 || threads == 0, "prefetch depth must be positive");
        self.fstate_threads = threads;
        self.fstate_prefetch = prefetch;
        self
    }

    /// Builder-style: pick the event-scheduler implementation.
    pub fn with_queue(mut self, kind: QueueKind) -> Self {
        self.queue = kind;
        self
    }

    /// Builder-style: inject the given fault scenario.
    pub fn with_faults(mut self, schedule: Arc<FaultSchedule>) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Builder-style: pick the forwarding-state recomputation strategy
    /// (full Dijkstra vs. incremental repair). Results are byte-identical
    /// for every choice.
    pub fn with_routing_mode(mut self, mode: RoutingMode) -> Self {
        self.routing.mode = mode;
        self
    }

    /// Builder-style: set the incremental-repair churn threshold — the
    /// fraction of flipped edges between snapshots above which a full
    /// recompute is cheaper than a repair.
    pub fn with_repair_churn_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold >= 0.0, "churn threshold must be non-negative: {threshold}");
        self.routing.repair_churn_threshold = threshold;
        self
    }

    /// Builder-style: partition the event engine into `shards` spatial
    /// shards executed in parallel (1 = the serial reference engine).
    /// Results are bit-identical for every value.
    pub fn with_sim_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard is required");
        self.sim_shards = shards;
        self
    }

    /// Builder-style: pick how bulk flows are simulated (packet, fluid,
    /// or hybrid). Packet-level behaviour is unchanged unless fluid
    /// flows are actually installed.
    pub fn with_sim_mode(mut self, mode: SimMode) -> Self {
        self.sim_mode = mode;
        self
    }

    /// Effective rate for an ISL device.
    pub fn effective_isl_rate(&self) -> DataRate {
        self.isl_rate.unwrap_or(self.link_rate)
    }

    /// Effective rate for a GSL device.
    pub fn effective_gsl_rate(&self) -> DataRate {
        self.gsl_rate.unwrap_or(self.link_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.link_rate, DataRate::from_mbps(10));
        assert_eq!(c.queue_packets, 100);
        assert_eq!(c.fstate_step, SimDuration::from_millis(100));
        assert!(c.utilization_bucket.is_none());
        assert!(!c.freeze_at_epoch);
        assert_eq!(c.gsl_loss_rate, 0.0);
        assert_eq!(c.effective_isl_rate(), c.link_rate);
        assert_eq!(c.effective_gsl_rate(), c.link_rate);
        assert_eq!(c.queue, QueueKind::Calendar, "calendar queue is the default");
        assert!(c.faults.is_none(), "fault injection is off by default");
        assert_eq!(c.routing.mode, RoutingMode::Incremental, "incremental repair is the default");
        assert_eq!(c.sim_shards, 1, "the serial engine is the default");
        assert_eq!(c.trace_sample_every, 1, "every flow is traced by default");
        assert_eq!(c.sim_mode, SimMode::Packet, "packet-level simulation is the default");
    }

    #[test]
    fn trace_sampling_builder() {
        let c = SimConfig::default().with_trace_sampling(8);
        assert_eq!(c.trace_sample_every, 8);
    }

    #[test]
    #[should_panic]
    fn zero_trace_sampling_rejected() {
        SimConfig::default().with_trace_sampling(0);
    }

    #[test]
    fn shard_builder() {
        let c = SimConfig::default().with_sim_shards(4);
        assert_eq!(c.sim_shards, 4);
    }

    #[test]
    #[should_panic]
    fn zero_shards_rejected() {
        SimConfig::default().with_sim_shards(0);
    }

    #[test]
    fn routing_builders() {
        let c = SimConfig::default()
            .with_routing_mode(RoutingMode::Full)
            .with_repair_churn_threshold(0.3);
        assert_eq!(c.routing.mode, RoutingMode::Full);
        assert_eq!(c.routing.repair_churn_threshold, 0.3);
    }

    #[test]
    #[should_panic]
    fn negative_churn_threshold_rejected() {
        SimConfig::default().with_repair_churn_threshold(-0.1);
    }

    #[test]
    fn sim_mode_builder() {
        let c = SimConfig::default().with_sim_mode(SimMode::Hybrid);
        assert_eq!(c.sim_mode, SimMode::Hybrid);
    }

    #[test]
    fn queue_builder() {
        let c = SimConfig::default().with_queue(QueueKind::Heap);
        assert_eq!(c.queue, QueueKind::Heap);
    }

    #[test]
    fn heterogeneous_rates() {
        let c = SimConfig::default()
            .with_isl_rate(DataRate::from_gbps(1))
            .with_gsl_rate(DataRate::from_mbps(100));
        assert_eq!(c.effective_isl_rate(), DataRate::from_gbps(1));
        assert_eq!(c.effective_gsl_rate(), DataRate::from_mbps(100));
        assert_eq!(c.link_rate, DataRate::from_mbps(10), "base rate untouched");
    }

    #[test]
    fn gsl_loss_builder() {
        let c = SimConfig::default().with_gsl_loss(0.01);
        assert_eq!(c.gsl_loss_rate, 0.01);
    }

    #[test]
    #[should_panic]
    fn loss_rate_of_one_rejected() {
        SimConfig::default().with_gsl_loss(1.0);
    }

    #[test]
    fn builder_chains() {
        let c = SimConfig::default()
            .with_link_rate(DataRate::from_gbps(1))
            .with_queue_packets(50)
            .with_fstate_step(SimDuration::from_millis(50))
            .with_utilization_bucket(SimDuration::from_secs(1))
            .frozen();
        assert_eq!(c.link_rate, DataRate::from_gbps(1));
        assert_eq!(c.queue_packets, 50);
        assert_eq!(c.fstate_step, SimDuration::from_millis(50));
        assert_eq!(c.utilization_bucket, Some(SimDuration::from_secs(1)));
        assert!(c.freeze_at_epoch);
    }

    #[test]
    #[should_panic]
    fn zero_queue_rejected() {
        SimConfig::default().with_queue_packets(0);
    }
}
