//! The application interface.
//!
//! Applications (ping sources, UDP sources/sinks, TCP endpoints) attach to
//! a node and a port. Handlers receive an [`AppCtx`] that *buffers* actions
//! (packet sends, timers) which the simulator applies after the handler
//! returns — this keeps the borrow structure simple and the event order
//! deterministic.
//!
//! Timers cannot be cancelled; an application that needs cancellation
//! encodes a generation counter into `timer_id` and ignores stale firings
//! (this is how the TCP retransmission timer is built).

use crate::packet::{Packet, Payload};
use hypatia_constellation::NodeId;
use hypatia_util::{SimDuration, SimTime};

/// A buffered application action.
#[derive(Debug, Clone)]
pub enum AppAction {
    /// Send a packet from this app's node/port.
    Send {
        /// Destination node.
        dst: NodeId,
        /// Destination port.
        dst_port: u16,
        /// Wire size, bytes.
        size_bytes: u32,
        /// Payload.
        payload: Payload,
    },
    /// Send a packet from an explicit source port of this app's node.
    ///
    /// Bulk (arena) applications own many flows behind one [`Application`];
    /// each flow keeps its own wire identity by naming its source port
    /// explicitly instead of inheriting the context port.
    SendFrom {
        /// Source port stamped on the packet.
        src_port: u16,
        /// Destination node.
        dst: NodeId,
        /// Destination port.
        dst_port: u16,
        /// Wire size, bytes.
        size_bytes: u32,
        /// Payload.
        payload: Payload,
    },
    /// Request an [`Application::on_timer`] callback after `delay`.
    Timer {
        /// Relative delay.
        delay: SimDuration,
        /// Application-chosen id, echoed back on firing.
        timer_id: u64,
    },
}

/// Handler context: the current time, the app's own address, and the action
/// buffer.
#[derive(Debug)]
pub struct AppCtx {
    /// Current simulation time.
    pub now: SimTime,
    /// The node this application lives on.
    pub node: NodeId,
    /// The port this application is bound to.
    pub port: u16,
    /// Tag OR-ed into every `timer_id` passed to [`AppCtx::set_timer`].
    ///
    /// Defaults to 0 (a no-op). Bulk applications that multiplex many flows
    /// behind one handler set this to `flow_index << 32` before delegating
    /// to per-flow protocol code, so a later `on_timer` can route the firing
    /// back to the right flow without the inner code knowing it is shared.
    pub timer_tag: u64,
    pub(crate) actions: Vec<AppAction>,
}

impl AppCtx {
    /// Create a context (public so application crates can unit-test their
    /// handlers without a full simulator).
    pub fn new(now: SimTime, node: NodeId, port: u16) -> Self {
        AppCtx { now, node, port, timer_tag: 0, actions: Vec::new() }
    }

    /// Send a packet to `(dst, dst_port)`.
    pub fn send(&mut self, dst: NodeId, dst_port: u16, size_bytes: u32, payload: Payload) {
        self.actions.push(AppAction::Send { dst, dst_port, size_bytes, payload });
    }

    /// Send a packet to `(dst, dst_port)` from an explicit source port
    /// (bulk applications owning many flows on one node).
    pub fn send_from(
        &mut self,
        src_port: u16,
        dst: NodeId,
        dst_port: u16,
        size_bytes: u32,
        payload: Payload,
    ) {
        self.actions.push(AppAction::SendFrom { src_port, dst, dst_port, size_bytes, payload });
    }

    /// Arrange an `on_timer(timer_id)` callback after `delay`. The context's
    /// [`timer_tag`](AppCtx::timer_tag) is OR-ed into the id.
    pub fn set_timer(&mut self, delay: SimDuration, timer_id: u64) {
        self.actions.push(AppAction::Timer { delay, timer_id: self.timer_tag | timer_id });
    }

    /// Drain the buffered actions (used by the simulator and by tests).
    pub fn take_actions(&mut self) -> Vec<AppAction> {
        std::mem::take(&mut self.actions)
    }
}

/// An application endpoint.
///
/// The `as_any` pair enables retrieving a concrete application (and its
/// recorded results) back from the simulator after a run.
///
/// `Send` is required because the sharded engine executes each shard's
/// applications on a worker thread; an application only ever runs on the
/// shard owning its node, so `Sync` is not needed.
pub trait Application: Send + 'static {
    /// Called once when the application is installed (typically sets the
    /// first timer or sends the first packet).
    fn on_start(&mut self, ctx: &mut AppCtx);

    /// A packet addressed to this app's `(node, port)` arrived.
    fn on_packet(&mut self, ctx: &mut AppCtx, packet: &Packet);

    /// A previously-set timer fired.
    fn on_timer(&mut self, ctx: &mut AppCtx, timer_id: u64);

    /// Steady-state flow footprint: `(flows owned, resident bytes)`.
    ///
    /// `None` (the default) means the application does not participate in
    /// footprint accounting. Bulk sources report their flow count and table
    /// bytes; bulk sinks report `(0, bytes)` so each flow is counted once
    /// while its state on both endpoints still lands in the byte total.
    fn flow_footprint(&self) -> Option<(u64, u64)> {
        None
    }

    /// Downcast support.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Downcast support (mutable).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Serialize this application's mutable state for a checkpoint.
    ///
    /// The default refuses: an application that opts into checkpointed
    /// runs must implement the pair, and a run over one that has not is a
    /// typed error at checkpoint time rather than a silently wrong resume.
    /// Pending timers and in-flight packets are *not* the application's
    /// concern — they live in the event queue, which the simulator
    /// serializes itself.
    fn save_state(&self, _w: &mut crate::checkpoint::SnapWriter) -> SaveResult {
        Err(crate::checkpoint::CheckpointError::Unsupported(format!(
            "application {} does not implement save_state",
            std::any::type_name::<Self>()
        )))
    }

    /// Restore the state captured by [`Application::save_state`].
    fn restore_state(&mut self, _r: &mut crate::checkpoint::SnapReader) -> SaveResult {
        Err(crate::checkpoint::CheckpointError::Unsupported(format!(
            "application {} does not implement restore_state",
            std::any::type_name::<Self>()
        )))
    }
}

/// Result of an application state save/restore.
pub type SaveResult = Result<(), crate::checkpoint::CheckpointError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_buffers_actions_in_order() {
        let mut ctx = AppCtx::new(SimTime::from_secs(1), NodeId(3), 80);
        ctx.set_timer(SimDuration::from_millis(10), 42);
        ctx.send(NodeId(5), 99, 64, Payload::Ping { seq: 0 });
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 2);
        assert!(matches!(actions[0], AppAction::Timer { timer_id: 42, .. }));
        assert!(matches!(actions[1], AppAction::Send { dst: NodeId(5), dst_port: 99, .. }));
        // Buffer is drained.
        assert!(ctx.take_actions().is_empty());
    }

    #[test]
    fn timer_tag_is_ored_into_timer_ids() {
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 1);
        ctx.timer_tag = 7 << 32;
        ctx.set_timer(SimDuration::from_millis(1), 3);
        let actions = ctx.take_actions();
        assert!(
            matches!(actions[0], AppAction::Timer { timer_id, .. } if timer_id == (7 << 32) | 3)
        );
    }

    #[test]
    fn send_from_carries_explicit_source_port() {
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 1);
        ctx.send_from(555, NodeId(9), 80, 128, Payload::Ping { seq: 0 });
        let actions = ctx.take_actions();
        assert!(matches!(
            actions[0],
            AppAction::SendFrom { src_port: 555, dst: NodeId(9), dst_port: 80, .. }
        ));
    }

    #[test]
    fn ctx_exposes_identity() {
        let ctx = AppCtx::new(SimTime::from_millis(7), NodeId(1), 5);
        assert_eq!(ctx.now, SimTime::from_millis(7));
        assert_eq!(ctx.node, NodeId(1));
        assert_eq!(ctx.port, 5);
    }
}
