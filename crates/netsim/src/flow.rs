//! Arena flow tables: bulk UDP endpoints for million-flow workloads.
//!
//! The classic way to drive N flows is N boxed [`Application`]s — two
//! heap allocations, a port-map entry, and an app-table slot per flow.
//! That layout tops out around 10⁴ flows. The bulk endpoints here invert
//! it: one application per node owns *all* of that node's flows in
//! struct-of-arrays columns indexed by a dense per-node position, so the
//! steady-state footprint is ~20 bytes per source flow and ~12 bytes per
//! sink flow — and iterating the hot column (`next_seq`) is cache-linear.
//!
//! Determinism: a bulk source emits, per flow in table order, exactly the
//! actions a dedicated [`crate::apps::UdpSource`] would emit in per-flow
//! install order — same packet contents, same relative action order on the
//! node — so a simulation driven by bulk tables is event-for-event
//! identical to one driven by per-flow apps (the golden-manifest tests in
//! `hypatia` core pin this byte-for-byte).

use crate::app::{AppCtx, Application, SaveResult};
use crate::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use crate::packet::{Packet, Payload, HEADER_BYTES};
use hypatia_constellation::NodeId;
use hypatia_util::{DataRate, DataSize, SimDuration, SimTime};

/// Dense flow identifier: position in the experiment's global flow list.
///
/// Unlike a flow *hash* (64-bit, sparse, collision-prone), a `FlowId` is an
/// array index — per-flow results live in plain vectors indexed by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

/// Paced constant-bit-rate UDP source for many flows on one node.
///
/// Column layout (struct of arrays), indexed by per-node flow position:
/// cold addressing columns (`dsts`, `src_ports`, `dst_ports`, `flows`) are
/// read once per send; the hot `next_seq` column is the only mutable
/// per-flow state. Rate, payload size, and stop time are shared across the
/// table (constant-rate sweeps drive every flow identically).
pub struct BulkUdpSource {
    dsts: Vec<NodeId>,
    src_ports: Vec<u16>,
    dst_ports: Vec<u16>,
    /// Global flow ids, stamped into each packet's `Payload::Udp`.
    flows: Vec<u32>,
    /// Per-flow next sequence number (equals packets sent).
    next_seq: Vec<u64>,
    payload_bytes: u32,
    gap: SimDuration,
    stop_at: SimTime,
}

impl BulkUdpSource {
    /// An empty table sending `payload_bytes`-sized datagrams such that
    /// each flow's wire rate equals `rate`, until `stop_at`.
    pub fn new(rate: DataRate, payload_bytes: u32, stop_at: SimTime) -> Self {
        assert!(payload_bytes > 0, "empty datagrams not allowed");
        let wire = DataSize::from_bytes((payload_bytes + HEADER_BYTES) as u64);
        let gap = rate.serialization_delay(wire);
        BulkUdpSource {
            dsts: Vec::new(),
            src_ports: Vec::new(),
            dst_ports: Vec::new(),
            flows: Vec::new(),
            next_seq: Vec::new(),
            payload_bytes,
            gap,
            stop_at,
        }
    }

    /// Append flow `flow` towards `(dst, dst_port)` sending from
    /// `src_port`. Table order is emission order — push flows in the same
    /// order dedicated per-flow sources would have been installed.
    pub fn push(&mut self, flow: FlowId, dst: NodeId, src_port: u16, dst_port: u16) {
        assert!(self.flows.len() < u32::MAX as usize, "flow table full");
        self.dsts.push(dst);
        self.src_ports.push(src_port);
        self.dst_ports.push(dst_port);
        self.flows.push(flow.0);
        self.next_seq.push(0);
    }

    /// Number of flows in the table.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Source ports in table order (the ports to bind at install).
    pub fn src_ports(&self) -> &[u16] {
        &self.src_ports
    }

    /// Total packets sent across all flows.
    pub fn sent(&self) -> u64 {
        self.next_seq.iter().sum()
    }

    /// Inter-packet gap per flow.
    pub fn gap(&self) -> SimDuration {
        self.gap
    }

    fn send_one(&mut self, ctx: &mut AppCtx, i: usize) {
        ctx.send_from(
            self.src_ports[i],
            self.dsts[i],
            self.dst_ports[i],
            self.payload_bytes + HEADER_BYTES,
            Payload::Udp {
                flow: self.flows[i],
                seq: self.next_seq[i],
                payload_bytes: self.payload_bytes,
            },
        );
        self.next_seq[i] += 1;
    }
}

impl Application for BulkUdpSource {
    fn on_start(&mut self, ctx: &mut AppCtx) {
        if ctx.now >= self.stop_at {
            return;
        }
        // Per flow, in table order: first datagram then the pacing timer —
        // the exact action sequence per-flow sources produce when installed
        // one after the other on this node.
        for i in 0..self.flows.len() {
            self.send_one(ctx, i);
            ctx.set_timer(self.gap, i as u64);
        }
    }

    fn on_packet(&mut self, _ctx: &mut AppCtx, _packet: &Packet) {
        // A pure source; ignores anything addressed to it.
    }

    fn on_timer(&mut self, ctx: &mut AppCtx, timer_id: u64) {
        if ctx.now < self.stop_at {
            let i = timer_id as usize;
            self.send_one(ctx, i);
            ctx.set_timer(self.gap, timer_id);
        }
    }

    fn flow_footprint(&self) -> Option<(u64, u64)> {
        let per_flow = (std::mem::size_of::<NodeId>()
            + 2 * std::mem::size_of::<u16>()
            + std::mem::size_of::<u32>()
            + std::mem::size_of::<u64>()) as u64;
        Some((self.flows.len() as u64, self.flows.len() as u64 * per_flow))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self, w: &mut SnapWriter) -> SaveResult {
        // Only the hot column mutates; the addressing columns are rebuilt
        // by the experiment's deterministic install sequence.
        w.put_usize(self.next_seq.len());
        for &seq in &self.next_seq {
            w.put_u64(seq);
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> SaveResult {
        let n = r.get_usize()?;
        if n != self.next_seq.len() {
            return Err(CheckpointError::Malformed(format!(
                "bulk source has {n} flows in the snapshot, {} rebuilt",
                self.next_seq.len()
            )));
        }
        for seq in &mut self.next_seq {
            *seq = r.get_u64()?;
        }
        Ok(())
    }
}

/// Counting UDP sink for many flows on one node.
///
/// Demultiplexes by the *global flow id* carried in `Payload::Udp` (not by
/// port — at million-flow scale ports are reused modulo the 16-bit space),
/// via binary search over the sorted `flows` column. Tracks per-flow
/// payload bytes, the Jain-fairness numerator/denominator source.
pub struct BulkUdpSink {
    /// Sorted global flow ids terminating here.
    flows: Vec<u32>,
    /// Payload bytes received, parallel to `flows`.
    bytes: Vec<u64>,
    received: u64,
}

impl BulkUdpSink {
    /// A sink for the given global flow ids (sorted internally; ids must
    /// be distinct).
    pub fn new(mut flows: Vec<u32>) -> Self {
        flows.sort_unstable();
        debug_assert!(flows.windows(2).all(|w| w[0] < w[1]), "duplicate flow ids");
        let bytes = vec![0; flows.len()];
        BulkUdpSink { flows, bytes, received: 0 }
    }

    /// Number of flows terminating at this sink.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Packets received across all flows.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Per-flow `(global flow id, payload bytes)` in flow-id order.
    pub fn per_flow_bytes(&self) -> impl Iterator<Item = (FlowId, u64)> + '_ {
        self.flows.iter().zip(self.bytes.iter()).map(|(&f, &b)| (FlowId(f), b))
    }

    /// Total payload bytes received.
    pub fn payload_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

impl Application for BulkUdpSink {
    fn on_start(&mut self, _ctx: &mut AppCtx) {}

    fn on_packet(&mut self, _ctx: &mut AppCtx, packet: &Packet) {
        if let Payload::Udp { flow, payload_bytes, .. } = packet.payload {
            if let Ok(i) = self.flows.binary_search(&flow) {
                self.bytes[i] += payload_bytes as u64;
                self.received += 1;
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut AppCtx, _timer_id: u64) {}

    fn flow_footprint(&self) -> Option<(u64, u64)> {
        // Flows are counted once network-wide, at their source table; the
        // sink contributes its bytes only.
        let per_flow = (std::mem::size_of::<u32>() + std::mem::size_of::<u64>()) as u64;
        Some((0, self.flows.len() as u64 * per_flow))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self, w: &mut SnapWriter) -> SaveResult {
        w.put_usize(self.bytes.len());
        for &b in &self.bytes {
            w.put_u64(b);
        }
        w.put_u64(self.received);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> SaveResult {
        let n = r.get_usize()?;
        if n != self.bytes.len() {
            return Err(CheckpointError::Malformed(format!(
                "bulk sink has {n} flows in the snapshot, {} rebuilt",
                self.bytes.len()
            )));
        }
        for b in &mut self.bytes {
            *b = r.get_u64()?;
        }
        self.received = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppAction;
    use crate::apps::UdpSource;

    #[test]
    fn bulk_source_matches_per_flow_sources_action_for_action() {
        // Two flows on one node: the bulk table's on_start must produce the
        // same per-flow packets and timers as two dedicated sources
        // installed back to back, in the same relative order.
        let rate = DataRate::from_mbps(10);
        let stop = SimTime::from_secs(1);
        let mut bulk = BulkUdpSource::new(rate, 1440, stop);
        bulk.push(FlowId(0), NodeId(9), 20_000, 20_000);
        bulk.push(FlowId(1), NodeId(11), 20_001, 20_001);
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 20_000);
        bulk.on_start(&mut ctx);
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 4, "send+timer per flow");

        let mut legacy_actions = Vec::new();
        for (i, dst) in [(0u32, NodeId(9)), (1, NodeId(11))] {
            let mut src = UdpSource::new(dst, i, rate, 1440, stop);
            let mut lctx = AppCtx::new(SimTime::ZERO, NodeId(0), 20_000 + i as u16);
            src.on_start(&mut lctx);
            legacy_actions.extend(lctx.take_actions());
        }
        for (b, l) in actions.iter().zip(legacy_actions.iter()) {
            match (b, l) {
                (
                    AppAction::SendFrom { src_port, dst, dst_port, size_bytes, payload },
                    AppAction::Send {
                        dst: ldst,
                        dst_port: ldst_port,
                        size_bytes: lsize,
                        payload: lpayload,
                    },
                ) => {
                    // The legacy source sends from its context port to the
                    // same port; bulk names that port explicitly.
                    assert_eq!(src_port, ldst_port);
                    assert_eq!((dst, dst_port, size_bytes), (ldst, ldst_port, lsize));
                    assert_eq!(payload, lpayload);
                }
                (AppAction::Timer { delay, .. }, AppAction::Timer { delay: ldelay, .. }) => {
                    assert_eq!(delay, ldelay)
                }
                other => panic!("action shape diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn bulk_source_paces_each_flow_via_its_timer() {
        let mut bulk = BulkUdpSource::new(DataRate::from_mbps(10), 1440, SimTime::from_secs(1));
        bulk.push(FlowId(7), NodeId(2), 100, 200);
        bulk.push(FlowId(8), NodeId(3), 101, 201);
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 100);
        bulk.on_start(&mut ctx);
        ctx.take_actions();
        assert_eq!(bulk.sent(), 2);

        // Fire flow 1's timer only: one more send, re-armed.
        let mut ctx2 = AppCtx::new(SimTime::from_millis(2), NodeId(0), 100);
        bulk.on_timer(&mut ctx2, 1);
        let actions = ctx2.take_actions();
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            actions[0],
            AppAction::SendFrom {
                src_port: 101,
                dst: NodeId(3),
                dst_port: 201,
                payload: Payload::Udp { flow: 8, seq: 1, .. },
                ..
            }
        ));
        assert_eq!(bulk.sent(), 3);

        // Past the deadline: nothing.
        let mut ctx3 = AppCtx::new(SimTime::from_secs(2), NodeId(0), 100);
        bulk.on_timer(&mut ctx3, 0);
        assert!(ctx3.take_actions().is_empty());
    }

    #[test]
    fn bulk_sink_demuxes_by_global_flow_id() {
        let mut sink = BulkUdpSink::new(vec![42, 7, 100]);
        let packet = |flow: u32, payload: u32| Packet {
            id: 1,
            src: NodeId(0),
            dst: NodeId(1),
            src_port: 50,
            dst_port: 60,
            size_bytes: payload + HEADER_BYTES,
            payload: Payload::Udp { flow, seq: 0, payload_bytes: payload },
            injected_at: SimTime::ZERO,
            hops: 3,
            flow_hash: 0,
        };
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(1), 60);
        sink.on_packet(&mut ctx, &packet(7, 1000));
        sink.on_packet(&mut ctx, &packet(7, 500));
        sink.on_packet(&mut ctx, &packet(100, 250));
        sink.on_packet(&mut ctx, &packet(999, 777)); // not ours: ignored
        assert_eq!(sink.received(), 3);
        assert_eq!(sink.payload_bytes(), 1750);
        let per_flow: Vec<_> = sink.per_flow_bytes().collect();
        assert_eq!(per_flow, vec![(FlowId(7), 1500), (FlowId(42), 0), (FlowId(100), 250)]);
    }

    #[test]
    fn footprints_fit_the_scaling_budget() {
        let mut src = BulkUdpSource::new(DataRate::from_mbps(10), 1440, SimTime::from_secs(1));
        for i in 0..100u32 {
            src.push(FlowId(i), NodeId(1), i as u16, i as u16);
        }
        let sink = BulkUdpSink::new((0..100).collect());
        let (src_flows, src_bytes) = src.flow_footprint().unwrap();
        let (sink_flows, sink_bytes) = sink.flow_footprint().unwrap();
        assert_eq!(src_flows, 100);
        assert_eq!(sink_flows, 0, "sinks must not double-count flows");
        let per_flow = (src_bytes + sink_bytes) as f64 / src_flows as f64;
        assert!(per_flow <= 128.0, "steady-state footprint {per_flow} B/flow");
    }
}
