//! The simulator core: event loop, forwarding, delivery.

use crate::app::{AppAction, AppCtx, Application};
use crate::config::SimConfig;
use crate::device::{Device, DeviceKind};
use crate::event::{Event, EventQueue};
use crate::node::Node;
use crate::packet::{flow_hash, Packet, Payload};
use crate::stats::SimStats;
use crate::trace::{Trace, TraceKind};
use hypatia_constellation::{Constellation, NodeId};
use hypatia_fault::FaultState;
use hypatia_orbit::geodesy::propagation_delay_km;
use hypatia_routing::forwarding::{compute_multipath_state_on, ForwardingState, MultipathState};
use hypatia_routing::graph::SnapshotBuffers;
use hypatia_routing::incremental::IncrementalRouter;
use hypatia_routing::parallel::{Prefetcher, SnapshotWorker};
use hypatia_util::rng::DetRng;
#[cfg(test)]
use hypatia_util::SimDuration;
use hypatia_util::SimTime;
use std::sync::Arc;

struct AppEntry {
    app: Option<Box<dyn Application>>,
    node: NodeId,
    port: u16,
}

/// The packet-level simulator.
///
/// Owns the node/device state, the event queue, and the current forwarding
/// state; recomputes forwarding at the configured granularity while the
/// event loop runs.
pub struct Simulator {
    constellation: Arc<Constellation>,
    config: SimConfig,
    now: SimTime,
    queue: EventQueue,
    nodes: Vec<Node>,
    apps: Vec<AppEntry>,
    dests: Vec<NodeId>,
    fwd: ForwardingState,
    /// Multipath alternates (present when `multipath_stretch` is set).
    mp: Option<MultipathState>,
    /// Background forwarding-state pipeline (present when
    /// `config.fstate_threads > 0`): computes steps `k+1..k+P` while the
    /// event loop consumes step `k`. Deterministic — states are identical
    /// to inline computation and consumed strictly in step order.
    fstate_prefetch: Option<Prefetcher<(ForwardingState, Option<MultipathState>)>>,
    /// Live fault state (present when `config.faults` is set): maintained
    /// incrementally by [`Event::FaultUpdate`] events and consulted when
    /// packets are forwarded, finish serializing, or arrive. Forwarding
    /// recomputation deliberately does NOT read this — it derives the
    /// state at `t` purely from the immutable schedule, so prefetched and
    /// inline states are bit-identical.
    fault_state: Option<FaultState>,
    /// Snapshot-graph staging buffers for the inline recomputation path.
    snapshot_buffers: SnapshotBuffers,
    /// Inline routing engine (full Dijkstra or incremental repair, per
    /// `config.routing`). Prefetch workers own their own routers; either
    /// way the states are byte-identical to a full recompute.
    router: IncrementalRouter,
    next_packet_id: u64,
    /// Deterministic PRNG for the GSL loss process.
    loss_rng: DetRng,
    /// Bounded per-packet trace (off unless configured).
    pub trace: Trace,
    /// Global counters.
    pub stats: SimStats,
}

impl Simulator {
    /// Build a simulator over `constellation`, routing towards `dests` (the
    /// nodes that will terminate traffic — forwarding trees are computed
    /// only for these).
    pub fn new(constellation: Arc<Constellation>, config: SimConfig, dests: Vec<NodeId>) -> Self {
        assert!(!dests.is_empty(), "at least one destination is required");

        // Devices: one per ISL direction, plus one GSL device per node.
        let mut nodes: Vec<Node> =
            (0..constellation.num_nodes()).map(|i| Node::new(NodeId(i as u32))).collect();
        for &(a, b) in &constellation.isls {
            nodes[a as usize].add_device(Device::new(
                DeviceKind::Isl { peer: NodeId(b) },
                config.effective_isl_rate(),
                config.queue_packets,
                config.utilization_bucket,
            ));
            nodes[b as usize].add_device(Device::new(
                DeviceKind::Isl { peer: NodeId(a) },
                config.effective_isl_rate(),
                config.queue_packets,
                config.utilization_bucket,
            ));
        }
        for node in nodes.iter_mut() {
            node.add_device(Device::new(
                DeviceKind::Gsl,
                config.effective_gsl_rate(),
                config.queue_packets,
                config.utilization_bucket,
            ));
        }

        let mut snapshot_buffers = SnapshotBuffers::new();
        let mut router = IncrementalRouter::new(config.routing);
        let (fwd, mp) = Self::compute_states(
            &constellation,
            &config,
            &dests,
            SimTime::ZERO,
            &mut snapshot_buffers,
            &mut router,
        );
        let mut queue = EventQueue::with_kind(config.queue);
        if !config.freeze_at_epoch {
            queue.schedule(SimTime::ZERO + config.fstate_step, Event::ForwardingUpdate { step: 1 });
        }

        // Fault injection: events at t = 0 are already folded into the
        // initial live state (and the initial forwarding computation);
        // the first strictly-future event starts the chain, and each
        // `FaultUpdate` schedules its successor.
        let fault_state = config.faults.as_ref().map(|s| FaultState::at(s, SimTime::ZERO));
        if let Some(schedule) = &config.faults {
            if let Some(first) = schedule.events().iter().position(|e| e.t > SimTime::ZERO) {
                queue.schedule(
                    schedule.events()[first].t,
                    Event::FaultUpdate { index: first as u64 },
                );
            }
        }

        // Background prefetch of upcoming forwarding steps (off for frozen
        // networks, which never update forwarding at all).
        let fstate_prefetch = (config.fstate_threads > 0 && !config.freeze_at_epoch).then(|| {
            let constellation = constellation.clone();
            let dests = dests.clone();
            let step = config.fstate_step;
            let stretch = config.multipath_stretch;
            let faults = config.faults.clone();
            let routing = config.routing;
            Prefetcher::spawn(
                1,
                config.fstate_threads,
                config.fstate_prefetch,
                move || SnapshotWorker::with_config(routing),
                move |worker: &mut SnapshotWorker, k| {
                    let t = SimTime::ZERO + step * k;
                    // Pure replay of the schedule at `t` — workers never
                    // see (or race on) the simulator's live fault state.
                    let mask = faults.as_ref().map(|s| FaultState::at(s, t));
                    let fwd =
                        worker.forwarding_state_masked(&constellation, t, &dests, mask.as_ref());
                    let mp = stretch
                        .map(|s| compute_multipath_state_on(worker.buffers.graph(), t, &dests, s));
                    (fwd, mp)
                },
            )
        });

        let loss_rng = DetRng::new(config.loss_seed);
        let trace = Trace::new(config.trace_limit);
        Simulator {
            constellation,
            config,
            now: SimTime::ZERO,
            queue,
            nodes,
            apps: Vec::new(),
            dests,
            fwd,
            mp,
            fstate_prefetch,
            fault_state,
            snapshot_buffers,
            router,
            next_packet_id: 0,
            loss_rng,
            trace,
            stats: SimStats::default(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The constellation being simulated.
    pub fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The forwarding state currently in force.
    pub fn forwarding(&self) -> &ForwardingState {
        &self.fwd
    }

    /// The simulated nodes (for stats inspection).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Install an application at `(node, port)`. Calls its `on_start`
    /// immediately (at the current simulation time) and returns its index.
    pub fn add_app(&mut self, node: NodeId, port: u16, app: Box<dyn Application>) -> u32 {
        let idx = self.apps.len() as u32;
        self.nodes[node.index()].bind_port(port, idx);
        self.apps.push(AppEntry { app: Some(app), node, port });
        self.with_app(idx, |app, ctx| app.on_start(ctx));
        idx
    }

    /// Borrow an installed application, downcast to its concrete type.
    pub fn app_as<T: Application>(&self, idx: u32) -> Option<&T> {
        self.apps[idx as usize].app.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// Run the event loop until simulated time `t_end` (inclusive).
    pub fn run_until(&mut self, t_end: SimTime) {
        while let Some((t, event)) = self.queue.pop_before(t_end) {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.stats.events += 1;
            self.handle(event);
        }
        self.now = t_end;
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Arrival { node, packet } => self.arrival(node, packet),
            Event::TxComplete { node, device } => self.tx_complete(node, device),
            Event::ForwardingUpdate { step } => self.forwarding_update(step),
            Event::AppTimer { app, timer_id } => {
                self.with_app(app, |a, ctx| a.on_timer(ctx, timer_id));
            }
            Event::FaultUpdate { index } => self.fault_update(index),
        }
    }

    fn arrival(&mut self, node: u32, packet: Packet) {
        // A packet propagating towards a satellite that failed mid-flight
        // is lost with it. Ground-station nodes never fail (weather only
        // attenuates their GSLs), so they always receive.
        if let Some(f) = &self.fault_state {
            if self.constellation.is_satellite(NodeId(node)) && f.satellite_down(node as usize) {
                self.stats.fault_drops += 1;
                self.trace.record(self.now, NodeId(node), packet.id, TraceKind::FaultDrop);
                return;
            }
        }
        self.stats.hop_deliveries += 1;
        self.trace.record(self.now, NodeId(node), packet.id, TraceKind::Arrive);
        self.process_at_node(node, packet);
    }

    /// Apply fault-schedule entry `index` to the live state and chain the
    /// next entry. Chaining (instead of scheduling the whole schedule up
    /// front) keeps the queue small on long flap-heavy runs.
    fn fault_update(&mut self, index: u64) {
        let schedule = self.config.faults.clone().expect("fault event without a schedule");
        let event = &schedule.events()[index as usize];
        debug_assert_eq!(event.t, self.now, "fault event fired at the wrong time");
        self.fault_state.as_mut().expect("fault event without live state").apply(event);
        if let Some(next) = schedule.events().get(index as usize + 1) {
            self.queue.schedule(next.t, Event::FaultUpdate { index: index + 1 });
        }
    }

    /// Is the directed hop `a -> b` usable under the live fault state?
    fn link_up(&self, a: NodeId, b: NodeId) -> bool {
        let Some(f) = &self.fault_state else { return true };
        if f.all_up() {
            return true;
        }
        let n_sats = self.constellation.num_satellites();
        match (self.constellation.is_satellite(a), self.constellation.is_satellite(b)) {
            (true, true) => f.isl_link_up(a.0, b.0),
            (true, false) => f.gsl_link_up(a.index(), b.index() - n_sats),
            (false, true) => f.gsl_link_up(b.index(), a.index() - n_sats),
            // GS <-> GS links do not exist in the topology.
            (false, false) => true,
        }
    }

    /// A packet is at `node`: deliver locally or forward.
    fn process_at_node(&mut self, node: u32, packet: Packet) {
        if packet.dst.0 == node {
            self.deliver(node, packet);
        } else {
            self.forward(node, packet);
        }
    }

    fn deliver(&mut self, node: u32, packet: Packet) {
        self.stats.delivered += 1;
        self.trace.record(self.now, NodeId(node), packet.id, TraceKind::Deliver);
        self.stats.payload_bytes_delivered += packet.payload_bytes() as u64;
        match packet.payload {
            // Kernel-style echo: answer pings without an application.
            Payload::Ping { seq } => {
                self.stats.pings_echoed += 1;
                let pong = Packet {
                    id: self.alloc_packet_id(),
                    src: NodeId(node),
                    dst: packet.src,
                    src_port: packet.dst_port,
                    dst_port: packet.src_port,
                    size_bytes: packet.size_bytes,
                    payload: Payload::Pong { seq, ping_injected_at: packet.injected_at },
                    injected_at: self.now,
                    hops: 0,
                    flow_hash: 0, // stamped by inject
                };
                self.inject(pong);
            }
            _ => match self.nodes[node as usize].app_on_port(packet.dst_port) {
                Some(app) => self.with_app(app, |a, ctx| a.on_packet(ctx, &packet)),
                None => self.stats.unclaimed += 1,
            },
        }
    }

    fn forward(&mut self, node: u32, packet: Packet) {
        // `packet.flow_hash` was computed once at injection; forwarding a
        // packet costs no hashing at all.
        let chosen = match &self.mp {
            Some(mp) => mp.next_hop(NodeId(node), packet.dst, packet.flow_hash),
            None => self.fwd.next_hop(NodeId(node), packet.dst),
        };
        let Some(next_hop) = chosen else {
            self.stats.routing_drops += 1;
            self.trace.record(self.now, NodeId(node), packet.id, TraceKind::RoutingDrop);
            return;
        };
        // Between a fault event and the next forwarding recomputation the
        // state may still point into a failed component: those packets are
        // lost (the paper's lossless-handoff rule covers reassignment, not
        // destruction of the link).
        if !self.link_up(NodeId(node), next_hop) {
            self.stats.fault_drops += 1;
            self.trace.record(self.now, NodeId(node), packet.id, TraceKind::FaultDrop);
            return;
        }
        let Some(dev_idx) = self.nodes[node as usize].device_for(next_hop) else {
            self.stats.routing_drops += 1;
            self.trace.record(self.now, NodeId(node), packet.id, TraceKind::RoutingDrop);
            return;
        };
        let packet_id = packet.id;
        match self.nodes[node as usize].devices[dev_idx].enqueue(packet, next_hop, self.now) {
            Ok(Some(ser)) => self
                .queue
                .schedule(self.now + ser, Event::TxComplete { node, device: dev_idx as u32 }),
            Ok(None) => {}
            Err(_) => {
                self.stats.queue_drops += 1;
                self.trace.record(self.now, NodeId(node), packet_id, TraceKind::QueueDrop);
            }
        }
    }

    fn tx_complete(&mut self, node: u32, device: u32) {
        let is_gsl = matches!(
            self.nodes[node as usize].devices[device as usize].kind,
            crate::device::DeviceKind::Gsl
        );
        let (done, next) = self.nodes[node as usize].devices[device as usize].tx_complete(self.now);
        if let Some(ser) = next {
            self.queue.schedule(self.now + ser, Event::TxComplete { node, device });
        }
        // The link may have been cut while the packet serialized: it never
        // makes it onto the channel. The device keeps draining — each
        // queued packet is judged at its own transmission instant.
        if !self.link_up(NodeId(node), done.next_hop) {
            self.stats.fault_drops += 1;
            self.trace.record(self.now, NodeId(node), done.packet.id, TraceKind::FaultDrop);
            return;
        }
        // Channel impairment: GSL transmissions may be lost (weather model
        // stand-in; disabled by default).
        if is_gsl
            && self.config.gsl_loss_rate > 0.0
            && self.loss_rng.next_f64() < self.config.gsl_loss_rate
        {
            self.stats.channel_drops += 1;
            self.trace.record(self.now, NodeId(node), done.packet.id, TraceKind::ChannelDrop);
            return;
        }
        // Propagation from live geometry — frozen runs pin geometry to t=0.
        let geom_t = if self.config.freeze_at_epoch { SimTime::ZERO } else { self.now };
        let distance = self.constellation.distance_km(NodeId(node), done.next_hop, geom_t);
        let prop = propagation_delay_km(distance);
        let mut packet = done.packet;
        packet.hops += 1;
        self.queue.schedule(self.now + prop, Event::Arrival { node: done.next_hop.0, packet });
    }

    fn forwarding_update(&mut self, step: u64) {
        let t = SimTime::ZERO + self.config.fstate_step * step;
        debug_assert_eq!(t, self.now, "forwarding update fired at the wrong time");
        if let Some(prefetch) = &mut self.fstate_prefetch {
            let (fwd, mp) = prefetch.take(step);
            self.fwd = fwd;
            self.mp = mp;
        } else {
            let (fwd, mp) = Self::compute_states(
                &self.constellation,
                &self.config,
                &self.dests,
                t,
                &mut self.snapshot_buffers,
                &mut self.router,
            );
            self.fwd = fwd;
            if mp.is_some() {
                self.mp = mp;
            }
        }
        self.stats.forwarding_updates += 1;
        self.queue
            .schedule(t + self.config.fstate_step, Event::ForwardingUpdate { step: step + 1 });
    }

    /// Forwarding (and multipath) state at `t`. With faults configured,
    /// both are computed on one snapshot graph with the schedule's state
    /// at `t` masked out — derived purely from the immutable schedule, so
    /// this is bit-identical however and whenever it is invoked. The
    /// router repairs from whatever snapshot it computed last (or runs
    /// full Dijkstra, per `config.routing`); both yield the same bytes.
    fn compute_states(
        constellation: &Constellation,
        config: &SimConfig,
        dests: &[NodeId],
        t: SimTime,
        buffers: &mut SnapshotBuffers,
        router: &mut IncrementalRouter,
    ) -> (ForwardingState, Option<MultipathState>) {
        let mask = config.faults.as_ref().map(|s| FaultState::at(s, t));
        let graph = buffers.snapshot_masked(constellation, t, mask.as_ref());
        let mut fwd = ForwardingState::empty();
        router.compute_into(graph, t, dests, &mut fwd);
        let mp = config.multipath_stretch.map(|s| compute_multipath_state_on(graph, t, dests, s));
        (fwd, mp)
    }

    /// Put a freshly-created packet into the network at its source node.
    /// The flow hash is stamped here — once per packet, never per hop.
    fn inject(&mut self, mut packet: Packet) {
        packet.flow_hash = flow_hash(packet.src, packet.dst, packet.src_port, packet.dst_port);
        self.stats.injected += 1;
        self.trace.record(self.now, packet.src, packet.id, TraceKind::Inject);
        self.process_at_node(packet.src.0, packet);
    }

    fn alloc_packet_id(&mut self) -> u64 {
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        id
    }

    /// Run `f` on app `idx` with a fresh context, then apply its actions.
    fn with_app(&mut self, idx: u32, f: impl FnOnce(&mut dyn Application, &mut AppCtx)) {
        let (node, port) = {
            let entry = &self.apps[idx as usize];
            (entry.node, entry.port)
        };
        let mut app = self.apps[idx as usize].app.take().expect("re-entrant app dispatch");
        let mut ctx = AppCtx::new(self.now, node, port);
        f(app.as_mut(), &mut ctx);
        let actions = ctx.take_actions();
        self.apps[idx as usize].app = Some(app);
        self.apply_actions(idx, node, port, actions);
    }

    fn apply_actions(&mut self, app_idx: u32, node: NodeId, port: u16, actions: Vec<AppAction>) {
        for action in actions {
            match action {
                AppAction::Send { dst, dst_port, size_bytes, payload } => {
                    let packet = Packet {
                        id: self.alloc_packet_id(),
                        src: node,
                        dst,
                        src_port: port,
                        dst_port,
                        size_bytes,
                        payload,
                        injected_at: self.now,
                        hops: 0,
                        flow_hash: 0, // stamped by inject
                    };
                    self.inject(packet);
                }
                AppAction::Timer { delay, timer_id } => {
                    self.queue
                        .schedule(self.now + delay, Event::AppTimer { app: app_idx, timer_id });
                }
            }
        }
    }

    /// Utilization of the most loaded directed link along `path` in bucket
    /// `bucket_idx` (requires utilization tracking). For each hop `a → b`
    /// the device is `a`'s ISL device towards `b`, or `a`'s GSL device.
    pub fn path_bottleneck_utilization(&self, path: &[NodeId], bucket_idx: usize) -> f64 {
        assert!(path.len() >= 2, "path needs at least one hop");
        let mut worst: f64 = 0.0;
        for w in path.windows(2) {
            let dev_idx =
                self.nodes[w[0].index()].device_for(w[1]).expect("path hop has no device");
            let u = self.nodes[w[0].index()].devices[dev_idx]
                .utilization(bucket_idx)
                .expect("utilization tracking disabled");
            worst = worst.max(u);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::ping::PingApp;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_util::DataRate;

    fn constellation() -> Arc<Constellation> {
        Arc::new(Constellation::build(
            "simtest",
            vec![ShellSpec::new("A", 550.0, 10, 10, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 5.0, 5.0), GroundStation::new("b", -10.0, 60.0)],
            GslConfig::new(10.0),
        ))
    }

    #[test]
    fn ping_round_trip_measures_plausible_rtt() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let mut sim = Simulator::new(c.clone(), SimConfig::default(), vec![src, dst]);
        let app = sim.add_app(
            src,
            100,
            Box::new(PingApp::new(dst, SimDuration::from_millis(100), SimTime::from_secs(2))),
        );
        sim.run_until(SimTime::from_secs(3));
        let ping: &PingApp = sim.app_as(app).unwrap();
        assert!(ping.sent() >= 20, "sent {}", ping.sent());
        assert!(
            ping.received() >= ping.sent() - 2,
            "lost pings: {}/{}",
            ping.received(),
            ping.sent()
        );
        for &(_, rtt) in ping.rtts() {
            let ms = rtt.secs_f64() * 1e3;
            // ~6000 km ground distance: RTT must be tens of ms, below 200.
            assert!((10.0..200.0).contains(&ms), "implausible RTT {ms} ms");
        }
    }

    #[test]
    fn deterministic_two_runs_identical() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let run = || {
            let mut sim = Simulator::new(c.clone(), SimConfig::default(), vec![src, dst]);
            let app = sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(10), SimTime::from_secs(1))),
            );
            sim.run_until(SimTime::from_secs(2));
            let ping: &PingApp = sim.app_as(app).unwrap();
            (ping.rtts().to_vec(), sim.stats.events)
        };
        let (a_rtts, a_events) = run();
        let (b_rtts, b_events) = run();
        assert_eq!(a_rtts, b_rtts);
        assert_eq!(a_events, b_events);
    }

    /// The background forwarding-state pipeline is a pure wall-clock knob:
    /// every observable of a run must be bit-identical to inline
    /// computation, for any worker-thread count, with and without
    /// multipath.
    #[test]
    fn prefetched_forwarding_is_bit_identical_to_inline() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let run = |cfg: SimConfig| {
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            let app = sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(10), SimTime::from_secs(1))),
            );
            sim.run_until(SimTime::from_secs(2));
            let ping: &PingApp = sim.app_as(app).unwrap();
            (ping.rtts().to_vec(), sim.stats.events, sim.stats.forwarding_updates)
        };
        let inline = run(SimConfig::default());
        for threads in [1, 2, 4] {
            let prefetched = run(SimConfig::default().with_fstate_prefetch(threads, 4));
            assert_eq!(inline, prefetched, "threads={threads}");
        }
        let mp_inline = run(SimConfig::default().with_multipath(1.3));
        let mp_prefetched =
            run(SimConfig::default().with_multipath(1.3).with_fstate_prefetch(2, 4));
        assert_eq!(mp_inline, mp_prefetched);
    }

    #[test]
    fn forwarding_updates_fire_at_granularity() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let mut sim = Simulator::new(c.clone(), SimConfig::default(), vec![src, dst]);
        sim.run_until(SimTime::from_secs(1));
        // 100 ms granularity → updates at 0.1..1.0 inclusive = 10.
        assert_eq!(sim.stats.forwarding_updates, 10);
    }

    #[test]
    fn frozen_network_never_updates_forwarding() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let mut sim = Simulator::new(c.clone(), SimConfig::default().frozen(), vec![src, dst]);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.stats.forwarding_updates, 0);
    }

    #[test]
    fn packet_conservation() {
        // injected = delivered + drops + still-in-network(0 at quiescence).
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let mut sim = Simulator::new(c.clone(), SimConfig::default(), vec![src, dst]);
        sim.add_app(
            src,
            100,
            Box::new(PingApp::new(dst, SimDuration::from_millis(50), SimTime::from_secs(1))),
        );
        // Run far past the last ping so everything drains.
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(
            sim.stats.injected,
            sim.stats.delivered + sim.stats.total_drops(),
            "packets leaked: {:?}",
            sim.stats
        );
    }

    #[test]
    fn multipath_delivers_and_spreads_flows() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let cfg = SimConfig::default().with_multipath(1.3).with_trace_limit(100_000);
        let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
        // Several parallel "flows" = pings on distinct ports.
        let mut apps = Vec::new();
        for port in 0..8u16 {
            apps.push(sim.add_app(
                src,
                100 + port,
                Box::new(PingApp::new(dst, SimDuration::from_millis(50), SimTime::from_secs(1))),
            ));
        }
        sim.run_until(SimTime::from_secs(3));
        // Everything still delivered (loop-freedom + reachability).
        assert_eq!(sim.stats.injected, sim.stats.delivered + sim.stats.total_drops());
        for app in &apps {
            let ping: &PingApp = sim.app_as(*app).unwrap();
            assert!(ping.received() >= ping.sent() - 1, "flow lost pings");
        }
        // At least two distinct first hops across the flows (the mesh
        // offers alternates from the source's ingress satellite onwards).
        use std::collections::HashSet;
        let mut first_hops: HashSet<u32> = HashSet::new();
        for e in sim.trace.entries() {
            if e.kind == crate::trace::TraceKind::Arrive && c.is_satellite(e.node) {
                // the first Arrive after an Inject is the ingress satellite;
                // approximating by collecting all satellite arrivals still
                // demonstrates path diversity across flows.
                first_hops.insert(e.node.0);
            }
        }
        assert!(first_hops.len() >= 2, "no path diversity: {first_hops:?}");
    }

    #[test]
    fn trace_reconstructs_packet_journeys() {
        use crate::trace::TraceKind;
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let cfg = SimConfig::default().with_trace_limit(1000);
        let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
        sim.add_app(
            src,
            100,
            Box::new(PingApp::new(dst, SimDuration::from_millis(100), SimTime::from_millis(300))),
        );
        sim.run_until(SimTime::from_secs(2));
        assert!(sim.trace.enabled());

        // First ping (packet id 0): Inject at src, Arrive per hop, Deliver
        // at dst.
        let journey = sim.trace.journey(0);
        assert!(journey.len() >= 3, "journey too short: {journey:?}");
        assert_eq!(journey.first().unwrap().kind, TraceKind::Inject);
        assert_eq!(journey.first().unwrap().node, src);
        assert_eq!(journey.last().unwrap().kind, TraceKind::Deliver);
        assert_eq!(journey.last().unwrap().node, dst);
        // Times never decrease along the journey; interior events are
        // satellite arrivals (plus the final arrival at dst).
        for w in journey.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
        for e in &journey[1..journey.len() - 1] {
            assert_eq!(e.kind, TraceKind::Arrive);
            assert!(c.is_satellite(e.node) || e.node == dst);
        }
    }

    #[test]
    fn gsl_loss_drops_packets_deterministically() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let run = |loss: f64| {
            let cfg = SimConfig::default().with_gsl_loss(loss);
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(5), SimTime::from_secs(2))),
            );
            sim.run_until(SimTime::from_secs(4));
            (sim.stats.channel_drops, sim.stats.injected, sim.stats.delivered)
        };
        let (drops0, inj0, del0) = run(0.0);
        assert_eq!(drops0, 0);
        assert_eq!(inj0, del0, "lossless run must deliver everything");

        let (drops, inj, del) = run(0.2);
        assert!(drops > 0, "expected channel drops at 20% loss");
        assert_eq!(inj, del + drops, "conservation with channel loss");
        // Every ping/pong crosses 2 GSLs; expected survival ≈ 0.8^2 per
        // direction. Loose band: 30-80% of probes answered.
        let ratio = del as f64 / inj as f64;
        assert!((0.3..0.9).contains(&ratio), "delivery ratio {ratio}");

        // Determinism of the loss process.
        let again = run(0.2);
        assert_eq!((drops, inj, del), again);
    }

    #[test]
    fn heterogeneous_rates_apply_per_device_kind() {
        use crate::device::DeviceKind;
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let cfg = SimConfig::default()
            .with_isl_rate(DataRate::from_gbps(1))
            .with_gsl_rate(DataRate::from_mbps(50));
        let sim = Simulator::new(c, cfg, vec![src, dst]);
        for node in sim.nodes() {
            for dev in &node.devices {
                match dev.kind {
                    DeviceKind::Isl { .. } => assert_eq!(dev.rate, DataRate::from_gbps(1)),
                    DeviceKind::Gsl => assert_eq!(dev.rate, DataRate::from_mbps(50)),
                }
            }
        }
    }

    #[test]
    fn zero_fault_schedule_is_bit_identical_to_no_faults() {
        use hypatia_fault::{FaultSchedule, FaultSpec};
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let empty =
            Arc::new(FaultSchedule::compile(&FaultSpec::default(), &c, SimDuration::from_secs(2)));
        assert!(empty.is_empty(), "default spec must compile to no events");
        let run = |cfg: SimConfig| {
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            let app = sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(10), SimTime::from_secs(1))),
            );
            sim.run_until(SimTime::from_secs(2));
            let ping: &PingApp = sim.app_as(app).unwrap();
            (ping.rtts().to_vec(), sim.stats.clone())
        };
        let plain = run(SimConfig::default());
        let faulted = run(SimConfig::default().with_faults(empty));
        assert_eq!(plain, faulted, "empty fault schedule changed the simulation");
    }

    #[test]
    fn weather_outage_drops_then_recovers() {
        use hypatia_fault::{FaultSchedule, FaultSpec, OutageWindow};
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        // Attenuate the source ground station's GSLs mid-run, off a
        // forwarding-step boundary: packets pushed by the stale state
        // during [0.55, 0.6) die as fault drops; once forwarding has
        // recomputed on the masked graph the source is an island and new
        // pings die as routing drops; after 1.2 s service recovers.
        let spec = FaultSpec {
            gsl_weather: vec![OutageWindow { target: 0, from_s: 0.55, until_s: 1.2 }],
            ..FaultSpec::default()
        };
        let schedule = Arc::new(FaultSchedule::compile(&spec, &c, SimDuration::from_secs(3)));
        assert_eq!(schedule.events().len(), 2);
        let cfg = SimConfig::default().with_faults(schedule).with_trace_limit(100_000);
        let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
        let app = sim.add_app(
            src,
            100,
            Box::new(PingApp::new(dst, SimDuration::from_millis(5), SimTime::from_secs(2))),
        );
        sim.run_until(SimTime::from_secs(3));
        assert!(sim.stats.fault_drops > 0, "stale-state window produced no fault drops");
        assert!(sim.stats.routing_drops > 0, "masked forwarding produced no routing drops");
        assert_eq!(
            sim.stats.injected,
            sim.stats.delivered + sim.stats.total_drops(),
            "conservation with faults: {:?}",
            sim.stats
        );
        assert!(sim.trace.entries().iter().any(|e| e.kind == TraceKind::FaultDrop));
        // Pings before the outage and after recovery are answered: far
        // more than the outage window could swallow.
        let ping: &PingApp = sim.app_as(app).unwrap();
        assert!(ping.received() >= 100, "service never recovered: {}", ping.received());
        assert!(ping.received() < ping.sent(), "the outage cost nothing?");
    }

    #[test]
    fn satellite_outage_is_bit_identical_across_prefetch_and_queue_kind() {
        use crate::event::QueueKind;
        use hypatia_fault::{FaultSchedule, FaultSpec, OutageWindow};
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        // Fail the middle satellite of the t = 0 path mid-run.
        let probe = Simulator::new(c.clone(), SimConfig::default(), vec![src, dst]);
        let path = probe.forwarding().path(src, dst).expect("nominal path exists");
        let victim = path[path.len() / 2];
        assert!(c.is_satellite(victim));
        let spec = FaultSpec {
            sat_outages: vec![OutageWindow { target: victim.0, from_s: 0.42, until_s: 1.33 }],
            ..FaultSpec::default()
        };
        let schedule = Arc::new(FaultSchedule::compile(&spec, &c, SimDuration::from_secs(3)));
        let run = |cfg: SimConfig| {
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            let app = sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(5), SimTime::from_secs(2))),
            );
            sim.run_until(SimTime::from_secs(3));
            let ping: &PingApp = sim.app_as(app).unwrap();
            (ping.rtts().to_vec(), sim.stats.clone())
        };
        let base = SimConfig::default().with_faults(schedule);
        let inline = run(base.clone());
        // Packets the stale state kept sending into the dead satellite.
        assert!(inline.1.fault_drops > 0, "no packets caught by the outage: {:?}", inline.1);
        assert_eq!(
            inline.1.injected,
            inline.1.delivered + inline.1.total_drops(),
            "conservation: {:?}",
            inline.1
        );
        for threads in [1, 4] {
            let prefetched = run(base.clone().with_fstate_prefetch(threads, 4));
            assert_eq!(inline, prefetched, "threads={threads} diverged under faults");
        }
        let heap = run(base.clone().with_queue(QueueKind::Heap));
        assert_eq!(inline, heap, "queue kinds diverged under faults");
    }

    /// `routing_mode` is a pure wall-clock knob: full recompute and
    /// incremental repair must produce bit-identical simulations — with
    /// and without faults, inline and prefetched.
    #[test]
    fn routing_modes_are_bit_identical() {
        use hypatia_fault::{FaultSchedule, FaultSpec, OutageWindow};
        use hypatia_routing::incremental::RoutingMode;
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let spec = FaultSpec {
            sat_outages: vec![OutageWindow { target: 12, from_s: 0.5, until_s: 1.5 }],
            ..FaultSpec::default()
        };
        let schedule = Arc::new(FaultSchedule::compile(&spec, &c, SimDuration::from_secs(3)));
        let run = |cfg: SimConfig| {
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            let app = sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(10), SimTime::from_secs(1))),
            );
            sim.run_until(SimTime::from_secs(2));
            let ping: &PingApp = sim.app_as(app).unwrap();
            (ping.rtts().to_vec(), sim.stats.clone())
        };
        for base in [SimConfig::default(), SimConfig::default().with_faults(schedule)] {
            let full = run(base.clone().with_routing_mode(RoutingMode::Full));
            let incremental = run(base.clone().with_routing_mode(RoutingMode::Incremental));
            assert_eq!(full, incremental, "inline routing modes diverged");
            let prefetched = run(base
                .clone()
                .with_routing_mode(RoutingMode::Incremental)
                .with_fstate_prefetch(2, 4));
            assert_eq!(full, prefetched, "prefetched incremental diverged");
        }
    }

    #[test]
    fn slow_links_still_conserve_packets() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let cfg =
            SimConfig::default().with_link_rate(DataRate::from_kbps(64)).with_queue_packets(2);
        let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
        sim.add_app(
            src,
            100,
            Box::new(PingApp::new(dst, SimDuration::from_millis(1), SimTime::from_millis(200))),
        );
        sim.run_until(SimTime::from_secs(30));
        assert!(sim.stats.queue_drops > 0, "expected queue pressure");
        assert_eq!(sim.stats.injected, sim.stats.delivered + sim.stats.total_drops());
    }
}
