//! The simulator facade: engine selection, coordinator state, merged views.
//!
//! Node-level event handling lives in [`crate::shard`]; this module owns
//! what is global to a run — forwarding recomputation, the fault-schedule
//! cursor, and the engine driving the shards:
//!
//! * **Serial reference engine** (`sim_shards = 1`, the default): one
//!   shard owns every node, and coordinator events (forwarding swaps,
//!   fault updates) live in its queue exactly as classic sequential
//!   simulation would have them, chained one step ahead.
//! * **Sharded conservative engine** (`sim_shards > 1`): coordinator
//!   events never enter a queue; the epoch loop applies them at barriers
//!   and runs every shard's window in parallel up to the conservative
//!   lookahead (minimum cross-shard propagation delay), exchanging
//!   cross-shard arrivals through per-shard outboxes at each barrier.
//!
//! Both engines process events in the same canonical `(time, key)` order
//! (see `crate::shard` for the key construction), so every observable of a
//! run — stats, traces, application state, RTT samples — is bit-identical
//! at any shard count.

use crate::app::Application;
use crate::audit::AuditViolation;
use crate::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use crate::config::SimConfig;
use crate::event::Event;
use crate::fluid::{FluidNet, SimMode};
use crate::node::Node;
use crate::shard::{fault_key, fluid_key, Outbound, Partition, Shard, FORWARDING_KEY};
use crate::stats::SimStats;
use crate::trace::{Trace, TraceKind};
use hypatia_constellation::{Constellation, NodeId};
use hypatia_fault::FaultState;
use hypatia_routing::forwarding::{compute_multipath_state_on, ForwardingState, MultipathState};
use hypatia_routing::graph::SnapshotBuffers;
use hypatia_routing::incremental::IncrementalRouter;
use hypatia_routing::parallel::{Prefetcher, SnapshotWorker};
use hypatia_util::{DataRate, SimDuration, SimTime};
use std::path::Path;
use std::sync::Arc;

/// How the engine executed a run — recorded into experiment manifests so
/// sharded runs are auditable (and comparable) after the fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineReport {
    /// Number of shards the node set was partitioned into (1 = the serial
    /// reference engine).
    pub sim_shards: usize,
    /// Parallel window executions (0 under the serial engine, which has no
    /// epochs at all).
    pub epochs: u64,
    /// Barriers at which at least one cross-shard packet was exchanged.
    pub barriers: u64,
    /// Smallest conservative lookahead window used, nanoseconds. `None`
    /// when no window was ever bounded by cross-shard geometry.
    pub min_lookahead_ns: Option<u64>,
}

/// The packet-level simulator.
///
/// Owns the shard set, the coordinator state (forwarding and fault
/// cursors), and merged result views; recomputes forwarding at the
/// configured granularity while the engine runs.
pub struct Simulator {
    constellation: Arc<Constellation>,
    config: SimConfig,
    now: SimTime,
    partition: Arc<Partition>,
    shards: Vec<Shard>,
    /// Owning shard of each installed application, by app index.
    app_shard: Vec<u32>,
    dests: Vec<NodeId>,
    /// Forwarding state currently in force (shared with every shard).
    fwd: Arc<ForwardingState>,
    /// Multipath alternates (present when `multipath_stretch` is set).
    mp: Option<Arc<MultipathState>>,
    /// Background forwarding-state pipeline (present when
    /// `config.fstate_threads > 0`): computes steps `k+1..k+P` while the
    /// event loop consumes step `k`. Deterministic — states are identical
    /// to inline computation and consumed strictly in step order.
    fstate_prefetch: Option<Prefetcher<(ForwardingState, Option<MultipathState>)>>,
    /// Snapshot-graph staging buffers for the inline recomputation path.
    snapshot_buffers: SnapshotBuffers,
    /// Inline routing engine (full Dijkstra or incremental repair, per
    /// `config.routing`). Prefetch workers own their own routers; either
    /// way the states are byte-identical to a full recompute.
    router: IncrementalRouter,
    /// Next forwarding step the sharded coordinator will apply (the serial
    /// engine chains `ForwardingUpdate` queue events instead).
    next_fwd_step: u64,
    /// Cursor into the fault schedule for the sharded coordinator
    /// (schedule entries at t = 0 are folded into the initial state and
    /// skipped, exactly as the serial engine skips them).
    next_fault_index: usize,
    /// Events the coordinator applied outside any shard (sharded-mode
    /// forwarding swaps and fault updates), plus the swap counter both
    /// engines share.
    coord_stats: SimStats,
    /// The fluid-flow network (fluid/hybrid modes; `None` under packet
    /// mode). Coordinator-owned: rates re-solve only at canonical global
    /// instants, which is what keeps sharded runs bit-identical.
    fluid: Option<FluidNet>,
    /// Fluid flows installed since the last boundary rebuild.
    fluid_dirty: bool,
    /// Has `run_until` been called? Fluid installs are rejected after
    /// that: the serial engine chains boundary events through its queue,
    /// and late installs would leave stale chains the sharded engine
    /// (which rebuilds its schedule) would not replay.
    started: bool,
    /// Trace records made by the coordinator itself (fluid re-solves);
    /// merged ahead of the shard traces in `refresh_views`.
    coord_trace: Trace,
    epochs: u64,
    barriers: u64,
    min_lookahead_ns: Option<u64>,
    /// Bounded per-packet trace: the merged view over all shards,
    /// refreshed after every `run_until` / `add_app` (off unless
    /// configured).
    pub trace: Trace,
    /// Global counters: coordinator + all shards, refreshed with the
    /// trace.
    pub stats: SimStats,
}

impl Simulator {
    /// Build a simulator over `constellation`, routing towards `dests` (the
    /// nodes that will terminate traffic — forwarding trees are computed
    /// only for these).
    pub fn new(constellation: Arc<Constellation>, config: SimConfig, dests: Vec<NodeId>) -> Self {
        assert!(!dests.is_empty(), "at least one destination is required");

        let partition = Arc::new(Partition::new(&constellation, config.sim_shards));
        let mut snapshot_buffers = SnapshotBuffers::new();
        let mut router = IncrementalRouter::new(config.routing);
        let (fwd, mp) = Self::compute_states(
            &constellation,
            &config,
            &dests,
            SimTime::ZERO,
            &mut snapshot_buffers,
            &mut router,
        );
        let fwd = Arc::new(fwd);
        let mp = mp.map(Arc::new);

        let nshards = partition.shards();
        let mut shards: Vec<Shard> = (0..nshards)
            .map(|id| {
                Shard::new(
                    id,
                    constellation.clone(),
                    &config,
                    partition.clone(),
                    fwd.clone(),
                    mp.clone(),
                )
            })
            .collect();
        for shard in &mut shards {
            shard.init_outbox(nshards);
        }

        // Fault injection: events at t = 0 are already folded into the
        // initial live state (and the initial forwarding computation); the
        // chain starts at the first strictly-future event.
        let next_fault_index = config.faults.as_ref().map_or(0, |s| {
            s.events().iter().position(|e| e.t > SimTime::ZERO).unwrap_or(s.events().len())
        });

        if nshards == 1 {
            // Serial reference engine: coordinator events are ordinary
            // queue events with keys that sort before any node event at
            // the same instant; each one chains its successor.
            if !config.freeze_at_epoch {
                shards[0].queue.schedule_keyed(
                    SimTime::ZERO + config.fstate_step,
                    FORWARDING_KEY,
                    Event::ForwardingUpdate { step: 1 },
                );
            }
            if let Some(schedule) = &config.faults {
                if let Some(e) = schedule.events().get(next_fault_index) {
                    shards[0].queue.schedule_keyed(
                        e.t,
                        fault_key(next_fault_index as u64),
                        Event::FaultUpdate { index: next_fault_index as u64 },
                    );
                }
            }
        }

        // Background prefetch of upcoming forwarding steps (off for frozen
        // networks, which never update forwarding at all).
        let fstate_prefetch = Self::spawn_prefetcher(&constellation, &config, &dests, 1);

        let trace = Trace::new(config.trace_limit);
        let fluid = (config.sim_mode != SimMode::Packet)
            .then(|| FluidNet::new(config.effective_isl_rate(), config.effective_gsl_rate()));
        let coord_trace = Trace::new(config.trace_limit);
        Simulator {
            constellation,
            config,
            now: SimTime::ZERO,
            partition,
            shards,
            app_shard: Vec::new(),
            dests,
            fwd,
            mp,
            fstate_prefetch,
            snapshot_buffers,
            router,
            next_fwd_step: 1,
            next_fault_index,
            coord_stats: SimStats::default(),
            fluid,
            fluid_dirty: false,
            started: false,
            coord_trace,
            epochs: 0,
            barriers: 0,
            min_lookahead_ns: None,
            trace,
            stats: SimStats::default(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The constellation being simulated.
    pub fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The forwarding state currently in force.
    pub fn forwarding(&self) -> &ForwardingState {
        &self.fwd
    }

    /// The node owned-state for `id` (devices, port bindings).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.shards[self.partition.owner(id)].nodes[id.index()]
    }

    /// The simulated nodes in id order (for stats inspection).
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        (0..self.constellation.num_nodes()).map(|i| self.node(NodeId(i as u32)))
    }

    /// How the engine has executed so far (shard count, epochs, barriers,
    /// smallest lookahead window).
    pub fn engine_report(&self) -> EngineReport {
        EngineReport {
            sim_shards: self.shards.len(),
            epochs: self.epochs,
            barriers: self.barriers,
            min_lookahead_ns: self.min_lookahead_ns,
        }
    }

    /// Install an application at `(node, port)`. Calls its `on_start`
    /// immediately (at the current simulation time) and returns its index.
    pub fn add_app(&mut self, node: NodeId, port: u16, app: Box<dyn Application>) -> u32 {
        let idx = self.app_shard.len() as u32;
        let shard = self.partition.owner(node);
        self.app_shard.push(shard as u32);
        let now = self.now;
        self.shards[shard].install_app(idx, node, port, app, now);
        self.refresh_views();
        idx
    }

    /// Install a bulk application bound to every port in `ports` at `node`
    /// (arena flow tables: one [`Application`] owning many flow endpoints).
    /// Calls its `on_start` immediately and returns its index.
    pub fn add_app_multi(&mut self, node: NodeId, ports: &[u16], app: Box<dyn Application>) -> u32 {
        let idx = self.app_shard.len() as u32;
        let shard = self.partition.owner(node);
        self.app_shard.push(shard as u32);
        let now = self.now;
        self.shards[shard].install_app_multi(idx, node, ports, app, now);
        self.refresh_views();
        idx
    }

    /// Borrow an installed application, downcast to its concrete type.
    pub fn app_as<T: Application>(&self, idx: u32) -> Option<&T> {
        let shard = *self.app_shard.get(idx as usize)? as usize;
        self.shards[shard].app_as(idx)
    }

    /// Install one fluid flow (fluid/hybrid modes; see [`crate::fluid`]):
    /// `demand` offered wire rate from `src` to `dst` until `stop_at`,
    /// `payload_bytes` of goodput per packet-equivalent on the wire. Must
    /// be called before the first `run_until`; rates are solved at run
    /// start and re-solved at forwarding swaps, fault updates, and flow
    /// finish boundaries.
    pub fn add_fluid_flow(
        &mut self,
        flow_id: u32,
        src: NodeId,
        dst: NodeId,
        demand: DataRate,
        payload_bytes: u32,
        stop_at: SimTime,
    ) {
        assert!(
            self.config.sim_mode != SimMode::Packet,
            "fluid flows require sim_mode fluid or hybrid"
        );
        assert!(!self.started, "fluid flows must be installed before the run starts");
        self.fluid.as_mut().expect("fluid network exists in fluid/hybrid modes").add_flow(
            flow_id,
            src,
            dst,
            demand,
            payload_bytes,
            stop_at,
        );
        self.fluid_dirty = true;
    }

    /// The fluid-flow network, when `sim_mode` is fluid or hybrid (for
    /// per-flow delivered-byte and rate inspection).
    pub fn fluid(&self) -> Option<&FluidNet> {
        self.fluid.as_ref()
    }

    /// Run the event loop until simulated time `t_end` (inclusive).
    pub fn run_until(&mut self, t_end: SimTime) {
        self.flush_fluid_installs();
        self.started = true;
        if self.shards.len() == 1 {
            self.run_serial(t_end);
        } else {
            self.run_sharded(t_end);
        }
        self.now = t_end;
        for shard in &mut self.shards {
            shard.now = t_end;
        }
        self.refresh_views();
    }

    /// The serial reference engine: one queue holds every event, including
    /// the coordinator's, and they pop in canonical `(time, key)` order.
    fn run_serial(&mut self, t_end: SimTime) {
        while let Some((t, key, event)) = self.shards[0].queue.pop_entry_before(t_end) {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            let shard = &mut self.shards[0];
            shard.now = t;
            shard.stats.events += 1;
            shard.trace.set_key(key);
            match event {
                Event::ForwardingUpdate { step } => self.forwarding_update_serial(step),
                Event::FaultUpdate { index } => self.fault_update_serial(index),
                Event::FluidUpdate { index } => self.fluid_update_serial(index),
                other => self.shards[0].handle(other),
            }
        }
    }

    /// The sharded conservative engine: apply coordinator events at epoch
    /// starts, run every shard in parallel up to the barrier, exchange
    /// cross-shard arrivals, repeat.
    fn run_sharded(&mut self, t_end: SimTime) {
        loop {
            let next_node = self.shards.iter_mut().filter_map(|s| s.queue.peek_time()).min();
            let start = match (self.next_global_time(), next_node) {
                (Some(g), Some(n)) => g.min(n),
                (Some(g), None) => g,
                (None, Some(n)) => n,
                (None, None) => break,
            };
            if start > t_end {
                break;
            }
            self.now = start;
            self.apply_globals_at(start);

            // The window is bounded by the next coordinator event (its
            // swap must happen before any later node event), by the
            // conservative lookahead, and by the run horizon.
            let mut end_incl = t_end;
            if let Some(g) = self.next_global_time() {
                debug_assert!(g > start, "coordinator event not consumed");
                end_incl = end_incl.min(g - SimDuration::from_nanos(1));
            }
            let geom_t = if self.config.freeze_at_epoch { SimTime::ZERO } else { start };
            if let Some(w) = self.partition.lookahead_at(&self.constellation, geom_t) {
                end_incl = end_incl.min(start + w - SimDuration::from_nanos(1));
                self.min_lookahead_ns =
                    Some(self.min_lookahead_ns.map_or(w.nanos(), |m| m.min(w.nanos())));
            }
            debug_assert!(end_incl >= start);

            let active = self
                .shards
                .iter_mut()
                .filter_map(|s| s.queue.peek_time())
                .filter(|&t| t <= end_incl)
                .count();
            if active <= 1 {
                for shard in self.shards.iter_mut() {
                    if shard.queue.peek_time().is_some_and(|t| t <= end_incl) {
                        shard.run_window(end_incl);
                    }
                }
            } else {
                std::thread::scope(|scope| {
                    for shard in self.shards.iter_mut() {
                        if shard.queue.peek_time().is_some_and(|t| t <= end_incl) {
                            scope.spawn(move || shard.run_window(end_incl));
                        }
                    }
                });
            }
            self.epochs += 1;
            if self.exchange_outboxes() > 0 {
                self.barriers += 1;
            }
        }
    }

    /// Move every cross-shard arrival produced in the last windows into
    /// its destination shard's queue. Returns the number of packets moved.
    fn exchange_outboxes(&mut self) -> u64 {
        let mut moved = 0;
        for src in 0..self.shards.len() {
            let boxes: Vec<Vec<Outbound>> =
                self.shards[src].outbox.iter_mut().map(std::mem::take).collect();
            for (dst, entries) in boxes.into_iter().enumerate() {
                moved += entries.len() as u64;
                for o in entries {
                    self.shards[dst].queue.schedule_keyed(
                        o.at,
                        o.key,
                        Event::Arrival { node: o.node, packet: o.packet },
                    );
                }
            }
        }
        moved
    }

    /// The next instant at which the coordinator must act (forwarding
    /// swap, fault update, or fluid finish boundary), if any.
    fn next_global_time(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        if !self.config.freeze_at_epoch {
            next = Some(SimTime::ZERO + self.config.fstate_step * self.next_fwd_step);
        }
        if let Some(schedule) = &self.config.faults {
            if let Some(e) = schedule.events().get(self.next_fault_index) {
                next = Some(next.map_or(e.t, |n| n.min(e.t)));
            }
        }
        if let Some((t, _)) = self.fluid.as_ref().and_then(|f| f.next_boundary()) {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        next
    }

    /// Apply every coordinator event due exactly at `t`, in canonical
    /// order: the forwarding swap (key 0) first, then fault-schedule
    /// entries in index order, then the fluid finish boundary — the same
    /// order the serial engine pops them. Each trigger re-solves the
    /// fluid allocation under its own key, exactly as the serial engine's
    /// per-event handlers do, so re-solve counts and trace records match
    /// bit for bit.
    fn apply_globals_at(&mut self, t: SimTime) {
        // Captured before any same-instant re-solve advances the cursor:
        // the serial engine still pops the boundary event afterwards.
        let due_boundary =
            self.fluid.as_ref().and_then(|f| f.next_boundary()).filter(|&(bt, _)| bt == t);
        if !self.config.freeze_at_epoch
            && SimTime::ZERO + self.config.fstate_step * self.next_fwd_step == t
        {
            let step = self.next_fwd_step;
            let (fwd, mp) = self.take_forwarding_state(step, t);
            self.fwd = fwd.clone();
            self.mp = mp.clone();
            for shard in &mut self.shards {
                shard.set_forwarding(fwd.clone(), mp.clone());
            }
            self.coord_stats.forwarding_updates += 1;
            self.coord_stats.events += 1;
            self.next_fwd_step += 1;
            self.resolve_fluid(t, FORWARDING_KEY);
        }
        if let Some(schedule) = self.config.faults.clone() {
            while let Some(event) = schedule.events().get(self.next_fault_index) {
                if event.t != t {
                    break;
                }
                for shard in &mut self.shards {
                    shard.apply_fault(event);
                }
                self.coord_stats.events += 1;
                let index = self.next_fault_index as u64;
                self.next_fault_index += 1;
                self.resolve_fluid(t, fault_key(index));
            }
        }
        if let Some((_, index)) = due_boundary {
            self.coord_stats.events += 1;
            self.resolve_fluid(t, fluid_key(index));
        }
    }

    /// Serial-engine forwarding swap: identical effect to the sharded
    /// coordinator's, plus chaining the next step as a queue event.
    fn forwarding_update_serial(&mut self, step: u64) {
        let t = SimTime::ZERO + self.config.fstate_step * step;
        debug_assert_eq!(t, self.now, "forwarding update fired at the wrong time");
        let (fwd, mp) = self.take_forwarding_state(step, t);
        self.fwd = fwd.clone();
        self.mp = mp.clone();
        self.coord_stats.forwarding_updates += 1;
        // Bookkeeping only under the serial engine (the chain drives the
        // schedule), but it keeps the cursor meaningful for checkpoints.
        self.next_fwd_step = step + 1;
        let shard = &mut self.shards[0];
        shard.set_forwarding(fwd, mp);
        shard.queue.schedule_keyed(
            t + self.config.fstate_step,
            FORWARDING_KEY,
            Event::ForwardingUpdate { step: step + 1 },
        );
        self.resolve_fluid(t, FORWARDING_KEY);
    }

    /// Serial-engine fault update: apply schedule entry `index` to the
    /// live state and chain the next entry. Chaining (instead of
    /// scheduling the whole schedule up front) keeps the queue small on
    /// long flap-heavy runs.
    fn fault_update_serial(&mut self, index: u64) {
        let schedule = self.config.faults.clone().expect("fault event without a schedule");
        let event = &schedule.events()[index as usize];
        debug_assert_eq!(event.t, self.now, "fault event fired at the wrong time");
        self.shards[0].apply_fault(event);
        // Cursor bookkeeping for checkpoints, as in the forwarding swap.
        self.next_fault_index = index as usize + 1;
        if let Some(next) = schedule.events().get(index as usize + 1) {
            self.shards[0].queue.schedule_keyed(
                next.t,
                fault_key(index + 1),
                Event::FaultUpdate { index: index + 1 },
            );
        }
        let t = self.now;
        self.resolve_fluid(t, fault_key(index));
    }

    /// Serial-engine fluid boundary: re-solve with the finished demand
    /// removed and chain the next boundary. The sharded coordinator
    /// consumes boundaries in `apply_globals_at` instead; both count one
    /// event and one re-solve per boundary, under the same key.
    fn fluid_update_serial(&mut self, index: u64) {
        let t = self.now;
        self.resolve_fluid(t, fluid_key(index));
        if let Some((bt, bi)) = self.fluid.as_ref().and_then(|f| f.next_boundary()) {
            self.shards[0].queue.schedule_keyed(
                bt,
                fluid_key(bi),
                Event::FluidUpdate { index: bi },
            );
        }
    }

    /// One-time lazy setup at run start: build the finish-boundary
    /// schedule for freshly installed fluid flows, solve the initial rate
    /// allocation, and (serial engine) chain the first boundary event.
    /// Counts no event on either engine — installs happen outside the
    /// event loop, like `add_app`'s `on_start`.
    fn flush_fluid_installs(&mut self) {
        if !self.fluid_dirty {
            return;
        }
        self.fluid_dirty = false;
        let now = self.now;
        if let Some(f) = self.fluid.as_mut() {
            f.rebuild_boundaries(now);
        }
        self.resolve_fluid(now, fluid_key(0));
        if self.shards.len() == 1 {
            if let Some((bt, bi)) = self.fluid.as_ref().and_then(|f| f.next_boundary()) {
                self.shards[0].queue.schedule_keyed(
                    bt,
                    fluid_key(bi),
                    Event::FluidUpdate { index: bi },
                );
            }
        }
    }

    /// Recompute the fluid rate allocation at `t` (after integrating
    /// delivered bytes up to `t` under the outgoing rates) and, in hybrid
    /// mode, push changed residual rates to the packet devices. `key` is
    /// the canonical key of the triggering coordinator event — stamped on
    /// the trace record so merged traces land in serial order. No-op in
    /// packet mode.
    fn resolve_fluid(&mut self, t: SimTime, key: u64) {
        let Some(fluid) = self.fluid.as_mut() else { return };
        fluid.advance_to(t);
        fluid.resolve(t, &self.fwd, self.shards[0].fault_state.as_ref(), &self.constellation);
        self.coord_stats.fluid_resolves += 1;
        self.coord_trace.set_key(key);
        // Not a packet event: node 0 is a placeholder; the "packet id"
        // carries the running re-solve count.
        self.coord_trace.record(t, NodeId(0), fluid.resolves(), TraceKind::FluidResolve);
        if self.config.sim_mode == SimMode::Hybrid {
            let changes = fluid.residual_changes();
            if !changes.is_empty() {
                for shard in &mut self.shards {
                    shard.apply_link_rates(&changes);
                }
            }
        }
    }

    /// The forwarding (and multipath) state for `step`, from the prefetch
    /// pipeline when one is running, else computed inline.
    fn take_forwarding_state(
        &mut self,
        step: u64,
        t: SimTime,
    ) -> (Arc<ForwardingState>, Option<Arc<MultipathState>>) {
        let (fwd, mp) = if let Some(prefetch) = &mut self.fstate_prefetch {
            prefetch.take(step)
        } else {
            Self::compute_states(
                &self.constellation,
                &self.config,
                &self.dests,
                t,
                &mut self.snapshot_buffers,
                &mut self.router,
            )
        };
        (Arc::new(fwd), mp.map(Arc::new))
    }

    /// Forwarding (and multipath) state at `t`. With faults configured,
    /// both are computed on one snapshot graph with the schedule's state
    /// at `t` masked out — derived purely from the immutable schedule, so
    /// this is bit-identical however and whenever it is invoked. The
    /// router repairs from whatever snapshot it computed last (or runs
    /// full Dijkstra, per `config.routing`); both yield the same bytes.
    fn compute_states(
        constellation: &Constellation,
        config: &SimConfig,
        dests: &[NodeId],
        t: SimTime,
        buffers: &mut SnapshotBuffers,
        router: &mut IncrementalRouter,
    ) -> (ForwardingState, Option<MultipathState>) {
        let mask = config.faults.as_ref().map(|s| FaultState::at(s, t));
        let graph = buffers.snapshot_masked(constellation, t, mask.as_ref());
        let mut fwd = ForwardingState::empty();
        router.compute_into(graph, t, dests, &mut fwd);
        let mp = config.multipath_stretch.map(|s| compute_multipath_state_on(graph, t, dests, s));
        (fwd, mp)
    }

    /// Start the background forwarding-state pipeline at `start_step`
    /// (`None` when prefetch is off or the network is frozen). `new` starts
    /// it at step 1; a restore respawns it at the snapshot's cursor.
    fn spawn_prefetcher(
        constellation: &Arc<Constellation>,
        config: &SimConfig,
        dests: &[NodeId],
        start_step: u64,
    ) -> Option<Prefetcher<(ForwardingState, Option<MultipathState>)>> {
        (config.fstate_threads > 0 && !config.freeze_at_epoch).then(|| {
            let constellation = constellation.clone();
            let dests = dests.to_vec();
            let step = config.fstate_step;
            let stretch = config.multipath_stretch;
            let faults = config.faults.clone();
            let routing = config.routing;
            Prefetcher::spawn(
                start_step,
                config.fstate_threads,
                config.fstate_prefetch,
                move || SnapshotWorker::with_config(routing),
                move |worker: &mut SnapshotWorker, k| {
                    let t = SimTime::ZERO + step * k;
                    // Pure replay of the schedule at `t` — workers never
                    // see (or race on) the simulator's live fault state.
                    let mask = faults.as_ref().map(|s| FaultState::at(s, t));
                    let fwd =
                        worker.forwarding_state_masked(&constellation, t, &dests, mask.as_ref());
                    let mp = stretch
                        .map(|s| compute_multipath_state_on(worker.buffers.graph(), t, &dests, s));
                    (fwd, mp)
                },
            )
        })
    }

    /// Rebuild the merged `stats` / `trace` views from the coordinator and
    /// every shard. Cheap when tracing is off; with tracing on, the merge
    /// re-sorts into canonical `(time, key)` order, which is exactly the
    /// order the serial engine would have recorded.
    fn refresh_views(&mut self) {
        if let Some(f) = self.fluid.as_mut() {
            f.advance_to(self.now);
            self.coord_stats.fluid_flows = f.flow_count();
            self.coord_stats.fluid_bytes_delivered = f.delivered_payload_bytes();
        }
        let mut stats = self.coord_stats.clone();
        for shard in &self.shards {
            stats.merge(&shard.stats);
        }
        self.stats = stats;
        let parts: Vec<&Trace> = std::iter::once(&self.coord_trace)
            .chain(self.shards.iter().map(|s| &s.trace))
            .collect();
        self.trace = Trace::merged(&parts, self.config.trace_limit);
    }

    /// Utilization of the most loaded directed link along `path` in bucket
    /// `bucket_idx` (requires utilization tracking). For each hop `a → b`
    /// the device is `a`'s ISL device towards `b`, or `a`'s GSL device.
    pub fn path_bottleneck_utilization(&self, path: &[NodeId], bucket_idx: usize) -> f64 {
        assert!(path.len() >= 2, "path needs at least one hop");
        let mut worst: f64 = 0.0;
        for w in path.windows(2) {
            let node = self.node(w[0]);
            let dev_idx = node.device_for(w[1]).expect("path hop has no device");
            let u = node.devices[dev_idx]
                .utilization(bucket_idx)
                .expect("utilization tracking disabled");
            worst = worst.max(u);
        }
        worst
    }

    // ---- Crash resilience: checkpoint, restore, conservation audits ----

    /// FNV-1a-64 over everything the snapshot layout depends on: topology
    /// size, destination set, shard count, queue kind, mode, timing, rates,
    /// loss model, trace bounds, fault-schedule length, and app count. A
    /// snapshot restores only into a simulator with the same fingerprint,
    /// so a resumed run cannot silently diverge because a knob changed.
    pub fn config_fingerprint(&self) -> u64 {
        fn mix(h: &mut u64, x: u64) {
            for b in x.to_le_bytes() {
                *h = (*h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let c = &self.config;
        mix(&mut h, self.constellation.num_nodes() as u64);
        mix(&mut h, self.constellation.num_satellites() as u64);
        mix(&mut h, self.dests.len() as u64);
        for d in &self.dests {
            mix(&mut h, d.0 as u64);
        }
        mix(&mut h, self.partition.shards() as u64);
        for b in c.queue.name().bytes() {
            mix(&mut h, b as u64);
        }
        for b in c.sim_mode.name().bytes() {
            mix(&mut h, b as u64);
        }
        mix(&mut h, c.fstate_step.nanos());
        mix(&mut h, c.freeze_at_epoch as u64);
        mix(&mut h, c.effective_isl_rate().bps());
        mix(&mut h, c.effective_gsl_rate().bps());
        mix(&mut h, c.queue_packets as u64);
        mix(&mut h, c.loss_seed);
        mix(&mut h, c.gsl_loss_rate.to_bits());
        mix(&mut h, c.trace_limit as u64);
        mix(&mut h, c.trace_sample_every);
        mix(&mut h, c.multipath_stretch.map_or(u64::MAX, f64::to_bits));
        mix(&mut h, c.faults.as_ref().map_or(0, |s| s.events().len() as u64));
        mix(&mut h, self.app_shard.len() as u64);
        h
    }

    /// Serialize the full mutable state of the run into an in-memory
    /// snapshot image (see [`crate::checkpoint`] for the container). Must
    /// be taken at a barrier — between `run_until` calls — so there are no
    /// undelivered cross-shard packets and no half-dispatched application.
    pub fn checkpoint(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let mut w = SnapWriter::new(self.config_fingerprint());
        self.save_into(&mut w)?;
        Ok(w.finish())
    }

    /// [`Simulator::checkpoint`] straight to a file, written atomically
    /// (temp file + rename) so a crash mid-write never leaves a truncated
    /// snapshot in place of a good one.
    pub fn checkpoint_to(&mut self, path: &Path) -> Result<(), CheckpointError> {
        let mut w = SnapWriter::new(self.config_fingerprint());
        self.save_into(&mut w)?;
        w.write_file(path)
    }

    fn save_into(&mut self, w: &mut SnapWriter) -> Result<(), CheckpointError> {
        if self.fluid_dirty {
            return Err(CheckpointError::Unsupported(
                "fluid flows installed but not yet started; checkpoint after run_until".into(),
            ));
        }
        w.put_tag(b"SIMU");
        w.put_time(self.now);
        w.put_bool(self.started);
        w.put_u64(self.next_fwd_step);
        w.put_usize(self.next_fault_index);
        w.put_u64(self.epochs);
        w.put_u64(self.barriers);
        w.put_opt_u64(self.min_lookahead_ns);
        w.put_tag(b"CSTA");
        self.coord_stats.save(w);
        w.put_tag(b"CTRC");
        self.coord_trace.save(w);
        w.put_bool(self.fluid.is_some());
        if let Some(f) = &self.fluid {
            f.save(w);
        }
        for shard in &mut self.shards {
            shard.save(w)?;
        }
        Ok(())
    }

    /// Restore a snapshot image taken by [`Simulator::checkpoint`].
    ///
    /// The caller rebuilds the simulator exactly as the checkpointed run
    /// was built — same constellation, config, destinations, and the same
    /// `add_app` / `add_fluid_flow` sequence — then restores. The snapshot
    /// overwrites every piece of mutable state (queues, device contents,
    /// application state, RNG streams, counters, cursors, fluid rates), and
    /// the continuation is bit-identical to the uninterrupted run at any
    /// shard count, queue kind, and mode. Structural mismatches are
    /// reported as typed errors, never panics.
    pub fn restore(&mut self, bytes: Vec<u8>) -> Result<(), CheckpointError> {
        let mut r = SnapReader::from_bytes(bytes, self.config_fingerprint())?;
        self.restore_body(&mut r)
    }

    /// [`Simulator::restore`] from a snapshot file.
    pub fn restore_from(&mut self, path: &Path) -> Result<(), CheckpointError> {
        let mut r = SnapReader::open(path, self.config_fingerprint())?;
        self.restore_body(&mut r)
    }

    fn restore_body(&mut self, r: &mut SnapReader) -> Result<(), CheckpointError> {
        r.expect_tag(b"SIMU")?;
        let now = r.get_time()?;
        self.started = r.get_bool()?;
        self.next_fwd_step = r.get_u64()?;
        self.next_fault_index = r.get_usize()?;
        self.epochs = r.get_u64()?;
        self.barriers = r.get_u64()?;
        self.min_lookahead_ns = r.get_opt_u64()?;
        r.expect_tag(b"CSTA")?;
        self.coord_stats.restore(r)?;
        r.expect_tag(b"CTRC")?;
        self.coord_trace.restore(r)?;
        let has_fluid = r.get_bool()?;
        if has_fluid != self.fluid.is_some() {
            return Err(CheckpointError::Malformed(format!(
                "snapshot fluid presence ({has_fluid}) does not match the rebuilt simulator \
                 ({})",
                self.fluid.is_some()
            )));
        }
        if let Some(f) = self.fluid.as_mut() {
            f.restore(r)?;
        }
        self.fluid_dirty = false;
        for shard in &mut self.shards {
            shard.restore(r)?;
        }
        r.expect_end()?;

        // Rebuild the live fault state by replaying the schedule up to the
        // cursor — exactly the entries the checkpointed run had applied
        // (t = 0 entries are folded into the initial state, as in `new`).
        if let Some(schedule) = &self.config.faults {
            let events = schedule.events();
            let first_future =
                events.iter().position(|e| e.t > SimTime::ZERO).unwrap_or(events.len());
            if self.next_fault_index < first_future || self.next_fault_index > events.len() {
                return Err(CheckpointError::Malformed(format!(
                    "fault cursor {} outside [{first_future}, {}]",
                    self.next_fault_index,
                    events.len()
                )));
            }
            let mut state = FaultState::at(schedule, SimTime::ZERO);
            for ev in &events[first_future..self.next_fault_index] {
                state.apply(ev);
            }
            for shard in &mut self.shards {
                shard.fault_state = Some(state.clone());
            }
        }

        // Recompute the forwarding state in force at the checkpoint: the
        // last applied step is `next_fwd_step - 1`. Step 0 (and frozen
        // networks) is what the fresh build already computed. Forwarding is
        // a pure function of the schedule at `t`, so this is byte-identical
        // to the state the checkpointed run was using.
        if self.next_fwd_step > 1 && !self.config.freeze_at_epoch {
            let t_fwd = SimTime::ZERO + self.config.fstate_step * (self.next_fwd_step - 1);
            let (fwd, mp) = Self::compute_states(
                &self.constellation,
                &self.config,
                &self.dests,
                t_fwd,
                &mut self.snapshot_buffers,
                &mut self.router,
            );
            let fwd = Arc::new(fwd);
            let mp = mp.map(Arc::new);
            self.fwd = fwd.clone();
            self.mp = mp.clone();
            for shard in &mut self.shards {
                shard.set_forwarding(fwd.clone(), mp.clone());
            }
        }

        // The prefetch pipeline (if any) was computing steps from 1; drop
        // it and respawn from the restored cursor so `take(step)` stays in
        // lockstep with the event loop.
        self.fstate_prefetch = None;
        self.fstate_prefetch = Self::spawn_prefetcher(
            &self.constellation,
            &self.config,
            &self.dests,
            self.next_fwd_step,
        );

        self.now = now;
        self.refresh_views();
        Ok(())
    }

    /// Re-derive the engine's bookkeeping from first principles and report
    /// every violated invariant (empty = all conserved). See
    /// [`crate::audit`] for the invariants. Read-only; safe to call at any
    /// barrier (between `run_until` calls).
    pub fn audit(&mut self) -> Vec<AuditViolation> {
        let mut out = Vec::new();
        let t_ns = self.now.nanos();
        let mut stats = self.coord_stats.clone();
        for shard in &self.shards {
            stats.merge(&shard.stats);
        }
        // In flight = scheduled arrivals (propagating) + packets queued or
        // in serialization at a device + cross-shard packets awaiting a
        // barrier exchange.
        let mut in_flight: u64 = 0;
        for shard in &mut self.shards {
            in_flight += shard.in_flight_arrivals();
            in_flight += shard.outbox.iter().map(|b| b.len() as u64).sum::<u64>();
        }
        for shard in &self.shards {
            for node in &shard.nodes {
                for device in &node.devices {
                    in_flight += device.occupancy();
                }
            }
        }
        let dropped = stats.total_drops();
        if stats.injected != stats.delivered + dropped + in_flight {
            out.push(AuditViolation::PacketConservation {
                t_ns,
                injected: stats.injected,
                delivered: stats.delivered,
                dropped,
                in_flight,
            });
        }
        for shard in &self.shards {
            shard.audit_devices(&mut out);
        }
        if let Some(f) = &self.fluid {
            for (link, load_bps, capacity_bps) in f.overloaded_links(1e-6) {
                out.push(AuditViolation::FluidOverCapacity { t_ns, link, load_bps, capacity_bps });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::ping::PingApp;
    use crate::packet::packet_id;
    use crate::trace::TraceKind;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_util::DataRate;

    fn constellation() -> Arc<Constellation> {
        Arc::new(Constellation::build(
            "simtest",
            vec![ShellSpec::new("A", 550.0, 10, 10, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 5.0, 5.0), GroundStation::new("b", -10.0, 60.0)],
            GslConfig::new(10.0),
        ))
    }

    #[test]
    fn ping_round_trip_measures_plausible_rtt() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let mut sim = Simulator::new(c.clone(), SimConfig::default(), vec![src, dst]);
        let app = sim.add_app(
            src,
            100,
            Box::new(PingApp::new(dst, SimDuration::from_millis(100), SimTime::from_secs(2))),
        );
        sim.run_until(SimTime::from_secs(3));
        let ping: &PingApp = sim.app_as(app).unwrap();
        assert!(ping.sent() >= 20, "sent {}", ping.sent());
        assert!(
            ping.received() >= ping.sent() - 2,
            "lost pings: {}/{}",
            ping.received(),
            ping.sent()
        );
        for &(_, rtt) in ping.rtts() {
            let ms = rtt.secs_f64() * 1e3;
            // ~6000 km ground distance: RTT must be tens of ms, below 200.
            assert!((10.0..200.0).contains(&ms), "implausible RTT {ms} ms");
        }
    }

    #[test]
    fn deterministic_two_runs_identical() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let run = || {
            let mut sim = Simulator::new(c.clone(), SimConfig::default(), vec![src, dst]);
            let app = sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(10), SimTime::from_secs(1))),
            );
            sim.run_until(SimTime::from_secs(2));
            let ping: &PingApp = sim.app_as(app).unwrap();
            (ping.rtts().to_vec(), sim.stats.events)
        };
        let (a_rtts, a_events) = run();
        let (b_rtts, b_events) = run();
        assert_eq!(a_rtts, b_rtts);
        assert_eq!(a_events, b_events);
    }

    /// The background forwarding-state pipeline is a pure wall-clock knob:
    /// every observable of a run must be bit-identical to inline
    /// computation, for any worker-thread count, with and without
    /// multipath.
    #[test]
    fn prefetched_forwarding_is_bit_identical_to_inline() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let run = |cfg: SimConfig| {
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            let app = sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(10), SimTime::from_secs(1))),
            );
            sim.run_until(SimTime::from_secs(2));
            let ping: &PingApp = sim.app_as(app).unwrap();
            (ping.rtts().to_vec(), sim.stats.events, sim.stats.forwarding_updates)
        };
        let inline = run(SimConfig::default());
        for threads in [1, 2, 4] {
            let prefetched = run(SimConfig::default().with_fstate_prefetch(threads, 4));
            assert_eq!(inline, prefetched, "threads={threads}");
        }
        let mp_inline = run(SimConfig::default().with_multipath(1.3));
        let mp_prefetched =
            run(SimConfig::default().with_multipath(1.3).with_fstate_prefetch(2, 4));
        assert_eq!(mp_inline, mp_prefetched);
    }

    /// The tentpole invariant: the sharded conservative engine is a pure
    /// wall-clock knob. Stats, traces, and application observables must be
    /// bit-identical to the serial reference engine at any shard count —
    /// plain, and under faults + GSL loss.
    #[test]
    fn sharded_engine_is_bit_identical_to_serial() {
        use hypatia_fault::{FaultSchedule, FaultSpec, OutageWindow};
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let spec = FaultSpec {
            sat_outages: vec![OutageWindow { target: 12, from_s: 0.5, until_s: 1.5 }],
            ..FaultSpec::default()
        };
        let schedule = Arc::new(FaultSchedule::compile(&spec, &c, SimDuration::from_secs(2)));
        let run = |cfg: SimConfig| {
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            let app = sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(10), SimTime::from_secs(1))),
            );
            sim.run_until(SimTime::from_secs(2));
            let ping: &PingApp = sim.app_as(app).unwrap();
            (ping.rtts().to_vec(), sim.stats.clone(), sim.trace.entries().to_vec())
        };
        let plain = SimConfig::default().with_trace_limit(100_000);
        let faulted = plain.clone().with_faults(schedule).with_gsl_loss(0.1);
        for base in [plain, faulted] {
            let serial = run(base.clone());
            assert!(serial.1.delivered > 0, "workload delivered nothing");
            for shards in [2, 4, 8] {
                let sharded = run(base.clone().with_sim_shards(shards));
                assert_eq!(serial, sharded, "sim_shards={shards} diverged");
            }
        }
    }

    /// The engine report reflects the engine that ran.
    #[test]
    fn engine_report_describes_the_run() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let run = |cfg: SimConfig| {
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            sim.add_app(
                src,
                100,
                Box::new(PingApp::new(
                    dst,
                    SimDuration::from_millis(20),
                    SimTime::from_millis(500),
                )),
            );
            sim.run_until(SimTime::from_secs(1));
            sim.engine_report()
        };
        let serial = run(SimConfig::default());
        assert_eq!(serial.sim_shards, 1);
        assert_eq!(serial.epochs, 0, "the serial engine has no epochs");
        assert_eq!(serial.min_lookahead_ns, None);

        let sharded = run(SimConfig::default().with_sim_shards(4));
        assert_eq!(sharded.sim_shards, 4);
        assert!(sharded.epochs > 0, "no windows executed");
        assert!(sharded.barriers > 0, "GS traffic must cross shards");
        assert!(sharded.barriers <= sharded.epochs);
        let w = sharded.min_lookahead_ns.expect("cross-shard geometry bounds the window");
        // GSL bound 520 km ≈ 1.73 ms; window must be positive and below it.
        assert!(w > 0 && w < 2_000_000, "implausible lookahead {w} ns");
    }

    #[test]
    fn forwarding_updates_fire_at_granularity() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        for shards in [1, 4] {
            let cfg = SimConfig::default().with_sim_shards(shards);
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            sim.run_until(SimTime::from_secs(1));
            // 100 ms granularity → updates at 0.1..1.0 inclusive = 10.
            assert_eq!(sim.stats.forwarding_updates, 10, "sim_shards={shards}");
        }
    }

    #[test]
    fn frozen_network_never_updates_forwarding() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        for shards in [1, 4] {
            let cfg = SimConfig::default().frozen().with_sim_shards(shards);
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            sim.run_until(SimTime::from_secs(2));
            assert_eq!(sim.stats.forwarding_updates, 0, "sim_shards={shards}");
        }
    }

    #[test]
    fn packet_conservation() {
        // injected = delivered + drops + still-in-network(0 at quiescence).
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let mut sim = Simulator::new(c.clone(), SimConfig::default(), vec![src, dst]);
        sim.add_app(
            src,
            100,
            Box::new(PingApp::new(dst, SimDuration::from_millis(50), SimTime::from_secs(1))),
        );
        // Run far past the last ping so everything drains.
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(
            sim.stats.injected,
            sim.stats.delivered + sim.stats.total_drops(),
            "packets leaked: {:?}",
            sim.stats
        );
    }

    #[test]
    fn multipath_delivers_and_spreads_flows() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let cfg = SimConfig::default().with_multipath(1.3).with_trace_limit(100_000);
        let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
        // Several parallel "flows" = pings on distinct ports.
        let mut apps = Vec::new();
        for port in 0..8u16 {
            apps.push(sim.add_app(
                src,
                100 + port,
                Box::new(PingApp::new(dst, SimDuration::from_millis(50), SimTime::from_secs(1))),
            ));
        }
        sim.run_until(SimTime::from_secs(3));
        // Everything still delivered (loop-freedom + reachability).
        assert_eq!(sim.stats.injected, sim.stats.delivered + sim.stats.total_drops());
        for app in &apps {
            let ping: &PingApp = sim.app_as(*app).unwrap();
            assert!(ping.received() >= ping.sent() - 1, "flow lost pings");
        }
        // At least two distinct first hops across the flows (the mesh
        // offers alternates from the source's ingress satellite onwards).
        use std::collections::HashSet;
        let mut first_hops: HashSet<u32> = HashSet::new();
        for e in sim.trace.entries() {
            if e.kind == crate::trace::TraceKind::Arrive && c.is_satellite(e.node) {
                // the first Arrive after an Inject is the ingress satellite;
                // approximating by collecting all satellite arrivals still
                // demonstrates path diversity across flows.
                first_hops.insert(e.node.0);
            }
        }
        assert!(first_hops.len() >= 2, "no path diversity: {first_hops:?}");
    }

    #[test]
    fn trace_reconstructs_packet_journeys() {
        use crate::trace::TraceKind;
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let cfg = SimConfig::default().with_trace_limit(1000);
        let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
        sim.add_app(
            src,
            100,
            Box::new(PingApp::new(dst, SimDuration::from_millis(100), SimTime::from_millis(300))),
        );
        sim.run_until(SimTime::from_secs(2));
        assert!(sim.trace.enabled());

        // First ping (the 0th packet originated at src): Inject at src,
        // Arrive per hop, Deliver at dst.
        let journey = sim.trace.journey(packet_id(src, 0));
        assert!(journey.len() >= 3, "journey too short: {journey:?}");
        assert_eq!(journey.first().unwrap().kind, TraceKind::Inject);
        assert_eq!(journey.first().unwrap().node, src);
        assert_eq!(journey.last().unwrap().kind, TraceKind::Deliver);
        assert_eq!(journey.last().unwrap().node, dst);
        // Times never decrease along the journey; interior events are
        // satellite arrivals (plus the final arrival at dst).
        for w in journey.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
        for e in &journey[1..journey.len() - 1] {
            assert_eq!(e.kind, TraceKind::Arrive);
            assert!(c.is_satellite(e.node) || e.node == dst);
        }
    }

    #[test]
    fn gsl_loss_drops_packets_deterministically() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let run = |loss: f64| {
            let cfg = SimConfig::default().with_gsl_loss(loss);
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(5), SimTime::from_secs(2))),
            );
            sim.run_until(SimTime::from_secs(4));
            (sim.stats.channel_drops, sim.stats.injected, sim.stats.delivered)
        };
        let (drops0, inj0, del0) = run(0.0);
        assert_eq!(drops0, 0);
        assert_eq!(inj0, del0, "lossless run must deliver everything");

        let (drops, inj, del) = run(0.2);
        assert!(drops > 0, "expected channel drops at 20% loss");
        assert_eq!(inj, del + drops, "conservation with channel loss");
        // Every ping/pong crosses 2 GSLs; expected survival ≈ 0.8^2 per
        // direction. Loose band: 30-80% of probes answered.
        let ratio = del as f64 / inj as f64;
        assert!((0.3..0.9).contains(&ratio), "delivery ratio {ratio}");

        // Determinism of the loss process.
        let again = run(0.2);
        assert_eq!((drops, inj, del), again);
    }

    #[test]
    fn heterogeneous_rates_apply_per_device_kind() {
        use crate::device::DeviceKind;
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let cfg = SimConfig::default()
            .with_isl_rate(DataRate::from_gbps(1))
            .with_gsl_rate(DataRate::from_mbps(50));
        let sim = Simulator::new(c, cfg, vec![src, dst]);
        for node in sim.nodes() {
            for dev in &node.devices {
                match dev.kind {
                    DeviceKind::Isl { .. } => assert_eq!(dev.rate, DataRate::from_gbps(1)),
                    DeviceKind::Gsl => assert_eq!(dev.rate, DataRate::from_mbps(50)),
                }
            }
        }
    }

    #[test]
    fn zero_fault_schedule_is_bit_identical_to_no_faults() {
        use hypatia_fault::{FaultSchedule, FaultSpec};
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let empty =
            Arc::new(FaultSchedule::compile(&FaultSpec::default(), &c, SimDuration::from_secs(2)));
        assert!(empty.is_empty(), "default spec must compile to no events");
        let run = |cfg: SimConfig| {
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            let app = sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(10), SimTime::from_secs(1))),
            );
            sim.run_until(SimTime::from_secs(2));
            let ping: &PingApp = sim.app_as(app).unwrap();
            (ping.rtts().to_vec(), sim.stats.clone())
        };
        let plain = run(SimConfig::default());
        let faulted = run(SimConfig::default().with_faults(empty));
        assert_eq!(plain, faulted, "empty fault schedule changed the simulation");
    }

    #[test]
    fn weather_outage_drops_then_recovers() {
        use hypatia_fault::{FaultSchedule, FaultSpec, OutageWindow};
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        // Attenuate the source ground station's GSLs mid-run, off a
        // forwarding-step boundary: packets pushed by the stale state
        // during [0.55, 0.6) die as fault drops; once forwarding has
        // recomputed on the masked graph the source is an island and new
        // pings die as routing drops; after 1.2 s service recovers.
        let spec = FaultSpec {
            gsl_weather: vec![OutageWindow { target: 0, from_s: 0.55, until_s: 1.2 }],
            ..FaultSpec::default()
        };
        let schedule = Arc::new(FaultSchedule::compile(&spec, &c, SimDuration::from_secs(3)));
        assert_eq!(schedule.events().len(), 2);
        let cfg = SimConfig::default().with_faults(schedule).with_trace_limit(100_000);
        let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
        let app = sim.add_app(
            src,
            100,
            Box::new(PingApp::new(dst, SimDuration::from_millis(5), SimTime::from_secs(2))),
        );
        sim.run_until(SimTime::from_secs(3));
        assert!(sim.stats.fault_drops > 0, "stale-state window produced no fault drops");
        assert!(sim.stats.routing_drops > 0, "masked forwarding produced no routing drops");
        assert_eq!(
            sim.stats.injected,
            sim.stats.delivered + sim.stats.total_drops(),
            "conservation with faults: {:?}",
            sim.stats
        );
        assert!(sim.trace.entries().iter().any(|e| e.kind == TraceKind::FaultDrop));
        // Pings before the outage and after recovery are answered: far
        // more than the outage window could swallow.
        let ping: &PingApp = sim.app_as(app).unwrap();
        assert!(ping.received() >= 100, "service never recovered: {}", ping.received());
        assert!(ping.received() < ping.sent(), "the outage cost nothing?");
    }

    #[test]
    fn satellite_outage_is_bit_identical_across_prefetch_and_queue_kind() {
        use crate::event::QueueKind;
        use hypatia_fault::{FaultSchedule, FaultSpec, OutageWindow};
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        // Fail the middle satellite of the t = 0 path mid-run.
        let probe = Simulator::new(c.clone(), SimConfig::default(), vec![src, dst]);
        let path = probe.forwarding().path(src, dst).expect("nominal path exists");
        let victim = path[path.len() / 2];
        assert!(c.is_satellite(victim));
        let spec = FaultSpec {
            sat_outages: vec![OutageWindow { target: victim.0, from_s: 0.42, until_s: 1.33 }],
            ..FaultSpec::default()
        };
        let schedule = Arc::new(FaultSchedule::compile(&spec, &c, SimDuration::from_secs(3)));
        let run = |cfg: SimConfig| {
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            let app = sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(5), SimTime::from_secs(2))),
            );
            sim.run_until(SimTime::from_secs(3));
            let ping: &PingApp = sim.app_as(app).unwrap();
            (ping.rtts().to_vec(), sim.stats.clone())
        };
        let base = SimConfig::default().with_faults(schedule);
        let inline = run(base.clone());
        // Packets the stale state kept sending into the dead satellite.
        assert!(inline.1.fault_drops > 0, "no packets caught by the outage: {:?}", inline.1);
        assert_eq!(
            inline.1.injected,
            inline.1.delivered + inline.1.total_drops(),
            "conservation: {:?}",
            inline.1
        );
        for threads in [1, 4] {
            let prefetched = run(base.clone().with_fstate_prefetch(threads, 4));
            assert_eq!(inline, prefetched, "threads={threads} diverged under faults");
        }
        let heap = run(base.clone().with_queue(QueueKind::Heap));
        assert_eq!(inline, heap, "queue kinds diverged under faults");
        // And the sharded engine agrees, per queue kind, with prefetch.
        for shards in [2, 4] {
            let sharded = run(base.clone().with_sim_shards(shards).with_fstate_prefetch(2, 4));
            assert_eq!(inline, sharded, "sim_shards={shards} diverged under faults");
            let sharded_heap =
                run(base.clone().with_sim_shards(shards).with_queue(QueueKind::Heap));
            assert_eq!(inline, sharded_heap, "sharded heap diverged under faults");
        }
    }

    /// `routing_mode` is a pure wall-clock knob: full recompute and
    /// incremental repair must produce bit-identical simulations — with
    /// and without faults, inline and prefetched.
    #[test]
    fn routing_modes_are_bit_identical() {
        use hypatia_fault::{FaultSchedule, FaultSpec, OutageWindow};
        use hypatia_routing::incremental::RoutingMode;
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let spec = FaultSpec {
            sat_outages: vec![OutageWindow { target: 12, from_s: 0.5, until_s: 1.5 }],
            ..FaultSpec::default()
        };
        let schedule = Arc::new(FaultSchedule::compile(&spec, &c, SimDuration::from_secs(3)));
        let run = |cfg: SimConfig| {
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            let app = sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(10), SimTime::from_secs(1))),
            );
            sim.run_until(SimTime::from_secs(2));
            let ping: &PingApp = sim.app_as(app).unwrap();
            (ping.rtts().to_vec(), sim.stats.clone())
        };
        for base in [SimConfig::default(), SimConfig::default().with_faults(schedule)] {
            let full = run(base.clone().with_routing_mode(RoutingMode::Full));
            let incremental = run(base.clone().with_routing_mode(RoutingMode::Incremental));
            assert_eq!(full, incremental, "inline routing modes diverged");
            let prefetched = run(base
                .clone()
                .with_routing_mode(RoutingMode::Incremental)
                .with_fstate_prefetch(2, 4));
            assert_eq!(full, prefetched, "prefetched incremental diverged");
        }
    }

    /// Fluid flows deliver `rate × time` bytes analytically, cost no
    /// packet events, and — the tentpole invariant — every observable is
    /// bit-identical across engines and queue kinds, because the solver
    /// re-runs only at canonical coordinator instants.
    #[test]
    fn fluid_flows_deliver_analytically_and_bit_identically() {
        use crate::event::QueueKind;
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let run = |cfg: SimConfig| {
            let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
            let app = sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(10), SimTime::from_secs(1))),
            );
            for i in 0..20 {
                sim.add_fluid_flow(
                    i,
                    src,
                    dst,
                    DataRate::from_kbps(64),
                    1440,
                    SimTime::from_secs(1),
                );
            }
            sim.run_until(SimTime::from_secs(2));
            let ping: &PingApp = sim.app_as(app).unwrap();
            (ping.rtts().to_vec(), sim.stats.clone(), sim.trace.entries().to_vec())
        };
        let base = SimConfig::default().with_sim_mode(SimMode::Hybrid).with_trace_limit(100_000);
        let serial = run(base.clone());
        assert_eq!(serial.1.fluid_flows, 20);
        assert!(serial.1.fluid_resolves > 0, "solver never ran");
        // 20 flows × 64 kbps × 1 s = 160 kB wire, × 1440/1500 payload
        // fraction = 153.6 kB (small float slack from chunked integration).
        let bytes = serial.1.fluid_bytes_delivered;
        assert!((153_590..=153_610).contains(&bytes), "fluid bytes {bytes}");
        assert!(serial.1.delivered > 0, "packet-level pings still flow in hybrid mode");
        assert!(serial.2.iter().any(|e| e.kind == TraceKind::FluidResolve), "re-solves are traced");
        for shards in [2, 4] {
            for queue in [QueueKind::Heap, QueueKind::Calendar] {
                let got = run(base.clone().with_sim_shards(shards).with_queue(queue));
                assert_eq!(serial, got, "shards={shards} queue={queue:?} diverged");
            }
        }
    }

    /// Hybrid coupling: saturating fluid load pushes packet devices down
    /// to the 1% residual floor, and expiry restores full capacity at the
    /// next re-solve. Pure fluid mode never touches device rates.
    #[test]
    fn hybrid_coupling_reduces_packet_residual_rates() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let cfg = SimConfig::default().with_sim_mode(SimMode::Hybrid);
        let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
        for i in 0..4 {
            sim.add_fluid_flow(i, src, dst, DataRate::from_mbps(10), 1440, SimTime::from_secs(1));
        }
        sim.run_until(SimTime::from_millis(50));
        let gsl = sim.node(src).gsl_device().expect("src has a GSL device");
        let rate = sim.node(src).devices[gsl].rate;
        assert_eq!(rate, DataRate::from_kbps(100), "saturated uplink sits at the 1% floor");
        // Past the stop boundary the load vanishes and capacity returns.
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.node(src).devices[gsl].rate, DataRate::from_mbps(10));

        let cfg = SimConfig::default().with_sim_mode(SimMode::Fluid);
        let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
        for i in 0..4 {
            sim.add_fluid_flow(i, src, dst, DataRate::from_mbps(10), 1440, SimTime::from_secs(1));
        }
        sim.run_until(SimTime::from_millis(50));
        let gsl = sim.node(src).gsl_device().expect("src has a GSL device");
        assert_eq!(
            sim.node(src).devices[gsl].rate,
            DataRate::from_mbps(10),
            "pure fluid mode must not throttle packet devices"
        );
    }

    #[test]
    #[should_panic(expected = "sim_mode fluid or hybrid")]
    fn packet_mode_rejects_fluid_flows() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let mut sim = Simulator::new(c.clone(), SimConfig::default(), vec![src, dst]);
        sim.add_fluid_flow(0, src, dst, DataRate::from_kbps(64), 1440, SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "before the run starts")]
    fn late_fluid_install_rejected() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let cfg = SimConfig::default().with_sim_mode(SimMode::Fluid);
        let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
        sim.run_until(SimTime::from_millis(1));
        sim.add_fluid_flow(0, src, dst, DataRate::from_kbps(64), 1440, SimTime::from_secs(1));
    }

    #[test]
    fn slow_links_still_conserve_packets() {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let cfg =
            SimConfig::default().with_link_rate(DataRate::from_kbps(64)).with_queue_packets(2);
        let mut sim = Simulator::new(c.clone(), cfg, vec![src, dst]);
        sim.add_app(
            src,
            100,
            Box::new(PingApp::new(dst, SimDuration::from_millis(1), SimTime::from_millis(200))),
        );
        sim.run_until(SimTime::from_secs(30));
        assert!(sim.stats.queue_drops > 0, "expected queue pressure");
        assert_eq!(sim.stats.injected, sim.stats.delivered + sim.stats.total_drops());
    }

    /// Shared fixture for the resilience tests: a faulted, lossy ping
    /// workload (plus a fluid flow outside packet mode) that exercises the
    /// fault cursor, forwarding swaps, loss RNGs, and the solver.
    fn resilience_fixture(
        c: &Arc<Constellation>,
    ) -> (SimConfig, impl Fn(&SimConfig) -> (Simulator, u32) + '_) {
        use hypatia_fault::{FaultSchedule, FaultSpec, OutageWindow};
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let spec = FaultSpec {
            sat_outages: vec![OutageWindow { target: 12, from_s: 0.5, until_s: 1.5 }],
            ..FaultSpec::default()
        };
        let schedule = Arc::new(FaultSchedule::compile(&spec, c, SimDuration::from_secs(2)));
        let base =
            SimConfig::default().with_faults(schedule).with_gsl_loss(0.1).with_trace_limit(100_000);
        let build = move |cfg: &SimConfig| {
            let mut sim = Simulator::new(c.clone(), cfg.clone(), vec![src, dst]);
            let app = sim.add_app(
                src,
                100,
                Box::new(PingApp::new(dst, SimDuration::from_millis(10), SimTime::from_secs(2))),
            );
            if cfg.sim_mode != SimMode::Packet {
                sim.add_fluid_flow(
                    0,
                    src,
                    dst,
                    DataRate::from_mbps(5),
                    1440,
                    SimTime::from_secs(2),
                );
            }
            (sim, app)
        };
        (base, build)
    }

    fn observe(sim: &Simulator, app: u32) -> (Vec<(SimTime, SimDuration)>, SimStats, usize) {
        let ping: &PingApp = sim.app_as(app).unwrap();
        (ping.rtts().to_vec(), sim.stats.clone(), sim.trace.entries().len())
    }

    /// The checkpoint/restore contract: restore into a freshly rebuilt
    /// simulator and the continuation is bit-identical to never having
    /// stopped — at every shard count × queue kind × mode, through fault
    /// events and forwarding swaps on both sides of the snapshot.
    #[test]
    fn checkpoint_resume_is_bit_identical() {
        use crate::event::QueueKind;
        let c = constellation();
        let (base, build) = resilience_fixture(&c);
        for mode in [SimMode::Packet, SimMode::Hybrid] {
            for shards in [1, 4] {
                for queue in [QueueKind::Heap, QueueKind::Calendar] {
                    let cfg =
                        base.clone().with_sim_mode(mode).with_sim_shards(shards).with_queue(queue);
                    let (mut whole, app_w) = build(&cfg);
                    whole.run_until(SimTime::from_secs(2));
                    let want = observe(&whole, app_w);
                    assert!(want.1.delivered > 0, "workload delivered nothing");

                    let (mut first, _) = build(&cfg);
                    first.run_until(SimTime::from_millis(900));
                    let image = first.checkpoint().expect("checkpoint");
                    drop(first);

                    let (mut resumed, app_r) = build(&cfg);
                    resumed.restore(image).expect("restore");
                    assert_eq!(resumed.now(), SimTime::from_millis(900));
                    resumed.run_until(SimTime::from_secs(2));
                    let got = observe(&resumed, app_r);
                    assert_eq!(
                        want,
                        got,
                        "resume diverged: mode={} shards={shards} queue={}",
                        mode.name(),
                        queue.name()
                    );
                }
            }
        }
    }

    /// A restore must also re-seat the background forwarding pipeline at
    /// the snapshot's step cursor, not step 1.
    #[test]
    fn checkpoint_resume_respawns_the_prefetcher() {
        let c = constellation();
        let (base, build) = resilience_fixture(&c);
        let cfg = base.with_fstate_prefetch(2, 4);
        let (mut whole, app_w) = build(&cfg);
        whole.run_until(SimTime::from_secs(2));
        let want = observe(&whole, app_w);

        let (mut first, _) = build(&cfg);
        first.run_until(SimTime::from_millis(900));
        let image = first.checkpoint().expect("checkpoint");

        let (mut resumed, app_r) = build(&cfg);
        resumed.restore(image).expect("restore");
        resumed.run_until(SimTime::from_secs(2));
        assert_eq!(want, observe(&resumed, app_r));
    }

    /// Round trip through a file, including the atomic write path.
    #[test]
    fn checkpoint_file_round_trip() {
        let c = constellation();
        let (base, build) = resilience_fixture(&c);
        let dir = std::env::temp_dir().join("hypatia_snap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t900.snap");
        let (mut first, _) = build(&base);
        first.run_until(SimTime::from_millis(900));
        first.checkpoint_to(&path).expect("checkpoint_to");
        let image = first.checkpoint().expect("in-memory image");

        let (mut resumed, _) = build(&base);
        resumed.restore_from(&path).expect("restore_from");
        // The file and in-memory continuations start from identical state:
        // re-checkpointing both immediately yields the same bytes.
        let (mut mem, _) = build(&base);
        mem.restore(image).expect("restore");
        assert_eq!(resumed.checkpoint().unwrap(), mem.checkpoint().unwrap());
        std::fs::remove_file(&path).ok();
    }

    /// Snapshots refuse to restore into a differently-configured
    /// simulator: the fingerprint check reports a typed mismatch instead
    /// of silently diverging.
    #[test]
    fn restore_rejects_mismatched_config() {
        let c = constellation();
        let (base, build) = resilience_fixture(&c);
        let (mut first, _) = build(&base);
        first.run_until(SimTime::from_millis(500));
        let image = first.checkpoint().unwrap();
        let (mut other, _) = build(&base.clone().with_sim_shards(4));
        match other.restore(image) {
            Err(CheckpointError::ConfigMismatch { .. }) => {}
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
    }

    /// Checkpointing is refused while installed fluid flows have not been
    /// started yet — the boundary schedule only exists after `run_until`.
    #[test]
    fn checkpoint_rejects_unflushed_fluid_installs() {
        let c = constellation();
        let (base, build) = resilience_fixture(&c);
        let (mut sim, _) = build(&base.with_sim_mode(SimMode::Hybrid));
        match sim.checkpoint() {
            Err(CheckpointError::Unsupported(_)) => {}
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    /// Audit mode re-derives conservation from first principles: a healthy
    /// run (live or resumed, any engine/mode) reports zero violations at
    /// every barrier, including mid-flight ones with packets in queues.
    #[test]
    fn audit_is_clean_on_live_and_resumed_runs() {
        let c = constellation();
        let (base, build) = resilience_fixture(&c);
        for mode in [SimMode::Packet, SimMode::Hybrid] {
            for shards in [1, 4] {
                let cfg = base.clone().with_sim_mode(mode).with_sim_shards(shards);
                let (mut sim, _) = build(&cfg);
                for ms in [300, 900, 2000] {
                    sim.run_until(SimTime::from_millis(ms));
                    let violations = sim.audit();
                    assert!(
                        violations.is_empty(),
                        "mode={} shards={shards} t={ms}ms: {violations:?}",
                        mode.name()
                    );
                }
                // The audit pass itself is non-destructive: the run
                // continues bit-identically after it.
                let audited = observe(&sim, 0);
                let (mut clean, _) = build(&cfg);
                clean.run_until(SimTime::from_secs(2));
                assert_eq!(audited, observe(&clean, 0));
            }
        }
    }
}
