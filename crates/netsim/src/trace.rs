//! Bounded per-packet event tracing.
//!
//! When enabled (`SimConfig::trace_limit > 0`), the simulator records one
//! entry per packet lifecycle event up to the limit — enough to reconstruct
//! the exact hop-by-hop journey of early packets (e.g. to drive a path
//! animation, or to debug a forwarding anomaly) without unbounded memory
//! growth on long runs.

use hypatia_constellation::NodeId;
use hypatia_util::SimTime;

/// What happened to the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Application (or echo) injected the packet at its source node.
    Inject,
    /// The packet arrived at an intermediate or final node.
    Arrive,
    /// Delivered to the destination node.
    Deliver,
    /// Dropped: no route to the destination.
    RoutingDrop,
    /// Dropped: device queue full.
    QueueDrop,
    /// Dropped: lost on the GSL channel.
    ChannelDrop,
    /// Dropped by fault injection: the packet was in flight on (or
    /// forwarded into) a link or node that a scheduled fault took down.
    FaultDrop,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Event time.
    pub t: SimTime,
    /// Node at which the event occurred.
    pub node: NodeId,
    /// The packet's id.
    pub packet_id: u64,
    /// Event kind.
    pub kind: TraceKind,
}

/// A bounded trace buffer.
#[derive(Debug, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    limit: usize,
    truncated: u64,
}

impl Trace {
    /// A trace keeping at most `limit` entries (0 disables tracing).
    pub fn new(limit: usize) -> Self {
        Trace { entries: Vec::new(), limit, truncated: 0 }
    }

    /// Is tracing active at all?
    pub fn enabled(&self) -> bool {
        self.limit > 0
    }

    /// Record an event (no-op once full; counts truncations).
    ///
    /// Tracing is off (`limit == 0`) in every performance-sensitive run, so
    /// the disabled check inlines to a single predictable branch at each
    /// call site and the buffer manipulation stays out of line.
    #[inline(always)]
    pub fn record(&mut self, t: SimTime, node: NodeId, packet_id: u64, kind: TraceKind) {
        if self.limit == 0 {
            return;
        }
        self.record_slow(t, node, packet_id, kind);
    }

    #[cold]
    fn record_slow(&mut self, t: SimTime, node: NodeId, packet_id: u64, kind: TraceKind) {
        if self.entries.len() < self.limit {
            self.entries.push(TraceEntry { t, node, packet_id, kind });
        } else {
            self.truncated += 1;
        }
    }

    /// All recorded entries, in event order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Events not recorded because the buffer was full. Artifact sinks
    /// consult this to warn that an emitted trace is partial rather than
    /// silently presenting a truncated journey as complete.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// The journey of one packet: its entries in order.
    pub fn journey(&self, packet_id: u64) -> Vec<TraceEntry> {
        self.entries.iter().filter(|e| e.packet_id == packet_id).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::new(0);
        assert!(!tr.enabled());
        tr.record(SimTime::ZERO, NodeId(1), 7, TraceKind::Inject);
        assert!(tr.entries().is_empty());
        assert_eq!(tr.truncated(), 0);
    }

    #[test]
    fn bounded_at_limit() {
        let mut tr = Trace::new(3);
        for i in 0..5 {
            tr.record(SimTime::from_nanos(i), NodeId(0), i, TraceKind::Arrive);
        }
        assert_eq!(tr.entries().len(), 3);
        assert_eq!(tr.truncated(), 2);
    }

    #[test]
    fn journey_filters_by_packet() {
        let mut tr = Trace::new(10);
        tr.record(SimTime::from_nanos(1), NodeId(0), 1, TraceKind::Inject);
        tr.record(SimTime::from_nanos(2), NodeId(5), 2, TraceKind::Inject);
        tr.record(SimTime::from_nanos(3), NodeId(1), 1, TraceKind::Arrive);
        tr.record(SimTime::from_nanos(4), NodeId(2), 1, TraceKind::Deliver);
        let j = tr.journey(1);
        assert_eq!(j.len(), 3);
        assert_eq!(j[0].kind, TraceKind::Inject);
        assert_eq!(j[2].kind, TraceKind::Deliver);
    }
}
