//! Bounded per-packet event tracing.
//!
//! When enabled (`SimConfig::trace_limit > 0`), the simulator records one
//! entry per packet lifecycle event up to the limit — enough to reconstruct
//! the exact hop-by-hop journey of early packets (e.g. to drive a path
//! animation, or to debug a forwarding anomaly) without unbounded memory
//! growth on long runs.

use crate::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use hypatia_constellation::NodeId;
use hypatia_util::SimTime;

/// What happened to the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Application (or echo) injected the packet at its source node.
    Inject,
    /// The packet arrived at an intermediate or final node.
    Arrive,
    /// Delivered to the destination node.
    Deliver,
    /// Dropped: no route to the destination.
    RoutingDrop,
    /// Dropped: device queue full.
    QueueDrop,
    /// Dropped: lost on the GSL channel.
    ChannelDrop,
    /// Dropped by fault injection: the packet was in flight on (or
    /// forwarded into) a link or node that a scheduled fault took down.
    FaultDrop,
    /// The coordinator's fluid solver recomputed the max-min rate
    /// allocation (fluid/hybrid modes). Not a packet event: `node` is
    /// always 0 and `packet_id` carries the running re-solve count.
    FluidResolve,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Event time.
    pub t: SimTime,
    /// Node at which the event occurred.
    pub node: NodeId,
    /// The packet's id.
    pub packet_id: u64,
    /// Event kind.
    pub kind: TraceKind,
}

/// A bounded trace buffer.
///
/// Alongside each entry the trace keeps the canonical event key that was
/// current when it was recorded (see [`Trace::set_key`]). Keys never leave
/// the crate: they exist so per-shard traces from the sharded engine can be
/// [merged](Trace::merged) into the exact `(time, key)` order the serial
/// engine produces.
#[derive(Debug, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    /// Canonical key of the event each entry was recorded under (parallel
    /// to `entries`).
    keys: Vec<u64>,
    /// Key stamped on subsequent records.
    current_key: u64,
    limit: usize,
    truncated: u64,
    /// Per-flow sampling interval: [`Trace::record_flow`] keeps only flows
    /// whose flow hash divides this (1 = keep every flow).
    sample_every: u64,
    /// Records skipped because their flow was sampled out.
    sampled_out: u64,
}

impl Trace {
    /// A trace keeping at most `limit` entries (0 disables tracing).
    pub fn new(limit: usize) -> Self {
        Self::with_sampling(limit, 1)
    }

    /// A trace keeping at most `limit` entries, recording only every
    /// `sample_every`-th flow (by flow hash; 1 = every flow).
    pub fn with_sampling(limit: usize, sample_every: u64) -> Self {
        assert!(sample_every >= 1, "sampling interval must be at least 1");
        Trace {
            entries: Vec::new(),
            keys: Vec::new(),
            current_key: 0,
            limit,
            truncated: 0,
            sample_every,
            sampled_out: 0,
        }
    }

    /// Set the canonical event key stamped on subsequent records. The
    /// simulator calls this before dispatching each event; records made
    /// outside an event context keep the last key (or 0).
    pub fn set_key(&mut self, key: u64) {
        self.current_key = key;
    }

    /// Merge per-shard traces into the canonical global order.
    ///
    /// Each input trace's entries are already sorted by `(time, key)` —
    /// a shard pops its queue in that order — so a stable sort of the
    /// concatenation by `(time, key)` reproduces the order a serial run
    /// records (equal `(time, key)` pairs only arise within one event,
    /// which executes on a single shard, so stability preserves their
    /// relative order). The result is truncated to `limit` and counts
    /// every record any shard made beyond the kept set.
    pub fn merged(parts: &[&Trace], limit: usize) -> Trace {
        let mut tagged: Vec<(SimTime, u64, TraceEntry)> = Vec::new();
        let mut total: u64 = 0;
        let mut sampled_out: u64 = 0;
        let mut sample_every: u64 = 1;
        for part in parts {
            total += part.entries.len() as u64 + part.truncated;
            sampled_out += part.sampled_out;
            sample_every = sample_every.max(part.sample_every);
            tagged.extend(part.entries.iter().zip(part.keys.iter()).map(|(e, &k)| (e.t, k, *e)));
        }
        tagged.sort_by_key(|&(t, k, _)| (t, k));
        tagged.truncate(limit);
        let truncated = total - tagged.len() as u64;
        let keys = tagged.iter().map(|&(_, k, _)| k).collect();
        let entries = tagged.into_iter().map(|(_, _, e)| e).collect();
        Trace { entries, keys, current_key: 0, limit, truncated, sample_every, sampled_out }
    }

    /// Is tracing active at all?
    pub fn enabled(&self) -> bool {
        self.limit > 0
    }

    /// Record an event (no-op once full; counts truncations).
    ///
    /// Tracing is off (`limit == 0`) in every performance-sensitive run, so
    /// the disabled check inlines to a single predictable branch at each
    /// call site and the buffer manipulation stays out of line.
    #[inline(always)]
    pub fn record(&mut self, t: SimTime, node: NodeId, packet_id: u64, kind: TraceKind) {
        if self.limit == 0 {
            return;
        }
        self.record_slow(t, node, packet_id, kind);
    }

    /// Record a packet event subject to per-flow sampling: the record is
    /// kept only when the packet's flow hash divides the sampling interval,
    /// so a sampled flow keeps *every* record of *every* one of its packets
    /// (complete journeys) while the rest of the flow population costs
    /// nothing beyond the skip counter.
    ///
    /// The disabled check comes first so performance runs (tracing off) pay
    /// one predictable branch and never touch the sampling counter.
    #[inline(always)]
    pub fn record_flow(
        &mut self,
        t: SimTime,
        node: NodeId,
        packet_id: u64,
        flow_hash: u64,
        kind: TraceKind,
    ) {
        if self.limit == 0 {
            return;
        }
        if self.sample_every > 1 && !flow_hash.is_multiple_of(self.sample_every) {
            self.sampled_out += 1;
            return;
        }
        self.record_slow(t, node, packet_id, kind);
    }

    #[cold]
    fn record_slow(&mut self, t: SimTime, node: NodeId, packet_id: u64, kind: TraceKind) {
        if self.entries.len() < self.limit {
            self.entries.push(TraceEntry { t, node, packet_id, kind });
            self.keys.push(self.current_key);
        } else {
            self.truncated += 1;
        }
    }

    /// All recorded entries, in event order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Events not recorded because the buffer was full. Artifact sinks
    /// consult this to warn that an emitted trace is partial rather than
    /// silently presenting a truncated journey as complete.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Records skipped because per-flow sampling excluded their flow.
    /// Artifact sinks consult this (like [`Trace::truncated`]) to warn
    /// that an emitted trace covers a sampled subset of flows.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// The journey of one packet: its entries in order.
    pub fn journey(&self, packet_id: u64) -> Vec<TraceEntry> {
        self.entries.iter().filter(|e| e.packet_id == packet_id).copied().collect()
    }

    /// Serialize the full trace state (entries, keys, counters, and the
    /// configured limits — stored so restore can cross-check the rebuilt
    /// configuration).
    pub fn save(&self, w: &mut SnapWriter) {
        w.put_usize(self.limit);
        w.put_u64(self.sample_every);
        w.put_u64(self.current_key);
        w.put_u64(self.truncated);
        w.put_u64(self.sampled_out);
        w.put_usize(self.entries.len());
        for (e, &key) in self.entries.iter().zip(self.keys.iter()) {
            w.put_time(e.t);
            w.put_u32(e.node.0);
            w.put_u64(e.packet_id);
            w.put_u8(kind_tag(e.kind));
            w.put_u64(key);
        }
    }

    /// Restore the state captured by [`Trace::save`]. Fails if the saved
    /// limits disagree with this trace's configuration (the snapshot came
    /// from a differently configured run).
    pub fn restore(&mut self, r: &mut SnapReader) -> Result<(), CheckpointError> {
        let limit = r.get_usize()?;
        let sample_every = r.get_u64()?;
        if limit != self.limit || sample_every != self.sample_every {
            return Err(CheckpointError::Malformed(format!(
                "trace config mismatch: snapshot limit={limit}/sample={sample_every}, \
                 rebuilt limit={}/sample={}",
                self.limit, self.sample_every
            )));
        }
        self.current_key = r.get_u64()?;
        self.truncated = r.get_u64()?;
        self.sampled_out = r.get_u64()?;
        let n = r.get_usize()?;
        if n > limit {
            return Err(CheckpointError::Malformed(format!(
                "trace holds {n} entries over its limit {limit}"
            )));
        }
        self.entries.clear();
        self.keys.clear();
        for _ in 0..n {
            let t = r.get_time()?;
            let node = NodeId(r.get_u32()?);
            let packet_id = r.get_u64()?;
            let kind = kind_from_tag(r.get_u8()?)?;
            self.entries.push(TraceEntry { t, node, packet_id, kind });
            self.keys.push(r.get_u64()?);
        }
        Ok(())
    }
}

/// Stable on-disk tag for a [`TraceKind`].
fn kind_tag(kind: TraceKind) -> u8 {
    match kind {
        TraceKind::Inject => 0,
        TraceKind::Arrive => 1,
        TraceKind::Deliver => 2,
        TraceKind::RoutingDrop => 3,
        TraceKind::QueueDrop => 4,
        TraceKind::ChannelDrop => 5,
        TraceKind::FaultDrop => 6,
        TraceKind::FluidResolve => 7,
    }
}

fn kind_from_tag(tag: u8) -> Result<TraceKind, CheckpointError> {
    Ok(match tag {
        0 => TraceKind::Inject,
        1 => TraceKind::Arrive,
        2 => TraceKind::Deliver,
        3 => TraceKind::RoutingDrop,
        4 => TraceKind::QueueDrop,
        5 => TraceKind::ChannelDrop,
        6 => TraceKind::FaultDrop,
        7 => TraceKind::FluidResolve,
        t => return Err(CheckpointError::Malformed(format!("bad trace kind tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::new(0);
        assert!(!tr.enabled());
        tr.record(SimTime::ZERO, NodeId(1), 7, TraceKind::Inject);
        assert!(tr.entries().is_empty());
        assert_eq!(tr.truncated(), 0);
    }

    #[test]
    fn bounded_at_limit() {
        let mut tr = Trace::new(3);
        for i in 0..5 {
            tr.record(SimTime::from_nanos(i), NodeId(0), i, TraceKind::Arrive);
        }
        assert_eq!(tr.entries().len(), 3);
        assert_eq!(tr.truncated(), 2);
    }

    #[test]
    fn merge_reproduces_canonical_order_and_truncation() {
        // Two "shards", each recording in its own (t, key) order.
        let mut a = Trace::new(10);
        a.set_key(5);
        a.record(SimTime::from_nanos(1), NodeId(0), 1, TraceKind::Inject);
        a.set_key(9);
        a.record(SimTime::from_nanos(4), NodeId(0), 1, TraceKind::Arrive);
        let mut b = Trace::new(10);
        b.set_key(2);
        b.record(SimTime::from_nanos(1), NodeId(1), 2, TraceKind::Inject);
        b.set_key(7);
        b.record(SimTime::from_nanos(4), NodeId(1), 2, TraceKind::Arrive);

        let merged = Trace::merged(&[&a, &b], 10);
        let kinds: Vec<(u64, TraceKind)> =
            merged.entries().iter().map(|e| (e.packet_id, e.kind)).collect();
        // t=1: key 2 before key 5; t=4: key 7 before key 9.
        assert_eq!(
            kinds,
            vec![
                (2, TraceKind::Inject),
                (1, TraceKind::Inject),
                (2, TraceKind::Arrive),
                (1, TraceKind::Arrive),
            ]
        );
        assert_eq!(merged.truncated(), 0);

        // Truncation: keep 3 of 4, plus a pre-existing truncation on `a`.
        let mut a2 = Trace::new(1);
        a2.record(SimTime::from_nanos(1), NodeId(0), 1, TraceKind::Inject);
        a2.record(SimTime::from_nanos(2), NodeId(0), 1, TraceKind::Arrive);
        assert_eq!(a2.truncated(), 1);
        let merged = Trace::merged(&[&a2, &b], 2);
        assert_eq!(merged.entries().len(), 2);
        assert_eq!(merged.truncated(), 2, "1 dropped in merge + 1 pre-truncated");
    }

    #[test]
    fn same_event_records_stay_in_order_across_merge() {
        // Two records under one (t, key) — e.g. Deliver then echo Inject —
        // must keep their relative order through the merge.
        let mut a = Trace::new(10);
        a.set_key(42);
        a.record(SimTime::from_nanos(9), NodeId(3), 1, TraceKind::Deliver);
        a.record(SimTime::from_nanos(9), NodeId(3), 2, TraceKind::Inject);
        let merged = Trace::merged(&[&a], 10);
        assert_eq!(merged.entries()[0].kind, TraceKind::Deliver);
        assert_eq!(merged.entries()[1].kind, TraceKind::Inject);
    }

    #[test]
    fn sampling_keeps_selected_flows_records_exactly() {
        // Flows are selected by hash divisibility: with K = 4, flows whose
        // hash ≡ 0 (mod 4) keep every record; the rest keep none.
        let every = 4;
        let mut sampled = Trace::with_sampling(1000, every);
        let mut full = Trace::new(1000);
        for flow in 0..16u64 {
            let hash = flow * 3 + 1; // arbitrary, covers both residues
            for hop in 0..5u64 {
                let kind = match hop {
                    0 => TraceKind::Inject,
                    4 => TraceKind::Deliver,
                    _ => TraceKind::Arrive,
                };
                sampled.record_flow(SimTime::from_nanos(hop), NodeId(hop as u32), flow, hash, kind);
                full.record_flow(SimTime::from_nanos(hop), NodeId(hop as u32), flow, hash, kind);
            }
        }
        let mut kept = 0;
        for flow in 0..16u64 {
            let hash = flow * 3 + 1;
            if hash % every == 0 {
                kept += 1;
                // A selected flow's journey is byte-identical to the
                // unsampled trace — nothing is thinned within the flow.
                assert_eq!(sampled.journey(flow), full.journey(flow), "flow {flow}");
                assert_eq!(sampled.journey(flow).len(), 5);
            } else {
                assert!(sampled.journey(flow).is_empty(), "flow {flow} leaked records");
            }
        }
        assert!(kept > 0, "test covers no selected flow");
        assert_eq!(sampled.sampled_out() + sampled.entries().len() as u64, 16 * 5);
        assert_eq!(sampled.truncated(), 0, "sampling is not truncation");
    }

    #[test]
    fn sampling_interval_one_records_everything() {
        let mut tr = Trace::with_sampling(10, 1);
        tr.record_flow(SimTime::ZERO, NodeId(0), 1, 12345, TraceKind::Inject);
        assert_eq!(tr.entries().len(), 1);
        assert_eq!(tr.sampled_out(), 0);
    }

    #[test]
    fn merge_sums_sampled_out() {
        let mut a = Trace::with_sampling(10, 2);
        a.record_flow(SimTime::from_nanos(1), NodeId(0), 1, 3, TraceKind::Inject); // out
        a.record_flow(SimTime::from_nanos(2), NodeId(0), 2, 4, TraceKind::Inject); // kept
        let mut b = Trace::with_sampling(10, 2);
        b.record_flow(SimTime::from_nanos(3), NodeId(1), 3, 5, TraceKind::Inject); // out
        let merged = Trace::merged(&[&a, &b], 10);
        assert_eq!(merged.entries().len(), 1);
        assert_eq!(merged.sampled_out(), 2);
    }

    #[test]
    fn save_restore_round_trips_entries_keys_and_counters() {
        use crate::checkpoint::{SnapReader, SnapWriter};
        let mut tr = Trace::with_sampling(2, 2);
        tr.set_key(11);
        tr.record_flow(SimTime::from_nanos(1), NodeId(3), 1, 4, TraceKind::Inject);
        tr.record_flow(SimTime::from_nanos(2), NodeId(4), 2, 3, TraceKind::Inject); // sampled out
        tr.set_key(13);
        tr.record(SimTime::from_nanos(3), NodeId(5), 1, TraceKind::Deliver);
        tr.record(SimTime::from_nanos(4), NodeId(6), 1, TraceKind::Arrive); // truncated
        let mut w = SnapWriter::new(1);
        tr.save(&mut w);
        let mut back = Trace::with_sampling(2, 2);
        let mut r = SnapReader::from_bytes(w.finish(), 1).unwrap();
        back.restore(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.entries(), tr.entries());
        assert_eq!(back.keys, tr.keys);
        assert_eq!(back.truncated(), 1);
        assert_eq!(back.sampled_out(), 1);
        assert_eq!(back.current_key, 13);

        // A differently configured trace rejects the snapshot.
        let mut w = SnapWriter::new(1);
        tr.save(&mut w);
        let mut wrong = Trace::with_sampling(5, 2);
        let mut r = SnapReader::from_bytes(w.finish(), 1).unwrap();
        assert!(wrong.restore(&mut r).is_err());
    }

    #[test]
    fn journey_filters_by_packet() {
        let mut tr = Trace::new(10);
        tr.record(SimTime::from_nanos(1), NodeId(0), 1, TraceKind::Inject);
        tr.record(SimTime::from_nanos(2), NodeId(5), 2, TraceKind::Inject);
        tr.record(SimTime::from_nanos(3), NodeId(1), 1, TraceKind::Arrive);
        tr.record(SimTime::from_nanos(4), NodeId(2), 1, TraceKind::Deliver);
        let j = tr.journey(1);
        assert_eq!(j.len(), 3);
        assert_eq!(j[0].kind, TraceKind::Inject);
        assert_eq!(j[2].kind, TraceKind::Deliver);
    }
}
