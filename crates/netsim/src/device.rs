//! Network devices: a drop-tail queue in front of a fixed-rate transmitter.
//!
//! Two kinds mirror the paper's model: an **ISL device** is hard-wired to
//! one peer satellite; a **GSL device** serves *all* of a node's
//! ground↔satellite traffic through one queue (the paper's default of one
//! GSL network device per node). Every queued packet records the next hop
//! chosen when it was enqueued, so forwarding-state changes never reroute
//! queued packets (lossless handoff semantics).

use crate::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use crate::packet::Packet;
use hypatia_constellation::NodeId;
use hypatia_util::{DataRate, SimDuration, SimTime};
use std::collections::VecDeque;

/// What the device is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// Inter-satellite link with a fixed peer.
    Isl {
        /// The peer satellite node.
        peer: NodeId,
    },
    /// Ground–satellite device (peer chosen per packet).
    Gsl,
}

/// A packet sitting in a device queue with its resolved next hop.
#[derive(Debug, Clone, Copy)]
pub struct QueuedPacket {
    /// The packet.
    pub packet: Packet,
    /// The next hop assigned at enqueue time.
    pub next_hop: NodeId,
}

/// Per-device counters.
#[derive(Debug, Clone, Default)]
pub struct DeviceStats {
    /// Packets ever offered to the device (accepted, queued, or dropped).
    /// With the other counters this closes the device's conservation
    /// equation: `packets_in == packets_tx + drops + queued + in-service`.
    pub packets_in: u64,
    /// Bytes ever offered to the device.
    pub bytes_in: u64,
    /// Packets fully transmitted.
    pub packets_tx: u64,
    /// Bytes fully transmitted.
    pub bytes_tx: u64,
    /// Packets dropped because the queue was full.
    pub drops: u64,
    /// Cumulative busy (transmitting) time.
    pub busy: SimDuration,
    /// Busy time per utilization bucket, when tracking is enabled.
    pub busy_per_bucket: Vec<SimDuration>,
}

/// A transmit device.
#[derive(Debug)]
pub struct Device {
    /// ISL or GSL.
    pub kind: DeviceKind,
    /// Line rate.
    pub rate: DataRate,
    /// Max queued packets (excluding the one in transmission).
    pub queue_capacity: usize,
    queue: VecDeque<QueuedPacket>,
    /// The packet currently being serialized, if any.
    in_flight: Option<QueuedPacket>,
    /// Counters.
    pub stats: DeviceStats,
    /// Utilization bucket width (None = no tracking).
    bucket: Option<SimDuration>,
}

impl Device {
    /// New idle device.
    pub fn new(
        kind: DeviceKind,
        rate: DataRate,
        queue_capacity: usize,
        bucket: Option<SimDuration>,
    ) -> Self {
        Device {
            kind,
            rate,
            queue_capacity,
            queue: VecDeque::new(),
            in_flight: None,
            stats: DeviceStats::default(),
            bucket,
        }
    }

    /// Packets waiting (not counting the one in transmission).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True when the transmitter is serializing a packet.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Offer a packet. Returns:
    /// * `Ok(Some(duration))` — transmitter was idle, transmission started;
    ///   `TxComplete` must be scheduled after `duration`;
    /// * `Ok(None)` — queued behind others;
    /// * `Err(packet)` — dropped, queue full.
    #[inline]
    pub fn enqueue(
        &mut self,
        packet: Packet,
        next_hop: NodeId,
        now: SimTime,
    ) -> Result<Option<SimDuration>, Packet> {
        self.stats.packets_in += 1;
        self.stats.bytes_in += packet.size_bytes as u64;
        let qp = QueuedPacket { packet, next_hop };
        if self.in_flight.is_none() {
            debug_assert!(self.queue.is_empty(), "idle transmitter with queued packets");
            Ok(Some(self.start_tx(qp, now)))
        } else if self.queue.len() < self.queue_capacity {
            self.queue.push_back(qp);
            Ok(None)
        } else {
            self.stats.drops += 1;
            Err(packet)
        }
    }

    /// Complete the in-flight transmission. Returns the transmitted packet
    /// (with its next hop) and, if more packets wait, the serialization
    /// delay of the next one (whose `TxComplete` the caller must schedule).
    #[inline]
    pub fn tx_complete(&mut self, now: SimTime) -> (QueuedPacket, Option<SimDuration>) {
        let done = self.in_flight.take().expect("tx_complete on idle device");
        self.stats.packets_tx += 1;
        self.stats.bytes_tx += done.packet.size_bytes as u64;
        let next = self.queue.pop_front().map(|qp| self.start_tx(qp, now));
        (done, next)
    }

    #[inline]
    fn start_tx(&mut self, qp: QueuedPacket, now: SimTime) -> SimDuration {
        let d = self.rate.serialization_delay(qp.packet.size());
        self.record_busy(now, d);
        self.in_flight = Some(qp);
        d
    }

    /// Account `d` of busy time starting at `now` into the bucket series.
    /// Inlines to one add when utilization tracking is off.
    #[inline]
    fn record_busy(&mut self, now: SimTime, d: SimDuration) {
        self.stats.busy += d;
        let Some(bucket) = self.bucket else { return };
        // Spread the busy interval across buckets it overlaps.
        let mut start = now;
        let mut remaining = d;
        while !remaining.is_zero() {
            let idx = (start.nanos() / bucket.nanos()) as usize;
            if self.stats.busy_per_bucket.len() <= idx {
                self.stats.busy_per_bucket.resize(idx + 1, SimDuration::ZERO);
            }
            let bucket_end = SimTime::from_nanos((idx as u64 + 1) * bucket.nanos());
            let in_this = remaining.min(bucket_end.since(start));
            self.stats.busy_per_bucket[idx] += in_this;
            remaining -= in_this;
            start += in_this;
        }
    }

    /// Utilization (0..=1) of bucket `idx`, if tracked.
    pub fn utilization(&self, idx: usize) -> Option<f64> {
        let bucket = self.bucket?;
        let busy = self.stats.busy_per_bucket.get(idx).copied().unwrap_or(SimDuration::ZERO);
        Some(busy.secs_f64() / bucket.secs_f64())
    }

    /// Packets held by the device right now: queued plus in service.
    /// The audit counts these as in-flight.
    pub fn occupancy(&self) -> u64 {
        self.queue.len() as u64 + self.in_flight.is_some() as u64
    }

    /// Serialize the device's mutable state: the (possibly fluid-adjusted)
    /// rate, the queue, the in-service packet, and the counters. The
    /// immutable skeleton (kind, capacity, bucket width) is rebuilt from
    /// config at restore time and is not stored.
    pub fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.rate.bps());
        w.put_usize(self.queue.len());
        for qp in &self.queue {
            w.put_packet(&qp.packet);
            w.put_u32(qp.next_hop.0);
        }
        w.put_bool(self.in_flight.is_some());
        if let Some(qp) = &self.in_flight {
            w.put_packet(&qp.packet);
            w.put_u32(qp.next_hop.0);
        }
        w.put_u64(self.stats.packets_in);
        w.put_u64(self.stats.bytes_in);
        w.put_u64(self.stats.packets_tx);
        w.put_u64(self.stats.bytes_tx);
        w.put_u64(self.stats.drops);
        w.put_dur(self.stats.busy);
        w.put_usize(self.stats.busy_per_bucket.len());
        for d in &self.stats.busy_per_bucket {
            w.put_dur(*d);
        }
    }

    /// Restore the state captured by [`Device::save`].
    pub fn restore(&mut self, r: &mut SnapReader) -> Result<(), CheckpointError> {
        self.rate = DataRate::from_bps(r.get_u64()?);
        let qlen = r.get_usize()?;
        if qlen > self.queue_capacity {
            return Err(CheckpointError::Malformed(format!(
                "device queue of {qlen} exceeds capacity {}",
                self.queue_capacity
            )));
        }
        self.queue.clear();
        for _ in 0..qlen {
            let packet = r.get_packet()?;
            let next_hop = NodeId(r.get_u32()?);
            self.queue.push_back(QueuedPacket { packet, next_hop });
        }
        self.in_flight = if r.get_bool()? {
            let packet = r.get_packet()?;
            let next_hop = NodeId(r.get_u32()?);
            Some(QueuedPacket { packet, next_hop })
        } else {
            None
        };
        self.stats.packets_in = r.get_u64()?;
        self.stats.bytes_in = r.get_u64()?;
        self.stats.packets_tx = r.get_u64()?;
        self.stats.bytes_tx = r.get_u64()?;
        self.stats.drops = r.get_u64()?;
        self.stats.busy = r.get_dur()?;
        let buckets = r.get_usize()?;
        self.stats.busy_per_bucket = (0..buckets).map(|_| r.get_dur()).collect::<Result<_, _>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, Payload};

    fn pkt(id: u64, size: u32) -> Packet {
        Packet {
            id,
            src: NodeId(0),
            dst: NodeId(1),
            src_port: 1,
            dst_port: 2,
            size_bytes: size,
            payload: Payload::Ping { seq: id },
            injected_at: SimTime::ZERO,
            hops: 0,
            flow_hash: 0,
        }
    }

    fn dev(cap: usize) -> Device {
        Device::new(DeviceKind::Gsl, DataRate::from_mbps(10), cap, None)
    }

    #[test]
    fn idle_device_transmits_immediately() {
        let mut d = dev(4);
        let dur = d.enqueue(pkt(1, 1500), NodeId(9), SimTime::ZERO).unwrap();
        // 1500 B at 10 Mbps = 1.2 ms.
        assert_eq!(dur, Some(SimDuration::from_micros(1200)));
        assert!(d.is_busy());
        assert_eq!(d.queue_len(), 0);
    }

    #[test]
    fn busy_device_queues_then_chains() {
        let mut d = dev(4);
        let t0 = SimTime::ZERO;
        assert!(d.enqueue(pkt(1, 1500), NodeId(9), t0).unwrap().is_some());
        assert_eq!(d.enqueue(pkt(2, 750), NodeId(9), t0).unwrap(), None);
        assert_eq!(d.queue_len(), 1);

        let t1 = SimTime::from_micros(1200);
        let (done, next) = d.tx_complete(t1);
        assert_eq!(done.packet.id, 1);
        // Next packet (750 B) starts immediately: 0.6 ms.
        assert_eq!(next, Some(SimDuration::from_micros(600)));
        assert_eq!(d.queue_len(), 0);
        assert!(d.is_busy());
    }

    #[test]
    fn queue_overflow_drops() {
        let mut d = dev(2);
        let t = SimTime::ZERO;
        assert!(d.enqueue(pkt(1, 100), NodeId(9), t).is_ok()); // in flight
        assert!(d.enqueue(pkt(2, 100), NodeId(9), t).is_ok()); // queued
        assert!(d.enqueue(pkt(3, 100), NodeId(9), t).is_ok()); // queued
        let dropped = d.enqueue(pkt(4, 100), NodeId(9), t).unwrap_err();
        assert_eq!(dropped.id, 4);
        assert_eq!(d.stats.drops, 1);
    }

    #[test]
    fn stats_count_transmissions() {
        let mut d = dev(4);
        d.enqueue(pkt(1, 1000), NodeId(9), SimTime::ZERO).unwrap();
        let (_, next) = d.tx_complete(SimTime::from_micros(800));
        assert!(next.is_none());
        assert_eq!(d.stats.packets_tx, 1);
        assert_eq!(d.stats.bytes_tx, 1000);
        assert_eq!(d.stats.busy, SimDuration::from_micros(800));
    }

    #[test]
    fn next_hop_preserved_through_queue() {
        let mut d = dev(4);
        d.enqueue(pkt(1, 100), NodeId(7), SimTime::ZERO).unwrap();
        d.enqueue(pkt(2, 100), NodeId(8), SimTime::ZERO).unwrap();
        let (first, _) = d.tx_complete(SimTime::from_micros(80));
        assert_eq!(first.next_hop, NodeId(7));
        let (second, _) = d.tx_complete(SimTime::from_micros(160));
        assert_eq!(second.next_hop, NodeId(8));
    }

    #[test]
    fn utilization_buckets_split_across_boundaries() {
        let mut d = Device::new(
            DeviceKind::Gsl,
            DataRate::from_kbps(8), // 1 B/ms: sizes map to ms directly
            10,
            Some(SimDuration::from_millis(10)),
        );
        // 15 B at 8 kbps = 15 ms, starting at t = 5 ms: 5 ms in bucket 0,
        // 10 ms in bucket 1.
        d.enqueue(pkt(1, 15), NodeId(9), SimTime::from_millis(5)).unwrap();
        assert!((d.utilization(0).unwrap() - 0.5).abs() < 1e-9);
        assert!((d.utilization(1).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(d.utilization(2).unwrap(), 0.0);
    }

    #[test]
    #[should_panic]
    fn tx_complete_on_idle_panics() {
        dev(1).tx_complete(SimTime::ZERO);
    }

    #[test]
    fn counts_offered_packets_even_when_dropped() {
        let mut d = dev(1);
        let t = SimTime::ZERO;
        assert!(d.enqueue(pkt(1, 100), NodeId(9), t).is_ok()); // in flight
        assert!(d.enqueue(pkt(2, 200), NodeId(9), t).is_ok()); // queued
        assert!(d.enqueue(pkt(3, 300), NodeId(9), t).is_err()); // dropped
        assert_eq!(d.stats.packets_in, 3);
        assert_eq!(d.stats.bytes_in, 600);
        assert_eq!(d.occupancy(), 2);
        // Conservation holds mid-flight.
        assert_eq!(d.stats.packets_in, d.stats.packets_tx + d.stats.drops + d.occupancy());
    }

    #[test]
    fn save_restore_round_trips_mutable_state() {
        let mut d = Device::new(
            DeviceKind::Isl { peer: NodeId(5) },
            DataRate::from_mbps(10),
            4,
            Some(SimDuration::from_millis(10)),
        );
        d.enqueue(pkt(1, 1500), NodeId(9), SimTime::from_millis(5)).unwrap();
        d.enqueue(pkt(2, 750), NodeId(8), SimTime::from_millis(5)).unwrap();
        d.rate = DataRate::from_mbps(7); // a fluid residual adjustment
        let mut w = crate::checkpoint::SnapWriter::new(1);
        d.save(&mut w);
        let mut fresh = Device::new(
            DeviceKind::Isl { peer: NodeId(5) },
            DataRate::from_mbps(10),
            4,
            Some(SimDuration::from_millis(10)),
        );
        let mut r = crate::checkpoint::SnapReader::from_bytes(w.finish(), 1).unwrap();
        fresh.restore(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(fresh.rate, DataRate::from_mbps(7));
        assert_eq!(fresh.queue_len(), 1);
        assert!(fresh.is_busy());
        assert_eq!(fresh.stats.packets_in, 2);
        assert_eq!(fresh.stats.busy, d.stats.busy);
        assert_eq!(fresh.stats.busy_per_bucket, d.stats.busy_per_bucket);
        // The restored device continues exactly like the original.
        let (done, next) = fresh.tx_complete(SimTime::from_micros(6200));
        assert_eq!(done.packet.id, 1);
        assert_eq!(done.next_hop, NodeId(9));
        assert!(next.is_some());
    }

    #[test]
    fn restore_rejects_overlong_queue() {
        let mut big = dev(4);
        for id in 0..4 {
            big.enqueue(pkt(id, 100), NodeId(9), SimTime::ZERO).unwrap();
        }
        let mut w = crate::checkpoint::SnapWriter::new(1);
        big.save(&mut w);
        let mut small = dev(1); // capacity 1 cannot hold the 3 queued packets
        let mut r = crate::checkpoint::SnapReader::from_bytes(w.finish(), 1).unwrap();
        assert!(small.restore(&mut r).is_err());
    }
}
