//! Network devices: a drop-tail queue in front of a fixed-rate transmitter.
//!
//! Two kinds mirror the paper's model: an **ISL device** is hard-wired to
//! one peer satellite; a **GSL device** serves *all* of a node's
//! ground↔satellite traffic through one queue (the paper's default of one
//! GSL network device per node). Every queued packet records the next hop
//! chosen when it was enqueued, so forwarding-state changes never reroute
//! queued packets (lossless handoff semantics).

use crate::packet::Packet;
use hypatia_constellation::NodeId;
use hypatia_util::{DataRate, SimDuration, SimTime};
use std::collections::VecDeque;

/// What the device is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// Inter-satellite link with a fixed peer.
    Isl {
        /// The peer satellite node.
        peer: NodeId,
    },
    /// Ground–satellite device (peer chosen per packet).
    Gsl,
}

/// A packet sitting in a device queue with its resolved next hop.
#[derive(Debug, Clone, Copy)]
pub struct QueuedPacket {
    /// The packet.
    pub packet: Packet,
    /// The next hop assigned at enqueue time.
    pub next_hop: NodeId,
}

/// Per-device counters.
#[derive(Debug, Clone, Default)]
pub struct DeviceStats {
    /// Packets fully transmitted.
    pub packets_tx: u64,
    /// Bytes fully transmitted.
    pub bytes_tx: u64,
    /// Packets dropped because the queue was full.
    pub drops: u64,
    /// Cumulative busy (transmitting) time.
    pub busy: SimDuration,
    /// Busy time per utilization bucket, when tracking is enabled.
    pub busy_per_bucket: Vec<SimDuration>,
}

/// A transmit device.
#[derive(Debug)]
pub struct Device {
    /// ISL or GSL.
    pub kind: DeviceKind,
    /// Line rate.
    pub rate: DataRate,
    /// Max queued packets (excluding the one in transmission).
    pub queue_capacity: usize,
    queue: VecDeque<QueuedPacket>,
    /// The packet currently being serialized, if any.
    in_flight: Option<QueuedPacket>,
    /// Counters.
    pub stats: DeviceStats,
    /// Utilization bucket width (None = no tracking).
    bucket: Option<SimDuration>,
}

impl Device {
    /// New idle device.
    pub fn new(
        kind: DeviceKind,
        rate: DataRate,
        queue_capacity: usize,
        bucket: Option<SimDuration>,
    ) -> Self {
        Device {
            kind,
            rate,
            queue_capacity,
            queue: VecDeque::new(),
            in_flight: None,
            stats: DeviceStats::default(),
            bucket,
        }
    }

    /// Packets waiting (not counting the one in transmission).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True when the transmitter is serializing a packet.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Offer a packet. Returns:
    /// * `Ok(Some(duration))` — transmitter was idle, transmission started;
    ///   `TxComplete` must be scheduled after `duration`;
    /// * `Ok(None)` — queued behind others;
    /// * `Err(packet)` — dropped, queue full.
    #[inline]
    pub fn enqueue(
        &mut self,
        packet: Packet,
        next_hop: NodeId,
        now: SimTime,
    ) -> Result<Option<SimDuration>, Packet> {
        let qp = QueuedPacket { packet, next_hop };
        if self.in_flight.is_none() {
            debug_assert!(self.queue.is_empty(), "idle transmitter with queued packets");
            Ok(Some(self.start_tx(qp, now)))
        } else if self.queue.len() < self.queue_capacity {
            self.queue.push_back(qp);
            Ok(None)
        } else {
            self.stats.drops += 1;
            Err(packet)
        }
    }

    /// Complete the in-flight transmission. Returns the transmitted packet
    /// (with its next hop) and, if more packets wait, the serialization
    /// delay of the next one (whose `TxComplete` the caller must schedule).
    #[inline]
    pub fn tx_complete(&mut self, now: SimTime) -> (QueuedPacket, Option<SimDuration>) {
        let done = self.in_flight.take().expect("tx_complete on idle device");
        self.stats.packets_tx += 1;
        self.stats.bytes_tx += done.packet.size_bytes as u64;
        let next = self.queue.pop_front().map(|qp| self.start_tx(qp, now));
        (done, next)
    }

    #[inline]
    fn start_tx(&mut self, qp: QueuedPacket, now: SimTime) -> SimDuration {
        let d = self.rate.serialization_delay(qp.packet.size());
        self.record_busy(now, d);
        self.in_flight = Some(qp);
        d
    }

    /// Account `d` of busy time starting at `now` into the bucket series.
    /// Inlines to one add when utilization tracking is off.
    #[inline]
    fn record_busy(&mut self, now: SimTime, d: SimDuration) {
        self.stats.busy += d;
        let Some(bucket) = self.bucket else { return };
        // Spread the busy interval across buckets it overlaps.
        let mut start = now;
        let mut remaining = d;
        while !remaining.is_zero() {
            let idx = (start.nanos() / bucket.nanos()) as usize;
            if self.stats.busy_per_bucket.len() <= idx {
                self.stats.busy_per_bucket.resize(idx + 1, SimDuration::ZERO);
            }
            let bucket_end = SimTime::from_nanos((idx as u64 + 1) * bucket.nanos());
            let in_this = remaining.min(bucket_end.since(start));
            self.stats.busy_per_bucket[idx] += in_this;
            remaining -= in_this;
            start += in_this;
        }
    }

    /// Utilization (0..=1) of bucket `idx`, if tracked.
    pub fn utilization(&self, idx: usize) -> Option<f64> {
        let bucket = self.bucket?;
        let busy = self.stats.busy_per_bucket.get(idx).copied().unwrap_or(SimDuration::ZERO);
        Some(busy.secs_f64() / bucket.secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, Payload};

    fn pkt(id: u64, size: u32) -> Packet {
        Packet {
            id,
            src: NodeId(0),
            dst: NodeId(1),
            src_port: 1,
            dst_port: 2,
            size_bytes: size,
            payload: Payload::Ping { seq: id },
            injected_at: SimTime::ZERO,
            hops: 0,
            flow_hash: 0,
        }
    }

    fn dev(cap: usize) -> Device {
        Device::new(DeviceKind::Gsl, DataRate::from_mbps(10), cap, None)
    }

    #[test]
    fn idle_device_transmits_immediately() {
        let mut d = dev(4);
        let dur = d.enqueue(pkt(1, 1500), NodeId(9), SimTime::ZERO).unwrap();
        // 1500 B at 10 Mbps = 1.2 ms.
        assert_eq!(dur, Some(SimDuration::from_micros(1200)));
        assert!(d.is_busy());
        assert_eq!(d.queue_len(), 0);
    }

    #[test]
    fn busy_device_queues_then_chains() {
        let mut d = dev(4);
        let t0 = SimTime::ZERO;
        assert!(d.enqueue(pkt(1, 1500), NodeId(9), t0).unwrap().is_some());
        assert_eq!(d.enqueue(pkt(2, 750), NodeId(9), t0).unwrap(), None);
        assert_eq!(d.queue_len(), 1);

        let t1 = SimTime::from_micros(1200);
        let (done, next) = d.tx_complete(t1);
        assert_eq!(done.packet.id, 1);
        // Next packet (750 B) starts immediately: 0.6 ms.
        assert_eq!(next, Some(SimDuration::from_micros(600)));
        assert_eq!(d.queue_len(), 0);
        assert!(d.is_busy());
    }

    #[test]
    fn queue_overflow_drops() {
        let mut d = dev(2);
        let t = SimTime::ZERO;
        assert!(d.enqueue(pkt(1, 100), NodeId(9), t).is_ok()); // in flight
        assert!(d.enqueue(pkt(2, 100), NodeId(9), t).is_ok()); // queued
        assert!(d.enqueue(pkt(3, 100), NodeId(9), t).is_ok()); // queued
        let dropped = d.enqueue(pkt(4, 100), NodeId(9), t).unwrap_err();
        assert_eq!(dropped.id, 4);
        assert_eq!(d.stats.drops, 1);
    }

    #[test]
    fn stats_count_transmissions() {
        let mut d = dev(4);
        d.enqueue(pkt(1, 1000), NodeId(9), SimTime::ZERO).unwrap();
        let (_, next) = d.tx_complete(SimTime::from_micros(800));
        assert!(next.is_none());
        assert_eq!(d.stats.packets_tx, 1);
        assert_eq!(d.stats.bytes_tx, 1000);
        assert_eq!(d.stats.busy, SimDuration::from_micros(800));
    }

    #[test]
    fn next_hop_preserved_through_queue() {
        let mut d = dev(4);
        d.enqueue(pkt(1, 100), NodeId(7), SimTime::ZERO).unwrap();
        d.enqueue(pkt(2, 100), NodeId(8), SimTime::ZERO).unwrap();
        let (first, _) = d.tx_complete(SimTime::from_micros(80));
        assert_eq!(first.next_hop, NodeId(7));
        let (second, _) = d.tx_complete(SimTime::from_micros(160));
        assert_eq!(second.next_hop, NodeId(8));
    }

    #[test]
    fn utilization_buckets_split_across_boundaries() {
        let mut d = Device::new(
            DeviceKind::Gsl,
            DataRate::from_kbps(8), // 1 B/ms: sizes map to ms directly
            10,
            Some(SimDuration::from_millis(10)),
        );
        // 15 B at 8 kbps = 15 ms, starting at t = 5 ms: 5 ms in bucket 0,
        // 10 ms in bucket 1.
        d.enqueue(pkt(1, 15), NodeId(9), SimTime::from_millis(5)).unwrap();
        assert!((d.utilization(0).unwrap() - 0.5).abs() < 1e-9);
        assert!((d.utilization(1).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(d.utilization(2).unwrap(), 0.0);
    }

    #[test]
    #[should_panic]
    fn tx_complete_on_idle_panics() {
        dev(1).tx_complete(SimTime::ZERO);
    }
}
