//! Nodes: device sets and the port demux.
//!
//! A satellite owns one device per ISL (hard-wired peer) plus one GSL
//! device; a ground station owns just the GSL device. Forwarding picks the
//! ISL device when the next hop is an ISL peer, the GSL device otherwise.

use crate::device::{Device, DeviceKind};
use hypatia_constellation::NodeId;
use std::collections::HashMap;

/// A node in the packet simulator.
#[derive(Debug)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// All devices owned by the node.
    pub devices: Vec<Device>,
    isl_device_of: HashMap<NodeId, usize>,
    gsl_device: Option<usize>,
    port_apps: HashMap<u16, u32>,
}

impl Node {
    /// A node with no devices yet.
    pub fn new(id: NodeId) -> Self {
        Node {
            id,
            devices: Vec::new(),
            isl_device_of: HashMap::new(),
            gsl_device: None,
            port_apps: HashMap::new(),
        }
    }

    /// Attach a device; registers it in the peer/GSL lookup.
    pub fn add_device(&mut self, device: Device) -> usize {
        let idx = self.devices.len();
        match device.kind {
            DeviceKind::Isl { peer } => {
                let prev = self.isl_device_of.insert(peer, idx);
                assert!(prev.is_none(), "duplicate ISL device towards {peer}");
            }
            DeviceKind::Gsl => {
                assert!(self.gsl_device.is_none(), "node already has a GSL device");
                self.gsl_device = Some(idx);
            }
        }
        self.devices.push(device);
        idx
    }

    /// The device used to reach `next_hop`: the matching ISL device when one
    /// exists, else the GSL device.
    pub fn device_for(&self, next_hop: NodeId) -> Option<usize> {
        self.isl_device_of.get(&next_hop).copied().or(self.gsl_device)
    }

    /// The GSL device index, if the node has one.
    pub fn gsl_device(&self) -> Option<usize> {
        self.gsl_device
    }

    /// ISL peers of this node.
    pub fn isl_peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.isl_device_of.keys().copied()
    }

    /// Bind application `app` to `port`. Panics on double-bind.
    pub fn bind_port(&mut self, port: u16, app: u32) {
        let prev = self.port_apps.insert(port, app);
        assert!(prev.is_none(), "port {port} already bound on {}", self.id);
    }

    /// The application bound to `port`.
    pub fn app_on_port(&self, port: u16) -> Option<u32> {
        self.port_apps.get(&port).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_util::DataRate;

    fn isl(peer: u32) -> Device {
        Device::new(DeviceKind::Isl { peer: NodeId(peer) }, DataRate::from_mbps(10), 100, None)
    }
    fn gsl() -> Device {
        Device::new(DeviceKind::Gsl, DataRate::from_mbps(10), 100, None)
    }

    #[test]
    fn device_selection_prefers_isl() {
        let mut n = Node::new(NodeId(0));
        let i1 = n.add_device(isl(1));
        let i2 = n.add_device(isl(2));
        let g = n.add_device(gsl());
        assert_eq!(n.device_for(NodeId(1)), Some(i1));
        assert_eq!(n.device_for(NodeId(2)), Some(i2));
        // Non-peer → GSL fallback.
        assert_eq!(n.device_for(NodeId(99)), Some(g));
        assert_eq!(n.gsl_device(), Some(g));
    }

    #[test]
    fn no_gsl_no_fallback() {
        let mut n = Node::new(NodeId(0));
        n.add_device(isl(1));
        assert_eq!(n.device_for(NodeId(5)), None);
    }

    #[test]
    fn port_binding() {
        let mut n = Node::new(NodeId(3));
        n.bind_port(80, 7);
        assert_eq!(n.app_on_port(80), Some(7));
        assert_eq!(n.app_on_port(81), None);
    }

    #[test]
    #[should_panic]
    fn double_port_bind_panics() {
        let mut n = Node::new(NodeId(3));
        n.bind_port(80, 1);
        n.bind_port(80, 2);
    }

    #[test]
    #[should_panic]
    fn second_gsl_panics() {
        let mut n = Node::new(NodeId(0));
        n.add_device(gsl());
        n.add_device(gsl());
    }

    #[test]
    #[should_panic]
    fn duplicate_isl_peer_panics() {
        let mut n = Node::new(NodeId(0));
        n.add_device(isl(4));
        n.add_device(isl(4));
    }
}
