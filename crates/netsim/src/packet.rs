//! Packets and payloads.
//!
//! A packet carries addressing (node + port), a wire size that determines
//! serialization delay, and a typed payload. The payload types cover the
//! paper's traffic: pings (§4.1), constant-rate UDP (§3.4), and generic
//! reliable-transport segments used by the TCP implementations in
//! `hypatia-transport`.

use hypatia_constellation::NodeId;
use hypatia_util::hash::Fnv1a64;
use hypatia_util::{DataSize, SimTime};

/// Default wire overhead ascribed to headers, bytes (IP + transport, as the
/// paper counts "only packet payloads and excluding headers" for goodput).
pub const HEADER_BYTES: u32 = 60;

/// A generic reliable-transport segment (TCP-shaped, policy-free).
///
/// Sequence/ack numbers are byte offsets, 64-bit so wraparound handling is
/// unnecessary at simulation scale. `ts`/`ts_echo` implement an RFC1323-
/// style timestamp option used for RTT estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First payload byte carried (meaningless when `payload_bytes == 0`).
    pub seq: u64,
    /// Payload bytes carried; 0 for a pure ACK.
    pub payload_bytes: u32,
    /// Cumulative acknowledgment: next byte expected by the sender of this
    /// segment.
    pub ack: u64,
    /// Sender timestamp.
    pub ts: SimTime,
    /// Echo of the peer's timestamp (for RTT measurement on ACKs).
    pub ts_echo: SimTime,
    /// FIN flag (sender is done after `seq + payload_bytes`).
    pub fin: bool,
}

/// Typed payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// Echo request; nodes answer automatically (kernel-style ICMP echo).
    Ping {
        /// Sequence number assigned by the pinger.
        seq: u64,
    },
    /// Echo reply.
    Pong {
        /// Sequence of the echoed ping.
        seq: u64,
        /// Injection time of the original ping (lets the pinger compute RTT
        /// without keeping per-probe state).
        ping_injected_at: SimTime,
    },
    /// Constant-rate UDP data.
    Udp {
        /// Flow identifier.
        flow: u32,
        /// Per-flow sequence number.
        seq: u64,
        /// Payload (goodput-countable) bytes.
        payload_bytes: u32,
    },
    /// A reliable-transport segment.
    Seg(Segment),
}

/// A packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Globally unique packet id (assigned at injection).
    pub id: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Source port (application demux).
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Total wire size, bytes (headers + payload).
    pub size_bytes: u32,
    /// The payload.
    pub payload: Payload,
    /// Simulation time at which the packet entered the network.
    pub injected_at: SimTime,
    /// Hops traversed so far (incremented per node-to-node delivery).
    pub hops: u16,
    /// FNV-1a-64 of the flow key `(src, dst, src_port, dst_port)`, computed
    /// once at injection (see [`flow_hash`]) and carried with the packet so
    /// multipath forwarding never re-hashes per hop.
    pub flow_hash: u64,
}

/// The globally unique id of the `seq`-th packet originated at `src`.
///
/// Ids are per-origin-node (source node in the high bits, a per-node
/// sequence in the low bits) rather than a single global counter, so that
/// id assignment is independent of the interleaving of events across nodes
/// — the property that lets the sharded engine allocate ids without any
/// cross-shard coordination while staying bit-identical to a serial run.
pub fn packet_id(src: NodeId, seq: u32) -> u64 {
    ((src.0 as u64) << 32) | seq as u64
}

/// Hash a packet's flow key. Every packet of a flow gets the same value, so
/// multipath spreading keeps flows on one path (no reordering) while
/// different flows spread across loop-free alternates.
pub fn flow_hash(src: NodeId, dst: NodeId, src_port: u16, dst_port: u16) -> u64 {
    let mut h = Fnv1a64::new();
    h.write_u32(src.0);
    h.write_u32(dst.0);
    h.write_u16(src_port);
    h.write_u16(dst_port);
    h.finish()
}

impl Packet {
    /// Wire size as a [`DataSize`].
    pub fn size(&self) -> DataSize {
        DataSize::from_bytes(self.size_bytes as u64)
    }

    /// Goodput-countable payload bytes (0 for control traffic).
    pub fn payload_bytes(&self) -> u32 {
        match self.payload {
            Payload::Ping { .. } | Payload::Pong { .. } => 0,
            Payload::Udp { payload_bytes, .. } => payload_bytes,
            Payload::Seg(seg) => seg.payload_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(payload: Payload, size: u32) -> Packet {
        Packet {
            id: 1,
            src: NodeId(0),
            dst: NodeId(1),
            src_port: 10,
            dst_port: 20,
            size_bytes: size,
            payload,
            injected_at: SimTime::ZERO,
            hops: 0,
            flow_hash: 0,
        }
    }

    #[test]
    fn ping_counts_no_goodput() {
        assert_eq!(base(Payload::Ping { seq: 3 }, 64).payload_bytes(), 0);
        assert_eq!(
            base(Payload::Pong { seq: 3, ping_injected_at: SimTime::ZERO }, 64).payload_bytes(),
            0
        );
    }

    #[test]
    fn udp_reports_payload() {
        let p = base(Payload::Udp { flow: 1, seq: 9, payload_bytes: 1440 }, 1500);
        assert_eq!(p.payload_bytes(), 1440);
        assert_eq!(p.size().bytes(), 1500);
    }

    #[test]
    fn segment_reports_payload() {
        let seg = Segment {
            seq: 1000,
            payload_bytes: 1380,
            ack: 0,
            ts: SimTime::from_millis(5),
            ts_echo: SimTime::ZERO,
            fin: false,
        };
        assert_eq!(base(Payload::Seg(seg), 1440).payload_bytes(), 1380);
    }

    #[test]
    fn flow_hash_is_per_flow_and_direction_sensitive() {
        let fwd = flow_hash(NodeId(3), NodeId(9), 1000, 80);
        assert_eq!(fwd, flow_hash(NodeId(3), NodeId(9), 1000, 80), "deterministic");
        assert_ne!(fwd, flow_hash(NodeId(9), NodeId(3), 80, 1000), "reverse differs");
        assert_ne!(fwd, flow_hash(NodeId(3), NodeId(9), 1001, 80), "port matters");
    }

    #[test]
    fn packet_ids_are_unique_per_origin() {
        assert_eq!(packet_id(NodeId(0), 0), 0);
        assert_eq!(packet_id(NodeId(0), 1), 1);
        assert_eq!(packet_id(NodeId(1), 0), 1 << 32);
        assert_ne!(packet_id(NodeId(2), 7), packet_id(NodeId(7), 2));
    }

    #[test]
    fn pure_ack_has_zero_payload() {
        let seg = Segment {
            seq: 0,
            payload_bytes: 0,
            ack: 5000,
            ts: SimTime::ZERO,
            ts_echo: SimTime::from_millis(2),
            fin: false,
        };
        assert_eq!(base(Payload::Seg(seg), 60).payload_bytes(), 0);
    }
}
