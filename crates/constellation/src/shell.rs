//! Orbital shells and per-satellite element generation.
//!
//! Paper §2.1: "A set of orbits with the same *i* and *h*, and crossing the
//! Equator at uniform spacing from each other, is called an orbital shell.
//! Satellites within one orbit are uniformly spaced out." The remaining
//! degrees of freedom (circular orbits, uniform spreads) are exactly what
//! the paper derives from the filings' symmetries.

use hypatia_orbit::kepler::KeplerianElements;
use serde::{Deserialize, Serialize};

/// Description of one orbital shell (a row of the paper's Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShellSpec {
    /// Shell name, e.g. "S1" or "K1".
    pub name: String,
    /// Altitude above the Earth's surface, km.
    pub altitude_km: f64,
    /// Number of orbital planes.
    pub num_orbits: u32,
    /// Satellites per orbital plane.
    pub sats_per_orbit: u32,
    /// Inclination, degrees.
    pub inclination_deg: f64,
    /// Inter-plane phasing factor `F` (Walker notation): satellite `s` of
    /// plane `o` is offset in mean anomaly by `F · o · 360° / (P·S)` where
    /// `P·S` is the shell's satellite count. The filings do not pin this
    /// down; Hypatia and follow-on work use a fixed offset — we default to
    /// `F = 1`, and it is configurable for topology studies.
    pub phase_factor: f64,
}

impl ShellSpec {
    /// Convenience constructor with the default phasing.
    pub fn new(
        name: impl Into<String>,
        altitude_km: f64,
        num_orbits: u32,
        sats_per_orbit: u32,
        inclination_deg: f64,
    ) -> Self {
        assert!(altitude_km > 0.0 && altitude_km <= 2_000.0, "not a LEO altitude: {altitude_km}");
        assert!(num_orbits > 0 && sats_per_orbit > 0, "empty shell");
        ShellSpec {
            name: name.into(),
            altitude_km,
            num_orbits,
            sats_per_orbit,
            inclination_deg,
            phase_factor: 1.0,
        }
    }

    /// Total number of satellites in this shell.
    pub fn num_satellites(&self) -> u32 {
        self.num_orbits * self.sats_per_orbit
    }

    /// Keplerian elements of satellite `idx_in_orbit` in plane `orbit`.
    ///
    /// Planes are spread uniformly over 360° of right ascension; satellites
    /// uniformly over 360° of mean anomaly, with the Walker phase offset.
    pub fn satellite_elements(&self, orbit: u32, idx_in_orbit: u32) -> KeplerianElements {
        assert!(orbit < self.num_orbits, "orbit {orbit} out of range");
        assert!(idx_in_orbit < self.sats_per_orbit, "satellite {idx_in_orbit} out of range");
        let raan_deg = 360.0 * orbit as f64 / self.num_orbits as f64;
        let base_ma = 360.0 * idx_in_orbit as f64 / self.sats_per_orbit as f64;
        let phase_ma = self.phase_factor * 360.0 * orbit as f64 / self.num_satellites() as f64;
        KeplerianElements::circular(
            self.altitude_km,
            self.inclination_deg,
            raan_deg,
            base_ma + phase_ma,
        )
    }

    /// Orbital period of this shell, seconds.
    pub fn period_s(&self) -> f64 {
        hypatia_util::constants::circular_orbit_period_s(self.altitude_km)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_orbit::Propagator;
    use hypatia_util::angle::rad_to_deg;
    use hypatia_util::SimTime;

    fn k1() -> ShellSpec {
        ShellSpec::new("K1", 630.0, 34, 34, 51.9)
    }

    #[test]
    fn satellite_count() {
        assert_eq!(k1().num_satellites(), 1156);
    }

    #[test]
    fn raan_uniformly_spread() {
        let s = k1();
        let e0 = s.satellite_elements(0, 0);
        let e17 = s.satellite_elements(17, 0);
        assert!((rad_to_deg(e17.raan_rad) - rad_to_deg(e0.raan_rad) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn mean_anomaly_uniform_within_orbit() {
        let s = k1();
        let step = 360.0 / 34.0;
        let e0 = s.satellite_elements(3, 0);
        let e1 = s.satellite_elements(3, 1);
        let d = rad_to_deg(e1.mean_anomaly_rad) - rad_to_deg(e0.mean_anomaly_rad);
        assert!((d - step).abs() < 1e-9, "delta {d}");
    }

    #[test]
    fn phase_factor_offsets_adjacent_planes() {
        let mut s = k1();
        s.phase_factor = 1.0;
        let a = s.satellite_elements(0, 0);
        let b = s.satellite_elements(1, 0);
        let expect = 360.0 / 1156.0;
        let d = rad_to_deg(b.mean_anomaly_rad) - rad_to_deg(a.mean_anomaly_rad);
        assert!((d - expect).abs() < 1e-9, "phase delta {d}");
    }

    #[test]
    fn zero_phase_factor_aligns_planes() {
        let mut s = k1();
        s.phase_factor = 0.0;
        let a = s.satellite_elements(0, 5);
        let b = s.satellite_elements(20, 5);
        assert!((a.mean_anomaly_rad - b.mean_anomaly_rad).abs() < 1e-12);
    }

    #[test]
    fn all_satellites_at_correct_altitude() {
        let s = k1();
        for (o, i) in [(0, 0), (5, 12), (33, 33)] {
            let el = s.satellite_elements(o, i);
            assert!((el.perigee_altitude_km() - 630.0).abs() < 1e-9);
        }
    }

    #[test]
    fn neighbours_in_orbit_keep_constant_separation() {
        // Intra-orbit ISL lengths are constant for a circular orbit — the
        // geometric fact behind +Grid's stable intra-orbit links.
        let s = k1();
        let p0 = Propagator::j2(s.satellite_elements(2, 0));
        let p1 = Propagator::j2(s.satellite_elements(2, 1));
        let d_at = |secs| {
            p0.position_at(SimTime::from_secs(secs))
                .distance(p1.position_at(SimTime::from_secs(secs)))
        };
        let d0 = d_at(0);
        for t in [100u64, 500, 2000] {
            assert!((d_at(t) - d0).abs() < 1.0, "separation changed at t={t}");
        }
    }

    #[test]
    #[should_panic]
    fn orbit_out_of_range_panics() {
        k1().satellite_elements(34, 0);
    }

    #[test]
    #[should_panic]
    fn non_leo_altitude_panics() {
        ShellSpec::new("GEO", 35_786.0, 1, 1, 0.0);
    }
}
