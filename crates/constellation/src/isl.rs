//! Inter-satellite link layouts.
//!
//! Paper §3.1: the proposed mega-constellations hint at 4 ISLs per
//! satellite, and the literature's typical connectivity for that budget is
//! "+Grid": two links to the in-orbit neighbours, two to the same-index
//! satellites in the adjacent planes. Hypatia uses +Grid as the default and
//! also supports ISL-less (bent-pipe) constellations; both are static over
//! time (ISL setup takes tens of seconds, so dynamic re-targeting is
//! avoided).

use crate::shell::ShellSpec;
use serde::{Deserialize, Serialize};

/// Which ISL interconnect to build.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum IslLayout {
    /// +Grid: ring within each orbit plus links to adjacent planes
    /// (per shell; shells are not cross-connected, as in the paper).
    #[default]
    PlusGrid,
    /// No ISLs at all (bent-pipe constellations, Appendix A).
    None,
}

/// Build the undirected ISL list for a set of shells under `layout`.
/// Satellite indices are global (shell-major, plane-major), matching
/// [`crate::Constellation`]'s numbering.
pub fn build_isls(shells: &[ShellSpec], layout: IslLayout) -> Vec<(u32, u32)> {
    match layout {
        IslLayout::None => Vec::new(),
        IslLayout::PlusGrid => {
            let mut isls = Vec::new();
            let mut base = 0u32;
            for shell in shells {
                plus_grid_shell(shell, base, &mut isls);
                base += shell.num_satellites();
            }
            isls
        }
    }
}

/// +Grid within one shell. `sat(o, s) = base + o * S + s`.
fn plus_grid_shell(shell: &ShellSpec, base: u32, out: &mut Vec<(u32, u32)>) {
    let orbits = shell.num_orbits;
    let per = shell.sats_per_orbit;
    let id = |o: u32, s: u32| base + o * per + s;
    for o in 0..orbits {
        for s in 0..per {
            // Intra-orbit successor (ring) — skip the wrap link for a
            // two-satellite orbit so we do not emit a duplicate pair.
            if per > 1 && !(per == 2 && s == 1) {
                out.push((id(o, s), id(o, (s + 1) % per)));
            }
            // Inter-orbit link to the same slot in the next plane (ring
            // over planes; the seam link closes the mesh).
            if orbits > 1 && !(orbits == 2 && o == 1) {
                out.push((id(o, s), id((o + 1) % orbits, s)));
            }
        }
    }
}

/// Per-satellite ISL degree for a built ISL set (diagnostics/tests).
pub fn isl_degrees(num_satellites: usize, isls: &[(u32, u32)]) -> Vec<u32> {
    let mut deg = vec![0u32; num_satellites];
    for &(a, b) in isls {
        deg[a as usize] += 1;
        deg[b as usize] += 1;
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell(orbits: u32, per: u32) -> ShellSpec {
        ShellSpec::new("X", 550.0, orbits, per, 53.0)
    }

    #[test]
    fn plus_grid_gives_degree_four() {
        let s = shell(6, 8);
        let isls = build_isls(std::slice::from_ref(&s), IslLayout::PlusGrid);
        // 2 links per satellite (one intra, one inter emitted per sat) →
        // degree 4 each; |E| = 2N.
        assert_eq!(isls.len() as u32, 2 * s.num_satellites());
        let deg = isl_degrees(s.num_satellites() as usize, &isls);
        assert!(deg.iter().all(|&d| d == 4), "degrees {deg:?}");
    }

    #[test]
    fn no_duplicate_or_self_links() {
        let s = shell(5, 7);
        let isls = build_isls(std::slice::from_ref(&s), IslLayout::PlusGrid);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &isls {
            assert_ne!(a, b, "self link");
            let key = (a.min(b), a.max(b));
            assert!(seen.insert(key), "duplicate link {key:?}");
        }
    }

    #[test]
    fn kuiper_k1_isl_count() {
        // 34×34 shell: 2 × 1156 = 2312 ISLs (paper's +Grid on K1).
        let s = shell(34, 34);
        assert_eq!(build_isls(std::slice::from_ref(&s), IslLayout::PlusGrid).len(), 2312);
    }

    #[test]
    fn multi_shell_isls_do_not_cross_shells() {
        let shells = vec![shell(3, 4), shell(2, 5)];
        let isls = build_isls(&shells, IslLayout::PlusGrid);
        let first = 12u32;
        for &(a, b) in &isls {
            let a_in_first = a < first;
            let b_in_first = b < first;
            assert_eq!(a_in_first, b_in_first, "cross-shell ISL {a}-{b}");
        }
    }

    #[test]
    fn none_layout_is_empty() {
        assert!(build_isls(&[shell(10, 10)], IslLayout::None).is_empty());
    }

    #[test]
    fn two_orbit_shell_has_no_duplicate_seam() {
        let s = shell(2, 4);
        let isls = build_isls(std::slice::from_ref(&s), IslLayout::PlusGrid);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &isls {
            assert!(seen.insert((a.min(b), a.max(b))), "duplicate in 2-orbit shell");
        }
        // Each satellite: 2 intra-orbit + 1 inter-orbit (single seam pair) = 3.
        let deg = isl_degrees(8, &isls);
        assert!(deg.iter().all(|&d| d == 3), "{deg:?}");
    }

    #[test]
    fn graph_is_connected() {
        // BFS over +Grid must reach every satellite.
        let s = shell(7, 9);
        let n = s.num_satellites() as usize;
        let isls = build_isls(std::slice::from_ref(&s), IslLayout::PlusGrid);
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &isls {
            adj[a as usize].push(b as usize);
            adj[b as usize].push(a as usize);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "+Grid not connected");
    }
}
