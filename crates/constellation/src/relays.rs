//! Ground-relay grids for bent-pipe connectivity (paper Appendix A).
//!
//! Constellations without ISLs route long-distance traffic up and down
//! through chains of ground stations ("bent pipe"). For the Paris–Moscow
//! experiment the paper adds "a grid of ground stations between Paris and
//! Moscow such that there are multiple relays that can be chosen from".

use crate::ground::GroundStation;

/// Generate a lat/lon grid of candidate relay ground stations covering the
/// bounding box of `a` and `b`, expanded by `margin_deg` on every side,
/// with `spacing_deg` between grid points.
///
/// Relays are named `relay-<row>-<col>`. The two endpoints themselves are
/// *not* included. Longitude handling assumes the pair does not straddle
/// the antimeridian (true for all the paper's pairs; assert enforces it).
pub fn relay_grid(
    a: &GroundStation,
    b: &GroundStation,
    spacing_deg: f64,
    margin_deg: f64,
) -> Vec<GroundStation> {
    assert!(spacing_deg > 0.0, "spacing must be positive");
    assert!(margin_deg >= 0.0, "margin cannot be negative");
    assert!(
        (a.longitude_deg - b.longitude_deg).abs() <= 180.0,
        "relay_grid does not handle antimeridian-crossing pairs"
    );

    let lat_min = (a.latitude_deg.min(b.latitude_deg) - margin_deg).max(-89.0);
    let lat_max = (a.latitude_deg.max(b.latitude_deg) + margin_deg).min(89.0);
    let lon_min = a.longitude_deg.min(b.longitude_deg) - margin_deg;
    let lon_max = a.longitude_deg.max(b.longitude_deg) + margin_deg;

    let mut out = Vec::new();
    let mut row = 0u32;
    let mut lat = lat_min;
    while lat <= lat_max + 1e-9 {
        let mut col = 0u32;
        let mut lon = lon_min;
        while lon <= lon_max + 1e-9 {
            out.push(GroundStation::new(format!("relay-{row}-{col}"), lat, lon));
            lon += spacing_deg;
            col += 1;
        }
        lat += spacing_deg;
        row += 1;
    }
    out
}

/// The ground segment for a bent-pipe experiment: `[src, dst, relays...]`.
/// Source is GS index 0, destination index 1.
pub fn bent_pipe_ground_segment(
    src: GroundStation,
    dst: GroundStation,
    spacing_deg: f64,
    margin_deg: f64,
) -> Vec<GroundStation> {
    let relays = relay_grid(&src, &dst, spacing_deg, margin_deg);
    let mut out = Vec::with_capacity(relays.len() + 2);
    out.push(src);
    out.push(dst);
    out.extend(relays);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paris() -> GroundStation {
        GroundStation::new("Paris", 48.8566, 2.3522)
    }
    fn moscow() -> GroundStation {
        GroundStation::new("Moscow", 55.7558, 37.6173)
    }

    #[test]
    fn grid_covers_bounding_box() {
        let relays = relay_grid(&paris(), &moscow(), 5.0, 2.0);
        assert!(!relays.is_empty());
        for r in &relays {
            assert!(r.latitude_deg >= 46.8 - 1e-9 && r.latitude_deg <= 57.8 + 1e-9);
            assert!(r.longitude_deg >= 0.35 - 1e-9 && r.longitude_deg <= 39.7 + 1e-9);
        }
    }

    #[test]
    fn grid_density_scales_with_spacing() {
        let coarse = relay_grid(&paris(), &moscow(), 10.0, 0.0).len();
        let fine = relay_grid(&paris(), &moscow(), 2.5, 0.0).len();
        assert!(fine > 4 * coarse, "coarse {coarse}, fine {fine}");
    }

    #[test]
    fn relay_names_unique() {
        let relays = relay_grid(&paris(), &moscow(), 4.0, 3.0);
        let mut names: Vec<&str> = relays.iter().map(|r| r.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn ground_segment_puts_endpoints_first() {
        let seg = bent_pipe_ground_segment(paris(), moscow(), 5.0, 2.0);
        assert_eq!(seg[0].name, "Paris");
        assert_eq!(seg[1].name, "Moscow");
        assert!(seg.len() > 10);
    }

    #[test]
    fn grid_clamps_polar_latitudes() {
        let a = GroundStation::new("A", 86.0, 0.0);
        let b = GroundStation::new("B", 80.0, 10.0);
        let relays = relay_grid(&a, &b, 2.0, 10.0);
        assert!(relays.iter().all(|r| r.latitude_deg <= 89.0));
    }

    #[test]
    #[should_panic]
    fn antimeridian_pair_rejected() {
        let tokyo = GroundStation::new("Tokyo", 35.7, 139.7);
        let la = GroundStation::new("LA", 34.05, -118.24);
        relay_grid(&tokyo, &la, 5.0, 2.0);
    }
}
