//! Ground stations and the embedded city dataset.
//!
//! The paper's evaluation uses "the world's 100 most populous cities" as
//! ground stations. We embed a static dataset (name, latitude, longitude,
//! metro population) compiled from public census estimates circa 2020. The
//! exact population figures only determine membership/ordering of the set;
//! network behaviour depends on the coordinates.

use hypatia_orbit::frames::{geodetic_to_ecef_ellipsoidal, GeodeticPos};
use hypatia_orbit::geodesy::{geodesic_rtt, great_circle_distance_km};
use hypatia_util::rng::DetRng;
use hypatia_util::{SimDuration, Vec3};
use serde::{Deserialize, Serialize};

/// A fixed ground station (paper §3.1: static GSes with parabolic antennas).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundStation {
    /// Station name (city name for the standard dataset).
    pub name: String,
    /// Latitude, degrees north.
    pub latitude_deg: f64,
    /// Longitude, degrees east.
    pub longitude_deg: f64,
    /// Altitude above the reference sphere, km (0 for cities).
    pub altitude_km: f64,
}

impl GroundStation {
    /// A surface ground station.
    pub fn new(name: impl Into<String>, latitude_deg: f64, longitude_deg: f64) -> Self {
        assert!((-90.0..=90.0).contains(&latitude_deg), "bad latitude");
        GroundStation { name: name.into(), latitude_deg, longitude_deg, altitude_km: 0.0 }
    }

    /// Geodetic position.
    pub fn geodetic(&self) -> GeodeticPos {
        GeodeticPos {
            latitude_deg: self.latitude_deg,
            longitude_deg: self.longitude_deg,
            altitude_km: self.altitude_km,
        }
    }

    /// Fixed ECEF position, km.
    ///
    /// Ground stations sit on the **WGS72 ellipsoid**, not the sphere:
    /// Earth's oblateness puts high-latitude stations ~10–20 km closer to
    /// the geocenter, measurably *raising* satellite elevation angles
    /// there. This is what makes St. Petersburg (59.93° N) intermittently
    /// reachable from Kuiper K1's 51.9°-inclination shell, exactly the
    /// marginal-coverage behaviour the paper's Figs. 3(a)/12 hinge on — on
    /// a spherical Earth the city would sit just past the coverage edge.
    pub fn position_ecef(&self) -> Vec3 {
        geodetic_to_ecef_ellipsoidal(self.geodetic())
    }

    /// Great-circle distance to another station, km.
    pub fn distance_km(&self, other: &GroundStation) -> f64 {
        great_circle_distance_km(self.geodetic(), other.geodetic())
    }

    /// Geodesic (speed-of-light, great-circle) RTT to another station.
    pub fn geodesic_rtt(&self, other: &GroundStation) -> SimDuration {
        geodesic_rtt(self.geodetic(), other.geodetic())
    }
}

/// `(name, latitude, longitude, metro population)` for the world's 100 most
/// populous cities (2020-era estimates), in descending population order.
pub const CITIES: [(&str, f64, f64, u32); 100] = [
    ("Tokyo", 35.6897, 139.6922, 37_400_000),
    ("Delhi", 28.6139, 77.2090, 29_399_000),
    ("Shanghai", 31.2304, 121.4737, 26_317_000),
    ("Sao Paulo", -23.5505, -46.6333, 21_846_000),
    ("Mexico City", 19.4326, -99.1332, 21_671_000),
    ("Cairo", 30.0444, 31.2357, 20_484_000),
    ("Dhaka", 23.8103, 90.4125, 20_283_000),
    ("Mumbai", 19.0760, 72.8777, 20_185_000),
    ("Beijing", 39.9042, 116.4074, 20_035_000),
    ("Osaka", 34.6937, 135.5023, 19_222_000),
    ("New York", 40.7128, -74.0060, 18_805_000),
    ("Karachi", 24.8607, 67.0011, 15_741_000),
    ("Chongqing", 29.5630, 106.5516, 15_354_000),
    ("Istanbul", 41.0082, 28.9784, 14_968_000),
    ("Buenos Aires", -34.6037, -58.3816, 14_967_000),
    ("Kolkata", 22.5726, 88.3639, 14_681_000),
    ("Lagos", 6.5244, 3.3792, 13_904_000),
    ("Manila", 14.5995, 120.9842, 13_482_000),
    ("Rio de Janeiro", -22.9068, -43.1729, 13_374_000),
    ("Tianjin", 39.3434, 117.3616, 13_215_000),
    ("Kinshasa", -4.4419, 15.2663, 13_171_000),
    ("Guangzhou", 23.1291, 113.2644, 12_638_000),
    ("Moscow", 55.7558, 37.6173, 12_476_000),
    ("Los Angeles", 34.0522, -118.2437, 12_448_000),
    ("Lahore", 31.5204, 74.3587, 12_188_000),
    ("Shenzhen", 22.5431, 114.0579, 12_128_000),
    ("Bangalore", 12.9716, 77.5946, 11_883_000),
    ("Paris", 48.8566, 2.3522, 10_901_000),
    ("Chennai", 13.0827, 80.2707, 10_711_000),
    ("Jakarta", -6.2088, 106.8456, 10_638_000),
    ("Bogota", 4.7110, -74.0721, 10_574_000),
    ("Lima", -12.0464, -77.0428, 10_555_000),
    ("Bangkok", 13.7563, 100.5018, 10_350_000),
    ("Seoul", 37.5665, 126.9780, 9_963_000),
    ("Hyderabad", 17.3850, 78.4867, 9_741_000),
    ("Nagoya", 35.1815, 136.9066, 9_532_000),
    ("London", 51.5074, -0.1278, 9_177_000),
    ("Chengdu", 30.5728, 104.0668, 9_136_000),
    ("Tehran", 35.6892, 51.3890, 9_013_000),
    ("Chicago", 41.8781, -87.6298, 8_864_000),
    ("Nanjing", 32.0603, 118.7969, 8_847_000),
    ("Ho Chi Minh City", 10.8231, 106.6297, 8_602_000),
    ("Wuhan", 30.5928, 114.3055, 8_365_000),
    ("Luanda", -8.8390, 13.2894, 8_045_000),
    ("Kuala Lumpur", 3.1390, 101.6869, 7_997_000),
    ("Ahmedabad", 23.0225, 72.5714, 7_868_000),
    ("Hangzhou", 30.2741, 120.1551, 7_642_000),
    ("Hong Kong", 22.3193, 114.1694, 7_490_000),
    ("Xian", 34.3416, 108.9398, 7_444_000),
    ("Dongguan", 23.0207, 113.7518, 7_407_000),
    ("Foshan", 23.0215, 113.1214, 7_326_000),
    ("Surat", 21.1702, 72.8311, 7_185_000),
    ("Riyadh", 24.7136, 46.6753, 7_070_000),
    ("Suzhou", 31.2989, 120.5853, 7_070_000),
    ("Baghdad", 33.3152, 44.3661, 6_974_000),
    ("Shenyang", 41.8057, 123.4315, 6_921_000),
    ("Santiago", -33.4489, -70.6693, 6_767_000),
    ("Pune", 18.5204, 73.8567, 6_629_000),
    ("Madrid", 40.4168, -3.7038, 6_559_000),
    ("Houston", 29.7604, -95.3698, 6_371_000),
    ("Dar es Salaam", -6.7924, 39.2083, 6_368_000),
    ("Dallas", 32.7767, -96.7970, 6_301_000),
    ("Toronto", 43.6532, -79.3832, 6_197_000),
    ("Miami", 25.7617, -80.1918, 6_158_000),
    ("Harbin", 45.8038, 126.5349, 6_115_000),
    ("Belo Horizonte", -19.9167, -43.9345, 6_028_000),
    ("Singapore", 1.3521, 103.8198, 5_850_000),
    ("Atlanta", 33.7490, -84.3880, 5_803_000),
    ("Philadelphia", 39.9526, -75.1652, 5_717_000),
    ("Khartoum", 15.5007, 32.5599, 5_678_000),
    ("Johannesburg", -26.2041, 28.0473, 5_635_000),
    ("Barcelona", 41.3851, 2.1734, 5_586_000),
    ("Fukuoka", 33.5904, 130.4017, 5_551_000),
    ("Saint Petersburg", 59.9311, 30.3609, 5_383_000),
    ("Qingdao", 36.0671, 120.3826, 5_381_000),
    ("Zhengzhou", 34.7466, 113.6254, 5_323_000),
    ("Washington", 38.9072, -77.0369, 5_322_000),
    ("Dalian", 38.9140, 121.6147, 5_300_000),
    ("Alexandria", 31.2001, 29.9187, 5_281_000),
    ("Yangon", 16.8409, 96.1735, 5_244_000),
    ("Abidjan", 5.3600, -4.0083, 5_203_000),
    ("Guadalajara", 20.6597, -103.3496, 5_179_000),
    ("Ankara", 39.9334, 32.8597, 5_118_000),
    ("Jinan", 36.6512, 117.1201, 5_052_000),
    ("Melbourne", -37.8136, 144.9631, 4_936_000),
    ("Sydney", -33.8688, 151.2093, 4_926_000),
    ("Nairobi", -1.2921, 36.8219, 4_735_000),
    ("Monterrey", 25.6866, -100.3161, 4_712_000),
    ("Hanoi", 21.0278, 105.8342, 4_678_000),
    ("Phoenix", 33.4484, -112.0740, 4_652_000),
    ("Cape Town", -33.9249, 18.4241, 4_618_000),
    ("Jeddah", 21.4858, 39.1925, 4_610_000),
    ("Accra", 5.6037, -0.1870, 4_263_000),
    ("Rome", 41.9028, 12.4964, 4_234_000),
    ("Kabul", 34.5553, 69.2075, 4_222_000),
    ("Montreal", 45.5017, -73.5673, 4_221_000),
    ("Recife", -8.0476, -34.8770, 4_078_000),
    ("Amman", 31.9454, 35.9284, 4_008_000),
    ("Casablanca", 33.5731, -7.5898, 3_752_000),
    ("Berlin", 52.5200, 13.4050, 3_562_000),
];

/// The `n` most populous cities as ground stations (n ≤ 100).
pub fn top_cities(n: usize) -> Vec<GroundStation> {
    assert!(n <= CITIES.len(), "only {} cities available", CITIES.len());
    CITIES[..n].iter().map(|&(name, lat, lon, _)| GroundStation::new(name, lat, lon)).collect()
}

/// All 100 cities (the paper's standard ground segment).
pub fn world_cities_100() -> Vec<GroundStation> {
    top_cities(100)
}

/// A population-gravity traffic matrix over the `cities` most populous
/// ground stations.
///
/// Draws `flows` ordered `(src, dst)` station-index pairs i.i.d. with
/// probability proportional to `pop_src × pop_dst` (the classic gravity
/// model with unit distance friction), self-pairs excluded. Populations
/// are the metro figures embedded in [`CITIES`]. Sampling walks a
/// cumulative weight table with one [`DetRng`] draw per flow, so the
/// demand set is a pure function of `(cities, flows, seed)` — the same
/// triple reproduces the same matrix bit-for-bit on every platform.
pub fn gravity_pairs(cities: usize, flows: usize, seed: u64) -> Vec<(usize, usize)> {
    assert!((2..=CITIES.len()).contains(&cities), "need 2..=100 cities, got {cities}");
    let pops: Vec<f64> = CITIES[..cities].iter().map(|c| c.3 as f64).collect();
    // Cumulative weights over the cities·(cities−1) ordered pairs, in row
    // (src-major) order with the diagonal skipped.
    let mut cumulative = Vec::with_capacity(cities * (cities - 1));
    let mut total = 0.0f64;
    for (i, &pi) in pops.iter().enumerate() {
        for (j, &pj) in pops.iter().enumerate() {
            if i != j {
                total += pi * pj;
                cumulative.push(total);
            }
        }
    }
    let mut rng = DetRng::new(seed);
    (0..flows)
        .map(|_| {
            let u = rng.next_f64() * total;
            let k = cumulative.partition_point(|&c| c <= u).min(cumulative.len() - 1);
            // Invert the flat index: row i holds cities−1 entries whose
            // column skips the diagonal.
            let src = k / (cities - 1);
            let col = k % (cities - 1);
            let dst = if col < src { col } else { col + 1 };
            (src, dst)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_one_hundred_cities() {
        assert_eq!(CITIES.len(), 100);
        assert_eq!(world_cities_100().len(), 100);
    }

    #[test]
    fn population_is_descending() {
        for w in CITIES.windows(2) {
            assert!(w[0].3 >= w[1].3, "{} before {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = CITIES.iter().map(|c| c.0).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 100);
    }

    #[test]
    fn coordinates_are_valid() {
        for &(name, lat, lon, _) in CITIES.iter() {
            assert!((-90.0..=90.0).contains(&lat), "{name} lat {lat}");
            assert!((-180.0..=180.0).contains(&lon), "{name} lon {lon}");
        }
    }

    #[test]
    fn paper_cities_are_present() {
        let required = [
            "Rio de Janeiro",
            "Saint Petersburg",
            "Manila",
            "Dalian",
            "Istanbul",
            "Nairobi",
            "Paris",
            "Luanda",
            "Moscow",
            "Chicago",
            "Zhengzhou",
        ];
        let names: Vec<&str> = CITIES.iter().map(|c| c.0).collect();
        for r in required {
            assert!(names.contains(&r), "missing {r}");
        }
    }

    #[test]
    fn st_petersburg_is_higher_latitude_than_kuiper_inclination() {
        // The mechanism behind the paper's Fig. 3(a)/Fig. 12 outage: St.
        // Petersburg (59.93° N) lies above Kuiper K1's 51.9° inclination.
        let sp = CITIES.iter().find(|c| c.0 == "Saint Petersburg").unwrap();
        assert!(sp.1 > 51.9);
    }

    #[test]
    fn gravity_pairs_are_deterministic_and_valid() {
        let a = gravity_pairs(100, 5_000, 42);
        let b = gravity_pairs(100, 5_000, 42);
        assert_eq!(a, b, "same (cities, flows, seed) → same matrix");
        assert_ne!(a, gravity_pairs(100, 5_000, 43), "seed changes the draw");
        assert_eq!(a.len(), 5_000);
        for &(s, d) in &a {
            assert!(s < 100 && d < 100);
            assert_ne!(s, d, "self-pairs excluded");
        }
    }

    #[test]
    fn gravity_favours_populous_endpoints() {
        // Tokyo (37.4 M) must source far more flows than Berlin (3.6 M):
        // the marginal probability of an endpoint scales with its
        // population share.
        let pairs = gravity_pairs(100, 20_000, 7);
        let count_src = |i: usize| pairs.iter().filter(|&&(s, _)| s == i).count();
        assert!(
            count_src(0) > 4 * count_src(99),
            "Tokyo {} vs Berlin {}",
            count_src(0),
            count_src(99)
        );
    }

    #[test]
    fn gravity_endpoint_marginals_track_population_share() {
        // With cities = 2 every draw is (0,1) or (1,0) with equal weight;
        // with 10 cities the top city's endpoint share must be within a
        // few points of its analytic marginal.
        for &(s, d) in &gravity_pairs(2, 50, 3) {
            assert!((s, d) == (0, 1) || (s, d) == (1, 0));
        }
        let n = 10usize;
        let pairs = gravity_pairs(n, 40_000, 11);
        let pops: Vec<f64> = CITIES[..n].iter().map(|c| c.3 as f64).collect();
        let total: f64 = pops.iter().sum();
        let expected = pops[0] / total; // first-order endpoint share
        let hits = pairs.iter().filter(|&&(s, _)| s == 0).count() as f64;
        let got = hits / pairs.len() as f64;
        assert!((got - expected).abs() < 0.03, "share {got:.3} vs expected {expected:.3}");
    }

    #[test]
    fn known_pair_distance() {
        let rio = GroundStation::new("Rio", -22.9068, -43.1729);
        let sp = GroundStation::new("StP", 59.9311, 30.3609);
        let d = rio.distance_km(&sp);
        // ~11,100 km by great circle.
        assert!((10_800.0..11_500.0).contains(&d), "Rio–StP {d} km");
    }

    #[test]
    fn geodesic_rtt_positive_and_symmetric() {
        let a = GroundStation::new("A", 10.0, 20.0);
        let b = GroundStation::new("B", -30.0, 100.0);
        assert_eq!(a.geodesic_rtt(&b), b.geodesic_rtt(&a));
        assert!(a.geodesic_rtt(&b) > SimDuration::ZERO);
    }

    #[test]
    fn ecef_positions_on_the_ellipsoid() {
        // Geocentric radius between the polar (~6356.75 km) and equatorial
        // (6378.135 km) radii, decreasing with |latitude|.
        for gs in world_cities_100() {
            let r = gs.position_ecef().norm();
            assert!((6356.0..=6378.2).contains(&r), "{} radius {r}", gs.name);
        }
        let equatorial = GroundStation::new("eq", 0.0, 0.0).position_ecef().norm();
        let polarish = GroundStation::new("hi", 80.0, 0.0).position_ecef().norm();
        assert!(polarish < equatorial - 10.0, "oblateness must show: {polarish} vs {equatorial}");
    }
}
