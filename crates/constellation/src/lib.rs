//! LEO constellation construction for Hypatia.
//!
//! This crate turns the paper's Table 1 — shell descriptions from FCC/ITU
//! filings — into concrete, propagatable constellations:
//!
//! * [`shell`] — a shell (orbits × satellites/orbit at one altitude and
//!   inclination) and the element generation for every satellite in it;
//! * [`presets`] — Starlink S1–S5, Kuiper K1–K3, Telesat T1–T2, with the
//!   operators' minimum elevation angles;
//! * [`constellation`] — the assembled constellation: satellites, node-id
//!   scheme, ECEF positions over time;
//! * [`isl`] — inter-satellite link layouts (+Grid default, ISL-less for
//!   bent-pipe constellations);
//! * [`ground`] — ground stations and the embedded 100-most-populous-cities
//!   dataset used throughout the paper's evaluation;
//! * [`relays`] — ground-relay grids for Appendix A's bent-pipe experiments;
//! * [`gsl`] — ground-to-satellite visibility queries.

pub mod constellation;
pub mod ground;
pub mod gsl;
pub mod isl;
pub mod presets;
pub mod relays;
pub mod shell;

pub use constellation::{Constellation, NodeId, Satellite};
pub use ground::{GroundStation, CITIES};
pub use isl::IslLayout;
pub use shell::ShellSpec;
