//! Constellation presets from the paper's Table 1.
//!
//! Shell configurations for the first phase of Starlink, and for Kuiper and
//! Telesat, exactly as the paper tabulates them from FCC/ITU filings,
//! together with each operator's minimum angle of elevation (Starlink 25°,
//! Kuiper 30°, Telesat 10° — paper §2.2/§5.1).

use crate::constellation::Constellation;
use crate::ground::GroundStation;
use crate::gsl::GslConfig;
use crate::isl::IslLayout;
use crate::shell::ShellSpec;

/// Starlink's minimum elevation angle, degrees.
pub const STARLINK_MIN_ELEVATION_DEG: f64 = 25.0;
/// Kuiper's minimum elevation angle, degrees (FCC filing's "30" option).
pub const KUIPER_MIN_ELEVATION_DEG: f64 = 30.0;
/// Telesat's planned minimum elevation angle, degrees.
pub const TELESAT_MIN_ELEVATION_DEG: f64 = 10.0;

/// Starlink phase-1 shells S1–S5 (Table 1).
pub fn starlink_shells() -> Vec<ShellSpec> {
    vec![
        ShellSpec::new("S1", 550.0, 72, 22, 53.0),
        ShellSpec::new("S2", 1110.0, 32, 50, 53.8),
        ShellSpec::new("S3", 1130.0, 8, 50, 74.0),
        ShellSpec::new("S4", 1275.0, 5, 75, 81.0),
        ShellSpec::new("S5", 1325.0, 6, 75, 70.0),
    ]
}

/// Kuiper shells K1–K3 (Table 1).
pub fn kuiper_shells() -> Vec<ShellSpec> {
    vec![
        ShellSpec::new("K1", 630.0, 34, 34, 51.9),
        ShellSpec::new("K2", 610.0, 36, 36, 42.0),
        ShellSpec::new("K3", 590.0, 28, 28, 33.0),
    ]
}

/// Telesat shells T1–T2 (Table 1).
pub fn telesat_shells() -> Vec<ShellSpec> {
    vec![ShellSpec::new("T1", 1015.0, 27, 13, 98.98), ShellSpec::new("T2", 1325.0, 40, 33, 50.88)]
}

/// Starlink S1 only — the first planned deployment, used throughout §5.
pub fn starlink_s1(ground_stations: Vec<GroundStation>) -> Constellation {
    Constellation::build(
        "Starlink S1",
        vec![starlink_shells().remove(0)],
        IslLayout::PlusGrid,
        ground_stations,
        GslConfig::new(STARLINK_MIN_ELEVATION_DEG),
    )
}

/// Kuiper K1 only — the paper's workhorse constellation (§3.4, §4, §5).
pub fn kuiper_k1(ground_stations: Vec<GroundStation>) -> Constellation {
    Constellation::build(
        "Kuiper K1",
        vec![kuiper_shells().remove(0)],
        IslLayout::PlusGrid,
        ground_stations,
        GslConfig::new(KUIPER_MIN_ELEVATION_DEG),
    )
}

/// Telesat T1 only (§5).
pub fn telesat_t1(ground_stations: Vec<GroundStation>) -> Constellation {
    Constellation::build(
        "Telesat T1",
        vec![telesat_shells().remove(0)],
        IslLayout::PlusGrid,
        ground_stations,
        GslConfig::new(TELESAT_MIN_ELEVATION_DEG),
    )
}

/// Full Starlink phase 1 (all five shells).
pub fn starlink_phase1(ground_stations: Vec<GroundStation>) -> Constellation {
    Constellation::build(
        "Starlink",
        starlink_shells(),
        IslLayout::PlusGrid,
        ground_stations,
        GslConfig::new(STARLINK_MIN_ELEVATION_DEG),
    )
}

/// Full Kuiper (all three shells).
pub fn kuiper_full(ground_stations: Vec<GroundStation>) -> Constellation {
    Constellation::build(
        "Kuiper",
        kuiper_shells(),
        IslLayout::PlusGrid,
        ground_stations,
        GslConfig::new(KUIPER_MIN_ELEVATION_DEG),
    )
}

/// Full Telesat (both shells).
pub fn telesat_full(ground_stations: Vec<GroundStation>) -> Constellation {
    Constellation::build(
        "Telesat",
        telesat_shells(),
        IslLayout::PlusGrid,
        ground_stations,
        GslConfig::new(TELESAT_MIN_ELEVATION_DEG),
    )
}

/// Kuiper K1 without ISLs, for Appendix A's bent-pipe experiments.
pub fn kuiper_k1_bent_pipe(ground_stations: Vec<GroundStation>) -> Constellation {
    Constellation::build(
        "Kuiper K1 (bent-pipe)",
        vec![kuiper_shells().remove(0)],
        IslLayout::None,
        ground_stations,
        GslConfig::new(KUIPER_MIN_ELEVATION_DEG),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 totals: Starlink phase-1 has 4,409 satellites.
    #[test]
    fn starlink_phase1_totals() {
        let total: u32 = starlink_shells().iter().map(|s| s.num_satellites()).sum();
        assert_eq!(total, 4_409);
    }

    /// Kuiper plans 3,236 satellites across three shells.
    #[test]
    fn kuiper_totals() {
        let total: u32 = kuiper_shells().iter().map(|s| s.num_satellites()).sum();
        assert_eq!(total, 3_236);
    }

    /// Telesat's Table-1 shells: 27×13 + 40×33 = 1,671 satellites.
    #[test]
    fn telesat_totals() {
        let total: u32 = telesat_shells().iter().map(|s| s.num_satellites()).sum();
        assert_eq!(total, 1_671);
    }

    #[test]
    fn first_shells_match_table_one() {
        let s1 = &starlink_shells()[0];
        assert_eq!((s1.num_orbits, s1.sats_per_orbit), (72, 22));
        assert_eq!(s1.altitude_km, 550.0);
        assert_eq!(s1.inclination_deg, 53.0);

        let k1 = &kuiper_shells()[0];
        assert_eq!((k1.num_orbits, k1.sats_per_orbit), (34, 34));
        assert_eq!(k1.altitude_km, 630.0);
        assert_eq!(k1.inclination_deg, 51.9);

        let t1 = &telesat_shells()[0];
        assert_eq!((t1.num_orbits, t1.sats_per_orbit), (27, 13));
        assert_eq!(t1.altitude_km, 1015.0);
        assert_eq!(t1.inclination_deg, 98.98);
    }

    #[test]
    fn telesat_t1_fraction_of_fleet() {
        // Paper: "roughly a fifth of which will cover the higher latitudes".
        let t1 = telesat_shells()[0].num_satellites() as f64;
        let total = 1_671.0;
        assert!((t1 / total - 0.21).abs() < 0.03, "fraction {}", t1 / total);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn min_elevations_ordered_telesat_lowest() {
        assert!(TELESAT_MIN_ELEVATION_DEG < STARLINK_MIN_ELEVATION_DEG);
        assert!(STARLINK_MIN_ELEVATION_DEG < KUIPER_MIN_ELEVATION_DEG);
    }

    #[test]
    fn preset_constellations_build() {
        let gs = vec![GroundStation::new("X", 0.0, 0.0)];
        assert_eq!(starlink_s1(gs.clone()).num_satellites(), 1_584);
        assert_eq!(kuiper_k1(gs.clone()).num_satellites(), 1_156);
        assert_eq!(telesat_t1(gs.clone()).num_satellites(), 351);
        assert!(kuiper_k1_bent_pipe(gs).isls.is_empty());
    }

    #[test]
    #[ignore = "builds all 4409 Starlink satellites; run with --ignored"]
    fn full_starlink_builds() {
        let gs = vec![GroundStation::new("X", 0.0, 0.0)];
        let c = starlink_phase1(gs);
        assert_eq!(c.num_satellites(), 4_409);
        assert_eq!(c.isls.len(), 2 * 4_409);
    }
}
