//! The assembled constellation: satellites, ground stations, node ids, and
//! positions over time.
//!
//! Node numbering follows the paper's simulator: satellites first (in shell
//! order, plane-major), then ground stations. Everything downstream — the
//! routing graph, the packet simulator, the visualizations — shares this
//! id space.

use crate::ground::GroundStation;
use crate::gsl::GslConfig;
use crate::isl::{build_isls, IslLayout};
use crate::shell::ShellSpec;
use hypatia_orbit::frames::eci_to_ecef;
use hypatia_orbit::propagate::{PerturbationModel, Propagator};
use hypatia_orbit::tle::Tle;
use hypatia_util::{SimTime, Vec3};
use serde::{Deserialize, Serialize};

/// Identifier of a node (satellite or ground station) in a constellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One satellite: its place in the constellation plus its propagator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Satellite {
    /// Index of the shell this satellite belongs to.
    pub shell: usize,
    /// Orbital plane within the shell.
    pub orbit: u32,
    /// Position within the plane.
    pub idx_in_orbit: u32,
    /// Propagator (elements at epoch + perturbation model).
    pub propagator: Propagator,
}

/// A complete constellation plus the ground segment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Constellation {
    /// Human-readable name ("Starlink", "Kuiper K1", ...).
    pub name: String,
    /// The shells making up the constellation.
    pub shells: Vec<ShellSpec>,
    /// All satellites, shell-major then plane-major.
    pub satellites: Vec<Satellite>,
    /// Undirected ISL pairs (satellite indices).
    pub isls: Vec<(u32, u32)>,
    /// Ground stations (ids follow the satellites).
    pub ground_stations: Vec<GroundStation>,
    /// GSL configuration (minimum elevation etc.).
    pub gsl: GslConfig,
    /// May ground stations forward traffic (act as relays)? `false` for
    /// ISL constellations — GSes are endpoints only; `true` for bent-pipe
    /// constellations whose long-haul connectivity goes up and down
    /// through ground relays (paper Appendix A).
    pub gs_relay: bool,
}

impl Constellation {
    /// Build a constellation from shells, an ISL layout, ground stations and
    /// a GSL configuration. Satellites use the J2 propagation model.
    pub fn build(
        name: impl Into<String>,
        shells: Vec<ShellSpec>,
        isl_layout: IslLayout,
        ground_stations: Vec<GroundStation>,
        gsl: GslConfig,
    ) -> Self {
        Self::build_with_model(
            name,
            shells,
            isl_layout,
            ground_stations,
            gsl,
            PerturbationModel::J2Secular,
        )
    }

    /// As [`Constellation::build`] but with an explicit perturbation model
    /// (two-body is useful for analytic tests).
    pub fn build_with_model(
        name: impl Into<String>,
        shells: Vec<ShellSpec>,
        isl_layout: IslLayout,
        ground_stations: Vec<GroundStation>,
        gsl: GslConfig,
        model: PerturbationModel,
    ) -> Self {
        assert!(!shells.is_empty(), "constellation needs at least one shell");
        let mut satellites = Vec::new();
        for (shell_idx, shell) in shells.iter().enumerate() {
            for orbit in 0..shell.num_orbits {
                for idx in 0..shell.sats_per_orbit {
                    let elements = shell.satellite_elements(orbit, idx);
                    satellites.push(Satellite {
                        shell: shell_idx,
                        orbit,
                        idx_in_orbit: idx,
                        propagator: Propagator { elements, model },
                    });
                }
            }
        }
        // Bent-pipe (ISL-less) constellations necessarily relay through
        // ground stations; +Grid constellations terminate at them.
        let gs_relay = matches!(isl_layout, IslLayout::None);
        let isls = build_isls(&shells, isl_layout);
        Constellation {
            name: name.into(),
            shells,
            satellites,
            isls,
            ground_stations,
            gsl,
            gs_relay,
        }
    }

    /// Number of satellites.
    pub fn num_satellites(&self) -> usize {
        self.satellites.len()
    }

    /// Number of ground stations.
    pub fn num_ground_stations(&self) -> usize {
        self.ground_stations.len()
    }

    /// Total node count (satellites + ground stations).
    pub fn num_nodes(&self) -> usize {
        self.num_satellites() + self.num_ground_stations()
    }

    /// Node id of satellite `sat_idx`.
    pub fn sat_node(&self, sat_idx: usize) -> NodeId {
        assert!(sat_idx < self.num_satellites(), "satellite {sat_idx} out of range");
        NodeId(sat_idx as u32)
    }

    /// Node id of ground station `gs_idx`.
    pub fn gs_node(&self, gs_idx: usize) -> NodeId {
        assert!(gs_idx < self.num_ground_stations(), "ground station {gs_idx} out of range");
        NodeId((self.num_satellites() + gs_idx) as u32)
    }

    /// True if `node` is a satellite.
    pub fn is_satellite(&self, node: NodeId) -> bool {
        node.index() < self.num_satellites()
    }

    /// Ground-station index of a GS node. Panics for satellite nodes.
    pub fn gs_index(&self, node: NodeId) -> usize {
        assert!(!self.is_satellite(node), "{node} is a satellite");
        node.index() - self.num_satellites()
    }

    /// ECEF position of satellite `sat_idx` at time `t`, km.
    pub fn sat_position_ecef(&self, sat_idx: usize, t: SimTime) -> Vec3 {
        eci_to_ecef(self.satellites[sat_idx].propagator.position_at(t), t)
    }

    /// ECEF position of any node at time `t`, km (GS positions are fixed).
    pub fn node_position_ecef(&self, node: NodeId, t: SimTime) -> Vec3 {
        if self.is_satellite(node) {
            self.sat_position_ecef(node.index(), t)
        } else {
            self.ground_stations[self.gs_index(node)].position_ecef()
        }
    }

    /// Snapshot of every node's ECEF position at `t` (satellites first).
    /// This is the hot input to graph construction; callers should reuse it
    /// across all queries for one time-step.
    pub fn positions_at(&self, t: SimTime) -> Vec<Vec3> {
        let mut out = Vec::with_capacity(self.num_nodes());
        self.positions_at_into(t, &mut out);
        out
    }

    /// As [`Self::positions_at`], but writing into a caller-owned buffer so
    /// per-time-step sweeps reuse one allocation across all steps.
    pub fn positions_at_into(&self, t: SimTime, out: &mut Vec<Vec3>) {
        out.clear();
        out.reserve(self.num_nodes());
        out.extend((0..self.num_satellites()).map(|s| self.sat_position_ecef(s, t)));
        out.extend(self.ground_stations.iter().map(|g| g.position_ecef()));
    }

    /// Distance between two nodes at time `t`, km.
    pub fn distance_km(&self, a: NodeId, b: NodeId, t: SimTime) -> f64 {
        self.node_position_ecef(a, t).distance(self.node_position_ecef(b, t))
    }

    /// Generate the TLE set for the whole constellation (paper §3.1's
    /// "TLE generation" step), epoch at year `epoch_year`, day 1.0.
    pub fn generate_tles(&self, epoch_year: u8) -> Vec<Tle> {
        self.satellites
            .iter()
            .enumerate()
            .map(|(i, sat)| {
                let shell_name = &self.shells[sat.shell].name;
                Tle::from_elements(
                    format!("{}-{} {}", self.name.to_uppercase(), shell_name, i),
                    i as u32 + 1,
                    &sat.propagator.elements,
                    epoch_year,
                    1.0,
                )
            })
            .collect()
    }

    /// May `node` forward packets that are not addressed to it?
    pub fn may_transit(&self, node: NodeId) -> bool {
        self.is_satellite(node) || self.gs_relay
    }

    /// Find a ground station by (case-insensitive) name.
    pub fn find_gs(&self, name: &str) -> Option<usize> {
        let lower = name.to_lowercase();
        self.ground_stations.iter().position(|g| g.name.to_lowercase() == lower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::GroundStation;
    use crate::presets;
    use hypatia_util::SimDuration;

    fn small() -> Constellation {
        let shell = ShellSpec::new("T", 550.0, 4, 5, 53.0);
        let gses = vec![GroundStation::new("A", 0.0, 0.0), GroundStation::new("B", 45.0, 90.0)];
        Constellation::build("Test", vec![shell], IslLayout::PlusGrid, gses, GslConfig::new(25.0))
    }

    #[test]
    fn node_id_layout() {
        let c = small();
        assert_eq!(c.num_satellites(), 20);
        assert_eq!(c.num_ground_stations(), 2);
        assert_eq!(c.num_nodes(), 22);
        assert_eq!(c.sat_node(0), NodeId(0));
        assert_eq!(c.gs_node(0), NodeId(20));
        assert!(c.is_satellite(NodeId(19)));
        assert!(!c.is_satellite(NodeId(20)));
        assert_eq!(c.gs_index(NodeId(21)), 1);
    }

    #[test]
    fn positions_snapshot_matches_individual_queries() {
        let c = small();
        let t = SimTime::from_secs(77);
        let snap = c.positions_at(t);
        assert_eq!(snap.len(), 22);
        for (i, p) in snap.iter().enumerate() {
            assert!(p.distance(c.node_position_ecef(NodeId(i as u32), t)) < 1e-12);
        }
    }

    #[test]
    fn satellites_move_ground_stations_do_not() {
        let c = small();
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(10);
        assert!(c.distance_km(c.sat_node(0), c.sat_node(0), t0) < 1e-12);
        let sat_moved = c.sat_position_ecef(0, t0).distance(c.sat_position_ecef(0, t1));
        assert!(sat_moved > 10.0, "satellite moved only {sat_moved} km in 10 s");
        let gs0 = c.node_position_ecef(c.gs_node(0), t0);
        let gs1 = c.node_position_ecef(c.gs_node(0), t1);
        assert!(gs0.distance(gs1) < 1e-12);
    }

    #[test]
    fn kuiper_k1_has_1156_satellites() {
        let c = presets::kuiper_k1(vec![GroundStation::new("X", 0.0, 0.0)]);
        assert_eq!(c.num_satellites(), 34 * 34);
    }

    #[test]
    fn tle_generation_covers_all_satellites() {
        let c = small();
        let tles = c.generate_tles(24);
        assert_eq!(tles.len(), 20);
        // Spot-check a round trip.
        let t5 = &tles[5];
        let parsed = Tle::parse(t5.name.clone(), &t5.format_line1(), &t5.format_line2()).unwrap();
        let orig = &c.satellites[5].propagator.elements;
        assert!(
            (parsed.to_elements().perigee_altitude_km() - orig.perigee_altitude_km()).abs() < 0.1
        );
    }

    #[test]
    fn find_gs_is_case_insensitive() {
        let c = small();
        assert_eq!(c.find_gs("a"), Some(0));
        assert_eq!(c.find_gs("B"), Some(1));
        assert_eq!(c.find_gs("zzz"), None);
    }

    #[test]
    #[should_panic]
    fn gs_index_of_satellite_panics() {
        small().gs_index(NodeId(0));
    }
}
