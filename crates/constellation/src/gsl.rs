//! Ground–satellite link (GSL) configuration and visibility queries.
//!
//! Paper §3.1: each GS can be configured to connect to multiple satellites
//! or only its nearest; connectivity requires the satellite to be above the
//! operator's minimum elevation angle. Visibility search prunes by the
//! closed-form maximum slant range before computing elevations.

use crate::constellation::Constellation;
use hypatia_orbit::visibility::{conservative_max_gsl_range_km, elevation_deg, is_visible};
use hypatia_util::{SimTime, Vec3};
use serde::{Deserialize, Serialize};

/// How many satellites a ground station may use simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GslSelection {
    /// The GS may connect to every visible satellite (gateway-class GS with
    /// multiple parabolic antennas — the paper's default).
    #[default]
    AllVisible,
    /// The GS connects only to its nearest visible satellite (user-terminal
    /// style restriction).
    NearestOnly,
}

/// GSL parameters for a constellation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GslConfig {
    /// Minimum angle of elevation `l`, degrees (Table: Starlink 25°,
    /// Kuiper 30°, Telesat 10°).
    pub min_elevation_deg: f64,
    /// Satellite-selection policy.
    pub selection: GslSelection,
}

impl GslConfig {
    /// Config with the default (all-visible) selection.
    pub fn new(min_elevation_deg: f64) -> Self {
        assert!((0.0..=90.0).contains(&min_elevation_deg), "bad min elevation {min_elevation_deg}");
        GslConfig { min_elevation_deg, selection: GslSelection::default() }
    }

    /// Nearest-only variant.
    pub fn nearest_only(min_elevation_deg: f64) -> Self {
        GslConfig { selection: GslSelection::NearestOnly, ..GslConfig::new(min_elevation_deg) }
    }
}

/// A visible satellite as seen from a ground station.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisibleSat {
    /// Satellite index (not NodeId — satellites are ids 0..N anyway).
    pub sat_idx: usize,
    /// Slant range, km.
    pub range_km: f64,
    /// Elevation, degrees.
    pub elevation_deg: f64,
}

/// All satellites visible from ECEF point `gs_pos` at time `t`, given the
/// pre-computed satellite position snapshot `sat_positions` (one entry per
/// satellite). Sorted by ascending range.
pub fn visible_satellites(
    constellation: &Constellation,
    gs_pos: Vec3,
    sat_positions: &[Vec3],
    _t: SimTime,
) -> Vec<VisibleSat> {
    let min_el = constellation.gsl.min_elevation_deg;
    // Pre-compute the per-shell range bound for cheap pruning. The bound
    // must hold for ground stations anywhere on the ellipsoid (it grows as
    // the station sits closer to the geocenter), hence the conservative
    // (polar-radius) form — the exact elevation test makes the decision.
    let shell_max_range: Vec<f64> = constellation
        .shells
        .iter()
        .map(|s| conservative_max_gsl_range_km(s.altitude_km, min_el))
        .collect();

    let mut out = Vec::new();
    for (idx, (sat, &pos)) in constellation.satellites.iter().zip(sat_positions.iter()).enumerate()
    {
        let range = gs_pos.distance(pos);
        if range > shell_max_range[sat.shell] + 1e-9 {
            continue;
        }
        let el = elevation_deg(gs_pos, pos);
        if el >= min_el {
            out.push(VisibleSat { sat_idx: idx, range_km: range, elevation_deg: el });
        }
    }
    out.sort_by(|a, b| a.range_km.total_cmp(&b.range_km));
    out
}

/// The satellites a GS may *use* under the configured selection policy.
pub fn usable_satellites(
    constellation: &Constellation,
    gs_pos: Vec3,
    sat_positions: &[Vec3],
    t: SimTime,
) -> Vec<VisibleSat> {
    let mut vis = visible_satellites(constellation, gs_pos, sat_positions, t);
    if constellation.gsl.selection == GslSelection::NearestOnly {
        vis.truncate(1);
    }
    vis
}

/// Check visibility of one specific satellite from one GS (for handoff and
/// forwarding-validity checks in the packet simulator).
pub fn gs_sees_sat(constellation: &Constellation, gs_pos: Vec3, sat_pos: Vec3) -> bool {
    is_visible(gs_pos, sat_pos, constellation.gsl.min_elevation_deg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::GroundStation;
    use crate::isl::IslLayout;
    use crate::presets;
    use crate::shell::ShellSpec;
    use hypatia_util::SimTime;

    fn kuiper_with(gs: Vec<GroundStation>) -> Constellation {
        presets::kuiper_k1(gs)
    }

    #[test]
    fn equatorial_gs_sees_satellites_in_k1() {
        let gs = GroundStation::new("Singapore", 1.3521, 103.8198);
        let c = kuiper_with(vec![gs.clone()]);
        let t = SimTime::ZERO;
        let sats = c.positions_at(t);
        let vis = visible_satellites(&c, gs.position_ecef(), &sats[..c.num_satellites()], t);
        assert!(!vis.is_empty(), "Singapore should see Kuiper satellites");
        // Ranges sorted ascending and all above min elevation.
        for w in vis.windows(2) {
            assert!(w[0].range_km <= w[1].range_km);
        }
        for v in &vis {
            assert!(v.elevation_deg >= 30.0);
            assert!(v.range_km >= 630.0 - 1.0, "range below altitude: {}", v.range_km);
        }
    }

    /// Regression: St. Petersburg's connectivity to K1 is a knife-edge case
    /// (the city sits ~0.2° inside the coverage edge only because the
    /// ellipsoid lowers it towards the geocenter). A spherical-Earth range
    /// prune silently discards exactly these marginal satellites.
    #[test]
    fn st_petersburg_sees_marginal_satellites() {
        let gs = GroundStation::new("Saint Petersburg", 59.9311, 30.3609);
        let c = kuiper_with(vec![gs.clone()]);
        let sats = c.positions_at(SimTime::ZERO);
        let vis =
            visible_satellites(&c, gs.position_ecef(), &sats[..c.num_satellites()], SimTime::ZERO);
        assert!(!vis.is_empty(), "St. Petersburg must see K1 at t=0 (Fig. 3a/12)");
        // And the prune must agree with the brute-force elevation scan.
        let brute = (0..c.num_satellites())
            .filter(|&i| elevation_deg(gs.position_ecef(), sats[i]) >= 30.0)
            .count();
        assert_eq!(vis.len(), brute);
    }

    #[test]
    fn polar_gs_sees_nothing_in_k1() {
        // K1's 51.9° inclination leaves the poles uncovered at l = 30°.
        let gs = GroundStation::new("NorthPole", 89.9, 0.0);
        let c = kuiper_with(vec![gs.clone()]);
        let t = SimTime::ZERO;
        let sats = c.positions_at(t);
        let vis = visible_satellites(&c, gs.position_ecef(), &sats[..c.num_satellites()], t);
        assert!(vis.is_empty(), "pole unexpectedly sees {} satellites", vis.len());
    }

    #[test]
    fn telesat_t1_covers_the_poles() {
        // T1's 98.98° inclination covers high latitudes (paper §2.2).
        let gs = GroundStation::new("NorthPole", 89.9, 0.0);
        let c = presets::telesat_t1(vec![gs.clone()]);
        let t = SimTime::ZERO;
        let sats = c.positions_at(t);
        let vis = visible_satellites(&c, gs.position_ecef(), &sats[..c.num_satellites()], t);
        assert!(!vis.is_empty(), "pole should see Telesat T1");
    }

    #[test]
    fn nearest_only_truncates() {
        let gs = GroundStation::new("Quito", -0.18, -78.47);
        let shell = ShellSpec::new("S", 630.0, 34, 34, 51.9);
        let c = Constellation::build(
            "NearTest",
            vec![shell],
            IslLayout::PlusGrid,
            vec![gs.clone()],
            GslConfig::nearest_only(30.0),
        );
        let t = SimTime::ZERO;
        let sats = c.positions_at(t);
        let usable = usable_satellites(&c, gs.position_ecef(), &sats[..c.num_satellites()], t);
        assert!(usable.len() <= 1);
        let all = visible_satellites(&c, gs.position_ecef(), &sats[..c.num_satellites()], t);
        if let Some(first) = usable.first() {
            assert_eq!(first.sat_idx, all[0].sat_idx, "nearest-only must pick the nearest");
        }
    }

    #[test]
    fn lower_min_elevation_sees_more() {
        // The paper's Telesat explanation: lower `l` → more visible
        // satellites → more path options.
        let gs = GroundStation::new("Nairobi", -1.2921, 36.8219);
        let shell = ShellSpec::new("X", 1015.0, 27, 13, 98.98);
        let t = SimTime::ZERO;
        let counts: Vec<usize> = [10.0, 30.0, 50.0]
            .iter()
            .map(|&l| {
                let c = Constellation::build(
                    "V",
                    vec![shell.clone()],
                    IslLayout::PlusGrid,
                    vec![gs.clone()],
                    GslConfig::new(l),
                );
                let sats = c.positions_at(t);
                visible_satellites(&c, gs.position_ecef(), &sats[..c.num_satellites()], t).len()
            })
            .collect();
        assert!(counts[0] >= counts[1] && counts[1] >= counts[2], "{counts:?}");
        assert!(counts[0] > counts[2], "visibility should strictly grow by l: {counts:?}");
    }

    #[test]
    fn visibility_prune_agrees_with_direct_elevation() {
        // The range-based prune must never discard a satellite that the
        // elevation test would accept.
        let gs = GroundStation::new("Istanbul", 41.0082, 28.9784);
        let c = kuiper_with(vec![gs.clone()]);
        let t = SimTime::from_secs(60);
        let sats = c.positions_at(t);
        let fast = visible_satellites(&c, gs.position_ecef(), &sats[..c.num_satellites()], t);
        let slow: Vec<usize> = (0..c.num_satellites())
            .filter(|&i| elevation_deg(gs.position_ecef(), sats[i]) >= c.gsl.min_elevation_deg)
            .collect();
        let fast_ids: Vec<usize> = fast.iter().map(|v| v.sat_idx).collect();
        let mut fast_sorted = fast_ids.clone();
        fast_sorted.sort_unstable();
        assert_eq!(fast_sorted, slow);
    }
}
