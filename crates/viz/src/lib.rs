//! Visualization exporters for Hypatia.
//!
//! The paper's visualization module renders, via Cesium, four interactive
//! views (§3.3/§6): satellite trajectories, the ground observer's sky view,
//! end-end paths over time, and link utilization. A browser is not part of
//! this reproduction, so this crate generates the *documents* those views
//! consume — CZML (Cesium's JSON dialect) for trajectories, structured
//! JSON for paths and utilization, ASCII for the sky view — plus
//! gnuplot-ready CSV for every figure series.
//!
//! * [`czml`] — satellite trajectory documents (Fig. 11);
//! * [`ground_view`] — azimuth/elevation observer snapshots (Fig. 12);
//! * [`path_viz`] — end-end path snapshots with geometry (Figs. 13, 16, 17);
//! * [`util_viz`] — per-ISL utilization maps (Figs. 14, 15);
//! * [`csv`] — series/CDF writers shared by the benchmark harness;
//! * [`sink`] — the artifact sink: one recorder through which every
//!   experiment output (series, JSON, CZML, text, traces) is written, with
//!   a `manifest.json` of names, sizes, and checksums per run.

pub mod csv;
pub mod czml;
pub mod ground_view;
pub mod path_viz;
pub mod util_viz;

pub mod sink;
