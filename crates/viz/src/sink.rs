//! Artifact sinks: every experiment output goes through one recorder.
//!
//! The benchmark binaries used to each reimplement "write a series file,
//! print the path". An [`ArtifactSink`] centralizes that: it owns the
//! output directory, writes gnuplot series / JSON documents / CZML /
//! plain text through the shared [`crate::csv`] and
//! [`crate::czml`] formatters, and records every produced file —
//! name, size, and checksum — so a run can finish by emitting a
//! `manifest.json` that states exactly what it produced. Byte checksums
//! make regression tests one-line: two runs match iff their manifests do.

// The sink is a crash-resilience surface: a panic while writing artifacts
// loses the run. Errors must flow out as typed values, never unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::{csv, czml};
use hypatia_netsim::audit::AuditViolation;
use hypatia_netsim::trace::Trace;
use hypatia_netsim::EngineReport;
use serde_json::{json, Value};
use std::io;
use std::path::{Path, PathBuf};

/// One produced file, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactRecord {
    /// File name relative to the sink's output directory.
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
    /// FNV-1a 64-bit checksum of the file contents.
    pub fnv64: u64,
}

/// Aggregated engine telemetry across a run's simulations.
#[derive(Debug, Clone, Copy, Default)]
struct EngineAggregate {
    sim_shards: usize,
    epochs: u64,
    barriers: u64,
    min_lookahead_ns: Option<u64>,
}

/// Records and writes experiment artifacts under one output directory.
#[derive(Debug)]
pub struct ArtifactSink {
    out_dir: PathBuf,
    records: Vec<ArtifactRecord>,
    warnings: Vec<String>,
    /// Simulated events accumulated across the run's simulations.
    sim_events: u64,
    /// Wall-clock seconds those simulations took.
    sim_wall_s: f64,
    /// Engine telemetry (present once any simulation reported it).
    engine: Option<EngineAggregate>,
    /// `Some((status, error))` once the supervisor marks the run aborted.
    status: Option<(String, String)>,
    /// Snapshot writes recorded via [`ArtifactSink::record_checkpoints`].
    checkpoint_count: u64,
    /// Freshest snapshot path (relative to `out_dir` when inside it).
    last_checkpoint: Option<String>,
    /// Conservation audits recorded via [`ArtifactSink::record_audit`].
    audit_checks: u64,
    /// Violations those audits found, pre-serialized.
    audit_violations: Vec<Value>,
    /// Echo `wrote <path>` lines to stdout (the bench binaries' historic
    /// behaviour); disable for tests.
    pub verbose: bool,
}

impl ArtifactSink {
    /// A sink writing into `out_dir` (created on first write).
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        ArtifactSink {
            out_dir: out_dir.into(),
            records: Vec::new(),
            warnings: Vec::new(),
            sim_events: 0,
            sim_wall_s: 0.0,
            engine: None,
            status: None,
            checkpoint_count: 0,
            last_checkpoint: None,
            audit_checks: 0,
            audit_violations: Vec::new(),
            verbose: true,
        }
    }

    /// Account a simulation's event count and wall-clock cost towards the
    /// run's events/sec line (summed across calls; the manifest reports
    /// the aggregate rate).
    pub fn record_sim(&mut self, events: u64, wall_s: f64) {
        self.sim_events += events;
        self.sim_wall_s += wall_s;
    }

    /// Total simulated events recorded via [`ArtifactSink::record_sim`].
    pub fn sim_events(&self) -> u64 {
        self.sim_events
    }

    /// Account how the simulator engine executed a run: shard count,
    /// epoch/barrier counts, and the smallest conservative lookahead
    /// window. Counts sum across calls (a run may simulate several
    /// workloads); the shard count is the last recorded and the lookahead
    /// the smallest seen. Reported in the manifest's `perf.engine` block.
    pub fn record_engine(&mut self, report: &EngineReport) {
        let e = self.engine.get_or_insert_with(EngineAggregate::default);
        e.sim_shards = report.sim_shards;
        e.epochs += report.epochs;
        e.barriers += report.barriers;
        e.min_lookahead_ns = match (e.min_lookahead_ns, report.min_lookahead_ns) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }

    /// Mark the run aborted with a one-line reason; the manifest gains
    /// `"status": "aborted"` and an `error` line.
    pub fn set_aborted(&mut self, error: &str) {
        self.status = Some(("aborted".to_string(), error.to_string()));
    }

    /// Account `count` more snapshot writes, freshest at `path`; the
    /// manifest gains a `checkpoints` section once any were recorded.
    pub fn record_checkpoints(&mut self, count: u64, path: &Path) {
        self.checkpoint_count += count;
        self.set_last_checkpoint(path);
    }

    /// Point the manifest at the freshest on-disk snapshot (shown relative
    /// to the output directory when inside it).
    pub fn set_last_checkpoint(&mut self, path: &Path) {
        let shown = path.strip_prefix(&self.out_dir).unwrap_or(path);
        self.last_checkpoint = Some(shown.to_string_lossy().into_owned());
    }

    /// Account `checks` conservation audits and any violations they found;
    /// the manifest gains an `audit` section once any audit ran.
    pub fn record_audit(&mut self, checks: u64, violations: &[AuditViolation]) {
        self.audit_checks += checks;
        for v in violations {
            self.audit_violations.push(json!({
                "kind": v.kind(),
                "t_ns": v.t_ns(),
                "detail": v.to_string(),
            }));
        }
    }

    /// The output directory.
    pub fn out_dir(&self) -> &Path {
        &self.out_dir
    }

    /// Everything written so far, in write order.
    pub fn records(&self) -> &[ArtifactRecord] {
        &self.records
    }

    /// Warnings accumulated (e.g. truncated traces), in order.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Attach a warning to the run (also printed immediately).
    pub fn warn(&mut self, message: impl Into<String>) {
        let message = message.into();
        eprintln!("  warning: {message}");
        self.warnings.push(message);
    }

    /// Write a two-column gnuplot series (`# header` + `x y` lines).
    pub fn write_series(
        &mut self,
        name: &str,
        header: &str,
        points: &[(f64, f64)],
    ) -> io::Result<()> {
        self.write_bytes(name, csv::series_to_string(header, points).as_bytes())
    }

    /// Write pre-formatted text.
    pub fn write_text(&mut self, name: &str, content: &str) -> io::Result<()> {
        self.write_bytes(name, content.as_bytes())
    }

    /// Write a JSON document, pretty-printed.
    pub fn write_json(&mut self, name: &str, value: &Value) -> io::Result<()> {
        let text = serde_json::to_string_pretty(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.write_bytes(name, text.as_bytes())
    }

    /// Write a CZML document (a packet array).
    pub fn write_czml(&mut self, name: &str, packets: &[Value]) -> io::Result<()> {
        self.write_bytes(name, czml::to_json_string(packets).as_bytes())
    }

    /// Write a packet trace as text, one `t_s node packet_id kind` line per
    /// event; warns when the trace buffer overflowed (partial journey).
    pub fn write_trace(&mut self, name: &str, trace: &Trace) -> io::Result<()> {
        if trace.truncated() > 0 {
            self.warn(format!(
                "trace {name} is partial: {} events not recorded (buffer full)",
                trace.truncated()
            ));
        }
        if trace.sampled_out() > 0 {
            self.warn(format!(
                "trace {name} is sampled: {} events from unsampled flows dropped",
                trace.sampled_out()
            ));
        }
        let mut text = String::from("# t_s node packet_id kind\n");
        for e in trace.entries() {
            text.push_str(&format!(
                "{} {} {} {:?}\n",
                e.t.secs_f64(),
                e.node.0,
                e.packet_id,
                e.kind
            ));
        }
        self.write_bytes(name, text.as_bytes())
    }

    /// Write raw bytes under `name`, recording size and checksum.
    pub fn write_bytes(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        std::fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, bytes)?;
        if self.verbose {
            println!("  wrote {}", path.display());
        }
        self.records.push(ArtifactRecord {
            name: name.to_string(),
            bytes: bytes.len() as u64,
            fnv64: fnv1a_64(bytes),
        });
        Ok(())
    }

    /// The manifest document: experiment name, artifact list (name, size,
    /// checksum), warnings, and — when any simulation was accounted via
    /// [`ArtifactSink::record_sim`] — a `perf` section. Deterministic for
    /// identical artifact bytes, except the `events_per_sec` line, which is
    /// wall-clock; manifest-comparing tests strip that one line.
    pub fn manifest(&self, experiment: &str) -> Value {
        let artifacts: Vec<Value> = self
            .records
            .iter()
            .map(|r| {
                json!({
                    "name": r.name,
                    "bytes": r.bytes,
                    "fnv64": format!("{:016x}", r.fnv64),
                })
            })
            .collect();
        let warnings: Vec<Value> = self.warnings.iter().map(|w| Value::from(w.clone())).collect();
        let mut doc = json!({
            "experiment": experiment,
            "artifacts": Value::from(artifacts),
            "warnings": Value::from(warnings),
        });
        if self.sim_events > 0 {
            let rate = if self.sim_wall_s > 0.0 {
                (self.sim_events as f64 / self.sim_wall_s).round() as u64
            } else {
                0
            };
            let mut perf = json!({
                "events": self.sim_events,
                "events_per_sec": rate,
            });
            if let Some(e) = &self.engine {
                let mut engine = json!({
                    "sim_shards": e.sim_shards as u64,
                    "epochs": e.epochs,
                    "barriers": e.barriers,
                });
                if let (Some(ns), Some(obj)) = (e.min_lookahead_ns, engine.as_object_mut()) {
                    obj.insert("min_lookahead_ns".to_string(), Value::from(ns));
                }
                if let Some(obj) = perf.as_object_mut() {
                    obj.insert("engine".to_string(), engine);
                }
            }
            insert(&mut doc, "perf", perf);
        }
        if self.checkpoint_count > 0 || self.last_checkpoint.is_some() {
            let mut ck = json!({ "count": self.checkpoint_count });
            if let (Some(last), Some(obj)) = (&self.last_checkpoint, ck.as_object_mut()) {
                obj.insert("last".to_string(), Value::from(last.clone()));
            }
            insert(&mut doc, "checkpoints", ck);
        }
        if self.audit_checks > 0 {
            let audit = json!({
                "checks": self.audit_checks,
                "violations": Value::from(self.audit_violations.clone()),
            });
            insert(&mut doc, "audit", audit);
        }
        if let Some((status, error)) = &self.status {
            insert(&mut doc, "status", Value::from(status.clone()));
            insert(&mut doc, "error", Value::from(error.clone()));
        }
        doc
    }

    /// Write `manifest.json` describing everything produced so far.
    /// Returns the manifest path.
    pub fn write_manifest(&mut self, experiment: &str) -> io::Result<PathBuf> {
        let doc = self.manifest(experiment);
        let text = serde_json::to_string_pretty(&doc)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join("manifest.json");
        std::fs::write(&path, text)?;
        if self.verbose {
            println!("  wrote {}", path.display());
        }
        Ok(path)
    }
}

/// Insert a key into a JSON object value (no-op on non-objects; every
/// caller passes the manifest document, which is one).
fn insert(doc: &mut Value, key: &str, value: Value) {
    if let Some(obj) = doc.as_object_mut() {
        obj.insert(key.to_string(), value);
    }
}

// Checksum function, re-exported from `hypatia_util` where the simulator's
// per-flow hashing shares it (one FNV implementation repo-wide).
pub use hypatia_util::hash::fnv1a_64;

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_sink(tag: &str) -> ArtifactSink {
        let dir = std::env::temp_dir().join(format!("hypatia-sink-test-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut sink = ArtifactSink::new(dir);
        sink.verbose = false;
        sink
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn series_written_and_recorded() {
        let mut sink = temp_sink("series");
        sink.write_series("s.dat", "t_s y", &[(0.0, 1.0), (0.1, 2.0)]).unwrap();
        assert_eq!(sink.records().len(), 1);
        let rec = &sink.records()[0];
        assert_eq!(rec.name, "s.dat");
        let on_disk = std::fs::read(sink.out_dir().join("s.dat")).unwrap();
        assert_eq!(rec.bytes, on_disk.len() as u64);
        assert_eq!(rec.fnv64, fnv1a_64(&on_disk));
        assert_eq!(String::from_utf8(on_disk).unwrap(), "# t_s y\n0 1\n0.1 2\n");
        std::fs::remove_dir_all(sink.out_dir()).ok();
    }

    #[test]
    fn manifest_lists_artifacts_and_warnings() {
        let mut sink = temp_sink("manifest");
        sink.write_text("a.txt", "hello").unwrap();
        sink.warnings.push("something partial".into());
        let path = sink.write_manifest("my_experiment").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("my_experiment"), "{text}");
        assert!(text.contains("a.txt"), "{text}");
        assert!(text.contains("something partial"), "{text}");
        let doc: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(doc.get("experiment").and_then(Value::as_str), Some("my_experiment"));
        let arts = doc.get("artifacts").and_then(Value::as_array).unwrap();
        assert_eq!(arts.len(), 1);
        assert_eq!(arts[0].get("bytes").and_then(Value::as_u64), Some(5));
        std::fs::remove_dir_all(sink.out_dir()).ok();
    }

    #[test]
    fn perf_section_appears_only_when_sims_recorded() {
        let mut sink = temp_sink("perf");
        sink.write_text("a.txt", "x").unwrap();
        assert!(sink.manifest("e").get("perf").is_none(), "no perf without record_sim");
        sink.record_sim(1000, 0.5);
        sink.record_sim(500, 0.5);
        let doc = sink.manifest("e");
        let perf = doc.get("perf").expect("perf section after record_sim");
        assert_eq!(perf.get("events").and_then(Value::as_u64), Some(1500));
        assert_eq!(perf.get("events_per_sec").and_then(Value::as_u64), Some(1500));
        assert_eq!(sink.sim_events(), 1500);
        std::fs::remove_dir_all(sink.out_dir()).ok();
    }

    #[test]
    fn engine_block_reports_sharded_runs() {
        let mut sink = temp_sink("engine");
        sink.record_sim(1000, 0.5);
        assert!(
            sink.manifest("e").get("perf").unwrap().get("engine").is_none(),
            "no engine block without record_engine"
        );
        sink.record_engine(&EngineReport {
            sim_shards: 4,
            epochs: 10,
            barriers: 7,
            min_lookahead_ns: Some(1_500_000),
        });
        sink.record_engine(&EngineReport {
            sim_shards: 4,
            epochs: 5,
            barriers: 2,
            min_lookahead_ns: Some(1_200_000),
        });
        let doc = sink.manifest("e");
        let engine = doc.get("perf").unwrap().get("engine").expect("engine block");
        assert_eq!(engine.get("sim_shards").and_then(Value::as_u64), Some(4));
        assert_eq!(engine.get("epochs").and_then(Value::as_u64), Some(15));
        assert_eq!(engine.get("barriers").and_then(Value::as_u64), Some(9));
        assert_eq!(engine.get("min_lookahead_ns").and_then(Value::as_u64), Some(1_200_000));

        // Serial reports carry no lookahead; the key is omitted.
        let mut serial = temp_sink("engine-serial");
        serial.record_sim(10, 0.1);
        serial.record_engine(&EngineReport {
            sim_shards: 1,
            epochs: 0,
            barriers: 0,
            min_lookahead_ns: None,
        });
        let doc = serial.manifest("e");
        let engine = doc.get("perf").unwrap().get("engine").expect("engine block");
        assert_eq!(engine.get("sim_shards").and_then(Value::as_u64), Some(1));
        assert!(engine.get("min_lookahead_ns").is_none());
        std::fs::remove_dir_all(sink.out_dir()).ok();
        std::fs::remove_dir_all(serial.out_dir()).ok();
    }

    #[test]
    fn truncated_trace_warns() {
        use hypatia_constellation::NodeId;
        use hypatia_netsim::trace::TraceKind;
        use hypatia_util::SimTime;
        let mut tr = Trace::new(1);
        tr.record(SimTime::ZERO, NodeId(0), 1, TraceKind::Inject);
        tr.record(SimTime::ZERO, NodeId(1), 1, TraceKind::Arrive);
        let mut sink = temp_sink("trace");
        sink.write_trace("trace.txt", &tr).unwrap();
        assert_eq!(sink.warnings().len(), 1);
        assert!(sink.warnings()[0].contains("partial"), "{}", sink.warnings()[0]);
        std::fs::remove_dir_all(sink.out_dir()).ok();
    }

    #[test]
    fn sampled_trace_warns() {
        use hypatia_constellation::NodeId;
        use hypatia_netsim::trace::TraceKind;
        use hypatia_util::SimTime;
        let mut tr = Trace::with_sampling(8, 2);
        // flow hash 2 is kept (divisible by 2), hash 3 is sampled out.
        tr.record_flow(SimTime::ZERO, NodeId(0), 1, 2, TraceKind::Inject);
        tr.record_flow(SimTime::ZERO, NodeId(0), 2, 3, TraceKind::Inject);
        let mut sink = temp_sink("sampled-trace");
        sink.write_trace("trace.txt", &tr).unwrap();
        assert_eq!(sink.warnings().len(), 1);
        assert!(sink.warnings()[0].contains("sampled"), "{}", sink.warnings()[0]);
        std::fs::remove_dir_all(sink.out_dir()).ok();
    }

    #[test]
    fn resilience_sections_appear_only_when_recorded() {
        let mut sink = temp_sink("resilience");
        sink.write_text("a.txt", "x").unwrap();
        let doc = sink.manifest("e");
        assert!(doc.get("checkpoints").is_none(), "no checkpoints section by default");
        assert!(doc.get("audit").is_none(), "no audit section by default");
        assert!(doc.get("status").is_none(), "no status on a healthy run");

        let snap = sink.out_dir().join("checkpoints").join("tcp_10mbps.snap");
        sink.record_checkpoints(3, &snap);
        let violation = AuditViolation::QueueOverCapacity {
            t_ns: 42,
            node: 1,
            device: 2,
            queue_len: 101,
            capacity: 100,
        };
        sink.record_audit(5, std::slice::from_ref(&violation));
        sink.record_audit(2, &[]);
        sink.set_aborted("deadline exceeded: 9.0 s elapsed, limit 5.0 s");

        let doc = sink.manifest("e");
        let ck = doc.get("checkpoints").expect("checkpoints section");
        assert_eq!(ck.get("count").and_then(Value::as_u64), Some(3));
        assert_eq!(
            ck.get("last").and_then(Value::as_str),
            Some("checkpoints/tcp_10mbps.snap"),
            "snapshot path is relative to the output directory"
        );
        let audit = doc.get("audit").expect("audit section");
        assert_eq!(audit.get("checks").and_then(Value::as_u64), Some(7));
        let violations = audit.get("violations").and_then(Value::as_array).expect("array");
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].get("kind").and_then(Value::as_str), Some("queue_over_capacity"));
        assert_eq!(violations[0].get("t_ns").and_then(Value::as_u64), Some(42));
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("aborted"));
        assert!(
            doc.get("error").and_then(Value::as_str).unwrap_or("").contains("deadline"),
            "{doc:?}"
        );
        std::fs::remove_dir_all(sink.out_dir()).ok();
    }

    #[test]
    fn identical_content_gives_identical_manifest() {
        let mut a = temp_sink("det-a");
        let mut b = temp_sink("det-b");
        for sink in [&mut a, &mut b] {
            sink.write_series("x.dat", "h", &[(1.0, 2.0)]).unwrap();
            sink.write_text("y.txt", "same").unwrap();
        }
        assert_eq!(
            serde_json::to_string_pretty(&a.manifest("e")).unwrap(),
            serde_json::to_string_pretty(&b.manifest("e")).unwrap()
        );
        std::fs::remove_dir_all(a.out_dir()).ok();
        std::fs::remove_dir_all(b.out_dir()).ok();
    }
}
