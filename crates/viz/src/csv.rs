//! Gnuplot-ready CSV/TSV writers.
//!
//! The paper generated all plots with gnuplot from whitespace-separated
//! series files. These helpers produce exactly that format, plus ECDFs
//! (the `ECDF (pairs)` axes of Figs. 6–9).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Render `(x, y)` points as a two-column whitespace-separated series with
/// a `#`-prefixed header.
pub fn series_to_string(header: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    writeln!(out, "# {header}").expect("string write");
    for &(x, y) in points {
        writeln!(out, "{x} {y}").expect("string write");
    }
    out
}

/// Write a series to a file, creating parent directories.
pub fn write_series(path: &Path, header: &str, points: &[(f64, f64)]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, series_to_string(header, points))
}

/// Empirical CDF of `values`: sorted `(value, fraction ≤ value)` points.
/// Returns an empty vector for empty input.
pub fn ecdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    sorted.into_iter().enumerate().map(|(i, v)| (v, (i + 1) as f64 / n as f64)).collect()
}

/// Percentile (0–100) via nearest-rank on a copy of `values`.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
    Some(sorted[rank.min(sorted.len() - 1)])
}

/// The fraction of values that satisfy `pred` (e.g. "fraction of pairs with
/// max/min RTT above 1.2").
pub fn fraction_where(values: &[f64], pred: impl Fn(f64) -> bool) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| pred(v)).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_format() {
        let s = series_to_string("time goodput", &[(0.0, 1.5), (1.0, 2.5)]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "# time goodput");
        assert_eq!(lines[1], "0 1.5");
        assert_eq!(lines[2], "1 2.5");
    }

    #[test]
    fn ecdf_monotone_and_normalized() {
        let points = ecdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].0, 1.0);
        assert_eq!(points.last().unwrap().1, 1.0);
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn ecdf_of_empty_is_empty() {
        assert!(ecdf(&[]).is_empty());
    }

    #[test]
    fn ecdf_filters_non_finite() {
        // NaN and infinity are both dropped.
        let points = ecdf(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), Some(50.0));
        assert_eq!(percentile(&v, 90.0), Some(90.0));
        assert_eq!(percentile(&v, 100.0), Some(100.0));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn fractions() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_where(&v, |x| x > 2.0), 0.5);
        assert_eq!(fraction_where(&[], |_| true), 0.0);
    }

    #[test]
    fn write_series_creates_dirs() {
        let dir = std::env::temp_dir().join("hypatia-viz-test");
        let path = dir.join("nested").join("series.dat");
        write_series(&path, "h", &[(1.0, 2.0)]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("1 2"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
