//! CZML generation: Cesium-renderable satellite trajectory documents.
//!
//! CZML is a JSON array whose first element is a `document` packet; each
//! satellite becomes a packet with time-tagged positions. Loading the
//! output in Cesium reproduces the paper's Fig. 11 trajectory views.

use hypatia_constellation::Constellation;
use hypatia_orbit::frames::ecef_to_geodetic;
use hypatia_util::{SimDuration, SimTime};
use serde_json::{json, Value};

/// Options for trajectory export.
#[derive(Debug, Clone)]
pub struct CzmlOptions {
    /// Sampling interval for positions.
    pub sample_interval: SimDuration,
    /// Total duration covered.
    pub duration: SimDuration,
    /// Dot size in pixels (the paper draws satellites as black dots).
    pub pixel_size: u32,
}

impl Default for CzmlOptions {
    fn default() -> Self {
        CzmlOptions {
            sample_interval: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(600),
            pixel_size: 3,
        }
    }
}

/// ISO-8601 timestamp `seconds` after the (arbitrary) epoch.
fn iso(seconds: f64) -> String {
    // Fixed calendar epoch for display purposes only.
    let total = seconds as u64;
    let (h, rem) = (total / 3600, total % 3600);
    let (m, s) = (rem / 60, rem % 60);
    format!("2000-01-01T{:02}:{:02}:{:02}Z", h.min(23), m, s)
}

/// Build a CZML document for the constellation's satellites.
pub fn constellation_czml(constellation: &Constellation, opts: &CzmlOptions) -> Vec<Value> {
    let end_s = opts.duration.secs_f64();
    let mut packets = vec![json!({
        "id": "document",
        "name": constellation.name,
        "version": "1.0",
        "clock": {
            "interval": format!("{}/{}", iso(0.0), iso(end_s)),
            "currentTime": iso(0.0),
            "multiplier": 10,
        }
    })];

    let steps = (opts.duration / opts.sample_interval).max(1);
    for (idx, _sat) in constellation.satellites.iter().enumerate() {
        // cartographicDegrees: [t_offset_s, lon, lat, height_m] quadruples.
        let mut samples = Vec::with_capacity((steps as usize + 1) * 4);
        for k in 0..=steps {
            let t = SimTime::ZERO + opts.sample_interval * k;
            let geo = ecef_to_geodetic(constellation.sat_position_ecef(idx, t));
            samples.push(json!(t.secs_f64()));
            samples.push(json!(geo.longitude_deg));
            samples.push(json!(geo.latitude_deg));
            samples.push(json!(geo.altitude_km * 1000.0));
        }
        packets.push(json!({
            "id": format!("sat-{idx}"),
            "name": format!("{} sat {idx}", constellation.name),
            "availability": format!("{}/{}", iso(0.0), iso(end_s)),
            "position": {
                "epoch": iso(0.0),
                "cartographicDegrees": samples,
            },
            "point": {
                "pixelSize": opts.pixel_size,
                "color": {"rgba": [0, 0, 0, 255]},
            },
        }));
    }
    packets
}

/// Ground stations as static CZML point packets (green dots, per the
/// paper's Fig. 16 colour scheme).
pub fn ground_stations_czml(constellation: &Constellation) -> Vec<Value> {
    constellation
        .ground_stations
        .iter()
        .enumerate()
        .map(|(i, gs)| {
            json!({
                "id": format!("gs-{i}"),
                "name": gs.name,
                "position": {
                    "cartographicDegrees": [gs.longitude_deg, gs.latitude_deg, 0.0],
                },
                "point": {
                    "pixelSize": 6,
                    "color": {"rgba": [0, 200, 0, 255]},
                },
            })
        })
        .collect()
}

/// Serialize a CZML packet list to a pretty JSON string.
pub fn to_json_string(packets: &[Value]) -> String {
    serde_json::to_string_pretty(packets).expect("CZML serialization cannot fail")
}

/// CZML packets animating an end-end path over time (the paper's "changes
/// in end-end paths over time" view): one polyline packet per observed
/// path, shown during `[t_i, t_{i+1})` (the last until `end`).
///
/// `paths` holds `(valid-from instant, node sequence)` samples, e.g. one
/// entry per forwarding change from a `PairTracker` series.
pub fn path_czml(
    constellation: &Constellation,
    paths: &[(SimTime, Vec<hypatia_constellation::NodeId>)],
    end: SimTime,
) -> Vec<Value> {
    let mut packets = vec![json!({
        "id": "document",
        "name": format!("{} end-end path", constellation.name),
        "version": "1.0",
    })];
    for (i, (from, path)) in paths.iter().enumerate() {
        assert!(path.len() >= 2, "path needs at least two nodes");
        let until = paths.get(i + 1).map_or(end, |&(t, _)| t);
        // Positions evaluated at the interval start: a piecewise-frozen
        // polyline (Cesium interpolates colors/availability, not geometry).
        let mut coords = Vec::with_capacity(path.len() * 3);
        for &node in path {
            let geo = ecef_to_geodetic(constellation.node_position_ecef(node, *from));
            coords.push(json!(geo.longitude_deg));
            coords.push(json!(geo.latitude_deg));
            coords.push(json!(geo.altitude_km.max(0.0) * 1000.0));
        }
        packets.push(json!({
            "id": format!("path-{i}"),
            "availability": format!("{}/{}", iso(from.secs_f64()), iso(until.secs_f64())),
            "polyline": {
                "positions": {"cartographicDegrees": coords},
                "width": 2,
                "material": {"solidColor": {"color": {"rgba": [230, 60, 30, 255]}}},
                "arcType": "NONE",
            },
        }));
    }
    packets
}

/// CZML packets visualizing component outages: each window becomes a red
/// point shown only while its component is down (availability interval).
/// Satellites are sampled along their trajectory inside the window; ground
/// stations are static. `sat_outages` / `gs_outages` hold
/// `(component index, down-from, up-at)` windows — plain tuples, so any
/// fault-schedule representation can feed this without a crate dependency.
pub fn outage_czml(
    constellation: &Constellation,
    sat_outages: &[(u32, SimTime, SimTime)],
    gs_outages: &[(u32, SimTime, SimTime)],
) -> Vec<Value> {
    let mut packets = vec![json!({
        "id": "document",
        "name": format!("{} outages", constellation.name),
        "version": "1.0",
    })];
    let sample = SimDuration::from_secs(10);
    for (k, &(sat, from, until)) in sat_outages.iter().enumerate() {
        let idx = sat as usize;
        if idx >= constellation.satellites.len() || until <= from {
            continue;
        }
        // Position samples across the window (at least the two endpoints).
        let steps = (until.since(from) / sample).max(1);
        let mut samples = Vec::with_capacity((steps as usize + 1) * 4);
        for i in 0..=steps {
            let t = (from + sample * i).min(until);
            let geo = ecef_to_geodetic(constellation.sat_position_ecef(idx, t));
            samples.push(json!(t.since(from).secs_f64()));
            samples.push(json!(geo.longitude_deg));
            samples.push(json!(geo.latitude_deg));
            samples.push(json!(geo.altitude_km * 1000.0));
        }
        packets.push(json!({
            "id": format!("outage-sat-{sat}-{k}"),
            "name": format!("sat {sat} down"),
            "availability":
                format!("{}/{}", iso(from.secs_f64()), iso(until.secs_f64())),
            "position": {
                "epoch": iso(from.secs_f64()),
                "cartographicDegrees": samples,
            },
            "point": {
                "pixelSize": 8,
                "color": {"rgba": [230, 30, 30, 255]},
            },
        }));
    }
    for (k, &(gs, from, until)) in gs_outages.iter().enumerate() {
        let idx = gs as usize;
        if idx >= constellation.ground_stations.len() || until <= from {
            continue;
        }
        let station = &constellation.ground_stations[idx];
        packets.push(json!({
            "id": format!("outage-gs-{gs}-{k}"),
            "name": format!("{} weather", station.name),
            "availability":
                format!("{}/{}", iso(from.secs_f64()), iso(until.secs_f64())),
            "position": {
                "cartographicDegrees": [station.longitude_deg, station.latitude_deg, 0.0],
            },
            "point": {
                "pixelSize": 10,
                "color": {"rgba": [230, 30, 30, 255]},
            },
        }));
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;

    fn tiny() -> Constellation {
        Constellation::build(
            "czml-test",
            vec![ShellSpec::new("A", 550.0, 2, 3, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("Paris", 48.8566, 2.3522)],
            GslConfig::new(25.0),
        )
    }

    #[test]
    fn document_packet_first() {
        let czml = constellation_czml(&tiny(), &CzmlOptions::default());
        assert_eq!(czml[0]["id"], "document");
        assert_eq!(czml[0]["version"], "1.0");
        assert_eq!(czml.len(), 1 + 6, "one packet per satellite");
    }

    #[test]
    fn satellite_packets_have_sample_quadruples() {
        let opts = CzmlOptions {
            sample_interval: SimDuration::from_secs(60),
            duration: SimDuration::from_secs(300),
            pixel_size: 3,
        };
        let czml = constellation_czml(&tiny(), &opts);
        let samples = czml[1]["position"]["cartographicDegrees"].as_array().unwrap();
        // 5 steps → 6 samples → 24 numbers.
        assert_eq!(samples.len(), 24);
        // Altitude near 550 km (in metres).
        let alt = samples[3].as_f64().unwrap();
        assert!((alt - 550_000.0).abs() < 1_000.0, "altitude {alt}");
    }

    #[test]
    fn satellite_latitudes_bounded_by_inclination() {
        let czml = constellation_czml(&tiny(), &CzmlOptions::default());
        for pkt in &czml[1..] {
            let samples = pkt["position"]["cartographicDegrees"].as_array().unwrap();
            for chunk in samples.chunks(4) {
                let lat = chunk[2].as_f64().unwrap();
                assert!(lat.abs() <= 53.1, "latitude {lat} beyond inclination");
            }
        }
    }

    #[test]
    fn ground_station_packets() {
        let gs = ground_stations_czml(&tiny());
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0]["name"], "Paris");
        let pos = gs[0]["position"]["cartographicDegrees"].as_array().unwrap();
        assert!((pos[0].as_f64().unwrap() - 2.3522).abs() < 1e-9);
    }

    #[test]
    fn path_czml_produces_interval_polylines() {
        use hypatia_routing::forwarding::compute_forwarding_state;
        let c = tiny_connected();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let mut samples = Vec::new();
        for secs in [0u64, 30] {
            let t = SimTime::from_secs(secs);
            if let Some(p) = compute_forwarding_state(&c, t, &[dst]).path(src, dst) {
                samples.push((t, p));
            }
        }
        assert!(!samples.is_empty(), "test constellation must connect the pair");
        let czml = path_czml(&c, &samples, SimTime::from_secs(60));
        assert_eq!(czml.len(), samples.len() + 1);
        let poly = &czml[1]["polyline"]["positions"]["cartographicDegrees"];
        assert_eq!(poly.as_array().unwrap().len(), samples[0].1.len() * 3);
        assert!(czml[1]["availability"].as_str().unwrap().contains('/'));
    }

    fn tiny_connected() -> Constellation {
        Constellation::build(
            "czml-path-test",
            vec![ShellSpec::new("A", 550.0, 10, 10, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 5.0, 5.0), GroundStation::new("b", -15.0, 100.0)],
            GslConfig::new(10.0),
        )
    }

    #[test]
    fn outage_czml_windows_become_availability_intervals() {
        let c = tiny();
        let czml = outage_czml(
            &c,
            &[
                (0, SimTime::from_secs(10), SimTime::from_secs(40)),
                (99, SimTime::from_secs(0), SimTime::from_secs(5)), // out of range: skipped
                (1, SimTime::from_secs(5), SimTime::from_secs(5)),  // empty: skipped
            ],
            &[(0, SimTime::from_secs(20), SimTime::from_secs(50))],
        );
        assert_eq!(czml[0]["id"], "document");
        assert_eq!(czml.len(), 3, "one sat window + one gs window survive");
        assert_eq!(
            czml[1]["availability"].as_str().unwrap(),
            "2000-01-01T00:00:10Z/2000-01-01T00:00:40Z"
        );
        // 30 s window at 10 s sampling → 4 samples → 16 numbers.
        assert_eq!(czml[1]["position"]["cartographicDegrees"].as_array().unwrap().len(), 16);
        assert_eq!(czml[2]["name"], "Paris weather");
        assert_eq!(czml[2]["point"]["color"]["rgba"][0], 230);
    }

    #[test]
    fn serializes_to_valid_json() {
        let czml = constellation_czml(&tiny(), &CzmlOptions::default());
        let s = to_json_string(&czml);
        let parsed: Vec<Value> = serde_json::from_str(&s).unwrap();
        assert_eq!(parsed.len(), czml.len());
    }

    #[test]
    fn iso_format() {
        assert_eq!(iso(0.0), "2000-01-01T00:00:00Z");
        assert_eq!(iso(3_725.0), "2000-01-01T01:02:05Z");
    }
}
