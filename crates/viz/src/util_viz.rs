//! Link-utilization maps (paper Figs. 14, 15).
//!
//! Consumes per-device utilization from the packet simulator and produces
//! map-renderable documents: every ISL with its endpoints' coordinates and
//! a utilization in `[0, 1]` (the paper colours heavily-utilized ISLs red
//! and thick). Includes helpers to rank hotspots — e.g. confirming the
//! trans-Atlantic congestion of Fig. 15.

use hypatia_netsim::device::DeviceKind;
use hypatia_netsim::Simulator;
use hypatia_orbit::frames::ecef_to_geodetic;
use hypatia_util::SimTime;
use serde_json::{json, Value};

/// One directed ISL with its utilization over a bucket.
#[derive(Debug, Clone)]
pub struct IslUtilization {
    /// Transmitting satellite.
    pub from_sat: usize,
    /// Receiving satellite.
    pub to_sat: usize,
    /// Transmitter utilization in `[0, 1]` for the requested bucket.
    pub utilization: f64,
    /// Transmitter coordinates at the snapshot instant (lat, lon).
    pub from_lat_lon: (f64, f64),
    /// Receiver coordinates (lat, lon).
    pub to_lat_lon: (f64, f64),
}

/// Collect the utilization of every directed ISL for utilization-bucket
/// `bucket_idx`, with node geometry evaluated at `geometry_t`. Requires the
/// simulator to have been built with utilization tracking.
pub fn isl_utilization_map(
    sim: &Simulator,
    bucket_idx: usize,
    geometry_t: SimTime,
) -> Vec<IslUtilization> {
    let c = sim.constellation();
    let mut out = Vec::new();
    for node in sim.nodes() {
        if !c.is_satellite(node.id) {
            continue;
        }
        for dev in &node.devices {
            let DeviceKind::Isl { peer } = dev.kind else { continue };
            let u = dev
                .utilization(bucket_idx)
                .expect("utilization tracking must be enabled for utilization maps");
            let from = ecef_to_geodetic(c.node_position_ecef(node.id, geometry_t));
            let to = ecef_to_geodetic(c.node_position_ecef(peer, geometry_t));
            out.push(IslUtilization {
                from_sat: node.id.index(),
                to_sat: peer.index(),
                utilization: u,
                from_lat_lon: (from.latitude_deg, from.longitude_deg),
                to_lat_lon: (to.latitude_deg, to.longitude_deg),
            });
        }
    }
    out
}

/// The `k` most utilized ISLs, descending (ties broken by satellite ids for
/// determinism).
pub fn top_hotspots(map: &[IslUtilization], k: usize) -> Vec<&IslUtilization> {
    let mut refs: Vec<&IslUtilization> = map.iter().collect();
    refs.sort_by(|a, b| {
        b.utilization
            .total_cmp(&a.utilization)
            .then(a.from_sat.cmp(&b.from_sat))
            .then(a.to_sat.cmp(&b.to_sat))
    });
    refs.truncate(k);
    refs
}

/// JSON document for map rendering; links with zero traffic are excluded
/// (as the paper's figures exclude "ISLs with no traffic").
pub fn to_json(map: &[IslUtilization]) -> Value {
    json!(map
        .iter()
        .filter(|l| l.utilization > 0.0)
        .map(|l| json!({
            "from_sat": l.from_sat,
            "to_sat": l.to_sat,
            "utilization": l.utilization,
            "from": {"lat": l.from_lat_lon.0, "lon": l.from_lat_lon.1},
            "to": {"lat": l.to_lat_lon.0, "lon": l.to_lat_lon.1},
        }))
        .collect::<Vec<_>>())
}

/// Mean utilization of the links whose transmitter longitude lies within
/// `[lon_min, lon_max]` — used to quantify regional hotspots (e.g. the
/// Atlantic corridor of Fig. 15).
pub fn mean_utilization_in_lon_band(
    map: &[IslUtilization],
    lon_min: f64,
    lon_max: f64,
) -> Option<f64> {
    let vals: Vec<f64> = map
        .iter()
        .filter(|l| l.from_lat_lon.1 >= lon_min && l.from_lat_lon.1 <= lon_max)
        .map(|l| l.utilization)
        .collect();
    if vals.is_empty() {
        return None;
    }
    Some(vals.iter().sum::<f64>() / vals.len() as f64)
}

/// Utilization summary of a constellation-wide map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationSummary {
    /// Directed ISLs observed.
    pub links: usize,
    /// Links with nonzero traffic.
    pub active_links: usize,
    /// Mean utilization over all links.
    pub mean: f64,
    /// Maximum utilization.
    pub max: f64,
}

/// Summarize a utilization map.
pub fn summarize(map: &[IslUtilization]) -> UtilizationSummary {
    let links = map.len();
    let active_links = map.iter().filter(|l| l.utilization > 0.0).count();
    let mean = if links == 0 {
        0.0
    } else {
        map.iter().map(|l| l.utilization).sum::<f64>() / links as f64
    };
    let max = map.iter().map(|l| l.utilization).fold(0.0, f64::max);
    UtilizationSummary { links, active_links, mean, max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_constellation::Constellation;
    use hypatia_netsim::apps::udp::{UdpSink, UdpSource};
    use hypatia_netsim::SimConfig;
    use hypatia_util::{DataRate, SimDuration};
    use std::sync::Arc;

    fn run_sim() -> Simulator {
        let c = Arc::new(Constellation::build(
            "uv",
            vec![ShellSpec::new("A", 550.0, 10, 10, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 5.0, 5.0), GroundStation::new("b", -15.0, 100.0)],
            GslConfig::new(10.0),
        ));
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let cfg = SimConfig::default()
            .with_link_rate(DataRate::from_mbps(10))
            .with_utilization_bucket(SimDuration::from_secs(1));
        let mut sim = Simulator::new(c, cfg, vec![src, dst]);
        sim.add_app(dst, 50, Box::new(UdpSink::new()));
        sim.add_app(
            src,
            50,
            Box::new(UdpSource::new(dst, 0, DataRate::from_mbps(8), 1440, SimTime::from_secs(5))),
        );
        sim.run_until(SimTime::from_secs(5));
        sim
    }

    #[test]
    fn map_covers_all_directed_isls() {
        let sim = run_sim();
        let map = isl_utilization_map(&sim, 2, SimTime::from_secs(2));
        // 100 satellites in +Grid → 200 undirected → 400 directed ISLs.
        assert_eq!(map.len(), 400);
        for l in &map {
            assert!((0.0..=1.0 + 1e-9).contains(&l.utilization));
            assert!((-90.0..=90.0).contains(&l.from_lat_lon.0));
        }
    }

    #[test]
    fn traffic_creates_hotspots() {
        let sim = run_sim();
        let map = isl_utilization_map(&sim, 2, SimTime::from_secs(2));
        let summary = summarize(&map);
        assert!(summary.active_links > 0, "no ISL carried traffic");
        assert!(
            summary.max > 0.5,
            "an 8 Mbps flow on 10 Mbps links should load some ISL: {summary:?}"
        );
        assert!(summary.active_links < summary.links, "not every link should be active");
    }

    #[test]
    fn hotspot_ranking_is_descending_and_deterministic() {
        let sim = run_sim();
        let map = isl_utilization_map(&sim, 2, SimTime::from_secs(2));
        let top = top_hotspots(&map, 10);
        assert_eq!(top.len(), 10);
        for w in top.windows(2) {
            assert!(w[0].utilization >= w[1].utilization);
        }
    }

    #[test]
    fn json_excludes_idle_links() {
        let sim = run_sim();
        let map = isl_utilization_map(&sim, 2, SimTime::from_secs(2));
        let v = to_json(&map);
        let active = summarize(&map).active_links;
        assert_eq!(v.as_array().unwrap().len(), active);
    }

    #[test]
    fn lon_band_filter() {
        let sim = run_sim();
        let map = isl_utilization_map(&sim, 2, SimTime::from_secs(2));
        let whole = mean_utilization_in_lon_band(&map, -180.0, 180.0).unwrap();
        let summary = summarize(&map);
        assert!((whole - summary.mean).abs() < 1e-12);
        assert!(
            mean_utilization_in_lon_band(&map, 179.99, 179.999).is_none()
                || mean_utilization_in_lon_band(&map, 179.99, 179.999).unwrap() >= 0.0
        );
    }
}
