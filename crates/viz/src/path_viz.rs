//! End-end path snapshots (paper Figs. 13, 16, 17).
//!
//! A path snapshot records the node sequence with geographic coordinates
//! and per-hop distances/delays, ready to be drawn on a map (the paper's
//! Paris–Luanda and Paris–Moscow illustrations).

use hypatia_constellation::{Constellation, NodeId};
use hypatia_orbit::frames::ecef_to_geodetic;
use hypatia_orbit::geodesy::propagation_delay_km;
use hypatia_util::{SimDuration, SimTime};
use serde_json::{json, Value};

/// One node on a path snapshot.
#[derive(Debug, Clone)]
pub struct PathNode {
    /// Node id.
    pub node: NodeId,
    /// Is it a satellite (vs ground station)?
    pub is_satellite: bool,
    /// Latitude at snapshot time.
    pub latitude_deg: f64,
    /// Longitude at snapshot time.
    pub longitude_deg: f64,
    /// Altitude, km.
    pub altitude_km: f64,
}

/// A geometric snapshot of one end-end path.
#[derive(Debug, Clone)]
pub struct PathSnapshot {
    /// Snapshot time.
    pub at: SimTime,
    /// Nodes along the path (inclusive of both ground stations).
    pub nodes: Vec<PathNode>,
    /// Per-hop distances, km.
    pub hop_distances_km: Vec<f64>,
    /// End-end RTT (twice the summed propagation delay).
    pub rtt: SimDuration,
}

impl PathSnapshot {
    /// Capture the geometry of `path` at time `t`.
    pub fn capture(constellation: &Constellation, path: &[NodeId], t: SimTime) -> PathSnapshot {
        assert!(path.len() >= 2, "path needs at least two nodes");
        let nodes: Vec<PathNode> = path
            .iter()
            .map(|&n| {
                let geo = ecef_to_geodetic(constellation.node_position_ecef(n, t));
                PathNode {
                    node: n,
                    is_satellite: constellation.is_satellite(n),
                    latitude_deg: geo.latitude_deg,
                    longitude_deg: geo.longitude_deg,
                    altitude_km: geo.altitude_km,
                }
            })
            .collect();
        let mut hop_distances_km = Vec::with_capacity(path.len() - 1);
        let mut one_way = SimDuration::ZERO;
        for w in path.windows(2) {
            let d = constellation.distance_km(w[0], w[1], t);
            one_way += propagation_delay_km(d);
            hop_distances_km.push(d);
        }
        PathSnapshot { at: t, nodes, hop_distances_km, rtt: one_way * 2 }
    }

    /// Number of hops (edges).
    pub fn hops(&self) -> usize {
        self.hop_distances_km.len()
    }

    /// Total path length, km.
    pub fn length_km(&self) -> f64 {
        self.hop_distances_km.iter().sum()
    }

    /// JSON export for map rendering.
    pub fn to_json(&self) -> Value {
        json!({
            "t": self.at.secs_f64(),
            "rtt_ms": self.rtt.secs_f64() * 1e3,
            "hops": self.hops(),
            "length_km": self.length_km(),
            "nodes": self.nodes.iter().map(|n| json!({
                "id": n.node.0,
                "satellite": n.is_satellite,
                "lat": n.latitude_deg,
                "lon": n.longitude_deg,
                "alt_km": n.altitude_km,
            })).collect::<Vec<_>>(),
            "hop_distances_km": self.hop_distances_km,
        })
    }

    /// Compact one-line description, e.g. for logs:
    /// `GS20 → sat5 → sat17 → GS21 (4 hops, 5932 km, RTT 41.2 ms)`.
    pub fn describe(&self) -> String {
        let names: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                if n.is_satellite {
                    format!("sat{}", n.node.0)
                } else {
                    format!("GS{}", n.node.0)
                }
            })
            .collect();
        format!(
            "{} ({} hops, {:.0} km, RTT {:.1} ms)",
            names.join(" -> "),
            self.hops(),
            self.length_km(),
            self.rtt.secs_f64() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_routing::forwarding::compute_forwarding_state;

    fn setup() -> (Constellation, Vec<NodeId>, SimTime) {
        let c = Constellation::build(
            "pv",
            vec![ShellSpec::new("A", 550.0, 10, 10, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 5.0, 5.0), GroundStation::new("b", -15.0, 100.0)],
            GslConfig::new(10.0),
        );
        let t = SimTime::from_secs(10);
        let st = compute_forwarding_state(&c, t, &[c.gs_node(1)]);
        let path = st.path(c.gs_node(0), c.gs_node(1)).expect("connected");
        (c, path, t)
    }

    #[test]
    fn snapshot_captures_endpoints_and_hops() {
        let (c, path, t) = setup();
        let snap = PathSnapshot::capture(&c, &path, t);
        assert_eq!(snap.nodes.len(), path.len());
        assert!(!snap.nodes.first().unwrap().is_satellite);
        assert!(!snap.nodes.last().unwrap().is_satellite);
        assert!(snap.nodes[1..snap.nodes.len() - 1].iter().all(|n| n.is_satellite));
        assert_eq!(snap.hops(), path.len() - 1);
    }

    #[test]
    fn rtt_matches_distance_sum() {
        let (c, path, t) = setup();
        let snap = PathSnapshot::capture(&c, &path, t);
        let expect_ms = 2.0 * snap.length_km() / 299_792.458 * 1e3;
        assert!((snap.rtt.secs_f64() * 1e3 - expect_ms).abs() < 0.01);
    }

    #[test]
    fn satellite_altitudes_in_snapshot() {
        let (c, path, t) = setup();
        let snap = PathSnapshot::capture(&c, &path, t);
        for n in &snap.nodes {
            if n.is_satellite {
                assert!((n.altitude_km - 550.0).abs() < 1.0, "altitude {}", n.altitude_km);
            } else {
                // GSes sit on the ellipsoid: up to ~21 km below the
                // spherical reference radius used by ecef_to_geodetic.
                assert!((-25.0..1.0).contains(&n.altitude_km), "GS altitude {}", n.altitude_km);
            }
        }
    }

    #[test]
    fn json_and_description() {
        let (c, path, t) = setup();
        let snap = PathSnapshot::capture(&c, &path, t);
        let v = snap.to_json();
        assert_eq!(v["nodes"].as_array().unwrap().len(), path.len());
        assert!(v["rtt_ms"].as_f64().unwrap() > 0.0);
        let desc = snap.describe();
        assert!(desc.contains("GS") && desc.contains("sat"), "{desc}");
        assert!(desc.contains("RTT"));
    }

    #[test]
    fn longer_paths_have_higher_rtt() {
        // Snapshot RTT must be at least the straight-line (geodesic) RTT.
        let (c, path, t) = setup();
        let snap = PathSnapshot::capture(&c, &path, t);
        let geodesic = c.ground_stations[0].geodesic_rtt(&c.ground_stations[1]);
        assert!(snap.rtt >= geodesic);
    }
}
