//! The ground observer's sky view (paper Fig. 12).
//!
//! For a given ground station and instant, lists every satellite above the
//! horizon with its azimuth (0° = N, 90° = E) and elevation, marking which
//! are above the minimum connectable elevation. Includes an ASCII renderer
//! (azimuth × elevation panorama) and reachability-window extraction over
//! time — the machinery behind the paper's St. Petersburg outage analysis.

use hypatia_constellation::{Constellation, GroundStation};
use hypatia_orbit::visibility::{azimuth_deg, elevation_deg};
use hypatia_util::time::TimeSteps;
use hypatia_util::{SimDuration, SimTime};
use serde_json::{json, Value};

/// One satellite as seen in the sky.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkySatellite {
    /// Satellite index.
    pub sat_idx: usize,
    /// Azimuth, degrees clockwise from north.
    pub azimuth_deg: f64,
    /// Elevation above the horizon, degrees.
    pub elevation_deg: f64,
    /// Above the constellation's minimum elevation (connectable)?
    pub connectable: bool,
}

/// The sky as seen from one ground station at one instant.
#[derive(Debug, Clone)]
pub struct GroundView {
    /// Observation time.
    pub at: SimTime,
    /// Observer name.
    pub observer: String,
    /// The constellation's minimum elevation angle.
    pub min_elevation_deg: f64,
    /// All satellites above the horizon.
    pub satellites: Vec<SkySatellite>,
}

impl GroundView {
    /// Compute the view from `gs` at `t`.
    pub fn compute(constellation: &Constellation, gs: &GroundStation, t: SimTime) -> GroundView {
        let gs_pos = gs.position_ecef();
        let min_el = constellation.gsl.min_elevation_deg;
        let mut satellites = Vec::new();
        for idx in 0..constellation.num_satellites() {
            let sat_pos = constellation.sat_position_ecef(idx, t);
            let el = elevation_deg(gs_pos, sat_pos);
            if el >= 0.0 {
                satellites.push(SkySatellite {
                    sat_idx: idx,
                    azimuth_deg: azimuth_deg(gs_pos, sat_pos),
                    elevation_deg: el,
                    connectable: el >= min_el,
                });
            }
        }
        GroundView { at: t, observer: gs.name.clone(), min_elevation_deg: min_el, satellites }
    }

    /// Is any satellite connectable right now?
    pub fn is_connected(&self) -> bool {
        self.satellites.iter().any(|s| s.connectable)
    }

    /// JSON export (for custom front-ends).
    pub fn to_json(&self) -> Value {
        json!({
            "t": self.at.secs_f64(),
            "observer": self.observer,
            "min_elevation_deg": self.min_elevation_deg,
            "satellites": self.satellites.iter().map(|s| json!({
                "sat": s.sat_idx,
                "az": s.azimuth_deg,
                "el": s.elevation_deg,
                "connectable": s.connectable,
            })).collect::<Vec<_>>(),
        })
    }

    /// ASCII panorama: azimuth 0–360° across, elevation 90°→0° down.
    /// Connectable satellites render as `#`, others (the paper's shaded
    /// below-minimum region) as `.`.
    pub fn render_ascii(&self, cols: usize, rows: usize) -> String {
        assert!(cols >= 10 && rows >= 5, "canvas too small");
        let mut grid = vec![vec![' '; cols]; rows];
        for s in &self.satellites {
            let col = ((s.azimuth_deg / 360.0) * cols as f64) as usize % cols;
            let row_f = (1.0 - s.elevation_deg / 90.0) * (rows as f64 - 1.0);
            let row = row_f.round().clamp(0.0, rows as f64 - 1.0) as usize;
            grid[row][col] = if s.connectable { '#' } else { '.' };
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{} at t={:.1}s  (# connectable, . below {}°)\n",
            self.observer,
            self.at.secs_f64(),
            self.min_elevation_deg
        ));
        for (i, row) in grid.iter().enumerate() {
            let el = 90.0 * (1.0 - i as f64 / (rows as f64 - 1.0));
            out.push_str(&format!("{el:5.1}° |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("       +{}\n", "-".repeat(cols)));
        out.push_str("        N         E         S         W        N\n");
        out
    }
}

/// A maximal interval during which the observer has ≥1 connectable
/// satellite (or none, when `connected` is false).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnectivityWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive; the first step with the opposite state).
    pub until: SimTime,
    /// Connected during this window?
    pub connected: bool,
}

/// Scan `[0, horizon)` at `step` granularity and return the alternating
/// connected/disconnected windows for `gs`.
pub fn connectivity_windows(
    constellation: &Constellation,
    gs: &GroundStation,
    horizon: SimDuration,
    step: SimDuration,
) -> Vec<ConnectivityWindow> {
    let mut windows: Vec<ConnectivityWindow> = Vec::new();
    for t in TimeSteps::new(SimTime::ZERO, SimTime::ZERO + horizon, step) {
        let connected = GroundView::compute(constellation, gs, t).is_connected();
        match windows.last_mut() {
            Some(last) if last.connected == connected => last.until = t + step,
            _ => windows.push(ConnectivityWindow { from: t, until: t + step, connected }),
        }
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::presets;

    fn kuiper(gs: GroundStation) -> Constellation {
        presets::kuiper_k1(vec![gs])
    }

    #[test]
    fn equatorial_observer_sees_connectable_satellites() {
        let gs = GroundStation::new("Quito", -0.18, -78.47);
        let c = kuiper(gs.clone());
        let view = GroundView::compute(&c, &gs, SimTime::ZERO);
        assert!(!view.satellites.is_empty());
        assert!(view.is_connected());
        // Many more satellites near the horizon than connectable (paper's
        // observation about the shaded region).
        let connectable = view.satellites.iter().filter(|s| s.connectable).count();
        assert!(connectable < view.satellites.len());
    }

    /// The mechanism behind Fig. 3(a)/Fig. 12: St. Petersburg sees Kuiper
    /// K1 only intermittently.
    #[test]
    fn st_petersburg_is_intermittently_connected() {
        let gs = GroundStation::new("Saint Petersburg", 59.9311, 30.3609);
        let c = kuiper(gs.clone());
        let windows =
            connectivity_windows(&c, &gs, SimDuration::from_secs(600), SimDuration::from_secs(5));
        assert!(
            windows.iter().any(|w| !w.connected),
            "expected disconnection windows, got {windows:?}"
        );
        assert!(windows.iter().any(|w| w.connected), "expected some connectivity, got {windows:?}");
    }

    #[test]
    fn windows_partition_the_horizon() {
        let gs = GroundStation::new("Saint Petersburg", 59.9311, 30.3609);
        let c = kuiper(gs.clone());
        let horizon = SimDuration::from_secs(300);
        let step = SimDuration::from_secs(10);
        let windows = connectivity_windows(&c, &gs, horizon, step);
        assert_eq!(windows[0].from, SimTime::ZERO);
        for w in windows.windows(2) {
            assert_eq!(w[0].until, w[1].from, "gap between windows");
            assert_ne!(w[0].connected, w[1].connected, "windows must alternate");
        }
        assert_eq!(windows.last().unwrap().until, SimTime::ZERO + horizon);
    }

    #[test]
    fn ascii_rendering_contains_markers() {
        let gs = GroundStation::new("Quito", -0.18, -78.47);
        let c = kuiper(gs.clone());
        let view = GroundView::compute(&c, &gs, SimTime::ZERO);
        let art = view.render_ascii(72, 12);
        assert!(art.contains('#') || art.contains('.'), "no satellites drawn:\n{art}");
        assert!(art.lines().count() >= 14);
    }

    #[test]
    fn json_export_shape() {
        let gs = GroundStation::new("Quito", -0.18, -78.47);
        let c = kuiper(gs.clone());
        let v = GroundView::compute(&c, &gs, SimTime::from_secs(30)).to_json();
        assert_eq!(v["observer"], "Quito");
        assert!(!v["satellites"].as_array().unwrap().is_empty());
        assert_eq!(v["min_elevation_deg"], 30.0);
    }
}
