//! Deterministic fault injection for LEO constellation simulations.
//!
//! The paper studies the *nominal* dynamics of mega-constellations —
//! paths and RTTs change purely because satellites move. Real
//! deployments also degrade: satellites fail, inter-satellite lasers
//! drop lock, ground-station links fade in rain. This crate turns such
//! scenarios into a first-class, reproducible simulation input.
//!
//! The model is a three-stage pipeline:
//!
//! 1. A declarative [`FaultSpec`] lists explicit outage windows
//!    (satellite, ISL, GSL-weather) plus optional stochastic
//!    MTTF/MTTR *flap processes*, all driven by one seed.
//! 2. [`FaultSchedule::compile`] expands the spec against a concrete
//!    [`Constellation`](hypatia_constellation::Constellation) into a
//!    time-sorted vector of [`FaultEvent`]s. Sampling uses
//!    [`DetRng`](hypatia_util::rng::DetRng) streams derived per component
//!    with FNV-1a mixing — no wall clock, no global RNG, no
//!    iteration-order dependence.
//! 3. [`FaultState`] replays a schedule prefix to answer "is this
//!    node/link up at time t?" during snapshot-graph construction and
//!    packet forwarding. Replay from the immutable schedule is pure,
//!    so parallel forwarding-state workers mask identically to the
//!    serial path.
//!
//! Everything is integer-nanosecond timestamped and deterministic: the
//! same spec and constellation always compile to the same schedule.

mod schedule;
mod spec;
mod state;

pub use schedule::{FaultEvent, FaultKind, FaultSchedule, FaultTarget};
pub use spec::{FaultSpec, FlapProcess, LinkCut, OutageWindow};
pub use state::FaultState;
