//! The declarative fault specification.

use serde::{Deserialize, Serialize};

/// An explicit outage window for one component (a satellite or a
/// ground station's GSLs), in fractional seconds of simulation time.
///
/// Windows are half-open: the component is down for `from_s <= t <
/// until_s`. Windows that are empty, inverted, or reference a target
/// outside the constellation are ignored at compile time, so a spec
/// written for one constellation can be replayed against a smaller one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Component index: satellite index for satellite outages, ground
    /// station index for weather windows.
    pub target: u32,
    /// Window start, seconds.
    pub from_s: f64,
    /// Window end (exclusive), seconds.
    pub until_s: f64,
}

/// An explicit cut of one inter-satellite link for a time window.
///
/// The endpoint order does not matter; `3-7` and `7-3` cut the same
/// undirected link. Cuts of pairs that are not ISLs in the target
/// constellation are ignored at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkCut {
    /// One endpoint (satellite index).
    pub a: u32,
    /// The other endpoint (satellite index).
    pub b: u32,
    /// Window start, seconds.
    pub from_s: f64,
    /// Window end (exclusive), seconds.
    pub until_s: f64,
}

/// A stochastic failure/repair renewal process.
///
/// Each component alternates up and down phases whose lengths are
/// drawn from exponential distributions with means `mttf_s` (mean time
/// to failure) and `mttr_s` (mean time to repair). The steady-state
/// unavailability is `mttr / (mttf + mttr)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlapProcess {
    /// Mean up-time before a failure, seconds. Must be positive.
    pub mttf_s: f64,
    /// Mean down-time before repair, seconds. Must be positive.
    pub mttr_s: f64,
}

impl FlapProcess {
    /// Long-run fraction of time a component following this process is
    /// down: `mttr / (mttf + mttr)`.
    pub fn unavailability(&self) -> f64 {
        self.mttr_s / (self.mttf_s + self.mttr_s)
    }

    /// The process whose steady-state unavailability is `frac`, with
    /// the given mean repair time. Panics unless `0 < frac < 1`.
    pub fn from_unavailability(frac: f64, mttr_s: f64) -> FlapProcess {
        assert!(frac > 0.0 && frac < 1.0, "unavailability must be in (0, 1), got {frac}");
        FlapProcess { mttf_s: mttr_s * (1.0 - frac) / frac, mttr_s }
    }
}

/// A complete fault scenario: explicit windows plus optional flap
/// processes, under one seed.
///
/// The default spec is fault-free (no windows, no flaps): compiling it
/// yields an empty schedule, and a simulation run with that schedule is
/// bit-identical to one with no fault engine at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Master seed for all stochastic draws. Per-component streams are
    /// derived from it, so compilation order never affects sampling.
    pub seed: u64,
    /// Explicit satellite outage windows (`target` = satellite index).
    pub sat_outages: Vec<OutageWindow>,
    /// Explicit ISL cuts.
    pub isl_cuts: Vec<LinkCut>,
    /// Weather-attenuation windows taking down all GSLs of one ground
    /// station (`target` = ground station index).
    pub gsl_weather: Vec<OutageWindow>,
    /// Flap process applied independently to every satellite.
    pub sat_flap: Option<FlapProcess>,
    /// Flap process applied independently to every ISL.
    pub isl_flap: Option<FlapProcess>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 1,
            sat_outages: Vec::new(),
            isl_cuts: Vec::new(),
            gsl_weather: Vec::new(),
            sat_flap: None,
            isl_flap: None,
        }
    }
}

impl FaultSpec {
    /// True if the spec injects nothing: no windows and no flaps.
    pub fn is_trivial(&self) -> bool {
        self.sat_outages.is_empty()
            && self.isl_cuts.is_empty()
            && self.gsl_weather.is_empty()
            && self.sat_flap.is_none()
            && self.isl_flap.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_trivial() {
        assert!(FaultSpec::default().is_trivial());
        let spec = FaultSpec {
            sat_flap: Some(FlapProcess { mttf_s: 100.0, mttr_s: 10.0 }),
            ..FaultSpec::default()
        };
        assert!(!spec.is_trivial());
    }

    #[test]
    fn unavailability_round_trips() {
        let p = FlapProcess::from_unavailability(0.05, 30.0);
        assert!((p.unavailability() - 0.05).abs() < 1e-12);
        assert!((p.mttf_s - 570.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn unavailability_of_one_is_rejected() {
        FlapProcess::from_unavailability(1.0, 30.0);
    }
}
