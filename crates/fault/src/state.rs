//! Replayable up/down state derived from a [`FaultSchedule`].

use crate::schedule::{normalize, FaultEvent, FaultKind, FaultSchedule, FaultTarget};
use std::collections::HashMap;

/// The set of components currently down, maintained by applying
/// schedule events in order.
///
/// Each component carries a *depth counter* rather than a boolean, so
/// overlapping windows (an explicit outage plus a flap, say) compose
/// correctly: a component is up again only once every cause of failure
/// has been lifted.
///
/// Two usage patterns share this type:
///
/// * the packet simulator holds one live instance and feeds it events
///   as their time comes;
/// * snapshot-routing workers call [`FaultState::at`] to rebuild the
///   state at an arbitrary instant from the immutable schedule — a
///   pure function, so parallel prefetch and serial recompute agree
///   bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultState {
    /// Per-satellite failure depth.
    sat_down: Vec<u32>,
    /// Per-ground-station weather depth.
    gs_down: Vec<u32>,
    /// Failure depth per cut ISL, keyed by normalized endpoints. Only
    /// membership is queried — iteration order is never observed.
    isl_down: HashMap<(u32, u32), u32>,
    /// Number of components currently down (any kind).
    down_count: usize,
}

impl FaultState {
    /// The all-up state for `schedule`'s constellation.
    pub fn new(schedule: &FaultSchedule) -> FaultState {
        FaultState {
            sat_down: vec![0; schedule.num_satellites() as usize],
            gs_down: vec![0; schedule.num_ground_stations() as usize],
            isl_down: HashMap::new(),
            down_count: 0,
        }
    }

    /// The state at time `t`: every event with `event.t <= t` applied.
    pub fn at(schedule: &FaultSchedule, t: hypatia_util::SimTime) -> FaultState {
        let mut state = FaultState::new(schedule);
        for ev in schedule.events() {
            if ev.t > t {
                break;
            }
            state.apply(ev);
        }
        state
    }

    /// Apply one event.
    pub fn apply(&mut self, event: &FaultEvent) {
        let depth: &mut u32 = match event.target {
            FaultTarget::Satellite(s) => &mut self.sat_down[s as usize],
            FaultTarget::GroundStation(g) => &mut self.gs_down[g as usize],
            FaultTarget::Isl(a, b) => self.isl_down.entry(normalize(a, b)).or_insert(0),
        };
        match event.kind {
            FaultKind::Fail => {
                if *depth == 0 {
                    self.down_count += 1;
                }
                *depth += 1;
            }
            FaultKind::Recover => {
                debug_assert!(*depth > 0, "recover without matching failure: {event:?}");
                *depth = depth.saturating_sub(1);
                if *depth == 0 {
                    self.down_count -= 1;
                    if let FaultTarget::Isl(a, b) = event.target {
                        self.isl_down.remove(&normalize(a, b));
                    }
                }
            }
        }
    }

    /// Is satellite `sat` currently failed?
    #[inline]
    pub fn satellite_down(&self, sat: usize) -> bool {
        self.sat_down[sat] > 0
    }

    /// Is ground station `gs` currently weather-attenuated?
    #[inline]
    pub fn gs_weather_down(&self, gs: usize) -> bool {
        self.gs_down[gs] > 0
    }

    /// Is the ISL between satellites `a` and `b` explicitly cut?
    /// (Endpoint failures are a separate condition; see
    /// [`Self::isl_link_up`].)
    #[inline]
    pub fn isl_cut(&self, a: u32, b: u32) -> bool {
        self.isl_down.contains_key(&normalize(a, b))
    }

    /// May traffic cross the ISL `a <-> b` right now? False if either
    /// endpoint satellite is down or the link itself is cut.
    #[inline]
    pub fn isl_link_up(&self, a: u32, b: u32) -> bool {
        !self.satellite_down(a as usize) && !self.satellite_down(b as usize) && !self.isl_cut(a, b)
    }

    /// May traffic cross the GSL between satellite `sat` and ground
    /// station `gs` right now?
    #[inline]
    pub fn gsl_link_up(&self, sat: usize, gs: usize) -> bool {
        !self.satellite_down(sat) && !self.gs_weather_down(gs)
    }

    /// Is everything up?
    #[inline]
    pub fn all_up(&self) -> bool {
        self.down_count == 0
    }

    /// Number of satellites currently down.
    pub fn satellites_down(&self) -> usize {
        self.sat_down.iter().filter(|&&d| d > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FaultSpec, OutageWindow};
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_constellation::Constellation;
    use hypatia_util::{SimDuration, SimTime};

    fn small_constellation() -> Constellation {
        Constellation::build(
            "tiny",
            vec![ShellSpec::new("A", 550.0, 3, 4, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("eq", 0.0, 0.0), GroundStation::new("mid", 40.0, 60.0)],
            GslConfig::new(25.0),
        )
    }

    fn window(target: u32, from_s: f64, until_s: f64) -> OutageWindow {
        OutageWindow { target, from_s, until_s }
    }

    #[test]
    fn replay_tracks_windows() {
        let c = small_constellation();
        let spec = FaultSpec {
            sat_outages: vec![window(2, 10.0, 20.0)],
            gsl_weather: vec![window(1, 5.0, 40.0)],
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(60));

        let before = FaultState::at(&sched, SimTime::from_secs(4));
        assert!(before.all_up());

        let mid = FaultState::at(&sched, SimTime::from_secs(15));
        assert!(mid.satellite_down(2));
        assert!(mid.gs_weather_down(1));
        assert!(!mid.gsl_link_up(0, 1), "weather masks all GSLs of gs 1");
        assert!(mid.gsl_link_up(0, 0), "gs 0 is unaffected");
        assert!(!mid.isl_link_up(2, 3), "a down satellite takes its ISLs with it");

        let after = FaultState::at(&sched, SimTime::from_secs(50));
        assert!(after.all_up());
    }

    #[test]
    fn overlapping_windows_stack() {
        let c = small_constellation();
        let spec = FaultSpec {
            sat_outages: vec![window(0, 0.0, 30.0), window(0, 10.0, 20.0)],
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(60));
        // Inner window ends at 20 s, but the outer one holds until 30 s.
        assert!(FaultState::at(&sched, SimTime::from_secs(25)).satellite_down(0));
        assert!(!FaultState::at(&sched, SimTime::from_secs(35)).satellite_down(0));
        // outage_windows merges the overlap into one span.
        assert_eq!(
            sched.outage_windows(),
            vec![(FaultTarget::Satellite(0), SimTime::ZERO, SimTime::from_secs(30))]
        );
    }

    #[test]
    fn live_apply_matches_replay() {
        let c = small_constellation();
        let spec = FaultSpec {
            seed: 11,
            sat_flap: Some(crate::FlapProcess { mttf_s: 10.0, mttr_s: 4.0 }),
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(100));
        assert!(!sched.is_empty());
        let mut live = FaultState::new(&sched);
        for (i, ev) in sched.events().iter().enumerate() {
            live.apply(ev);
            // After applying events 0..=i, the live state must equal a
            // from-scratch replay at that event's time, provided no later
            // event shares the same timestamp.
            let same_t_follows = sched.events().get(i + 1).is_some_and(|next| next.t == ev.t);
            if !same_t_follows {
                assert_eq!(live, FaultState::at(&sched, ev.t), "divergence after event {i}");
            }
        }
    }

    #[test]
    fn satellites_down_counts_unique_components() {
        let c = small_constellation();
        let spec = FaultSpec {
            sat_outages: vec![window(0, 0.0, 10.0), window(0, 0.0, 10.0), window(1, 0.0, 10.0)],
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(20));
        let state = FaultState::at(&sched, SimTime::from_secs(5));
        assert_eq!(state.satellites_down(), 2);
        assert!(!state.all_up());
    }
}
