//! Compiling a [`FaultSpec`] into a time-sorted event schedule.

use crate::spec::{FaultSpec, FlapProcess};
use hypatia_constellation::Constellation;
use hypatia_util::hash::Fnv1a64;
use hypatia_util::rng::DetRng;
use hypatia_util::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a fault event does to its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// The target goes down.
    Fail,
    /// The target comes back up.
    Recover,
}

/// The component a fault event acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultTarget {
    /// A whole satellite: all its ISLs and GSLs go with it, and packets
    /// arriving at it while down are dropped.
    Satellite(u32),
    /// One inter-satellite link, endpoints normalized so the smaller
    /// index comes first.
    Isl(u32, u32),
    /// All ground-to-satellite links of one ground station (weather
    /// attenuation). The station itself stays up: traffic sourced there
    /// is simply unreachable until the sky clears.
    GroundStation(u32),
}

/// One scheduled topology change.
///
/// The derived ordering is time-major, which is exactly the order the
/// schedule stores and the simulator consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the change takes effect.
    pub t: SimTime,
    /// Failure or repair.
    pub kind: FaultKind,
    /// The affected component.
    pub target: FaultTarget,
}

/// A compiled, immutable, time-sorted fault scenario.
///
/// Built once per run by [`FaultSchedule::compile`]; afterwards it is
/// only read — the simulator walks it front to back, and
/// [`FaultState::at`](crate::FaultState::at) replays prefixes of it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    num_satellites: u32,
    num_ground_stations: u32,
    horizon: SimTime,
}

/// Stream tags separating the per-component RNG derivations.
const STREAM_SAT_FLAP: u64 = 1;
const STREAM_ISL_FLAP: u64 = 2;

/// Derive an independent per-component RNG from the master seed.
///
/// FNV-1a over `(seed, stream, component)` gives each satellite and
/// each ISL its own reproducible stream regardless of how many other
/// components exist or in what order they are compiled.
fn component_rng(seed: u64, stream: u64, component: u64) -> DetRng {
    let mut h = Fnv1a64::new();
    h.write_u64(seed);
    h.write_u64(stream);
    h.write_u64(component);
    DetRng::new(h.finish())
}

impl FaultSchedule {
    /// Expand `spec` against a concrete constellation over `[0, horizon)`.
    ///
    /// Explicit windows are clamped to the horizon; windows that are
    /// empty after clamping, or that reference components the
    /// constellation does not have, are dropped. Flap processes sample
    /// one renewal sequence per satellite / per ISL from seeds derived
    /// off `spec.seed`. The result is sorted by `(t, kind, target)`.
    pub fn compile(
        spec: &FaultSpec,
        constellation: &Constellation,
        horizon: SimDuration,
    ) -> FaultSchedule {
        let n_sats = constellation.num_satellites() as u32;
        let n_gs = constellation.num_ground_stations() as u32;
        let horizon_s = horizon.secs_f64();
        let mut events = Vec::new();

        let mut push_window = |target: FaultTarget, from_s: f64, until_s: f64| {
            let from = from_s.max(0.0);
            let until = until_s.min(horizon_s);
            if from >= until {
                return;
            }
            events.push(FaultEvent {
                t: SimTime::from_secs_f64(from),
                kind: FaultKind::Fail,
                target,
            });
            if until < horizon_s {
                events.push(FaultEvent {
                    t: SimTime::from_secs_f64(until),
                    kind: FaultKind::Recover,
                    target,
                });
            }
        };

        for w in &spec.sat_outages {
            if w.target < n_sats {
                push_window(FaultTarget::Satellite(w.target), w.from_s, w.until_s);
            }
        }
        for w in &spec.gsl_weather {
            if w.target < n_gs {
                push_window(FaultTarget::GroundStation(w.target), w.from_s, w.until_s);
            }
        }
        for cut in &spec.isl_cuts {
            let (a, b) = normalize(cut.a, cut.b);
            let exists = constellation.isls.iter().any(|&(x, y)| normalize(x, y) == (a, b));
            if exists {
                push_window(FaultTarget::Isl(a, b), cut.from_s, cut.until_s);
            }
        }

        if let Some(flap) = &spec.sat_flap {
            for sat in 0..n_sats {
                let rng = component_rng(spec.seed, STREAM_SAT_FLAP, sat as u64);
                sample_flaps(rng, flap, horizon_s, FaultTarget::Satellite(sat), &mut events);
            }
        }
        if let Some(flap) = &spec.isl_flap {
            for (i, &(a, b)) in constellation.isls.iter().enumerate() {
                let (a, b) = normalize(a, b);
                let rng = component_rng(spec.seed, STREAM_ISL_FLAP, i as u64);
                sample_flaps(rng, flap, horizon_s, FaultTarget::Isl(a, b), &mut events);
            }
        }

        events.sort_unstable();
        FaultSchedule {
            events,
            num_satellites: n_sats,
            num_ground_stations: n_gs,
            horizon: SimTime::ZERO + horizon,
        }
    }

    /// The compiled events, time-sorted.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of compiled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the scenario injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Satellite count of the constellation the schedule was compiled for.
    pub fn num_satellites(&self) -> u32 {
        self.num_satellites
    }

    /// Ground-station count of the constellation the schedule was
    /// compiled for.
    pub fn num_ground_stations(&self) -> u32 {
        self.num_ground_stations
    }

    /// End of the compiled scenario (the compile horizon).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Reassemble per-target down-windows `(target, from, until)` from
    /// the event stream, e.g. for a visualization outage layer. Windows
    /// still open at the horizon are closed there. Output is sorted by
    /// target, then start time.
    pub fn outage_windows(&self) -> Vec<(FaultTarget, SimTime, SimTime)> {
        let mut open: BTreeMap<FaultTarget, (u32, SimTime)> = BTreeMap::new();
        let mut windows: Vec<(FaultTarget, SimTime, SimTime)> = Vec::new();
        for ev in &self.events {
            match ev.kind {
                FaultKind::Fail => {
                    let e = open.entry(ev.target).or_insert((0, ev.t));
                    if e.0 == 0 {
                        e.1 = ev.t;
                    }
                    e.0 += 1;
                }
                FaultKind::Recover => {
                    if let Some(e) = open.get_mut(&ev.target) {
                        e.0 = e.0.saturating_sub(1);
                        if e.0 == 0 {
                            let (_, from) = *e;
                            open.remove(&ev.target);
                            if from < ev.t {
                                windows.push((ev.target, from, ev.t));
                            }
                        }
                    }
                }
            }
        }
        for (target, (_, from)) in open {
            if from < self.horizon {
                windows.push((target, from, self.horizon));
            }
        }
        windows.sort_unstable();
        windows
    }
}

/// Normalize an undirected satellite pair so the smaller index is first.
pub(crate) fn normalize(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Sample one up/down renewal sequence over `[0, horizon_s)`.
fn sample_flaps(
    mut rng: DetRng,
    flap: &FlapProcess,
    horizon_s: f64,
    target: FaultTarget,
    events: &mut Vec<FaultEvent>,
) {
    assert!(flap.mttf_s > 0.0 && flap.mttr_s > 0.0, "flap process means must be positive");
    let mut t = 0.0;
    loop {
        t += rng.next_exp(flap.mttf_s);
        if t >= horizon_s {
            return;
        }
        events.push(FaultEvent { t: SimTime::from_secs_f64(t), kind: FaultKind::Fail, target });
        t += rng.next_exp(flap.mttr_s);
        if t >= horizon_s {
            return;
        }
        events.push(FaultEvent { t: SimTime::from_secs_f64(t), kind: FaultKind::Recover, target });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{LinkCut, OutageWindow};
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;

    fn small_constellation() -> Constellation {
        Constellation::build(
            "tiny",
            vec![ShellSpec::new("A", 550.0, 3, 4, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("eq", 0.0, 0.0), GroundStation::new("mid", 40.0, 60.0)],
            GslConfig::new(25.0),
        )
    }

    fn window(target: u32, from_s: f64, until_s: f64) -> OutageWindow {
        OutageWindow { target, from_s, until_s }
    }

    #[test]
    fn empty_spec_compiles_to_empty_schedule() {
        let c = small_constellation();
        let sched = FaultSchedule::compile(&FaultSpec::default(), &c, SimDuration::from_secs(60));
        assert!(sched.is_empty());
        assert!(sched.outage_windows().is_empty());
    }

    #[test]
    fn explicit_windows_become_fail_recover_pairs() {
        let c = small_constellation();
        let spec = FaultSpec {
            sat_outages: vec![window(3, 5.0, 15.0)],
            gsl_weather: vec![window(0, 2.0, 4.0)],
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(60));
        assert_eq!(sched.len(), 4);
        let ev = sched.events();
        assert_eq!(
            ev[0],
            FaultEvent {
                t: SimTime::from_secs(2),
                kind: FaultKind::Fail,
                target: FaultTarget::GroundStation(0),
            }
        );
        assert!(ev.windows(2).all(|w| w[0] <= w[1]), "events must be time-sorted");
        let windows = sched.outage_windows();
        assert_eq!(windows.len(), 2);
        assert!(windows.contains(&(
            FaultTarget::Satellite(3),
            SimTime::from_secs(5),
            SimTime::from_secs(15)
        )));
    }

    #[test]
    fn windows_clamp_to_horizon_and_drop_invalid_targets() {
        let c = small_constellation();
        let n_sats = c.num_satellites() as u32;
        let spec = FaultSpec {
            sat_outages: vec![
                window(0, 50.0, 500.0),    // runs past horizon: no Recover event
                window(n_sats, 0.0, 10.0), // out of range: dropped
                window(1, 30.0, 20.0),     // inverted: dropped
            ],
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(60));
        assert_eq!(sched.len(), 1);
        assert_eq!(sched.events()[0].kind, FaultKind::Fail);
        // The open window is closed at the horizon for reporting.
        assert_eq!(
            sched.outage_windows(),
            vec![(FaultTarget::Satellite(0), SimTime::from_secs(50), SimTime::from_secs(60))]
        );
    }

    #[test]
    fn isl_cuts_normalize_and_validate_endpoints() {
        let c = small_constellation();
        let &(a, b) = c.isls.first().expect("preset has ISLs");
        let spec = FaultSpec {
            isl_cuts: vec![
                LinkCut { a: b, b: a, from_s: 1.0, until_s: 2.0 }, // reversed endpoints
                LinkCut { a: 0, b: 0, from_s: 1.0, until_s: 2.0 }, // not an ISL
            ],
            ..FaultSpec::default()
        };
        let sched = FaultSchedule::compile(&spec, &c, SimDuration::from_secs(10));
        assert_eq!(sched.len(), 2);
        assert_eq!(
            sched.events()[0].target,
            FaultTarget::Isl(normalize(a, b).0, normalize(a, b).1)
        );
    }

    #[test]
    fn compile_is_deterministic_and_seed_sensitive() {
        let c = small_constellation();
        let flappy = FaultSpec {
            seed: 42,
            sat_flap: Some(FlapProcess { mttf_s: 20.0, mttr_s: 5.0 }),
            isl_flap: Some(FlapProcess { mttf_s: 15.0, mttr_s: 3.0 }),
            ..FaultSpec::default()
        };
        let a = FaultSchedule::compile(&flappy, &c, SimDuration::from_secs(120));
        let b = FaultSchedule::compile(&flappy, &c, SimDuration::from_secs(120));
        assert_eq!(a, b);
        assert!(!a.is_empty(), "120 s at MTTF 20 s should produce failures");
        let reseeded = FaultSpec { seed: 43, ..flappy };
        let d = FaultSchedule::compile(&reseeded, &c, SimDuration::from_secs(120));
        assert_ne!(a, d);
    }

    #[test]
    fn flap_unavailability_tracks_the_process() {
        let c = small_constellation();
        let flap = FlapProcess { mttf_s: 40.0, mttr_s: 10.0 };
        let spec = FaultSpec { seed: 7, sat_flap: Some(flap), ..FaultSpec::default() };
        let horizon = SimDuration::from_secs(2_000);
        let sched = FaultSchedule::compile(&spec, &c, horizon);
        let mut down_ns = 0u64;
        for (_, from, until) in sched.outage_windows() {
            down_ns += until.nanos() - from.nanos();
        }
        let total_ns = horizon.nanos() * c.num_satellites() as u64;
        let frac = down_ns as f64 / total_ns as f64;
        let expect = flap.unavailability();
        assert!(
            (frac - expect).abs() < 0.05,
            "measured unavailability {frac:.3}, process says {expect:.3}"
        );
    }
}
