//! Reliable transport for Hypatia: TCP endpoints over the packet simulator.
//!
//! The paper evaluates TCP NewReno (loss-based) and TCP Vegas (delay-based)
//! over LEO paths, concluding that *both* loss and delay are poor congestion
//! signals in this setting (§4.2). This crate implements those senders —
//! plus CUBIC and BBR as extensions — against `hypatia-netsim`'s application
//! interface:
//!
//! * [`tcp::sender::TcpSender`] — sliding window, RFC6298 RTO with
//!   timestamp-based RTT sampling, fast retransmit/recovery (RFC6582
//!   NewReno semantics), pluggable congestion control;
//! * [`tcp::sink::TcpSink`] — cumulative ACKs, out-of-order reassembly,
//!   configurable delayed ACKs (the mechanism behind the paper's Fig. 3(a)
//!   RTT oscillation note);
//! * [`tcp::cc`] — the [`tcp::cc::CongestionControl`] trait with NewReno,
//!   Vegas, and CUBIC implementations.
//!
//! Simplifications, shared with the paper's setup: no handshake (flows are
//! long-running and pre-established), no SACK (ns-3's NewReno-without-SACK
//! behaviour, which is what makes reordering masquerade as loss), an
//! unbounded receive window, and byte-stream data generated on demand.

pub mod tcp;

pub use tcp::bulk::{BulkTcpSender, BulkTcpSink};
pub use tcp::cc::{bbr::Bbr, cubic::Cubic, newreno::NewReno, vegas::Vegas, CongestionControl};
pub use tcp::config::TcpConfig;
pub use tcp::sender::TcpSender;
pub use tcp::sink::TcpSink;
