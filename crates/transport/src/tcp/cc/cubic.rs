//! CUBIC (RFC 8312): extension beyond the paper's two algorithms.
//!
//! The paper notes Hypatia "can be used with any congestion control
//! algorithm implemented in ns-3"; CUBIC is the obvious third candidate
//! (today's default loss-based CC), included to support ablations of the
//! window-growth function on LEO paths.

use super::{CcState, CongestionControl};
use hypatia_netsim::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use hypatia_util::{SimDuration, SimTime};

/// CUBIC constants per RFC 8312.
const C: f64 = 0.4;
const BETA: f64 = 0.7;

/// Cubic window growth with fast convergence.
#[derive(Debug, Default)]
pub struct Cubic {
    /// Window size before the last reduction, bytes.
    w_max: f64,
    /// Epoch start (None until the first congestion event or ACK after it).
    epoch_start: Option<SimTime>,
    /// Time (s) at which the cubic reaches `w_max` again.
    k: f64,
    /// cwnd estimate tracked in f64 to avoid integer truncation feedback.
    w_cubic_origin: f64,
}

impl Cubic {
    /// A fresh CUBIC instance.
    pub fn new() -> Self {
        Self::default()
    }

    fn enter_epoch(&mut self, state: &CcState, now: SimTime) {
        self.epoch_start = Some(now);
        let w = state.cwnd as f64;
        self.w_cubic_origin = w;
        self.k =
            if self.w_max > w { ((self.w_max - w) / (C * state.mss as f64)).cbrt() } else { 0.0 };
    }

    fn reduce(&mut self, state: &mut CcState, now: SimTime) {
        let w = state.cwnd as f64;
        // Fast convergence: release bandwidth faster when shrinking again.
        self.w_max = if w < self.w_max { w * (1.0 + BETA) / 2.0 } else { w };
        state.ssthresh = ((w * BETA) as u64).max(2 * state.mss);
        state.cwnd = state.ssthresh;
        state.floor_one_mss();
        self.epoch_start = None;
        let _ = now;
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "Cubic"
    }

    fn on_ack(
        &mut self,
        state: &mut CcState,
        newly_acked: u64,
        _rtt: Option<SimDuration>,
        now: SimTime,
    ) {
        if state.in_slow_start() {
            state.cwnd += newly_acked.min(state.mss);
            return;
        }
        if self.epoch_start.is_none() {
            self.enter_epoch(state, now);
        }
        let t = now.since(self.epoch_start.expect("epoch set")).secs_f64();
        let target = self.w_cubic_origin
            + C * state.mss as f64 * (t - self.k).powi(3)
            + (self.w_max - self.w_cubic_origin);
        // W_cubic(t) = C·(t−K)³·MSS + W_max  (expressed from the origin).
        let w_cubic = C * state.mss as f64 * (t - self.k).powi(3) + self.w_max;
        let _ = target;
        if w_cubic > state.cwnd as f64 {
            // Approach the cubic target by at most one MSS per ACK batch.
            let step = ((w_cubic - state.cwnd as f64).min(state.mss as f64)).max(1.0) as u64;
            state.cwnd += step;
        } else {
            // TCP-friendly/concave floor: grow slowly (Reno-rate lower
            // bound approximated at 1 MSS per window).
            state.cwnd += (state.mss as f64 * state.mss as f64 / state.cwnd as f64) as u64;
        }
    }

    fn on_fast_retransmit(&mut self, state: &mut CcState, _inflight: u64, now: SimTime) {
        self.reduce(state, now);
        // Keep the +3 MSS inflation convention of the sender's recovery.
        state.cwnd += 3 * state.mss;
    }

    fn on_recovery_exit(&mut self, state: &mut CcState, _now: SimTime) {
        state.cwnd = state.ssthresh;
        state.floor_one_mss();
    }

    fn on_timeout(&mut self, state: &mut CcState, _inflight: u64, now: SimTime) {
        self.reduce(state, now);
        state.cwnd = state.mss;
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.put_f64(self.w_max);
        w.put_opt_time(self.epoch_start);
        w.put_f64(self.k);
        w.put_f64(self.w_cubic_origin);
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), CheckpointError> {
        self.w_max = r.get_f64()?;
        self.epoch_start = r.get_opt_time()?;
        self.k = r.get_f64()?;
        self.w_cubic_origin = r.get_f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> CcState {
        let mut st = CcState::new(1000, 10);
        st.ssthresh = 10_000;
        st
    }

    #[test]
    fn slow_start_is_exponential() {
        let mut cc = Cubic::new();
        let mut st = CcState::new(1000, 2);
        let before = st.cwnd;
        cc.on_ack(&mut st, 1000, None, SimTime::ZERO);
        assert_eq!(st.cwnd, before + 1000);
    }

    #[test]
    fn reduction_multiplies_by_beta() {
        let mut cc = Cubic::new();
        let mut st = state();
        st.cwnd = 10_000;
        cc.on_timeout(&mut st, 10_000, SimTime::from_secs(1));
        assert_eq!(st.ssthresh, 7_000);
        assert_eq!(st.cwnd, 1_000);
    }

    #[test]
    fn concave_growth_toward_w_max() {
        let mut cc = Cubic::new();
        let mut st = state();
        st.cwnd = 10_000;
        cc.on_fast_retransmit(&mut st, 10_000, SimTime::from_secs(1));
        cc.on_recovery_exit(&mut st, SimTime::from_secs(1));
        let after_drop = st.cwnd;
        // Feed ACKs over simulated seconds; the window must climb back
        // towards w_max ≈ 10_000 but plateau near it (concave region).
        let mut t = SimTime::from_secs(1);
        for _ in 0..200 {
            t += SimDuration::from_millis(50);
            cc.on_ack(&mut st, 1000, None, t);
        }
        assert!(st.cwnd > after_drop, "no regrowth");
        assert!(st.cwnd >= 9_000, "should approach w_max, got {}", st.cwnd);
    }

    #[test]
    fn growth_accelerates_past_w_max() {
        // Convex region: beyond K the window should exceed the old w_max.
        let mut cc = Cubic::new();
        let mut st = state();
        st.cwnd = 10_000;
        cc.on_fast_retransmit(&mut st, 10_000, SimTime::from_secs(1));
        cc.on_recovery_exit(&mut st, SimTime::from_secs(1));
        let mut t = SimTime::from_secs(1);
        for _ in 0..2000 {
            t += SimDuration::from_millis(50);
            cc.on_ack(&mut st, 1000, None, t);
        }
        assert!(st.cwnd > 10_000, "window stuck at {}", st.cwnd);
    }

    #[test]
    fn fast_convergence_lowers_w_max_on_back_to_back_losses() {
        let mut cc = Cubic::new();
        let mut st = state();
        st.cwnd = 10_000;
        cc.on_timeout(&mut st, 10_000, SimTime::from_secs(1));
        let w_max_1 = cc.w_max;
        st.cwnd = 5_000; // lost again before regaining w_max
        cc.on_timeout(&mut st, 5_000, SimTime::from_secs(2));
        assert!(cc.w_max < w_max_1, "fast convergence must lower w_max");
    }
}
