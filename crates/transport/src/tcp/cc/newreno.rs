//! TCP NewReno (RFC 5681 + RFC 6582): the paper's loss-based baseline.

use super::{CcState, CongestionControl};
use hypatia_netsim::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use hypatia_util::{SimDuration, SimTime};

/// Loss-based AIMD with slow start and fast recovery.
#[derive(Debug, Default)]
pub struct NewReno {
    /// Byte accumulator for congestion-avoidance growth (Appropriate Byte
    /// Counting-style: +1 MSS per cwnd's worth of ACKed bytes).
    ca_acc: u64,
}

impl NewReno {
    /// A fresh NewReno instance.
    pub fn new() -> Self {
        Self::default()
    }

    fn halve_to_ssthresh(state: &mut CcState, inflight: u64) {
        state.ssthresh = (inflight / 2).max(2 * state.mss);
    }
}

impl CongestionControl for NewReno {
    fn name(&self) -> &'static str {
        "NewReno"
    }

    fn on_ack(
        &mut self,
        state: &mut CcState,
        newly_acked: u64,
        _rtt: Option<SimDuration>,
        _now: SimTime,
    ) {
        if state.in_slow_start() {
            // Exponential: grow by the bytes ACKed (capped at ssthresh).
            state.cwnd =
                (state.cwnd + newly_acked.min(state.mss)).min(state.ssthresh.max(state.cwnd));
        } else {
            // Congestion avoidance: +1 MSS per cwnd of ACKed data.
            self.ca_acc += newly_acked;
            if self.ca_acc >= state.cwnd {
                self.ca_acc -= state.cwnd;
                state.cwnd += state.mss;
            }
        }
    }

    fn on_fast_retransmit(&mut self, state: &mut CcState, inflight: u64, _now: SimTime) {
        Self::halve_to_ssthresh(state, inflight);
        // RFC 6582: cwnd = ssthresh + 3·MSS (the three dup ACKs left the
        // network).
        state.cwnd = state.ssthresh + 3 * state.mss;
        self.ca_acc = 0;
    }

    fn on_recovery_exit(&mut self, state: &mut CcState, _now: SimTime) {
        state.cwnd = state.ssthresh;
        state.floor_one_mss();
        self.ca_acc = 0;
    }

    fn on_timeout(&mut self, state: &mut CcState, inflight: u64, _now: SimTime) {
        Self::halve_to_ssthresh(state, inflight);
        state.cwnd = state.mss;
        self.ca_acc = 0;
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.ca_acc);
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), CheckpointError> {
        self.ca_acc = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> CcState {
        CcState::new(1000, 10)
    }

    #[test]
    fn slow_start_grows_exponentially_per_byte() {
        let mut cc = NewReno::new();
        let mut st = state();
        let before = st.cwnd;
        cc.on_ack(&mut st, 1000, None, SimTime::ZERO);
        assert_eq!(st.cwnd, before + 1000);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut cc = NewReno::new();
        let mut st = state();
        st.ssthresh = 5_000; // below cwnd → CA
        let before = st.cwnd; // 10_000
                              // One full window of ACKs → exactly +1 MSS.
        for _ in 0..10 {
            cc.on_ack(&mut st, 1000, None, SimTime::ZERO);
        }
        assert_eq!(st.cwnd, before + 1000);
    }

    #[test]
    fn fast_retransmit_halves_and_inflates() {
        let mut cc = NewReno::new();
        let mut st = state();
        cc.on_fast_retransmit(&mut st, 10_000, SimTime::ZERO);
        assert_eq!(st.ssthresh, 5_000);
        assert_eq!(st.cwnd, 5_000 + 3_000);
    }

    #[test]
    fn recovery_exit_deflates_to_ssthresh() {
        let mut cc = NewReno::new();
        let mut st = state();
        cc.on_fast_retransmit(&mut st, 10_000, SimTime::ZERO);
        cc.on_recovery_exit(&mut st, SimTime::ZERO);
        assert_eq!(st.cwnd, 5_000);
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut cc = NewReno::new();
        let mut st = state();
        cc.on_timeout(&mut st, 8_000, SimTime::ZERO);
        assert_eq!(st.cwnd, 1_000);
        assert_eq!(st.ssthresh, 4_000);
    }

    #[test]
    fn ssthresh_floor_is_two_mss() {
        let mut cc = NewReno::new();
        let mut st = state();
        cc.on_timeout(&mut st, 1_000, SimTime::ZERO);
        assert_eq!(st.ssthresh, 2_000);
    }

    #[test]
    fn sawtooth_shape_over_epochs() {
        // Repeated loss at a fixed inflight yields the classic sawtooth:
        // grow linearly, halve, grow again.
        let mut cc = NewReno::new();
        let mut st = state();
        st.ssthresh = 4_000;
        st.cwnd = 8_000;
        cc.on_fast_retransmit(&mut st, 8_000, SimTime::ZERO);
        cc.on_recovery_exit(&mut st, SimTime::ZERO);
        let floor = st.cwnd;
        assert_eq!(floor, 4_000);
        for _ in 0..40 {
            cc.on_ack(&mut st, 1000, None, SimTime::ZERO);
        }
        assert!(st.cwnd > floor, "window must regrow after recovery");
    }
}
