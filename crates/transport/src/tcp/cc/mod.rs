//! The congestion-control interface.
//!
//! Senders drive one of these state machines; the window/ssthresh live in
//! [`CcState`] so algorithms stay small. Fast-recovery window *inflation*
//! (+1 MSS per duplicate ACK) is handled by the sender uniformly, as ns-3
//! does; algorithms decide the window on ACK, on entering fast retransmit,
//! on exiting recovery, and on timeout.

pub mod bbr;
pub mod cubic;
pub mod newreno;
pub mod vegas;

use hypatia_netsim::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use hypatia_util::{SimDuration, SimTime};

/// Window state shared by all algorithms (bytes).
#[derive(Debug, Clone)]
pub struct CcState {
    /// Congestion window, bytes.
    pub cwnd: u64,
    /// Slow-start threshold, bytes.
    pub ssthresh: u64,
    /// Segment size, bytes.
    pub mss: u64,
}

impl CcState {
    /// Initial state: `initial_segments · mss` window, effectively-infinite
    /// ssthresh.
    pub fn new(mss: u64, initial_segments: u64) -> Self {
        assert!(mss > 0 && initial_segments > 0);
        CcState { cwnd: mss * initial_segments, ssthresh: u64::MAX / 2, mss }
    }

    /// In slow start?
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Clamp the window to at least one segment.
    pub fn floor_one_mss(&mut self) {
        self.cwnd = self.cwnd.max(self.mss);
    }

    /// Window in whole segments (rounded down, at least 1).
    pub fn cwnd_segments(&self) -> u64 {
        (self.cwnd / self.mss).max(1)
    }

    /// Serialize the window state (checkpointing).
    pub fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.cwnd);
        w.put_u64(self.ssthresh);
        w.put_u64(self.mss);
    }

    /// Restore the state captured by [`CcState::save`]. The MSS is derived
    /// from configuration, so a mismatch means the snapshot belongs to a
    /// differently-configured sender.
    pub fn restore(&mut self, r: &mut SnapReader) -> Result<(), CheckpointError> {
        self.cwnd = r.get_u64()?;
        self.ssthresh = r.get_u64()?;
        let mss = r.get_u64()?;
        if mss != self.mss {
            return Err(CheckpointError::Malformed(format!(
                "snapshot MSS {mss} != configured MSS {}",
                self.mss
            )));
        }
        Ok(())
    }
}

/// A pluggable congestion-control algorithm.
///
/// `Send` so TCP endpoints (which box one of these) satisfy the
/// `Application: Send` bound of the sharded engine.
pub trait CongestionControl: Send + 'static {
    /// Algorithm name (for logs and plots).
    fn name(&self) -> &'static str;

    /// A cumulative ACK advanced `snd_una` by `newly_acked` bytes outside
    /// recovery. `rtt` carries the timestamp-derived sample when available.
    fn on_ack(
        &mut self,
        state: &mut CcState,
        newly_acked: u64,
        rtt: Option<SimDuration>,
        now: SimTime,
    );

    /// Entering fast retransmit after the dup-ACK threshold; `inflight` is
    /// the bytes outstanding at that moment.
    fn on_fast_retransmit(&mut self, state: &mut CcState, inflight: u64, now: SimTime);

    /// Leaving fast recovery (the recover point got cumulatively ACKed).
    fn on_recovery_exit(&mut self, state: &mut CcState, now: SimTime);

    /// Retransmission timeout.
    fn on_timeout(&mut self, state: &mut CcState, inflight: u64, now: SimTime);

    /// Serialize the algorithm's internal state for a checkpoint. The
    /// window itself lives in [`CcState`] and is saved by the sender; this
    /// covers only algorithm-private state (accumulators, model windows).
    fn save_state(&self, w: &mut SnapWriter);

    /// Restore the state captured by [`CongestionControl::save_state`]
    /// into a freshly-constructed instance of the same algorithm.
    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), CheckpointError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state() {
        let st = CcState::new(1380, 10);
        assert_eq!(st.cwnd, 13_800);
        assert!(st.in_slow_start());
        assert_eq!(st.cwnd_segments(), 10);
    }

    #[test]
    fn floor_applies() {
        let mut st = CcState::new(1380, 10);
        st.cwnd = 10;
        st.floor_one_mss();
        assert_eq!(st.cwnd, 1380);
        assert_eq!(st.cwnd_segments(), 1);
    }
}
