//! TCP Vegas: the paper's delay-based algorithm.
//!
//! Vegas compares expected throughput (`cwnd / baseRTT`) with actual
//! throughput (`cwnd / RTT`) once per RTT and nudges the window so the
//! difference stays between `alpha` and `beta` segments. Its failure mode
//! on LEO paths (paper §4.2, Fig. 5) falls out of the algorithm: `baseRTT`
//! is the minimum RTT ever seen, so when the *path itself* lengthens, the
//! inflated RTT reads as persistent queueing and Vegas pins the window
//! down — "interprets the increase in latency as a sign of congestion,
//! drastically cuts its congestion window, and achieves very poor
//! throughput after this point".

use super::{CcState, CongestionControl};
use hypatia_netsim::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use hypatia_util::{SimDuration, SimTime};

/// Delay-based congestion control (Brakmo & Peterson parameters:
/// α = 2, β = 4, γ = 1 segments).
#[derive(Debug)]
pub struct Vegas {
    alpha: u64,
    beta: u64,
    gamma: u64,
    /// Minimum RTT ever observed.
    base_rtt: Option<SimDuration>,
    /// Minimum RTT within the current epoch (robust to delayed-ACK noise).
    epoch_min_rtt: Option<SimDuration>,
    /// RTT samples collected this epoch.
    epoch_samples: u32,
    /// Bytes ACKed since the epoch began; an epoch ends when a full cwnd
    /// has been ACKed (≈ one RTT).
    epoch_acked: u64,
    /// Loss reactions are Reno-like.
    reno: super::newreno::NewReno,
}

impl Default for Vegas {
    fn default() -> Self {
        Self::new()
    }
}

impl Vegas {
    /// Standard-parameter Vegas.
    pub fn new() -> Self {
        Vegas {
            alpha: 2,
            beta: 4,
            gamma: 1,
            base_rtt: None,
            epoch_min_rtt: None,
            epoch_samples: 0,
            epoch_acked: 0,
            reno: super::newreno::NewReno::new(),
        }
    }

    /// The current baseRTT estimate (public for experiment logging).
    pub fn base_rtt(&self) -> Option<SimDuration> {
        self.base_rtt
    }

    /// Difference between expected and actual rate, in segments:
    /// `diff = cwnd · (RTT − baseRTT) / RTT / MSS`.
    fn diff_segments(&self, state: &CcState, rtt: SimDuration) -> f64 {
        let base = match self.base_rtt {
            Some(b) => b.secs_f64(),
            None => return 0.0,
        };
        let rtt_s = rtt.secs_f64();
        if rtt_s <= 0.0 {
            return 0.0;
        }
        state.cwnd as f64 * (rtt_s - base) / rtt_s / state.mss as f64
    }

    fn end_of_epoch(&mut self, state: &mut CcState) {
        let Some(rtt) = self.epoch_min_rtt else { return };
        let diff = self.diff_segments(state, rtt);
        if state.in_slow_start() {
            // Vegas slow start: stop exponential growth once the queue
            // signal appears (γ), handing over to linear adjustment.
            if diff > self.gamma as f64 {
                state.ssthresh = state.cwnd.min(state.ssthresh);
            } else {
                state.cwnd += state.mss;
            }
        } else if diff < self.alpha as f64 {
            state.cwnd += state.mss;
        } else if diff > self.beta as f64 {
            state.cwnd = state.cwnd.saturating_sub(state.mss);
            state.floor_one_mss();
        }
        self.epoch_min_rtt = None;
        self.epoch_samples = 0;
        self.epoch_acked = 0;
    }
}

impl CongestionControl for Vegas {
    fn name(&self) -> &'static str {
        "Vegas"
    }

    fn on_ack(
        &mut self,
        state: &mut CcState,
        newly_acked: u64,
        rtt: Option<SimDuration>,
        _now: SimTime,
    ) {
        if let Some(sample) = rtt {
            self.base_rtt = Some(self.base_rtt.map_or(sample, |b| b.min(sample)));
            self.epoch_min_rtt = Some(self.epoch_min_rtt.map_or(sample, |m| m.min(sample)));
            self.epoch_samples += 1;
        }
        self.epoch_acked += newly_acked;
        if self.epoch_acked >= state.cwnd && self.epoch_samples >= 2 {
            self.end_of_epoch(state);
        }
    }

    fn on_fast_retransmit(&mut self, state: &mut CcState, inflight: u64, now: SimTime) {
        self.reno.on_fast_retransmit(state, inflight, now);
        self.epoch_min_rtt = None;
        self.epoch_samples = 0;
        self.epoch_acked = 0;
    }

    fn on_recovery_exit(&mut self, state: &mut CcState, now: SimTime) {
        self.reno.on_recovery_exit(state, now);
    }

    fn on_timeout(&mut self, state: &mut CcState, inflight: u64, now: SimTime) {
        self.reno.on_timeout(state, inflight, now);
        self.epoch_min_rtt = None;
        self.epoch_samples = 0;
        self.epoch_acked = 0;
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.put_opt_dur(self.base_rtt);
        w.put_opt_dur(self.epoch_min_rtt);
        w.put_u32(self.epoch_samples);
        w.put_u64(self.epoch_acked);
        self.reno.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), CheckpointError> {
        self.base_rtt = r.get_opt_dur()?;
        self.epoch_min_rtt = r.get_opt_dur()?;
        self.epoch_samples = r.get_u32()?;
        self.epoch_acked = r.get_u64()?;
        self.reno.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> CcState {
        let mut st = CcState::new(1000, 10);
        st.ssthresh = 10_000; // start at the slow-start boundary
        st
    }

    /// Feed one epoch's worth of ACKs with a fixed RTT.
    fn run_epoch(cc: &mut Vegas, st: &mut CcState, rtt_ms: u64) {
        let per_ack = st.mss;
        let acks = st.cwnd / per_ack + 1;
        for _ in 0..acks {
            cc.on_ack(st, per_ack, Some(SimDuration::from_millis(rtt_ms)), SimTime::ZERO);
        }
    }

    #[test]
    fn steady_low_delay_grows_window() {
        let mut cc = Vegas::new();
        let mut st = state();
        let before = st.cwnd;
        // RTT equals baseRTT → diff 0 < alpha → +1 MSS per epoch.
        run_epoch(&mut cc, &mut st, 100);
        run_epoch(&mut cc, &mut st, 100);
        assert!(st.cwnd > before, "window should grow with empty queue");
    }

    #[test]
    fn queueing_delay_above_beta_shrinks_window() {
        let mut cc = Vegas::new();
        let mut st = state();
        run_epoch(&mut cc, &mut st, 100); // establish baseRTT = 100 ms
        let grown = st.cwnd;
        // Now RTT 2× base: diff = cwnd/2 segments ≫ beta → shrink. (A few
        // epochs are needed: one low-RTT sample can straddle the epoch
        // boundary and mask the first adjustment.)
        for _ in 0..6 {
            run_epoch(&mut cc, &mut st, 200);
        }
        assert!(st.cwnd < grown, "window must shrink under standing delay: {} vs {grown}", st.cwnd);
    }

    /// The paper's Fig. 5 failure mode: a *path* RTT increase reads as
    /// congestion and throughput collapses because baseRTT never rises.
    #[test]
    fn path_rtt_increase_collapses_window() {
        let mut cc = Vegas::new();
        let mut st = state();
        st.ssthresh = st.cwnd; // skip slow start for clarity
        run_epoch(&mut cc, &mut st, 96); // baseRTT = 96 ms (Rio–St.P. short path)
        for _ in 0..50 {
            run_epoch(&mut cc, &mut st, 111); // path now 111 ms, no queueing
        }
        // Equilibrium: diff = cwnd_seg · (1 − 96/111) ∈ [alpha, beta]
        // → cwnd_seg ≈ beta / 0.135 ≈ 30 — far below a 10 Mbit/s BDP and a
        // fraction of what NewReno would use.
        let cwnd_seg = st.cwnd / st.mss;
        assert!(cwnd_seg <= 32, "window did not collapse: {cwnd_seg} segments");
        assert_eq!(
            cc.base_rtt(),
            Some(SimDuration::from_millis(96)),
            "baseRTT must stay at the old minimum"
        );
    }

    #[test]
    fn base_rtt_tracks_minimum_only() {
        let mut cc = Vegas::new();
        let mut st = state();
        cc.on_ack(&mut st, 1000, Some(SimDuration::from_millis(120)), SimTime::ZERO);
        cc.on_ack(&mut st, 1000, Some(SimDuration::from_millis(90)), SimTime::ZERO);
        cc.on_ack(&mut st, 1000, Some(SimDuration::from_millis(150)), SimTime::ZERO);
        assert_eq!(cc.base_rtt(), Some(SimDuration::from_millis(90)));
    }

    #[test]
    fn loss_reactions_are_reno_like() {
        let mut cc = Vegas::new();
        let mut st = state();
        cc.on_timeout(&mut st, 8_000, SimTime::ZERO);
        assert_eq!(st.cwnd, st.mss);
        assert_eq!(st.ssthresh, 4_000);
    }

    #[test]
    fn slow_start_exits_on_gamma() {
        let mut cc = Vegas::new();
        let mut st = CcState::new(1000, 4); // in slow start (ssthresh huge)
        assert!(st.in_slow_start());
        run_epoch(&mut cc, &mut st, 100); // baseRTT
                                          // Large standing delay → γ exceeded → ssthresh clamped to cwnd.
        run_epoch(&mut cc, &mut st, 300);
        run_epoch(&mut cc, &mut st, 300);
        assert!(!st.in_slow_start(), "gamma signal must end slow start");
    }
}
