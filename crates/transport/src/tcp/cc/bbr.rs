//! BBR-style model-based congestion control (extension).
//!
//! The paper singles BBR out: "once a mature implementation of BBR is
//! available, evaluating its behavior on LEO networks would be of high
//! interest" (§4.2). This is a window-based BBR in the spirit of
//! Cardwell et al.: it models the path with a windowed-max bottleneck
//! bandwidth (`BtlBw`) and a windowed-min round-trip propagation time
//! (`RTprop`), and sets `cwnd = gain · BtlBw · RTprop`.
//!
//! The property that matters on LEO paths: **both windows expire**. When
//! the path itself lengthens, the stale `RTprop` ages out (10 s window)
//! and BBR re-learns the new baseline — unlike Vegas, whose baseRTT is a
//! lifetime minimum and collapses permanently (Fig. 5). The
//! `adapts_to_path_rtt_increase` test pins this difference down.
//!
//! Simplifications vs the full BBR: no pacing (the sender is ACK-clocked),
//! no ProbeRTT state (the cwnd periodically drains via the 0.75 gain
//! phase), and loss is ignored except for RTO (as in BBRv1).

use super::{CcState, CongestionControl};
use hypatia_netsim::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use hypatia_util::{SimDuration, SimTime};

/// ProbeBW gain cycle (BBRv1).
const CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Startup/Drain gains: 2/ln2 and its inverse.
const STARTUP_GAIN: f64 = 2.885;
const DRAIN_GAIN: f64 = 1.0 / 2.885;
/// RTprop window (BBRv1: 10 s).
const RTPROP_WINDOW: SimDuration = SimDuration::from_secs(10);
/// BtlBw window, in bandwidth epochs (≈ RTTs).
const BTLBW_WINDOW_EPOCHS: usize = 10;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Startup,
    Drain,
    ProbeBw,
}

/// Model-based congestion control.
#[derive(Debug)]
pub struct Bbr {
    mode: Mode,
    /// Recent delivery-rate samples `(epoch end, bytes/s)`.
    bw_samples: Vec<(SimTime, f64)>,
    /// Windowed-min RTT and when it was observed.
    rt_prop: Option<(SimTime, SimDuration)>,
    /// Bytes ACKed in the current bandwidth epoch.
    epoch_bytes: u64,
    epoch_start: SimTime,
    /// Startup plateau detection.
    full_bw: f64,
    full_bw_count: u32,
    /// ProbeBW cycle position.
    cycle_idx: usize,
    cycle_stamp: SimTime,
}

impl Default for Bbr {
    fn default() -> Self {
        Self::new()
    }
}

impl Bbr {
    /// A fresh BBR instance.
    pub fn new() -> Self {
        Bbr {
            mode: Mode::Startup,
            bw_samples: Vec::new(),
            rt_prop: None,
            epoch_bytes: 0,
            epoch_start: SimTime::ZERO,
            full_bw: 0.0,
            full_bw_count: 0,
            cycle_idx: 0,
            cycle_stamp: SimTime::ZERO,
        }
    }

    /// Current bottleneck-bandwidth estimate, bytes/s.
    pub fn btl_bw(&self) -> f64 {
        self.bw_samples.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }

    /// Current round-trip propagation estimate.
    pub fn rt_prop(&self) -> Option<SimDuration> {
        self.rt_prop.map(|(_, r)| r)
    }

    fn current_gain(&self, now: SimTime) -> f64 {
        match self.mode {
            Mode::Startup => STARTUP_GAIN,
            Mode::Drain => DRAIN_GAIN,
            Mode::ProbeBw => {
                let _ = now;
                CYCLE[self.cycle_idx]
            }
        }
    }

    fn update_model(&mut self, newly_acked: u64, rtt: Option<SimDuration>, now: SimTime) {
        // RTprop: windowed min; stale entries expire.
        if let Some(sample) = rtt {
            let expired =
                self.rt_prop.is_none_or(|(at, _)| now.saturating_since(at) > RTPROP_WINDOW);
            let lower = self.rt_prop.is_none_or(|(_, r)| sample <= r);
            if expired || lower {
                self.rt_prop = Some((now, sample));
            }
        }

        // BtlBw: delivery rate over ~one RTprop per epoch.
        self.epoch_bytes += newly_acked;
        let epoch_len = self.rt_prop.map_or(SimDuration::from_millis(100), |(_, r)| r);
        let elapsed = now.saturating_since(self.epoch_start);
        if elapsed >= epoch_len && !elapsed.is_zero() {
            let rate = self.epoch_bytes as f64 / elapsed.secs_f64();
            self.bw_samples.push((now, rate));
            if self.bw_samples.len() > BTLBW_WINDOW_EPOCHS {
                self.bw_samples.remove(0);
            }
            self.epoch_bytes = 0;
            self.epoch_start = now;
            self.on_epoch(rate, now);
        }
    }

    fn on_epoch(&mut self, rate: f64, now: SimTime) {
        match self.mode {
            Mode::Startup => {
                // Plateau: < 25% growth for 3 consecutive epochs.
                if rate > self.full_bw * 1.25 {
                    self.full_bw = rate;
                    self.full_bw_count = 0;
                } else {
                    self.full_bw_count += 1;
                    if self.full_bw_count >= 3 {
                        self.mode = Mode::Drain;
                    }
                }
            }
            Mode::Drain => {
                // One epoch of draining suffices at window granularity.
                self.mode = Mode::ProbeBw;
                self.cycle_idx = 0;
                self.cycle_stamp = now;
            }
            Mode::ProbeBw => {
                // Advance the gain cycle once per epoch.
                self.cycle_idx = (self.cycle_idx + 1) % CYCLE.len();
                self.cycle_stamp = now;
            }
        }
    }

    fn apply_cwnd(&self, state: &mut CcState, now: SimTime) {
        let (Some((_, rt_prop)), btl_bw) = (self.rt_prop, self.btl_bw()) else {
            return;
        };
        if btl_bw <= 0.0 {
            return;
        }
        let bdp = btl_bw * rt_prop.secs_f64();
        let target = (self.current_gain(now) * bdp) as u64;
        state.cwnd = target.max(4 * state.mss);
    }
}

impl CongestionControl for Bbr {
    fn name(&self) -> &'static str {
        "BBR"
    }

    fn on_ack(
        &mut self,
        state: &mut CcState,
        newly_acked: u64,
        rtt: Option<SimDuration>,
        now: SimTime,
    ) {
        self.update_model(newly_acked, rtt, now);
        if self.rt_prop.is_none() || self.bw_samples.is_empty() {
            // Model warm-up: grow like slow start.
            state.cwnd += newly_acked.min(state.mss);
            return;
        }
        self.apply_cwnd(state, now);
    }

    fn on_fast_retransmit(&mut self, state: &mut CcState, _inflight: u64, now: SimTime) {
        // BBRv1 does not reduce on isolated loss; keep the model's window.
        self.apply_cwnd(state, now);
    }

    fn on_recovery_exit(&mut self, state: &mut CcState, now: SimTime) {
        self.apply_cwnd(state, now);
    }

    fn on_timeout(&mut self, state: &mut CcState, _inflight: u64, _now: SimTime) {
        // Conservative on RTO, like BBRv1's CA_LOSS handling.
        state.cwnd = 4 * state.mss;
        self.epoch_bytes = 0;
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.put_u8(match self.mode {
            Mode::Startup => 0,
            Mode::Drain => 1,
            Mode::ProbeBw => 2,
        });
        w.put_usize(self.bw_samples.len());
        for &(t, rate) in &self.bw_samples {
            w.put_time(t);
            w.put_f64(rate);
        }
        match self.rt_prop {
            Some((at, rtt)) => {
                w.put_bool(true);
                w.put_time(at);
                w.put_dur(rtt);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.epoch_bytes);
        w.put_time(self.epoch_start);
        w.put_f64(self.full_bw);
        w.put_u32(self.full_bw_count);
        w.put_usize(self.cycle_idx);
        w.put_time(self.cycle_stamp);
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), CheckpointError> {
        self.mode = match r.get_u8()? {
            0 => Mode::Startup,
            1 => Mode::Drain,
            2 => Mode::ProbeBw,
            m => return Err(CheckpointError::Malformed(format!("unknown BBR mode {m}"))),
        };
        let n = r.get_usize()?;
        self.bw_samples.clear();
        for _ in 0..n {
            let t = r.get_time()?;
            let rate = r.get_f64()?;
            self.bw_samples.push((t, rate));
        }
        self.rt_prop = if r.get_bool()? {
            let at = r.get_time()?;
            let rtt = r.get_dur()?;
            Some((at, rtt))
        } else {
            None
        };
        self.epoch_bytes = r.get_u64()?;
        self.epoch_start = r.get_time()?;
        self.full_bw = r.get_f64()?;
        self.full_bw_count = r.get_u32()?;
        self.cycle_idx = r.get_usize()?;
        if self.cycle_idx >= CYCLE.len() {
            return Err(CheckpointError::Malformed(format!(
                "BBR cycle index {} out of range",
                self.cycle_idx
            )));
        }
        self.cycle_stamp = r.get_time()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> CcState {
        CcState::new(1000, 10)
    }

    /// Feed `epochs` of ACKs at a steady `rate_bytes_per_s` and `rtt_ms`.
    fn drive(
        cc: &mut Bbr,
        st: &mut CcState,
        start: SimTime,
        epochs: u32,
        rate: f64,
        rtt_ms: u64,
    ) -> SimTime {
        let mut now = start;
        let rtt = SimDuration::from_millis(rtt_ms);
        for _ in 0..epochs {
            // Deliver one RTT's worth of bytes in 10 ACKs across the epoch.
            let per_ack = (rate * rtt.secs_f64() / 10.0) as u64;
            for _ in 0..10 {
                now += rtt / 10;
                cc.on_ack(st, per_ack, Some(rtt), now);
            }
        }
        now
    }

    #[test]
    fn learns_bandwidth_and_rtprop() {
        let mut cc = Bbr::new();
        let mut st = state();
        // 1.25 MB/s (10 Mbit/s), 100 ms RTT.
        drive(&mut cc, &mut st, SimTime::ZERO, 20, 1.25e6, 100);
        let bw = cc.btl_bw();
        assert!((1.0e6..1.6e6).contains(&bw), "BtlBw {bw}");
        assert_eq!(cc.rt_prop(), Some(SimDuration::from_millis(100)));
    }

    #[test]
    fn exits_startup_at_plateau() {
        let mut cc = Bbr::new();
        let mut st = state();
        drive(&mut cc, &mut st, SimTime::ZERO, 20, 1.25e6, 100);
        assert_eq!(cc.mode, Mode::ProbeBw, "should reach ProbeBW at steady rate");
    }

    #[test]
    fn cwnd_tracks_bdp() {
        let mut cc = Bbr::new();
        let mut st = state();
        drive(&mut cc, &mut st, SimTime::ZERO, 30, 1.25e6, 100);
        // BDP = 1.25e6 B/s × 0.1 s = 125 kB; gains 0.75..1.25.
        assert!((80_000..200_000).contains(&st.cwnd), "cwnd {} vs BDP 125000", st.cwnd);
    }

    /// The LEO-critical behaviour: after a path-RTT increase, BBR's RTprop
    /// window expires and throughput recovers — Vegas never does.
    #[test]
    fn adapts_to_path_rtt_increase() {
        let mut cc = Bbr::new();
        let mut st = state();
        let now = drive(&mut cc, &mut st, SimTime::ZERO, 30, 1.25e6, 96);
        let cwnd_before = st.cwnd;
        // Path lengthens 96 → 111 ms (the paper's Rio–St.P. change) and
        // stays there past the 10 s RTprop window.
        let mut t = now;
        for _ in 0..15 {
            t = drive(&mut cc, &mut st, t, 10, 1.25e6, 111);
        }
        assert_eq!(
            cc.rt_prop(),
            Some(SimDuration::from_millis(111)),
            "RTprop must re-learn the longer path"
        );
        // cwnd should now reflect the *larger* BDP, not collapse.
        assert!(
            st.cwnd as f64 >= cwnd_before as f64 * 0.9,
            "cwnd collapsed: {} -> {}",
            cwnd_before,
            st.cwnd
        );
    }

    #[test]
    fn timeout_is_conservative_but_recovers() {
        let mut cc = Bbr::new();
        let mut st = state();
        let now = drive(&mut cc, &mut st, SimTime::ZERO, 20, 1.25e6, 100);
        let inflight = st.cwnd;
        cc.on_timeout(&mut st, inflight, now);
        assert_eq!(st.cwnd, 4_000);
        // Model retained: a few epochs restore the window.
        drive(&mut cc, &mut st, now, 5, 1.25e6, 100);
        assert!(st.cwnd > 50_000, "post-RTO cwnd {}", st.cwnd);
    }

    #[test]
    fn probe_cycle_advances() {
        let mut cc = Bbr::new();
        let mut st = state();
        drive(&mut cc, &mut st, SimTime::ZERO, 12, 1.25e6, 100);
        let idx1 = cc.cycle_idx;
        drive(&mut cc, &mut st, SimTime::from_secs(10), 3, 1.25e6, 100);
        assert_ne!(cc.cycle_idx, idx1, "gain cycle should advance per epoch");
    }
}
