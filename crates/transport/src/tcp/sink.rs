//! The TCP receiver: reassembly, cumulative ACKs, delayed ACKs.

use crate::tcp::config::TcpConfig;
use hypatia_constellation::NodeId;
use hypatia_netsim::app::{AppCtx, Application, SaveResult};
use hypatia_netsim::checkpoint::{SnapReader, SnapWriter};
use hypatia_netsim::packet::{Packet, Payload, Segment, HEADER_BYTES};
use hypatia_util::SimTime;
use std::collections::BTreeMap;

/// A TCP sink: receives a byte stream, emits cumulative ACKs, and records
/// application-level flow progress (paper §3.3's logged metric).
pub struct TcpSink {
    cfg: TcpConfig,
    /// Explicit source port for outgoing ACKs. `None` (the default)
    /// inherits the install port from the context; bulk flow tables set
    /// it per flow so many sinks can share one application slot.
    src_port: Option<u16>,
    /// Next in-order byte expected.
    rcv_nxt: u64,
    /// Out-of-order buffer: start byte → length.
    ooo: BTreeMap<u64, u32>,
    /// In-order segments since the last ACK (delayed-ACK counter).
    pending_acks: u32,
    /// Timestamp to echo for the pending (delayed) ACK.
    pending_ts: SimTime,
    delack_gen: u64,
    /// Payload bytes received in order, per 100 ms bin (throughput series).
    bins_100ms: Vec<u64>,
    /// Count of out-of-order arrivals (reordering diagnostics).
    pub ooo_arrivals: u64,
    /// Duplicate (already-received) arrivals.
    pub dup_arrivals: u64,
    /// Peer address learned from the first data segment (one flow per sink).
    peer: Option<(NodeId, u16)>,
}

impl TcpSink {
    /// A sink with the given configuration (only the delayed-ACK knobs are
    /// used on this side).
    pub fn new(cfg: TcpConfig) -> Self {
        TcpSink {
            cfg,
            src_port: None,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            pending_acks: 0,
            pending_ts: SimTime::ZERO,
            delack_gen: 0,
            bins_100ms: Vec::new(),
            ooo_arrivals: 0,
            dup_arrivals: 0,
            peer: None,
        }
    }

    /// Stamp every outgoing ACK with this source port instead of the
    /// install port. Required when the sink shares an application slot
    /// with other flows (see [`crate::BulkTcpSink`]).
    pub fn with_source_port(mut self, port: u16) -> Self {
        self.src_port = Some(port);
        self
    }

    /// Bytes received in order so far (flow progress).
    pub fn bytes_received(&self) -> u64 {
        self.rcv_nxt
    }

    /// Payload bytes per 100 ms bin since t = 0.
    pub fn goodput_bins_100ms(&self) -> &[u64] {
        &self.bins_100ms
    }

    /// Throughput averaged over 100 ms intervals, Mbit/s, as `(t_secs,
    /// mbps)` points — the paper's Fig. 5(c) series.
    pub fn throughput_series_mbps(&self) -> Vec<(f64, f64)> {
        self.bins_100ms
            .iter()
            .enumerate()
            .map(|(i, &bytes)| (i as f64 * 0.1, bytes as f64 * 8.0 / 0.1 / 1e6))
            .collect()
    }

    fn record_bytes(&mut self, now: SimTime, bytes: u64) {
        let bin = (now.millis() / 100) as usize;
        if self.bins_100ms.len() <= bin {
            self.bins_100ms.resize(bin + 1, 0);
        }
        self.bins_100ms[bin] += bytes;
    }

    fn send_ack(&mut self, ctx: &mut AppCtx, to: NodeId, to_port: u16, ts_echo: SimTime) {
        let seg = Segment {
            seq: 0,
            payload_bytes: 0,
            ack: self.rcv_nxt,
            ts: ctx.now,
            ts_echo,
            fin: false,
        };
        match self.src_port {
            Some(p) => ctx.send_from(p, to, to_port, HEADER_BYTES, Payload::Seg(seg)),
            None => ctx.send(to, to_port, HEADER_BYTES, Payload::Seg(seg)),
        }
        self.pending_acks = 0;
        self.delack_gen += 1; // cancel any armed delayed-ACK timer
    }

    fn handle_data(&mut self, ctx: &mut AppCtx, packet: &Packet, seg: Segment) {
        let from = packet.src;
        let from_port = packet.src_port;
        self.peer = Some((from, from_port));
        let end = seg.seq + seg.payload_bytes as u64;

        if end <= self.rcv_nxt {
            // Complete duplicate (e.g. go-back-N overlap): ACK immediately.
            self.dup_arrivals += 1;
            self.send_ack(ctx, from, from_port, seg.ts);
            return;
        }
        if seg.seq > self.rcv_nxt {
            // Out of order: buffer, send immediate duplicate ACK.
            self.ooo_arrivals += 1;
            self.ooo.insert(seg.seq, seg.payload_bytes);
            self.send_ack(ctx, from, from_port, seg.ts);
            return;
        }

        // In-order (possibly partially duplicate) delivery.
        let new_bytes = end - self.rcv_nxt;
        self.rcv_nxt = end;
        self.record_bytes(ctx.now, new_bytes);

        // Drain any buffered segments made contiguous.
        let mut filled_gap = false;
        while let Some((&s, &l)) = self.ooo.first_key_value() {
            if s > self.rcv_nxt {
                break;
            }
            self.ooo.pop_first();
            let e = s + l as u64;
            if e > self.rcv_nxt {
                let gained = e - self.rcv_nxt;
                self.rcv_nxt = e;
                self.record_bytes(ctx.now, gained);
            }
            filled_gap = true;
        }

        if filled_gap || !self.cfg.delayed_ack {
            // Filling a hole (or no delayed ACKs): ACK now.
            self.send_ack(ctx, from, from_port, seg.ts);
            return;
        }

        // Delayed ACK: every delack_count segments or on timeout.
        if self.pending_acks == 0 {
            self.pending_ts = seg.ts; // echo the oldest unACKed segment's ts
        }
        self.pending_acks += 1;
        if self.pending_acks >= self.cfg.delack_count {
            let ts = self.pending_ts;
            self.send_ack(ctx, from, from_port, ts);
        } else {
            self.delack_gen += 1;
            self.peer = Some((from, from_port));
            ctx.set_timer(self.cfg.delack_timeout, self.delack_gen);
        }
    }

    /// Serialize reassembly and ACK state (checkpointing). Inherent so
    /// [`crate::BulkTcpSink`] can reuse it per flow.
    pub(crate) fn save_to(&self, w: &mut SnapWriter) {
        w.put_u64(self.rcv_nxt);
        w.put_usize(self.ooo.len());
        for (&seq, &len) in &self.ooo {
            w.put_u64(seq);
            w.put_u32(len);
        }
        w.put_u32(self.pending_acks);
        w.put_time(self.pending_ts);
        w.put_u64(self.delack_gen);
        w.put_usize(self.bins_100ms.len());
        for &b in &self.bins_100ms {
            w.put_u64(b);
        }
        w.put_u64(self.ooo_arrivals);
        w.put_u64(self.dup_arrivals);
        w.put_bool(self.peer.is_some());
        if let Some((node, port)) = self.peer {
            w.put_u32(node.0);
            w.put_u16(port);
        }
    }

    /// Restore the state captured by [`TcpSink::save_to`].
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader) -> SaveResult {
        self.rcv_nxt = r.get_u64()?;
        let n = r.get_usize()?;
        self.ooo.clear();
        for _ in 0..n {
            let seq = r.get_u64()?;
            let len = r.get_u32()?;
            self.ooo.insert(seq, len);
        }
        self.pending_acks = r.get_u32()?;
        self.pending_ts = r.get_time()?;
        self.delack_gen = r.get_u64()?;
        let n = r.get_usize()?;
        self.bins_100ms.clear();
        for _ in 0..n {
            self.bins_100ms.push(r.get_u64()?);
        }
        self.ooo_arrivals = r.get_u64()?;
        self.dup_arrivals = r.get_u64()?;
        self.peer = if r.get_bool()? {
            let node = NodeId(r.get_u32()?);
            let port = r.get_u16()?;
            Some((node, port))
        } else {
            None
        };
        Ok(())
    }
}

impl Application for TcpSink {
    fn on_start(&mut self, _ctx: &mut AppCtx) {}

    fn on_packet(&mut self, ctx: &mut AppCtx, packet: &Packet) {
        if let Payload::Seg(seg) = packet.payload {
            if seg.payload_bytes > 0 {
                self.handle_data(ctx, packet, seg);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx, timer_id: u64) {
        if timer_id != self.delack_gen || self.pending_acks == 0 {
            return;
        }
        if let Some((peer, port)) = self.peer {
            let ts = self.pending_ts;
            self.send_ack(ctx, peer, port, ts);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self, w: &mut SnapWriter) -> SaveResult {
        self.save_to(w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> SaveResult {
        self.restore_from(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_netsim::app::AppAction;

    fn data_packet(seq: u64, len: u32, ts_ms: u64) -> Packet {
        Packet {
            id: seq,
            src: NodeId(1),
            dst: NodeId(2),
            src_port: 70,
            dst_port: 80,
            size_bytes: len + HEADER_BYTES,
            payload: Payload::Seg(Segment {
                seq,
                payload_bytes: len,
                ack: 0,
                ts: SimTime::from_millis(ts_ms),
                ts_echo: SimTime::ZERO,
                fin: false,
            }),
            injected_at: SimTime::from_millis(ts_ms),
            hops: 0,
            flow_hash: 0,
        }
    }

    fn acks_sent(ctx: &mut AppCtx) -> Vec<Segment> {
        ctx.take_actions()
            .into_iter()
            .filter_map(|a| match a {
                AppAction::Send { payload: Payload::Seg(s), .. } if s.payload_bytes == 0 => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn delayed_ack_fires_every_second_segment() {
        let mut sink = TcpSink::new(TcpConfig::default());
        let mut ctx = AppCtx::new(SimTime::from_millis(10), NodeId(2), 80);
        sink.on_packet(&mut ctx, &data_packet(0, 1000, 5));
        assert!(acks_sent(&mut ctx).is_empty(), "first segment is delayed");
        let mut ctx2 = AppCtx::new(SimTime::from_millis(11), NodeId(2), 80);
        sink.on_packet(&mut ctx2, &data_packet(1000, 1000, 6));
        let acks = acks_sent(&mut ctx2);
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 2000);
        // Delayed ACK echoes the *first* pending segment's timestamp.
        assert_eq!(acks[0].ts_echo, SimTime::from_millis(5));
    }

    #[test]
    fn immediate_ack_without_delack() {
        let mut sink = TcpSink::new(TcpConfig::default().without_delayed_ack());
        let mut ctx = AppCtx::new(SimTime::from_millis(10), NodeId(2), 80);
        sink.on_packet(&mut ctx, &data_packet(0, 1000, 5));
        let acks = acks_sent(&mut ctx);
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 1000);
    }

    #[test]
    fn out_of_order_triggers_dup_ack_and_reassembly() {
        let mut sink = TcpSink::new(TcpConfig::default());
        // Segment 1 (bytes 1000..2000) arrives before segment 0.
        let mut ctx = AppCtx::new(SimTime::from_millis(10), NodeId(2), 80);
        sink.on_packet(&mut ctx, &data_packet(1000, 1000, 5));
        let dup = acks_sent(&mut ctx);
        assert_eq!(dup.len(), 1);
        assert_eq!(dup[0].ack, 0, "duplicate ACK for missing byte 0");
        assert_eq!(sink.ooo_arrivals, 1);

        // The hole fills: cumulative ACK jumps to 2000 immediately.
        let mut ctx2 = AppCtx::new(SimTime::from_millis(12), NodeId(2), 80);
        sink.on_packet(&mut ctx2, &data_packet(0, 1000, 7));
        let acks = acks_sent(&mut ctx2);
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 2000);
        assert_eq!(sink.bytes_received(), 2000);
    }

    #[test]
    fn duplicate_data_acked_immediately() {
        let mut sink = TcpSink::new(TcpConfig::default().without_delayed_ack());
        let mut ctx = AppCtx::new(SimTime::from_millis(10), NodeId(2), 80);
        sink.on_packet(&mut ctx, &data_packet(0, 1000, 5));
        ctx.take_actions();
        let mut ctx2 = AppCtx::new(SimTime::from_millis(11), NodeId(2), 80);
        sink.on_packet(&mut ctx2, &data_packet(0, 1000, 6));
        let acks = acks_sent(&mut ctx2);
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 1000);
        assert_eq!(sink.dup_arrivals, 1);
        assert_eq!(sink.bytes_received(), 1000, "duplicate adds no bytes");
    }

    #[test]
    fn delack_timer_flushes_pending_ack() {
        let mut sink = TcpSink::new(TcpConfig::default());
        let mut ctx = AppCtx::new(SimTime::from_millis(10), NodeId(2), 80);
        sink.on_packet(&mut ctx, &data_packet(0, 1000, 5));
        // A timer action was armed; simulate it firing.
        let gen = sink.delack_gen;
        let mut ctx2 = AppCtx::new(SimTime::from_millis(210), NodeId(2), 80);
        sink.on_timer(&mut ctx2, gen);
        let acks = acks_sent(&mut ctx2);
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 1000);
    }

    #[test]
    fn stale_delack_timer_ignored() {
        let mut sink = TcpSink::new(TcpConfig::default());
        let mut ctx = AppCtx::new(SimTime::from_millis(10), NodeId(2), 80);
        sink.on_packet(&mut ctx, &data_packet(0, 1000, 5));
        sink.on_packet(&mut ctx, &data_packet(1000, 1000, 6)); // flushes
        ctx.take_actions();
        let mut ctx2 = AppCtx::new(SimTime::from_millis(210), NodeId(2), 80);
        sink.on_timer(&mut ctx2, 1); // stale generation
        assert!(acks_sent(&mut ctx2).is_empty());
    }

    #[test]
    fn throughput_bins_accumulate() {
        let mut sink = TcpSink::new(TcpConfig::default().without_delayed_ack());
        for (seq, ms) in [(0u64, 10u64), (1000, 50), (2000, 150)] {
            let mut ctx = AppCtx::new(SimTime::from_millis(ms), NodeId(2), 80);
            sink.on_packet(&mut ctx, &data_packet(seq, 1000, ms));
        }
        let bins = sink.goodput_bins_100ms();
        assert_eq!(bins[0], 2000);
        assert_eq!(bins[1], 1000);
        let series = sink.throughput_series_mbps();
        assert!((series[0].1 - 0.16).abs() < 1e-9, "2 kB in 0.1 s = 0.16 Mbps");
    }
}
