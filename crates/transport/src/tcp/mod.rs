//! TCP: configuration, RTT estimation, congestion control, endpoints.

pub mod bulk;
pub mod cc;
pub mod config;
pub mod rtt;
pub mod sender;
pub mod sink;
