//! Arena flow tables for TCP: many connections in one application slot.
//!
//! The classic layout installs one boxed [`TcpSender`]/[`TcpSink`] per
//! flow, each bound to its own port. At a million flows the per-app
//! overhead (box, app-table entry, event key) dominates memory and
//! install time. [`BulkTcpSender`] and [`BulkTcpSink`] instead hold a
//! `Vec` of protocol endpoints inside a *single* application installed
//! with [`add_app_multi`](hypatia_netsim::sim::Simulator::add_app_multi)
//! on all of the flows' ports, and demultiplex:
//!
//! * **packets** by destination port, via a sorted `(port → index)` table
//!   and binary search;
//! * **timers** by packing the flow index into the high 32 bits of the
//!   timer id (the netsim `timer_tag` mechanism) and handing the inner
//!   endpoint its untagged low 32 bits.
//!
//! The exact same protocol code runs per flow — the wrappers only route —
//! so a bulk table is event-for-event identical to the equivalent set of
//! per-flow apps. The tag split assumes inner timer generations stay
//! below 2^32, which holds for any simulation short of ~4 billion RTO or
//! delayed-ACK arms per flow.

use crate::tcp::cc::CongestionControl;
use crate::tcp::config::TcpConfig;
use crate::tcp::sender::TcpSender;
use crate::tcp::sink::TcpSink;
use hypatia_constellation::NodeId;
use hypatia_netsim::app::{AppCtx, Application, SaveResult};
use hypatia_netsim::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use hypatia_netsim::packet::Packet;

/// Sorted `(port, index)` demux table shared by both wrappers.
fn lookup(ports: &[(u16, u32)], port: u16) -> Option<usize> {
    ports.binary_search_by_key(&port, |&(p, _)| p).ok().map(|i| ports[i].1 as usize)
}

fn insert(ports: &mut Vec<(u16, u32)>, port: u16, idx: u32) {
    match ports.binary_search_by_key(&port, |&(p, _)| p) {
        Ok(_) => panic!("duplicate bulk flow port {port}"),
        Err(at) => ports.insert(at, (port, idx)),
    }
}

/// Many [`TcpSender`]s in one application slot, demuxed by the source
/// port each flow sends from (which is where its ACKs return).
#[derive(Default)]
pub struct BulkTcpSender {
    flows: Vec<TcpSender>,
    /// Sorted (ACK destination port → flow index).
    ports: Vec<(u16, u32)>,
}

impl BulkTcpSender {
    /// An empty sender table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a flow sending from `src_port` to `(dst, dst_port)`; returns
    /// its index. Panics if `src_port` is already taken in this table.
    pub fn push(
        &mut self,
        src_port: u16,
        dst: NodeId,
        dst_port: u16,
        cfg: TcpConfig,
        cc: Box<dyn CongestionControl>,
    ) -> usize {
        let idx = self.flows.len();
        assert!(idx < u32::MAX as usize, "bulk flow table overflow");
        insert(&mut self.ports, src_port, idx as u32);
        self.flows.push(TcpSender::new(dst, dst_port, cfg, cc).with_source_port(src_port));
        idx
    }

    /// Number of flows in the table.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The ports this table must be bound to, sorted ascending.
    pub fn ports(&self) -> Vec<u16> {
        self.ports.iter().map(|&(p, _)| p).collect()
    }

    /// The sender at `idx`, in insertion order.
    pub fn flow(&self, idx: usize) -> &TcpSender {
        &self.flows[idx]
    }

    /// All senders in insertion order.
    pub fn flows(&self) -> impl Iterator<Item = &TcpSender> {
        self.flows.iter()
    }
}

impl Application for BulkTcpSender {
    fn on_start(&mut self, ctx: &mut AppCtx) {
        for (i, flow) in self.flows.iter_mut().enumerate() {
            ctx.timer_tag = (i as u64) << 32;
            flow.on_start(ctx);
        }
        ctx.timer_tag = 0;
    }

    fn on_packet(&mut self, ctx: &mut AppCtx, packet: &Packet) {
        if let Some(i) = lookup(&self.ports, packet.dst_port) {
            ctx.timer_tag = (i as u64) << 32;
            self.flows[i].on_packet(ctx, packet);
            ctx.timer_tag = 0;
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx, timer_id: u64) {
        let i = (timer_id >> 32) as usize;
        if i >= self.flows.len() {
            return;
        }
        ctx.timer_tag = (i as u64) << 32;
        self.flows[i].on_timer(ctx, timer_id & 0xFFFF_FFFF);
        ctx.timer_tag = 0;
    }

    fn flow_footprint(&self) -> Option<(u64, u64)> {
        // Inline struct only; per-flow heap (cwnd/RTT logs) is workload
        // bound, not steady-state table state.
        let bytes = self.flows.len() * (std::mem::size_of::<TcpSender>() + 6);
        Some((self.flows.len() as u64, bytes as u64))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self, w: &mut SnapWriter) -> SaveResult {
        // The port demux table is rebuilt by the push() sequence at
        // construction time; only the per-flow protocol state travels.
        w.put_usize(self.flows.len());
        for flow in &self.flows {
            flow.save_to(w);
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> SaveResult {
        let n = r.get_usize()?;
        if n != self.flows.len() {
            return Err(CheckpointError::Malformed(format!(
                "bulk sender table has {} flows, snapshot has {n}",
                self.flows.len()
            )));
        }
        for flow in &mut self.flows {
            flow.restore_from(r)?;
        }
        Ok(())
    }
}

/// Many [`TcpSink`]s in one application slot, demuxed by the port each
/// flow's data arrives on.
#[derive(Default)]
pub struct BulkTcpSink {
    flows: Vec<TcpSink>,
    /// Sorted (data destination port → flow index).
    ports: Vec<(u16, u32)>,
}

impl BulkTcpSink {
    /// An empty sink table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sink listening on `port`; returns its index. Panics if
    /// `port` is already taken in this table.
    pub fn push(&mut self, port: u16, cfg: TcpConfig) -> usize {
        let idx = self.flows.len();
        assert!(idx < u32::MAX as usize, "bulk flow table overflow");
        insert(&mut self.ports, port, idx as u32);
        self.flows.push(TcpSink::new(cfg).with_source_port(port));
        idx
    }

    /// Number of flows in the table.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The ports this table must be bound to, sorted ascending.
    pub fn ports(&self) -> Vec<u16> {
        self.ports.iter().map(|&(p, _)| p).collect()
    }

    /// The sink at `idx`, in insertion order.
    pub fn flow(&self, idx: usize) -> &TcpSink {
        &self.flows[idx]
    }

    /// All sinks in insertion order.
    pub fn flows(&self) -> impl Iterator<Item = &TcpSink> {
        self.flows.iter()
    }
}

impl Application for BulkTcpSink {
    fn on_start(&mut self, _ctx: &mut AppCtx) {}

    fn on_packet(&mut self, ctx: &mut AppCtx, packet: &Packet) {
        if let Some(i) = lookup(&self.ports, packet.dst_port) {
            ctx.timer_tag = (i as u64) << 32;
            self.flows[i].on_packet(ctx, packet);
            ctx.timer_tag = 0;
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx, timer_id: u64) {
        let i = (timer_id >> 32) as usize;
        if i >= self.flows.len() {
            return;
        }
        ctx.timer_tag = (i as u64) << 32;
        self.flows[i].on_timer(ctx, timer_id & 0xFFFF_FFFF);
        ctx.timer_tag = 0;
    }

    fn flow_footprint(&self) -> Option<(u64, u64)> {
        // Counted as bytes only: the matching sender table owns the flow
        // count, so totals are not doubled.
        let bytes = self.flows.len() * (std::mem::size_of::<TcpSink>() + 6);
        Some((0, bytes as u64))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self, w: &mut SnapWriter) -> SaveResult {
        w.put_usize(self.flows.len());
        for flow in &self.flows {
            flow.save_to(w);
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> SaveResult {
        let n = r.get_usize()?;
        if n != self.flows.len() {
            return Err(CheckpointError::Malformed(format!(
                "bulk sink table has {} flows, snapshot has {n}",
                self.flows.len()
            )));
        }
        for flow in &mut self.flows {
            flow.restore_from(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::cc::newreno::NewReno;
    use hypatia_netsim::app::AppAction;
    use hypatia_netsim::packet::{Payload, Segment, HEADER_BYTES};
    use hypatia_util::SimTime;

    fn cfg() -> TcpConfig {
        TcpConfig::default().with_mss(1000)
    }

    fn ack_packet(dst_port: u16, ack: u64) -> Packet {
        Packet {
            id: 0,
            src: NodeId(9),
            dst: NodeId(0),
            src_port: 40_000,
            dst_port,
            size_bytes: HEADER_BYTES,
            payload: Payload::Seg(Segment {
                seq: 0,
                payload_bytes: 0,
                ack,
                ts: SimTime::ZERO,
                ts_echo: SimTime::from_millis(1),
                fin: false,
            }),
            injected_at: SimTime::ZERO,
            hops: 0,
            flow_hash: 0,
        }
    }

    fn data_packet(dst_port: u16, seq: u64, len: u32) -> Packet {
        Packet {
            id: seq,
            src: NodeId(1),
            dst: NodeId(2),
            src_port: 20_000,
            dst_port,
            size_bytes: len + HEADER_BYTES,
            payload: Payload::Seg(Segment {
                seq,
                payload_bytes: len,
                ack: 0,
                ts: SimTime::from_millis(5),
                ts_echo: SimTime::ZERO,
                fin: false,
            }),
            injected_at: SimTime::from_millis(5),
            hops: 0,
            flow_hash: 0,
        }
    }

    #[test]
    fn bulk_sender_matches_solo_sender_action_for_action() {
        // A one-flow bulk table must emit the same segments, sizes, and
        // timers as a standalone sender installed on the same port.
        let mut solo = TcpSender::new(NodeId(9), 80, cfg(), Box::new(NewReno::new()));
        let mut solo_ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 70);
        solo.on_start(&mut solo_ctx);

        let mut bulk = BulkTcpSender::new();
        bulk.push(70, NodeId(9), 80, cfg(), Box::new(NewReno::new()));
        let mut bulk_ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 70);
        bulk.on_start(&mut bulk_ctx);

        let solo_actions = solo_ctx.take_actions();
        let bulk_actions = bulk_ctx.take_actions();
        assert_eq!(solo_actions.len(), bulk_actions.len());
        for (s, b) in solo_actions.iter().zip(&bulk_actions) {
            match (s, b) {
                (
                    AppAction::Send { dst, dst_port, size_bytes, payload },
                    AppAction::SendFrom {
                        src_port: bp,
                        dst: bd,
                        dst_port: bdp,
                        size_bytes: bs,
                        payload: bpl,
                    },
                ) => {
                    assert_eq!(*bp, 70, "bulk flow keeps its source port");
                    assert_eq!((dst, dst_port, size_bytes), (bd, bdp, bs));
                    assert_eq!(payload, bpl);
                }
                (
                    AppAction::Timer { delay, timer_id },
                    AppAction::Timer { delay: bd, timer_id: bt },
                ) => {
                    // Flow index 0: tag is zero, ids must agree exactly.
                    assert_eq!((delay, timer_id), (bd, bt));
                }
                other => panic!("mismatched action pair {other:?}"),
            }
        }
    }

    #[test]
    fn sender_demuxes_acks_and_timers_by_flow() {
        let mut bulk = BulkTcpSender::new();
        bulk.push(70, NodeId(9), 80, cfg(), Box::new(NewReno::new()));
        bulk.push(71, NodeId(9), 81, cfg(), Box::new(NewReno::new()));
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 70);
        bulk.on_start(&mut ctx);
        ctx.take_actions();

        // ACK addressed to port 71 advances only flow 1.
        let mut c = AppCtx::new(SimTime::from_millis(100), NodeId(0), 70);
        bulk.on_packet(&mut c, &ack_packet(71, 1000));
        assert_eq!(bulk.flow(0).acked_bytes(), 0);
        assert_eq!(bulk.flow(1).acked_bytes(), 1000);
        // New segments from flow 1 carry its source port.
        for a in c.take_actions() {
            if let AppAction::SendFrom { src_port, .. } = a {
                assert_eq!(src_port, 71);
            }
        }

        // A tagged RTO timer for flow 0 fires only flow 0's timeout path
        // (flow 1's generation moved on when its ACK re-armed the RTO).
        let gen = 1u64; // first arm_rto generation in each sender
        let mut t = AppCtx::new(SimTime::from_secs(2), NodeId(0), 70);
        bulk.on_timer(&mut t, gen); // tag 0 | gen
        assert_eq!(bulk.flow(0).log.timeouts, 1);
        assert_eq!(bulk.flow(1).log.timeouts, 0);
    }

    #[test]
    fn sender_retags_timers_armed_inside_handlers() {
        let mut bulk = BulkTcpSender::new();
        bulk.push(70, NodeId(9), 80, cfg(), Box::new(NewReno::new()));
        bulk.push(71, NodeId(9), 81, cfg(), Box::new(NewReno::new()));
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 70);
        bulk.on_start(&mut ctx);
        let tags: Vec<u64> = ctx
            .take_actions()
            .into_iter()
            .filter_map(|a| match a {
                AppAction::Timer { timer_id, .. } => Some(timer_id >> 32),
                _ => None,
            })
            .collect();
        assert_eq!(tags, vec![0, 1], "each flow's RTO timer carries its index");
    }

    #[test]
    fn bulk_sink_acks_from_each_flows_own_port() {
        let mut bulk = BulkTcpSink::new();
        bulk.push(80, cfg().without_delayed_ack());
        bulk.push(81, cfg().without_delayed_ack());
        let mut ctx = AppCtx::new(SimTime::from_millis(10), NodeId(2), 80);
        bulk.on_packet(&mut ctx, &data_packet(81, 0, 1000));
        assert_eq!(bulk.flow(0).bytes_received(), 0);
        assert_eq!(bulk.flow(1).bytes_received(), 1000);
        let acks: Vec<u16> = ctx
            .take_actions()
            .into_iter()
            .filter_map(|a| match a {
                AppAction::SendFrom { src_port, .. } => Some(src_port),
                _ => None,
            })
            .collect();
        assert_eq!(acks, vec![81], "ACK leaves from the flow's own port");
    }

    #[test]
    fn unknown_ports_and_stale_timer_indices_are_ignored() {
        let mut bulk = BulkTcpSink::new();
        bulk.push(80, cfg());
        let mut ctx = AppCtx::new(SimTime::from_millis(10), NodeId(2), 80);
        bulk.on_packet(&mut ctx, &data_packet(99, 0, 1000));
        assert!(ctx.take_actions().is_empty());
        bulk.on_timer(&mut ctx, (7 << 32) | 1); // index out of range
        assert!(ctx.take_actions().is_empty());
    }

    #[test]
    fn ports_are_reported_sorted_and_duplicates_rejected() {
        let mut bulk = BulkTcpSender::new();
        bulk.push(75, NodeId(9), 80, cfg(), Box::new(NewReno::new()));
        bulk.push(70, NodeId(9), 81, cfg(), Box::new(NewReno::new()));
        assert_eq!(bulk.ports(), vec![70, 75]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            bulk.push(75, NodeId(9), 82, cfg(), Box::new(NewReno::new()));
        }));
        assert!(r.is_err(), "duplicate port must panic");
    }

    #[test]
    fn footprint_counts_flows_once_across_both_tables() {
        let mut src = BulkTcpSender::new();
        src.push(70, NodeId(9), 80, cfg(), Box::new(NewReno::new()));
        let mut dst = BulkTcpSink::new();
        dst.push(80, cfg());
        let (n_src, _) = src.flow_footprint().unwrap();
        let (n_dst, _) = dst.flow_footprint().unwrap();
        assert_eq!(n_src + n_dst, 1, "one flow, counted once");
    }
}
