//! The TCP sender: sliding window, loss detection, recovery, logging.

use crate::tcp::cc::{CcState, CongestionControl};
use crate::tcp::config::TcpConfig;
use crate::tcp::rtt::RttEstimator;
use hypatia_constellation::NodeId;
use hypatia_netsim::app::{AppCtx, Application, SaveResult};
use hypatia_netsim::checkpoint::{SnapReader, SnapWriter};
use hypatia_netsim::packet::{Packet, Payload, Segment, HEADER_BYTES};
use hypatia_util::{SimDuration, SimTime};

/// Per-sender event log for plotting (paper Figs. 4, 5, 19).
#[derive(Debug, Default, Clone)]
pub struct SenderLog {
    /// `(time, effective cwnd bytes)` after every change.
    pub cwnd: Vec<(SimTime, u64)>,
    /// `(time, RTT)` for every timestamp-derived sample — the "TCP
    /// per-packet RTT" series of Fig. 3.
    pub rtt_samples: Vec<(SimTime, SimDuration)>,
    /// Fast retransmits triggered.
    pub fast_retransmits: u64,
    /// RTO expirations.
    pub timeouts: u64,
    /// Segments retransmitted (either mechanism).
    pub retransmits: u64,
}

/// A TCP sender application. Install at `(node, port)`; it streams data to
/// `(dst, dst_port)` where a [`crate::TcpSink`] must be installed.
pub struct TcpSender {
    cfg: TcpConfig,
    dst: NodeId,
    dst_port: u16,
    /// Explicit source port for every emitted segment. `None` (the
    /// default) inherits the install port from the context — the classic
    /// one-app-per-flow layout. Bulk flow tables set it per flow so many
    /// senders can share one application slot (and one context port).
    src_port: Option<u16>,
    cc: Box<dyn CongestionControl>,
    st: CcState,
    /// Oldest unacknowledged byte.
    snd_una: u64,
    /// Next byte to send.
    snd_nxt: u64,
    /// Fast-recovery state.
    in_recovery: bool,
    recover: u64,
    dup_acks: u32,
    /// Window inflation during recovery (+1 MSS per extra dup ACK),
    /// capped at the flight size when the loss was detected — without the
    /// cap, new data sent during a long recovery elicits further dup ACKs
    /// and the window inflates without bound.
    inflation: u64,
    /// Flight size when fast retransmit fired (the inflation cap).
    recovery_flight: u64,
    /// RFC 6582 "Impatient": re-arm the RTO only on the *first* partial
    /// ACK of a recovery, so a recovery that crawls (one hole per RTT,
    /// no SACK) is cut short by the retransmission timer.
    rearmed_on_partial: bool,
    rtt: RttEstimator,
    rto_gen: u64,
    /// Is a live RTO timer outstanding? (`try_send` only arms when none
    /// is, so the Impatient partial-ACK policy is not overridden.)
    rto_armed: bool,
    /// Event log.
    pub log: SenderLog,
}

impl TcpSender {
    /// Create a sender towards `(dst, dst_port)` with the given congestion
    /// controller.
    pub fn new(dst: NodeId, dst_port: u16, cfg: TcpConfig, cc: Box<dyn CongestionControl>) -> Self {
        let st = CcState::new(cfg.mss as u64, cfg.initial_cwnd_segments as u64);
        TcpSender {
            cfg,
            dst,
            dst_port,
            src_port: None,
            cc,
            st,
            snd_una: 0,
            snd_nxt: 0,
            in_recovery: false,
            recover: 0,
            dup_acks: 0,
            inflation: 0,
            recovery_flight: 0,
            rearmed_on_partial: false,
            rtt: RttEstimator::new(SimDuration::from_secs(1), SimDuration::from_secs(1)),
            rto_gen: 0,
            rto_armed: false,
            log: SenderLog::default(),
        }
    }

    /// Stamp every outgoing segment with this source port instead of the
    /// install port. Required when the sender shares an application slot
    /// with other flows (see [`crate::BulkTcpSender`]).
    pub fn with_source_port(mut self, port: u16) -> Self {
        self.src_port = Some(port);
        self
    }

    /// Effective window: cwnd plus recovery inflation.
    pub fn effective_cwnd(&self) -> u64 {
        self.st.cwnd + self.inflation
    }

    /// Bytes in flight.
    pub fn inflight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Bytes cumulatively acknowledged.
    pub fn acked_bytes(&self) -> u64 {
        self.snd_una
    }

    /// The congestion controller's name.
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    /// Smoothed RTT estimate.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }

    fn log_cwnd(&mut self, now: SimTime) {
        let w = self.effective_cwnd();
        if self.log.cwnd.last().map(|&(_, lw)| lw) != Some(w) {
            self.log.cwnd.push((now, w));
        }
    }

    fn remaining_data(&self) -> u64 {
        match self.cfg.max_data {
            Some(max) => max.saturating_sub(self.snd_nxt),
            None => u64::MAX,
        }
    }

    fn send_segment(&mut self, ctx: &mut AppCtx, seq: u64, len: u32) {
        let seg = Segment {
            seq,
            payload_bytes: len,
            ack: 0,
            ts: ctx.now,
            ts_echo: SimTime::ZERO,
            fin: false,
        };
        match self.src_port {
            Some(p) => {
                ctx.send_from(p, self.dst, self.dst_port, len + HEADER_BYTES, Payload::Seg(seg))
            }
            None => ctx.send(self.dst, self.dst_port, len + HEADER_BYTES, Payload::Seg(seg)),
        }
    }

    /// Send as much new data as the window allows.
    fn try_send(&mut self, ctx: &mut AppCtx) {
        while self.inflight() < self.effective_cwnd() && self.remaining_data() > 0 {
            let window_room = self.effective_cwnd() - self.inflight();
            let len = (self.st.mss).min(window_room).min(self.remaining_data()).min(u32::MAX as u64)
                as u32;
            if len == 0 {
                break;
            }
            let seq = self.snd_nxt;
            self.snd_nxt += len as u64;
            self.send_segment(ctx, seq, len);
        }
        if self.inflight() > 0 && !self.rto_armed {
            self.arm_rto(ctx);
        }
    }

    fn retransmit_head(&mut self, ctx: &mut AppCtx) {
        let len = (self.st.mss).min(self.inflight()).max(1).min(u32::MAX as u64) as u32;
        let seq = self.snd_una;
        self.log.retransmits += 1;
        self.send_segment(ctx, seq, len);
    }

    fn arm_rto(&mut self, ctx: &mut AppCtx) {
        self.rto_gen += 1;
        self.rto_armed = true;
        ctx.set_timer(self.rtt.rto(), self.rto_gen);
    }

    fn disarm_rto(&mut self) {
        self.rto_gen += 1; // stale ids are ignored on firing
        self.rto_armed = false;
    }

    fn handle_ack(&mut self, ctx: &mut AppCtx, seg: Segment) {
        // Timestamp-derived RTT sample.
        let sample = (seg.ts_echo > SimTime::ZERO).then(|| ctx.now.since(seg.ts_echo));
        if let Some(s) = sample {
            self.log.rtt_samples.push((ctx.now, s));
        }

        if seg.ack > self.snd_una {
            let newly = seg.ack - self.snd_una;
            self.snd_una = seg.ack;
            // After an RTO's go-back-N, a late ACK for pre-timeout data can
            // overtake snd_nxt; inflight() must never underflow.
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            self.dup_acks = 0;
            if let Some(s) = sample {
                self.rtt.update(s);
            }

            let mut rearm = true;
            if self.in_recovery {
                if self.snd_una >= self.recover {
                    // Full ACK: leave recovery.
                    self.in_recovery = false;
                    self.inflation = 0;
                    self.cc.on_recovery_exit(&mut self.st, ctx.now);
                } else {
                    // Partial ACK (RFC 6582): retransmit the next hole and
                    // deflate the inflation by what was ACKed, plus 1 MSS.
                    self.inflation =
                        self.inflation.saturating_sub(newly).saturating_add(self.st.mss);
                    self.retransmit_head(ctx);
                    // Impatient variant: only the first partial ACK of a
                    // recovery restarts the retransmission timer.
                    if self.rearmed_on_partial {
                        rearm = false;
                    }
                    self.rearmed_on_partial = true;
                }
            } else {
                self.cc.on_ack(&mut self.st, newly, sample, ctx.now);
            }

            if self.inflight() == 0 {
                self.disarm_rto();
            } else if rearm {
                self.arm_rto(ctx);
            }
        } else if seg.ack == self.snd_una && self.inflight() > 0 {
            // Duplicate ACK.
            self.dup_acks += 1;
            // RFC 6582 §6: after an RTO's go-back-N, dup ACKs for data sent
            // before the timeout must not re-trigger fast retransmit; only
            // once snd_una passes the old `recover` point may a new loss
            // episode begin.
            if !self.in_recovery
                && self.dup_acks == self.cfg.dupack_threshold
                && self.snd_una >= self.recover
            {
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.inflation = 0;
                self.recovery_flight = self.inflight();
                self.rearmed_on_partial = false;
                self.log.fast_retransmits += 1;
                let inflight = self.inflight();
                self.cc.on_fast_retransmit(&mut self.st, inflight, ctx.now);
                self.retransmit_head(ctx);
            } else if self.in_recovery {
                // Window inflation: each further dup ACK signals a departed
                // packet. Capped at the flight size at loss.
                self.inflation = (self.inflation + self.st.mss).min(self.recovery_flight);
            }
        }

        self.try_send(ctx);
        self.log_cwnd(ctx.now);
    }

    /// Serialize the full sender state — window, sequence space, recovery
    /// machine, RTT estimator, CC internals, and the event log — so a
    /// resumed run continues (and plots) bit-identically. Exposed as an
    /// inherent method so [`crate::BulkTcpSender`] can reuse it per flow.
    pub(crate) fn save_to(&self, w: &mut SnapWriter) {
        self.st.save(w);
        self.cc.save_state(w);
        w.put_u64(self.snd_una);
        w.put_u64(self.snd_nxt);
        w.put_bool(self.in_recovery);
        w.put_u64(self.recover);
        w.put_u32(self.dup_acks);
        w.put_u64(self.inflation);
        w.put_u64(self.recovery_flight);
        w.put_bool(self.rearmed_on_partial);
        self.rtt.save(w);
        w.put_u64(self.rto_gen);
        w.put_bool(self.rto_armed);
        w.put_usize(self.log.cwnd.len());
        for &(t, cw) in &self.log.cwnd {
            w.put_time(t);
            w.put_u64(cw);
        }
        w.put_usize(self.log.rtt_samples.len());
        for &(t, s) in &self.log.rtt_samples {
            w.put_time(t);
            w.put_dur(s);
        }
        w.put_u64(self.log.fast_retransmits);
        w.put_u64(self.log.timeouts);
        w.put_u64(self.log.retransmits);
    }

    /// Restore the state captured by [`TcpSender::save_to`].
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader) -> SaveResult {
        self.st.restore(r)?;
        self.cc.restore_state(r)?;
        self.snd_una = r.get_u64()?;
        self.snd_nxt = r.get_u64()?;
        self.in_recovery = r.get_bool()?;
        self.recover = r.get_u64()?;
        self.dup_acks = r.get_u32()?;
        self.inflation = r.get_u64()?;
        self.recovery_flight = r.get_u64()?;
        self.rearmed_on_partial = r.get_bool()?;
        self.rtt.restore(r)?;
        self.rto_gen = r.get_u64()?;
        self.rto_armed = r.get_bool()?;
        let n = r.get_usize()?;
        self.log.cwnd.clear();
        for _ in 0..n {
            let t = r.get_time()?;
            let cw = r.get_u64()?;
            self.log.cwnd.push((t, cw));
        }
        let n = r.get_usize()?;
        self.log.rtt_samples.clear();
        for _ in 0..n {
            let t = r.get_time()?;
            let s = r.get_dur()?;
            self.log.rtt_samples.push((t, s));
        }
        self.log.fast_retransmits = r.get_u64()?;
        self.log.timeouts = r.get_u64()?;
        self.log.retransmits = r.get_u64()?;
        Ok(())
    }
}

impl Application for TcpSender {
    fn on_start(&mut self, ctx: &mut AppCtx) {
        self.log_cwnd(ctx.now);
        self.try_send(ctx);
    }

    fn on_packet(&mut self, ctx: &mut AppCtx, packet: &Packet) {
        if let Payload::Seg(seg) = packet.payload {
            if seg.payload_bytes == 0 {
                self.handle_ack(ctx, seg);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx, timer_id: u64) {
        if timer_id != self.rto_gen {
            return; // stale RTO
        }
        self.rto_armed = false;
        if self.inflight() == 0 {
            return;
        }
        // Retransmission timeout: collapse and go-back-N. Remember the
        // highest sequence sent so dup ACKs from the old flight cannot
        // spuriously re-enter fast retransmit (RFC 6582 §6).
        self.log.timeouts += 1;
        let inflight = self.inflight();
        self.cc.on_timeout(&mut self.st, inflight, ctx.now);
        self.in_recovery = false;
        self.inflation = 0;
        self.dup_acks = 0;
        self.recover = self.snd_nxt;
        self.snd_nxt = self.snd_una;
        self.rtt.backoff();
        self.try_send(ctx);
        self.log_cwnd(ctx.now);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self, w: &mut SnapWriter) -> SaveResult {
        self.save_to(w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> SaveResult {
        self.restore_from(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::cc::newreno::NewReno;

    fn sender() -> TcpSender {
        TcpSender::new(NodeId(9), 80, TcpConfig::default().with_mss(1000), Box::new(NewReno::new()))
    }

    fn ack(ack: u64, ts_echo_ms: u64) -> Segment {
        Segment {
            seq: 0,
            payload_bytes: 0,
            ack,
            ts: SimTime::ZERO,
            ts_echo: SimTime::from_millis(ts_echo_ms),
            fin: false,
        }
    }

    fn count_sends(ctx: &mut AppCtx) -> usize {
        ctx.take_actions()
            .iter()
            .filter(|a| matches!(a, hypatia_netsim::app::AppAction::Send { .. }))
            .count()
    }

    #[test]
    fn initial_window_burst() {
        let mut s = sender();
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 70);
        s.on_start(&mut ctx);
        assert_eq!(count_sends(&mut ctx), 10, "initial cwnd = 10 segments");
        assert_eq!(s.inflight(), 10_000);
    }

    #[test]
    fn ack_advances_and_sends_more() {
        let mut s = sender();
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 70);
        s.on_start(&mut ctx);
        ctx.take_actions();

        let mut ctx2 = AppCtx::new(SimTime::from_millis(100), NodeId(0), 70);
        s.handle_ack(&mut ctx2, ack(1000, 1));
        assert_eq!(s.acked_bytes(), 1000);
        // Slow start: cwnd 10→11 segments; 1 ACKed + room for 2 more.
        let sends = count_sends(&mut ctx2);
        assert_eq!(sends, 2, "expected 2 new segments, got {sends}");
    }

    #[test]
    fn rtt_sample_recorded_from_echo() {
        let mut s = sender();
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 70);
        s.on_start(&mut ctx);
        let mut ctx2 = AppCtx::new(SimTime::from_millis(120), NodeId(0), 70);
        s.handle_ack(&mut ctx2, ack(1000, 20));
        assert_eq!(s.log.rtt_samples.len(), 1);
        assert_eq!(s.log.rtt_samples[0].1, SimDuration::from_millis(100));
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut s = sender();
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 70);
        s.on_start(&mut ctx);
        ctx.take_actions();
        let cwnd_before = s.effective_cwnd();

        for i in 0..3 {
            let mut c = AppCtx::new(SimTime::from_millis(100 + i), NodeId(0), 70);
            s.handle_ack(&mut c, ack(0, 1));
        }
        assert_eq!(s.log.fast_retransmits, 1);
        assert!(s.effective_cwnd() < cwnd_before, "window must shrink");
        assert_eq!(s.log.retransmits, 1);
    }

    #[test]
    fn recovery_exits_on_full_ack() {
        let mut s = sender();
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 70);
        s.on_start(&mut ctx);
        for i in 0..3 {
            let mut c = AppCtx::new(SimTime::from_millis(100 + i), NodeId(0), 70);
            s.handle_ack(&mut c, ack(0, 1));
        }
        assert!(s.in_recovery);
        let mut c = AppCtx::new(SimTime::from_millis(200), NodeId(0), 70);
        s.handle_ack(&mut c, ack(10_000, 150)); // covers `recover`
        assert!(!s.in_recovery);
        assert_eq!(s.acked_bytes(), 10_000);
    }

    #[test]
    fn rto_collapses_window_and_goes_back_n() {
        let mut s = sender();
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 70);
        s.on_start(&mut ctx);
        ctx.take_actions();
        let gen = s.rto_gen;
        let mut c = AppCtx::new(SimTime::from_secs(1), NodeId(0), 70);
        s.on_timer(&mut c, gen);
        assert_eq!(s.log.timeouts, 1);
        assert_eq!(s.effective_cwnd(), 1000, "cwnd = 1 MSS after RTO");
        // Go-back-N: snd_nxt reset then one segment sent.
        assert_eq!(s.inflight(), 1000);
    }

    #[test]
    fn stale_rto_ignored() {
        let mut s = sender();
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 70);
        s.on_start(&mut ctx);
        let stale = s.rto_gen.wrapping_sub(1);
        let mut c = AppCtx::new(SimTime::from_secs(1), NodeId(0), 70);
        s.on_timer(&mut c, stale);
        assert_eq!(s.log.timeouts, 0);
    }

    #[test]
    fn bounded_flow_stops_at_max_data() {
        let mut s = TcpSender::new(
            NodeId(9),
            80,
            TcpConfig::default().with_mss(1000).with_max_data(2_500),
            Box::new(NewReno::new()),
        );
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 70);
        s.on_start(&mut ctx);
        // 2500 B = 2 full + 1 partial segment.
        assert_eq!(count_sends(&mut ctx), 3);
        assert_eq!(s.inflight(), 2_500);
        let mut c = AppCtx::new(SimTime::from_millis(100), NodeId(0), 70);
        s.handle_ack(&mut c, ack(2_500, 1));
        assert_eq!(count_sends(&mut c), 0, "no data left");
    }

    #[test]
    fn cwnd_log_records_changes() {
        let mut s = sender();
        let mut ctx = AppCtx::new(SimTime::ZERO, NodeId(0), 70);
        s.on_start(&mut ctx);
        let n0 = s.log.cwnd.len();
        let mut c = AppCtx::new(SimTime::from_millis(100), NodeId(0), 70);
        s.handle_ack(&mut c, ack(1000, 1));
        assert!(s.log.cwnd.len() > n0, "cwnd growth must be logged");
    }
}
