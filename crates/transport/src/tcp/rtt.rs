//! RFC 6298 RTT estimation and RTO management.
//!
//! Samples come from the timestamp echo on ACKs, so retransmission
//! ambiguity (Karn's problem) does not arise.

use hypatia_netsim::checkpoint::{CheckpointError, SnapReader, SnapWriter};
use hypatia_util::SimDuration;

/// Smoothed RTT estimator with exponential backoff.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    min_rto: SimDuration,
    backoff_factor: u32,
    /// Latest raw sample (for logging).
    pub last_sample: Option<SimDuration>,
    /// Smallest sample ever seen (Vegas's baseRTT uses its own copy; this
    /// one is for diagnostics).
    pub min_sample: Option<SimDuration>,
}

impl RttEstimator {
    /// New estimator with the given initial RTO and floor.
    pub fn new(initial_rto: SimDuration, min_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: initial_rto,
            min_rto,
            backoff_factor: 1,
            last_sample: None,
            min_sample: None,
        }
    }

    /// Feed a new RTT sample.
    pub fn update(&mut self, sample: SimDuration) {
        self.last_sample = Some(sample);
        self.min_sample = Some(self.min_sample.map_or(sample, |m| m.min(sample)));
        match self.srtt {
            None => {
                // First sample: SRTT = R, RTTVAR = R/2.
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|; SRTT = 7/8 SRTT + 1/8 R.
                let err = if sample > srtt { sample - srtt } else { srtt - sample };
                self.rttvar = (self.rttvar * 3 + err) / 4;
                self.srtt = Some((srtt * 7 + sample) / 8);
            }
        }
        let srtt = self.srtt.expect("just set");
        let var4 = self.rttvar * 4;
        // RTO = SRTT + max(G, 4·RTTVAR), clamped below by min_rto. A valid
        // sample also resets the exponential backoff.
        self.backoff_factor = 1;
        self.rto = (srtt + var4).max(self.min_rto);
    }

    /// Current RTO including any backoff.
    pub fn rto(&self) -> SimDuration {
        self.rto * self.backoff_factor as u64
    }

    /// Exponential backoff after a timeout (capped at 64×).
    pub fn backoff(&mut self) {
        self.backoff_factor = (self.backoff_factor * 2).min(64);
    }

    /// Smoothed RTT, if any sample has arrived.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Serialize the estimator (checkpointing).
    pub fn save(&self, w: &mut SnapWriter) {
        w.put_opt_dur(self.srtt);
        w.put_dur(self.rttvar);
        w.put_dur(self.rto);
        w.put_dur(self.min_rto);
        w.put_u32(self.backoff_factor);
        w.put_opt_dur(self.last_sample);
        w.put_opt_dur(self.min_sample);
    }

    /// Restore the state captured by [`RttEstimator::save`].
    pub fn restore(&mut self, r: &mut SnapReader) -> Result<(), CheckpointError> {
        self.srtt = r.get_opt_dur()?;
        self.rttvar = r.get_dur()?;
        self.rto = r.get_dur()?;
        self.min_rto = r.get_dur()?;
        self.backoff_factor = r.get_u32()?;
        self.last_sample = r.get_opt_dur()?;
        self.min_sample = r.get_opt_dur()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(SimDuration::from_secs(1), SimDuration::from_millis(200))
    }

    #[test]
    fn initial_rto_used_before_samples() {
        assert_eq!(est().rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = est();
        e.update(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = 100 + 4·50 = 300 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn steady_samples_converge_rto_to_floor() {
        let mut e = est();
        for _ in 0..50 {
            e.update(SimDuration::from_millis(100));
        }
        // RTTVAR decays towards 0 → RTO clamped at min_rto.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
    }

    #[test]
    fn variance_reacts_to_jitter() {
        let mut e = est();
        e.update(SimDuration::from_millis(100));
        e.update(SimDuration::from_millis(200));
        assert!(e.rto() > SimDuration::from_millis(300), "rto {}", e.rto());
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = est();
        e.update(SimDuration::from_millis(100));
        let base = e.rto();
        e.backoff();
        assert_eq!(e.rto(), base * 2);
        e.backoff();
        assert_eq!(e.rto(), base * 4);
        e.update(SimDuration::from_millis(100));
        assert!(e.rto() <= base, "sample must reset backoff");
    }

    #[test]
    fn backoff_capped() {
        let mut e = est();
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(64));
    }

    #[test]
    fn min_sample_tracks_floor() {
        let mut e = est();
        e.update(SimDuration::from_millis(120));
        e.update(SimDuration::from_millis(80));
        e.update(SimDuration::from_millis(150));
        assert_eq!(e.min_sample, Some(SimDuration::from_millis(80)));
    }
}
