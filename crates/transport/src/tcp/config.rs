//! TCP configuration, defaulting to the ns-3 parameters the paper used.

use hypatia_util::SimDuration;

/// TCP endpoint parameters.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment). The paper's queue
    /// sizing ("100 packets ≈ 1 BDP for 10 Mbps and 100 ms") corresponds to
    /// ~1380-byte segments plus headers.
    pub mss: u32,
    /// Initial congestion window, segments (ns-3 default: 10).
    pub initial_cwnd_segments: u32,
    /// Duplicate-ACK threshold for fast retransmit.
    pub dupack_threshold: u32,
    /// Lower bound on the retransmission timeout (ns-3 default: 1 s).
    pub min_rto: SimDuration,
    /// RTO before any RTT sample exists (RFC6298 suggests 1 s in practice).
    pub initial_rto: SimDuration,
    /// Delayed ACKs enabled? (Paper: enabled; disabling removes the Fig. 3
    /// RTT oscillation but changes nothing else.)
    pub delayed_ack: bool,
    /// ACK every `delack_count`-th in-order segment when delaying.
    pub delack_count: u32,
    /// Flush a pending delayed ACK after this timeout (ns-3 default 200 ms).
    pub delack_timeout: SimDuration,
    /// Total bytes to send; `None` = unbounded (long-running flow).
    pub max_data: Option<u64>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1380,
            initial_cwnd_segments: 10,
            dupack_threshold: 3,
            min_rto: SimDuration::from_secs(1),
            initial_rto: SimDuration::from_secs(1),
            delayed_ack: true,
            delack_count: 2,
            delack_timeout: SimDuration::from_millis(200),
            max_data: None,
        }
    }
}

impl TcpConfig {
    /// Builder-style: disable delayed ACKs.
    pub fn without_delayed_ack(mut self) -> Self {
        self.delayed_ack = false;
        self
    }

    /// Builder-style: bound the flow to `bytes` of application data.
    pub fn with_max_data(mut self, bytes: u64) -> Self {
        self.max_data = Some(bytes);
        self
    }

    /// Builder-style: set the MSS.
    pub fn with_mss(mut self, mss: u32) -> Self {
        assert!(mss > 0, "MSS must be positive");
        self.mss = mss;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ns3_like() {
        let c = TcpConfig::default();
        assert_eq!(c.mss, 1380);
        assert_eq!(c.initial_cwnd_segments, 10);
        assert_eq!(c.dupack_threshold, 3);
        assert_eq!(c.min_rto, SimDuration::from_secs(1));
        assert!(c.delayed_ack);
        assert!(c.max_data.is_none());
    }

    #[test]
    fn builders() {
        let c = TcpConfig::default().without_delayed_ack().with_max_data(1_000_000).with_mss(1000);
        assert!(!c.delayed_ack);
        assert_eq!(c.max_data, Some(1_000_000));
        assert_eq!(c.mss, 1000);
    }
}
