//! End-to-end TCP over a simulated constellation.
//!
//! These tests exercise the full stack — orbital geometry, routing,
//! devices/queues, and the TCP state machines — and check the transport-
//! level invariants the paper's §4.2 analysis relies on.

use hypatia_constellation::ground::GroundStation;
use hypatia_constellation::gsl::GslConfig;
use hypatia_constellation::isl::IslLayout;
use hypatia_constellation::shell::ShellSpec;
use hypatia_constellation::Constellation;
use hypatia_netsim::{SimConfig, Simulator};
use hypatia_transport::{Cubic, NewReno, TcpConfig, TcpSender, TcpSink, Vegas};
use hypatia_util::{DataRate, SimTime};
use std::sync::Arc;

fn constellation() -> Arc<Constellation> {
    Arc::new(Constellation::build(
        "tcp-e2e",
        vec![ShellSpec::new("A", 550.0, 12, 12, 53.0)],
        IslLayout::PlusGrid,
        vec![GroundStation::new("src", 10.0, 10.0), GroundStation::new("dst", -5.0, 55.0)],
        GslConfig::new(10.0),
    ))
}

/// Run one TCP flow for `secs` simulated seconds; return (sender log copy,
/// bytes received, retransmits, timeouts).
fn run_flow(
    cc: Box<dyn hypatia_transport::CongestionControl>,
    secs: u64,
    frozen: bool,
) -> (u64, u64, u64, u64) {
    let c = constellation();
    let (src, dst) = (c.gs_node(0), c.gs_node(1));
    let mut cfg = SimConfig::default().with_link_rate(DataRate::from_mbps(10));
    if frozen {
        cfg = cfg.frozen();
    }
    let mut sim = Simulator::new(c, cfg, vec![src, dst]);
    let tcp_cfg = TcpConfig::default();
    let sink_idx = sim.add_app(dst, 80, Box::new(TcpSink::new(tcp_cfg.clone())));
    let sender_idx = sim.add_app(src, 70, Box::new(TcpSender::new(dst, 80, tcp_cfg, cc)));
    sim.run_until(SimTime::from_secs(secs));
    let sink: &TcpSink = sim.app_as(sink_idx).unwrap();
    let sender: &TcpSender = sim.app_as(sender_idx).unwrap();
    (sender.acked_bytes(), sink.bytes_received(), sender.log.retransmits, sender.log.timeouts)
}

#[test]
fn newreno_fills_a_static_path() {
    // On a frozen network (no reordering, no path changes) NewReno must
    // achieve close to the 10 Mbit/s line rate after slow start.
    let (acked, received, _retx, timeouts) = run_flow(Box::new(NewReno::new()), 20, true);
    let goodput_mbps = received as f64 * 8.0 / 20.0 / 1e6;
    assert!(goodput_mbps > 7.0, "NewReno only reached {goodput_mbps:.2} Mbit/s on a clean path");
    assert!(acked <= received + 100 * 1380, "acked beyond received");
    // Slow start overshoots the drop-tail queue once; without SACK the
    // resulting multi-loss burst may be cut short by one (Impatient) RTO.
    // Steady state afterwards must be timeout-free.
    assert!(timeouts <= 2, "persistent RTOs on a clean path: {timeouts}");
}

#[test]
fn newreno_sawtooth_on_static_path() {
    let c = constellation();
    let (src, dst) = (c.gs_node(0), c.gs_node(1));
    let cfg = SimConfig::default().frozen();
    let mut sim = Simulator::new(c, cfg, vec![src, dst]);
    let tcp_cfg = TcpConfig::default();
    sim.add_app(dst, 80, Box::new(TcpSink::new(tcp_cfg.clone())));
    let sender_idx =
        sim.add_app(src, 70, Box::new(TcpSender::new(dst, 80, tcp_cfg, Box::new(NewReno::new()))));
    sim.run_until(SimTime::from_secs(30));
    let sender: &TcpSender = sim.app_as(sender_idx).unwrap();
    // The window must repeatedly rise and get cut (buffer-fill sawtooth):
    // count downward jumps of at least 25%.
    let cwnd = &sender.log.cwnd;
    let mut cuts = 0;
    for w in cwnd.windows(2) {
        if (w[1].1 as f64) < w[0].1 as f64 * 0.75 {
            cuts += 1;
        }
    }
    assert!(cuts >= 2, "expected a sawtooth, saw {cuts} cuts over {} points", cwnd.len());
    assert!(sender.log.fast_retransmits >= 2, "drops should trigger fast retransmit");
}

#[test]
fn vegas_keeps_queues_short_on_static_path() {
    // Vegas on a static path should deliver decent goodput with essentially
    // no loss (near-empty queue), unlike NewReno which fills the buffer.
    let (_, received, retx, _) = run_flow(Box::new(Vegas::new()), 20, true);
    let goodput_mbps = received as f64 * 8.0 / 20.0 / 1e6;
    assert!(goodput_mbps > 4.0, "Vegas goodput {goodput_mbps:.2} Mbit/s too low");
    assert!(retx <= 5, "Vegas should barely lose packets, retransmitted {retx}");
}

#[test]
fn cubic_fills_a_static_path() {
    let (_, received, _, _) = run_flow(Box::new(Cubic::new()), 20, true);
    let goodput_mbps = received as f64 * 8.0 / 20.0 / 1e6;
    assert!(goodput_mbps > 7.0, "CUBIC goodput {goodput_mbps:.2} Mbit/s");
}

#[test]
fn dynamic_network_still_delivers() {
    // With live orbital dynamics (forwarding updates every 100 ms), the
    // flow keeps making progress; RTT samples vary.
    let (_, received, _, _) = run_flow(Box::new(NewReno::new()), 20, false);
    let goodput_mbps = received as f64 * 8.0 / 20.0 / 1e6;
    assert!(goodput_mbps > 3.0, "dynamic-path goodput {goodput_mbps:.2} Mbit/s");
}

#[test]
fn bounded_transfer_completes_and_stops() {
    let c = constellation();
    let (src, dst) = (c.gs_node(0), c.gs_node(1));
    let mut sim = Simulator::new(c, SimConfig::default().frozen(), vec![src, dst]);
    let tcp_cfg = TcpConfig::default().with_max_data(500_000);
    let sink_idx = sim.add_app(dst, 80, Box::new(TcpSink::new(tcp_cfg.clone())));
    let sender_idx =
        sim.add_app(src, 70, Box::new(TcpSender::new(dst, 80, tcp_cfg, Box::new(NewReno::new()))));
    sim.run_until(SimTime::from_secs(60));
    let sink: &TcpSink = sim.app_as(sink_idx).unwrap();
    let sender: &TcpSender = sim.app_as(sender_idx).unwrap();
    assert_eq!(sink.bytes_received(), 500_000, "transfer incomplete");
    assert_eq!(sender.acked_bytes(), 500_000);
    assert_eq!(sender.inflight(), 0, "everything should be ACKed");
}

#[test]
fn tcp_survives_gsl_channel_loss() {
    // Weather-model stand-in: 2% per-transmission GSL loss. TCP must keep
    // making progress (retransmissions recover every hole) at reduced rate.
    let c = constellation();
    let (src, dst) = (c.gs_node(0), c.gs_node(1));
    let cfg = SimConfig::default().frozen().with_gsl_loss(0.02);
    let mut sim = Simulator::new(c, cfg, vec![src, dst]);
    let tcp_cfg = TcpConfig::default();
    let sink_idx = sim.add_app(dst, 80, Box::new(TcpSink::new(tcp_cfg.clone())));
    let sender_idx =
        sim.add_app(src, 70, Box::new(TcpSender::new(dst, 80, tcp_cfg, Box::new(NewReno::new()))));
    sim.run_until(SimTime::from_secs(30));
    assert!(sim.stats.channel_drops > 0, "loss process inactive");
    let sink: &TcpSink = sim.app_as(sink_idx).unwrap();
    let sender: &TcpSender = sim.app_as(sender_idx).unwrap();
    let goodput = sink.bytes_received() as f64 * 8.0 / 30.0 / 1e6;
    assert!(goodput > 0.5, "TCP collapsed under 2% loss: {goodput:.2} Mbit/s");
    assert!(sender.log.retransmits > 0, "loss must force retransmissions");
    // In-order delivery invariant: the sink's byte count only reflects
    // contiguous data, and never exceeds what the sender sent.
    assert!(sink.bytes_received() <= sender.acked_bytes() + 2_000_000);
}

#[test]
fn delayed_ack_disabled_still_works() {
    let c = constellation();
    let (src, dst) = (c.gs_node(0), c.gs_node(1));
    let mut sim = Simulator::new(c, SimConfig::default().frozen(), vec![src, dst]);
    let tcp_cfg = TcpConfig::default().without_delayed_ack();
    let sink_idx = sim.add_app(dst, 80, Box::new(TcpSink::new(tcp_cfg.clone())));
    sim.add_app(src, 70, Box::new(TcpSender::new(dst, 80, tcp_cfg, Box::new(NewReno::new()))));
    // 20 s horizon: the first seconds are dominated by the slow-start
    // overshoot recovery, which differs in timing without delayed ACKs.
    sim.run_until(SimTime::from_secs(20));
    let sink: &TcpSink = sim.app_as(sink_idx).unwrap();
    let goodput = sink.bytes_received() as f64 * 8.0 / 20.0 / 1e6;
    assert!(goodput > 6.0, "goodput without delayed ACKs: {goodput:.2}");
}

#[test]
fn tcp_flow_resumes_bit_identically_from_a_checkpoint() {
    // The full transport state machine — window, recovery, RTT estimator,
    // CC internals, reassembly buffer, delayed-ACK timers — must travel
    // through a snapshot: a run checkpointed mid-flow and resumed in a
    // fresh process image must finish byte-identically to one that never
    // stopped. Dynamic orbital forwarding plus GSL channel loss makes
    // this exercise the RNG and forwarding cursors too.
    let build = || {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let cfg = SimConfig::default().with_link_rate(DataRate::from_mbps(10)).with_gsl_loss(0.02);
        let mut sim = Simulator::new(c, cfg, vec![src, dst]);
        let tcp_cfg = TcpConfig::default();
        let sink_idx = sim.add_app(dst, 80, Box::new(TcpSink::new(tcp_cfg.clone())));
        let sender_idx = sim.add_app(
            src,
            70,
            Box::new(TcpSender::new(dst, 80, tcp_cfg, Box::new(NewReno::new()))),
        );
        (sim, sink_idx, sender_idx)
    };

    let (mut clean, clean_sink, clean_sender) = build();
    clean.run_until(SimTime::from_secs(10));

    let (mut first, ..) = build();
    first.run_until(SimTime::from_secs(4));
    let image = first.checkpoint().expect("checkpoint");
    drop(first);

    let (mut resumed, res_sink, res_sender) = build();
    resumed.restore(image).expect("restore");
    assert_eq!(resumed.now(), SimTime::from_secs(4));
    resumed.run_until(SimTime::from_secs(10));

    let a: &TcpSink = clean.app_as(clean_sink).unwrap();
    let b: &TcpSink = resumed.app_as(res_sink).unwrap();
    assert!(a.bytes_received() > 500_000, "flow barely moved: {}", a.bytes_received());
    assert_eq!(a.bytes_received(), b.bytes_received());
    assert_eq!(a.goodput_bins_100ms(), b.goodput_bins_100ms());
    let sa: &TcpSender = clean.app_as(clean_sender).unwrap();
    let sb: &TcpSender = resumed.app_as(res_sender).unwrap();
    assert_eq!(sa.acked_bytes(), sb.acked_bytes());
    assert_eq!(sa.log.cwnd, sb.log.cwnd);
    assert_eq!(sa.log.rtt_samples, sb.log.rtt_samples);
    assert_eq!(sa.log.retransmits, sb.log.retransmits);
    assert_eq!(sa.log.timeouts, sb.log.timeouts);
    // Strongest form: the final serialized state is identical bit for bit.
    assert_eq!(clean.checkpoint().unwrap(), resumed.checkpoint().unwrap());
}

#[test]
fn bulk_tcp_tables_resume_bit_identically() {
    // Arena flow tables demux many protocol endpoints through one app
    // slot; their save path must round-trip each flow in table order.
    use hypatia_transport::{BulkTcpSender, BulkTcpSink};
    let build = || {
        let c = constellation();
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let cfg = SimConfig::default().with_link_rate(DataRate::from_mbps(10));
        let mut sim = Simulator::new(c, cfg, vec![src, dst]);
        let tcp_cfg = TcpConfig::default();
        let mut senders = BulkTcpSender::new();
        let mut sinks = BulkTcpSink::new();
        for i in 0..4u16 {
            sinks.push(80 + i, tcp_cfg.clone());
            senders.push(70 + i, dst, 80 + i, tcp_cfg.clone(), Box::new(NewReno::new()));
        }
        let sink_ports = sinks.ports();
        let sender_ports = senders.ports();
        let sink_idx = sim.add_app_multi(dst, &sink_ports, Box::new(sinks));
        sim.add_app_multi(src, &sender_ports, Box::new(senders));
        (sim, sink_idx)
    };

    let (mut clean, clean_sinks) = build();
    clean.run_until(SimTime::from_secs(8));

    let (mut first, _) = build();
    first.run_until(SimTime::from_secs(3));
    let image = first.checkpoint().expect("checkpoint");
    drop(first);

    let (mut resumed, res_sinks) = build();
    resumed.restore(image).expect("restore");
    resumed.run_until(SimTime::from_secs(8));

    let a: &hypatia_transport::BulkTcpSink = clean.app_as(clean_sinks).unwrap();
    let b: &hypatia_transport::BulkTcpSink = resumed.app_as(res_sinks).unwrap();
    for i in 0..4 {
        assert!(a.flow(i).bytes_received() > 0, "flow {i} never started");
        assert_eq!(a.flow(i).bytes_received(), b.flow(i).bytes_received(), "flow {i}");
    }
    assert_eq!(clean.checkpoint().unwrap(), resumed.checkpoint().unwrap());
}

#[test]
fn per_packet_rtts_are_physically_plausible() {
    let c = constellation();
    let (src, dst) = (c.gs_node(0), c.gs_node(1));
    let geodesic = c.ground_stations[0].geodesic_rtt(&c.ground_stations[1]);
    let mut sim = Simulator::new(c, SimConfig::default(), vec![src, dst]);
    let tcp_cfg = TcpConfig::default();
    sim.add_app(dst, 80, Box::new(TcpSink::new(tcp_cfg.clone())));
    let sender_idx =
        sim.add_app(src, 70, Box::new(TcpSender::new(dst, 80, tcp_cfg, Box::new(NewReno::new()))));
    sim.run_until(SimTime::from_secs(10));
    let sender: &TcpSender = sim.app_as(sender_idx).unwrap();
    assert!(!sender.log.rtt_samples.is_empty());
    for &(_, rtt) in &sender.log.rtt_samples {
        assert!(rtt >= geodesic, "RTT {rtt} below the geodesic bound {geodesic}");
        assert!(rtt.secs_f64() < 5.0, "absurd RTT {rtt}");
    }
}
