//! Foundation types shared by every Hypatia crate.
//!
//! This crate deliberately has no knowledge of satellites or networks. It
//! provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulation time, the
//!   basis of deterministic discrete-event execution;
//! * [`Vec3`] — a minimal 3D vector for orbital geometry (kilometres);
//! * [`constants`] — physical and geodetic constants (WGS72, as used by the
//!   TLE ecosystem the paper builds on);
//! * [`DataRate`] / [`DataSize`] — bit-exact link-rate arithmetic;
//! * [`rng`] — a small deterministic PRNG for reproducible workloads;
//! * [`hash`] — FNV-1a 64 hashing for manifests and per-flow spreading;
//! * [`mem`] — peak-RSS introspection for the scaling benchmarks;
//! * [`angle`] — degree/radian helpers and angle wrapping.

pub mod angle;
pub mod constants;
pub mod hash;
pub mod mem;
pub mod rng;
pub mod time;
pub mod units;
pub mod vec3;

pub use time::{SimDuration, SimTime};
pub use units::{DataRate, DataSize};
pub use vec3::Vec3;
