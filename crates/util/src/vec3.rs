//! A minimal 3D vector for orbital geometry.
//!
//! All Hypatia geometry works in kilometres; distances between LEO nodes are
//! O(10^2..10^4) km, comfortably inside f64's exact range.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-component f64 vector (kilometres unless stated otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Construct from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm (avoids the sqrt when only comparisons are needed).
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Unit vector in this direction. Panics on the zero vector.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        self / n
    }

    /// Angle between two vectors in radians, in `[0, pi]`.
    pub fn angle_to(self, other: Vec3) -> f64 {
        let denom = self.norm() * other.norm();
        assert!(denom > 0.0, "angle with zero vector is undefined");
        (self.dot(other) / denom).clamp(-1.0, 1.0).acos()
    }

    /// Rotate about the Z axis by `theta` radians (counter-clockwise looking
    /// down +Z). The workhorse of ECI↔ECEF conversion.
    pub fn rotate_z(self, theta: f64) -> Vec3 {
        let (s, c) = theta.sin_cos();
        Vec3 { x: c * self.x - s * self.y, y: s * self.x + c * self.y, z: self.z }
    }

    /// Rotate about the X axis by `theta` radians.
    pub fn rotate_x(self, theta: f64) -> Vec3 {
        let (s, c) = theta.sin_cos();
        Vec3 { x: self.x, y: c * self.y - s * self.z, z: s * self.y + c * self.z }
    }

    /// Componentwise finite check.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}
impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}
impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}
impl SubAssign for Vec3 {
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}
impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}
impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}
impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, k: f64) -> Vec3 {
        Vec3::new(self.x / k, self.y / k, self.z / k)
    }
}
impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn dot_and_cross_basics() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(x), -z);
    }

    #[test]
    fn norm_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!(approx(v.norm(), 5.0));
        assert!(approx(v.norm_sq(), 25.0));
        assert!(approx(v.distance(Vec3::ZERO), 5.0));
    }

    #[test]
    fn rotate_z_quarter_turn() {
        let v = Vec3::new(1.0, 0.0, 2.0).rotate_z(FRAC_PI_2);
        assert!(approx(v.x, 0.0) && approx(v.y, 1.0) && approx(v.z, 2.0));
    }

    #[test]
    fn rotate_x_quarter_turn() {
        let v = Vec3::new(2.0, 1.0, 0.0).rotate_x(FRAC_PI_2);
        assert!(approx(v.x, 2.0) && approx(v.y, 0.0) && approx(v.z, 1.0));
    }

    #[test]
    fn angle_between_axes() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 2.0, 0.0);
        assert!(approx(x.angle_to(y), FRAC_PI_2));
        assert!(approx(x.angle_to(-x), PI));
        assert!(approx(x.angle_to(x * 3.0), 0.0));
    }

    #[test]
    #[should_panic]
    fn normalize_zero_panics() {
        Vec3::ZERO.normalized();
    }

    proptest! {
        #[test]
        fn rotation_preserves_norm(x in -1e4f64..1e4, y in -1e4f64..1e4,
                                   z in -1e4f64..1e4, theta in -10.0f64..10.0) {
            let v = Vec3::new(x, y, z);
            prop_assert!((v.rotate_z(theta).norm() - v.norm()).abs() < 1e-6);
            prop_assert!((v.rotate_x(theta).norm() - v.norm()).abs() < 1e-6);
        }

        #[test]
        fn cross_is_orthogonal(ax in -1e3f64..1e3, ay in -1e3f64..1e3, az in -1e3f64..1e3,
                               bx in -1e3f64..1e3, by in -1e3f64..1e3, bz in -1e3f64..1e3) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            let c = a.cross(b);
            // |a.c| and |b.c| should be ~0 relative to the magnitudes involved.
            let scale = (a.norm() * b.norm() * c.norm()).max(1.0);
            prop_assert!(a.dot(c).abs() / scale < 1e-9);
            prop_assert!(b.dot(c).abs() / scale < 1e-9);
        }

        #[test]
        fn triangle_inequality(ax in -1e3f64..1e3, ay in -1e3f64..1e3, az in -1e3f64..1e3,
                               bx in -1e3f64..1e3, by in -1e3f64..1e3, bz in -1e3f64..1e3) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        }
    }
}
