//! Degree/radian conversion and angle normalization helpers.
//!
//! Regulatory filings specify inclinations and minimum elevation angles in
//! degrees (Table 1 of the paper); orbital mechanics wants radians. Keeping
//! the conversions in one place avoids the classic unit slip.

use std::f64::consts::{PI, TAU};

/// Degrees to radians.
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * PI / 180.0
}

/// Radians to degrees.
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / PI
}

/// Normalize an angle to `[0, 2π)`.
pub fn wrap_two_pi(rad: f64) -> f64 {
    let r = rad.rem_euclid(TAU);
    // rem_euclid can return TAU itself for tiny negative inputs due to rounding.
    if r >= TAU {
        0.0
    } else {
        r
    }
}

/// Normalize an angle to `(-π, π]`.
pub fn wrap_pi(rad: f64) -> f64 {
    let r = wrap_two_pi(rad);
    if r > PI {
        r - TAU
    } else {
        r
    }
}

/// Normalize degrees to `[0, 360)`.
pub fn wrap_360(deg: f64) -> f64 {
    let d = deg.rem_euclid(360.0);
    if d >= 360.0 {
        0.0
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deg_rad_round_trip() {
        assert!((rad_to_deg(deg_to_rad(53.0)) - 53.0).abs() < 1e-12);
        assert!((deg_to_rad(180.0) - PI).abs() < 1e-15);
    }

    #[test]
    fn wrapping_two_pi() {
        assert!((wrap_two_pi(TAU + 0.5) - 0.5).abs() < 1e-12);
        assert!((wrap_two_pi(-0.5) - (TAU - 0.5)).abs() < 1e-12);
        assert_eq!(wrap_two_pi(0.0), 0.0);
    }

    #[test]
    fn wrapping_pi() {
        assert!((wrap_pi(PI + 0.1) - (-PI + 0.1)).abs() < 1e-12);
        assert!((wrap_pi(-PI + 0.1) - (-PI + 0.1)).abs() < 1e-12);
        assert!((wrap_pi(PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn wrapping_degrees() {
        assert_eq!(wrap_360(720.5), 0.5);
        assert_eq!(wrap_360(-90.0), 270.0);
    }

    proptest! {
        #[test]
        fn wrap_two_pi_in_range(x in -1e6f64..1e6) {
            let w = wrap_two_pi(x);
            prop_assert!((0.0..TAU).contains(&w));
        }

        #[test]
        fn wrap_pi_in_range(x in -1e6f64..1e6) {
            let w = wrap_pi(x);
            prop_assert!(w > -PI - 1e-9 && w <= PI + 1e-9);
        }

        #[test]
        fn wrap_preserves_angle_mod_tau(x in -1e4f64..1e4) {
            let w = wrap_two_pi(x);
            // sin/cos must agree with the original angle.
            prop_assert!((w.sin() - x.sin()).abs() < 1e-7);
            prop_assert!((w.cos() - x.cos()).abs() < 1e-7);
        }
    }
}
