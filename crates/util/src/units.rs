//! Link-rate and data-size arithmetic.
//!
//! Serialization delay must be computed exactly and identically everywhere:
//! `bits * 1e9 / rate_bps` nanoseconds, in integer arithmetic, so that two
//! devices with the same rate always agree on transmit durations.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A data size in bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DataSize(u64);

impl DataSize {
    pub const ZERO: DataSize = DataSize(0);

    pub const fn from_bytes(b: u64) -> Self {
        DataSize(b)
    }
    pub const fn from_kilobytes(kb: u64) -> Self {
        DataSize(kb * 1_000)
    }
    pub const fn bytes(self) -> u64 {
        self.0
    }
    pub const fn bits(self) -> u64 {
        self.0 * 8
    }
}

impl std::ops::Add for DataSize {
    type Output = DataSize;
    fn add(self, o: DataSize) -> DataSize {
        DataSize(self.0 + o.0)
    }
}

impl std::ops::AddAssign for DataSize {
    fn add_assign(&mut self, o: DataSize) {
        self.0 += o.0;
    }
}

impl fmt::Display for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

/// A link data rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DataRate(u64);

impl DataRate {
    pub const fn from_bps(bps: u64) -> Self {
        DataRate(bps)
    }
    pub const fn from_kbps(kbps: u64) -> Self {
        DataRate(kbps * 1_000)
    }
    pub const fn from_mbps(mbps: u64) -> Self {
        DataRate(mbps * 1_000_000)
    }
    pub const fn from_gbps(gbps: u64) -> Self {
        DataRate(gbps * 1_000_000_000)
    }
    pub const fn bps(self) -> u64 {
        self.0
    }
    pub fn mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time to serialize `size` onto a link of this rate.
    ///
    /// Exact integer arithmetic: `ceil` is *not* used — ns resolution is fine
    /// enough that rounding to nearest keeps cumulative error below one
    /// nanosecond per packet, and matching ns-3 we round down the fractional
    /// remainder (u128 avoids overflow for multi-gigabyte bursts).
    pub fn serialization_delay(self, size: DataSize) -> SimDuration {
        assert!(self.0 > 0, "zero-rate link cannot transmit");
        let ns = (size.bits() as u128 * 1_000_000_000u128) / self.0 as u128;
        SimDuration::from_nanos(ns as u64)
    }

    /// The bandwidth-delay product in bytes for a given round-trip time.
    pub fn bdp_bytes(self, rtt: SimDuration) -> u64 {
        ((self.0 as u128 * rtt.nanos() as u128) / (8 * 1_000_000_000u128)) as u64
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 && self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{}Gbps", self.0 / 1_000_000_000)
        } else if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{}Mbps", self.0 / 1_000_000)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_exact() {
        // 1500 B at 10 Mbps = 12000 bits / 1e7 bps = 1.2 ms.
        let d = DataRate::from_mbps(10).serialization_delay(DataSize::from_bytes(1500));
        assert_eq!(d, SimDuration::from_micros(1200));
    }

    #[test]
    fn serialization_delay_one_gbps() {
        // 1250 B at 1 Gbps = 10000 bits / 1e9 = 10 us.
        let d = DataRate::from_gbps(1).serialization_delay(DataSize::from_bytes(1250));
        assert_eq!(d, SimDuration::from_micros(10));
    }

    #[test]
    fn bdp_computation() {
        // 10 Mbps * 100 ms = 1e6 bits = 125000 bytes ≈ 83 packets of 1500 B.
        let bdp = DataRate::from_mbps(10).bdp_bytes(SimDuration::from_millis(100));
        assert_eq!(bdp, 125_000);
    }

    #[test]
    fn no_overflow_on_large_sizes() {
        // 4 GB at 1 kbps must not overflow intermediate math.
        let d = DataRate::from_kbps(1)
            .serialization_delay(DataSize::from_bytes(4 * 1024 * 1024 * 1024));
        assert!(d.secs_f64() > 3e7);
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        DataRate::from_bps(0).serialization_delay(DataSize::from_bytes(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", DataRate::from_mbps(10)), "10Mbps");
        assert_eq!(format!("{}", DataRate::from_gbps(2)), "2Gbps");
        assert_eq!(format!("{}", DataSize::from_bytes(42)), "42B");
    }
}
