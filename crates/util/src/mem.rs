//! Process memory introspection for scaling benchmarks.
//!
//! The flow-scaling experiments report peak resident set size alongside
//! event throughput, so memory regressions show up in the same manifest
//! as performance ones. Linux exposes the high-water mark as `VmHWM` in
//! `/proc/self/status`; other platforms return `None` and the benchmarks
//! simply omit the column.

/// Peak resident set size (high-water mark) of the current process, in
/// bytes. `None` when the platform does not expose it.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        peak_rss_from(std::path::Path::new("/proc/self/status"))
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Read the high-water mark from a `/proc/<pid>/status`-format file.
/// An absent, unreadable, or malformed file yields `None` — the
/// benchmarks drop the column, they never crash over introspection.
#[allow(dead_code)] // non-Linux builds only use it from tests
fn peak_rss_from(path: &std::path::Path) -> Option<u64> {
    let status = std::fs::read_to_string(path).ok()?;
    parse_vm_hwm(&status)
}

/// Parse the `VmHWM` line of a `/proc/<pid>/status` dump into bytes.
#[allow(dead_code)] // non-Linux builds only use it from tests
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: "VmHWM:      123456 kB"
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_proc_status_dump() {
        let status = "Name:\tcargo\nVmPeak:\t  999 kB\nVmHWM:\t    4321 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(4321 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tcargo\n"), None);
    }

    #[test]
    fn absent_status_file_is_none_not_a_panic() {
        let path = std::env::temp_dir().join("hypatia-mem-test-no-such-file");
        assert_eq!(peak_rss_from(&path), None);
    }

    #[test]
    fn malformed_status_file_is_none_not_a_panic() {
        let dir = std::env::temp_dir();
        for (name, content) in [
            ("hypatia-mem-test-empty", ""),
            ("hypatia-mem-test-no-hwm", "Name:\tcargo\nThreads:\t1\n"),
            ("hypatia-mem-test-no-value", "VmHWM:\n"),
            ("hypatia-mem-test-non-numeric", "VmHWM:\tlots kB\n"),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, content).expect("write fixture");
            assert_eq!(peak_rss_from(&path), None, "fixture {name:?}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn well_formed_status_file_round_trips() {
        let path = std::env::temp_dir().join("hypatia-mem-test-well-formed");
        std::fs::write(&path, "Name:\tcargo\nVmHWM:\t    4321 kB\n").expect("write fixture");
        assert_eq!(peak_rss_from(&path), Some(4321 * 1024));
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_reports_a_positive_peak() {
        // Touch some memory so the high-water mark is clearly nonzero.
        let v = vec![1u8; 1 << 20];
        assert!(v.iter().map(|&b| b as u64).sum::<u64>() > 0);
        let peak = peak_rss_bytes().expect("VmHWM present on Linux");
        assert!(peak > 1 << 20, "peak {peak} bytes");
    }
}
