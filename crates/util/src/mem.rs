//! Process memory introspection for scaling benchmarks.
//!
//! The flow-scaling experiments report peak resident set size alongside
//! event throughput, so memory regressions show up in the same manifest
//! as performance ones. Linux exposes the high-water mark as `VmHWM` in
//! `/proc/self/status`; other platforms return `None` and the benchmarks
//! simply omit the column.

/// Peak resident set size (high-water mark) of the current process, in
/// bytes. `None` when the platform does not expose it.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Parse the `VmHWM` line of a `/proc/<pid>/status` dump into bytes.
#[allow(dead_code)] // non-Linux builds only use it from tests
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: "VmHWM:      123456 kB"
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_proc_status_dump() {
        let status = "Name:\tcargo\nVmPeak:\t  999 kB\nVmHWM:\t    4321 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(4321 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tcargo\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_reports_a_positive_peak() {
        // Touch some memory so the high-water mark is clearly nonzero.
        let v = vec![1u8; 1 << 20];
        assert!(v.iter().map(|&b| b as u64).sum::<u64>() > 0);
        let peak = peak_rss_bytes().expect("VmHWM present on Linux");
        assert!(peak > 1 << 20, "peak {peak} bytes");
    }
}
