//! A small deterministic PRNG for reproducible experiment workloads.
//!
//! Experiments in the paper use a "random permutation between the GSes" as
//! the traffic matrix. Reproducibility across runs and platforms matters
//! more than statistical sophistication here, so we ship a self-contained
//! splitmix64/xoshiro256** implementation rather than depending on a
//! particular `rand` backend remaining stable. (`rand` is still used in
//! tests and examples where reproducibility across versions is not needed.)

/// xoshiro256** seeded via splitmix64. Deterministic across platforms.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        DetRng { s }
    }

    /// The raw xoshiro256** state words, for checkpointing. Restoring a
    /// generator with [`DetRng::from_state`] continues the stream exactly
    /// where this one left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a previously captured [`DetRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        DetRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`. Uses Lemire's multiply-shift with rejection
    /// to avoid modulo bias. Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
            // Rejected sample in the biased zone: draw again.
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed draw with the given mean, via the
    /// inverse CDF. Used for MTTF/MTTR fault sampling. Panics if
    /// `mean` is not positive.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive, got {mean}");
        // 1 - next_f64() lies in (0, 1], so the log is finite.
        -(1.0 - self.next_f64()).ln() * mean
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A random derangement-style permutation pairing of `0..n`: returns
    /// `perm` where `perm[i] != i` for all `i` (the paper's "random
    /// permutation between the GSes" traffic matrix, with self-pairs
    /// excluded). Panics if `n < 2`.
    pub fn permutation_pairs(&mut self, n: usize) -> Vec<usize> {
        assert!(n >= 2, "need at least two endpoints to pair");
        // Repeated shuffle until no fixed point. Expected ~e tries.
        let mut perm: Vec<usize> = (0..n).collect();
        loop {
            self.shuffle(&mut perm);
            if perm.iter().enumerate().all(|(i, &p)| i != p) {
                return perm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = DetRng::new(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = DetRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = DetRng::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_below_covers_all_values() {
        let mut r = DetRng::new(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_pairs_has_no_fixed_points() {
        let mut r = DetRng::new(5);
        for n in [2usize, 3, 10, 100] {
            let p = r.permutation_pairs(n);
            assert_eq!(p.len(), n);
            for (i, &pi) in p.iter().enumerate() {
                assert_ne!(i, pi, "fixed point at {i} for n={n}");
            }
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn next_exp_is_positive_with_the_right_mean() {
        let mut r = DetRng::new(77);
        let n = 100_000;
        let mean = 3.5;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_exp(mean);
            assert!(x >= 0.0 && x.is_finite());
            sum += x;
        }
        let measured = sum / n as f64;
        assert!((measured - mean).abs() < 0.05, "mean {measured}, want {mean}");
    }

    #[test]
    #[should_panic]
    fn next_exp_rejects_nonpositive_mean() {
        DetRng::new(1).next_exp(0.0);
    }

    #[test]
    fn mean_of_next_f64_is_near_half() {
        let mut r = DetRng::new(123);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
