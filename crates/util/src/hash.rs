//! FNV-1a 64-bit hashing.
//!
//! One tiny, dependency-free hash serves two jobs that must be
//! deterministic across platforms and runs:
//!
//! * artifact checksums in run manifests (change detection, not
//!   adversary resistance);
//! * per-flow hashing in the simulator's multipath spreading, where the
//!   hash of a packet's 5-tuple-ish key decides which loop-free alternate
//!   a flow takes. `std`'s `DefaultHasher` (SipHash) is both slower and
//!   not guaranteed stable across Rust releases, so it is unsuitable for
//!   bit-reproducible experiments.

/// FNV-1a 64-bit offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a byte slice with FNV-1a 64.
pub const fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = OFFSET_BASIS;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(PRIME);
        i += 1;
    }
    hash
}

/// Incremental FNV-1a 64 state, for hashing structured keys (integer
/// fields in little-endian byte order) without materializing a buffer.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a64(u64);

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a64 {
    /// Fresh state at the offset basis.
    pub const fn new() -> Self {
        Fnv1a64(OFFSET_BASIS)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(PRIME);
        }
    }

    /// Absorb a `u16` as little-endian bytes.
    pub fn write_u16(&mut self, x: u16) {
        self.write(&x.to_le_bytes());
    }

    /// Absorb a `u32` as little-endian bytes.
    pub fn write_u32(&mut self, x: u32) {
        self.write(&x.to_le_bytes());
    }

    /// Absorb a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// The accumulated hash.
    pub const fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Published FNV-1a 64 reference vectors (Noll's test suite /
        // draft-eastlake-fnv). The empty string must equal the offset
        // basis; the single letters and the "fo".."foobar" prefix chain
        // pin every byte of the avalanche, not just the final value.
        let vectors: &[(&[u8], u64)] = &[
            (b"", 0xcbf2_9ce4_8422_2325),
            (b"a", 0xaf63_dc4c_8601_ec8c),
            (b"b", 0xaf63_df4c_8601_f1a5),
            (b"c", 0xaf63_de4c_8601_eff2),
            (b"d", 0xaf63_d94c_8601_e773),
            (b"e", 0xaf63_d84c_8601_e5c0),
            (b"f", 0xaf63_db4c_8601_ead9),
            (b"fo", 0x0898_5907_b541_d342),
            (b"foo", 0xdcb2_7518_fed9_d577),
            (b"foob", 0xdd12_0e79_0c25_12af),
            (b"fooba", 0xcac1_65af_a2fe_f40a),
            (b"foobar", 0x8594_4171_f739_67e8),
            (b"chongo was here!\n", 0x4681_0940_eff5_f915),
        ];
        for &(input, want) in vectors {
            assert_eq!(fnv1a_64(input), want, "fnv1a_64({:?})", String::from_utf8_lossy(input));
            // The incremental hasher must agree byte for byte.
            let mut h = Fnv1a64::new();
            h.write(input);
            assert_eq!(h.finish(), want, "incremental {:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn one_shot_is_const_evaluable() {
        // The flow-hash path relies on compile-time evaluation of
        // constant keys staying in sync with the runtime hasher.
        const H: u64 = fnv1a_64(b"foobar");
        assert_eq!(H, 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn integer_writes_match_le_bytes() {
        let mut a = Fnv1a64::new();
        a.write_u32(0xdead_beef);
        a.write_u16(0x1234);
        let mut b = Fnv1a64::new();
        b.write(&0xdead_beef_u32.to_le_bytes());
        b.write(&0x1234_u16.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_keys_hash_apart() {
        // Not a collision-resistance claim, just a sanity check that field
        // order matters (src/dst swapped must differ for flow hashing).
        let mut fwd = Fnv1a64::new();
        fwd.write_u32(1);
        fwd.write_u32(2);
        let mut rev = Fnv1a64::new();
        rev.write_u32(2);
        rev.write_u32(1);
        assert_ne!(fwd.finish(), rev.finish());
    }
}
