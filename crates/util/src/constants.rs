//! Physical and geodetic constants.
//!
//! The TLE ecosystem the paper builds on (NORAD TLEs, SGP4, pyephem) is
//! defined against the **WGS72** geodetic system, so Hypatia's orbital
//! mechanics use WGS72 values. Where the paper quotes round numbers (e.g.
//! "speed of light in fiber is roughly 2c/3") we encode the same convention.

/// Speed of light in vacuum, km/s.
pub const C_VACUUM_KM_PER_S: f64 = 299_792.458;

/// Speed of light in optical fiber (~2c/3), km/s. Used when comparing LEO
/// paths to terrestrial fiber paths, per the paper's §5.1 discussion.
pub const C_FIBER_KM_PER_S: f64 = C_VACUUM_KM_PER_S * 2.0 / 3.0;

/// WGS72 Earth equatorial radius, km.
pub const EARTH_RADIUS_KM: f64 = 6378.135;

/// WGS72 gravitational parameter μ = GM, km^3/s^2.
pub const EARTH_MU_KM3_PER_S2: f64 = 398_600.8;

/// Earth rotation rate, rad/s (sidereal).
pub const EARTH_ROTATION_RAD_PER_S: f64 = 7.292_115_146_706_98e-5;

/// WGS72 second zonal harmonic J2 (dominant oblateness perturbation).
pub const EARTH_J2: f64 = 1.082_616e-3;

/// WGS72 inverse flattening (for the optional ellipsoidal geodetic model).
pub const EARTH_INV_FLATTENING: f64 = 298.26;

/// Mean sidereal day, seconds.
pub const SIDEREAL_DAY_S: f64 = 86164.0905;

/// The LEO altitude ceiling the paper uses to define "low Earth orbit", km.
pub const LEO_MAX_ALTITUDE_KM: f64 = 2_000.0;

/// Orbital period of a circular orbit at altitude `h_km` above the WGS72
/// equatorial radius, in seconds: `T = 2π sqrt(a^3/μ)`.
pub fn circular_orbit_period_s(h_km: f64) -> f64 {
    let a = EARTH_RADIUS_KM + h_km;
    2.0 * std::f64::consts::PI * (a.powi(3) / EARTH_MU_KM3_PER_S2).sqrt()
}

/// Orbital velocity of a circular orbit at altitude `h_km`, km/s:
/// `v = sqrt(μ/a)`.
pub fn circular_orbit_velocity_km_per_s(h_km: f64) -> f64 {
    (EARTH_MU_KM3_PER_S2 / (EARTH_RADIUS_KM + h_km)).sqrt()
}

/// Mean motion (revolutions per day) of a circular orbit at altitude `h_km`.
pub fn circular_orbit_mean_motion_rev_per_day(h_km: f64) -> f64 {
    86_400.0 / circular_orbit_period_s(h_km)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper §2.3: at h = 550 km "the orbital velocity is more than
    /// 27,000 km/hr, and satellites complete an orbit ... in ~100 minutes".
    #[test]
    fn starlink_s1_altitude_matches_paper_quotes() {
        let v_kmh = circular_orbit_velocity_km_per_s(550.0) * 3600.0;
        assert!(v_kmh > 27_000.0, "velocity {v_kmh} km/h");
        let t_min = circular_orbit_period_s(550.0) / 60.0;
        assert!((90.0..105.0).contains(&t_min), "period {t_min} min");
    }

    #[test]
    fn period_increases_with_altitude() {
        assert!(circular_orbit_period_s(1200.0) > circular_orbit_period_s(550.0));
    }

    #[test]
    fn velocity_decreases_with_altitude() {
        assert!(circular_orbit_velocity_km_per_s(1325.0) < circular_orbit_velocity_km_per_s(550.0));
    }

    #[test]
    fn geo_period_is_one_sidereal_day() {
        // GEO altitude ≈ 35,786 km (paper §2.4); its period must be ~86164 s.
        let t = circular_orbit_period_s(35_786.0);
        assert!((t - SIDEREAL_DAY_S).abs() < 120.0, "GEO period {t} s");
    }

    #[test]
    fn mean_motion_for_kuiper_k1() {
        // Kuiper K1 at 630 km: ~14.8 revs/day (standard value for this shell).
        let n = circular_orbit_mean_motion_rev_per_day(630.0);
        assert!((14.5..15.1).contains(&n), "mean motion {n}");
    }

    #[test]
    fn fiber_speed_is_two_thirds_c() {
        assert!((C_FIBER_KM_PER_S / C_VACUUM_KM_PER_S - 2.0 / 3.0).abs() < 1e-12);
    }
}
