//! Simulation time as integer nanoseconds.
//!
//! A discrete-event simulator must order events totally and reproducibly.
//! Floating-point timestamps accumulate rounding that makes event order
//! depend on the history of arithmetic; integer nanoseconds do not. One
//! `u64` of nanoseconds covers ~584 years of simulated time, far beyond any
//! LEO experiment.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, t = 0.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Construct from fractional seconds. Panics on negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "SimTime cannot be negative: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn nanos(self) -> u64 {
        self.0
    }
    /// Milliseconds since simulation start (truncating).
    pub const fn millis(self) -> u64 {
        self.0 / 1_000_000
    }
    /// Seconds since simulation start, as a float (for reporting only).
    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`. Panics if `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0.checked_sub(earlier.0).expect("SimTime::since: earlier is in the future"),
        )
    }

    /// Saturating difference: zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from fractional seconds. Panics on negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "SimDuration cannot be negative: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn nanos(self) -> u64 {
        self.0
    }
    /// Milliseconds (truncating).
    pub const fn millis(self) -> u64 {
        self.0 / 1_000_000
    }
    /// Seconds as a float (for reporting only).
    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a float factor, rounding to the nearest nanosecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0, "duration factor cannot be negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// How many whole `rhs` intervals fit in `self`.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.secs_f64())
    }
}

/// Iterator over uniformly spaced instants `[start, end)` with step `step`.
///
/// Used for forwarding-state recomputation time-steps (paper §3.1: default
/// 100 ms) and for sampled trajectory exports.
#[derive(Debug, Clone)]
pub struct TimeSteps {
    next: SimTime,
    end: SimTime,
    step: SimDuration,
}

impl TimeSteps {
    /// Instants `start, start+step, ...` strictly before `end`.
    /// Panics if `step` is zero.
    pub fn new(start: SimTime, end: SimTime, step: SimDuration) -> Self {
        assert!(!step.is_zero(), "time step must be positive");
        TimeSteps { next: start, end, step }
    }
}

impl Iterator for TimeSteps {
    type Item = SimTime;
    fn next(&mut self) -> Option<SimTime> {
        if self.next >= self.end {
            return None;
        }
        let t = self.next;
        self.next += self.step;
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(1500).secs_f64(), 1.5);
        assert_eq!(SimDuration::from_micros(5).nanos(), 5_000);
        assert_eq!(SimTime::from_secs_f64(0.25), SimTime::from_millis(250));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).millis(), 10_500);
        assert_eq!((t - d).millis(), 9_500);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 4, SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(2) / d, 4);
    }

    #[test]
    fn since_and_saturating() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn since_panics_when_earlier_is_later() {
        SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn time_steps_cover_half_open_interval() {
        let steps: Vec<_> = TimeSteps::new(
            SimTime::ZERO,
            SimTime::from_millis(1000),
            SimDuration::from_millis(250),
        )
        .collect();
        assert_eq!(
            steps,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(250),
                SimTime::from_millis(500),
                SimTime::from_millis(750),
            ]
        );
    }

    #[test]
    fn time_steps_empty_when_start_at_end() {
        let mut it = TimeSteps::new(
            SimTime::from_secs(5),
            SimTime::from_secs(5),
            SimDuration::from_millis(100),
        );
        assert!(it.next().is_none());
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(3);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_nanos(2)); // 1.5 rounds to 2
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [SimTime::from_millis(5), SimTime::ZERO, SimTime::from_secs(1)];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(1));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
    }
}
