//! Extension study — resilience under component failures.
//!
//! The paper simulates a *fault-free* constellation; this study asks how
//! gracefully the system degrades when satellites flap. A seeded renewal
//! process (`hypatia-fault`) takes satellites down and back up at a swept
//! steady-state unavailability; for each failure rate one end-end
//! UDP+ping workload runs through the packet simulator while the routing
//! layer is probed for reconvergence. Reported per rate, against the
//! fault-free baseline:
//!
//! * goodput of a paced UDP flow (line-rate headroom eaten by reroutes);
//! * mean ping RTT inflation (detours are longer than the shortest path);
//! * ping loss fraction (packets caught on failing components);
//! * mean reroute latency (failure instant → next forwarding-state
//!   boundary — the time traffic keeps falling into a black hole);
//! * mean unreachable-pair and next-hop-churn fractions over the ground
//!   segment (sampled once per second from masked forwarding states);
//!
//! plus a CZML outage layer for the highest rate, renderable alongside
//! the Fig. 11 trajectory view.
//!
//! Flap events land *between* forwarding updates, so the run exercises
//! the simulator's mid-flight fault path: in-flight packets on a cut
//! component are dropped (`fault_drops`), everything else reroutes at
//! the next Δt boundary. All of it is deterministic in (seed, spec).

use super::first_pair;
use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::{ConstellationChoice, Scenario};
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection, ParamValue};
use hypatia_constellation::NodeId;
use hypatia_fault::{FaultKind, FaultSchedule, FaultState, FaultTarget, FlapProcess};
use hypatia_netsim::apps::{PingApp, UdpSink, UdpSource};
use hypatia_netsim::EngineReport;
use hypatia_routing::churn::{churn_between, reachability_of};
use hypatia_routing::forwarding::compute_forwarding_state_masked;
use hypatia_util::{DataRate, SimDuration, SimTime};
use hypatia_viz::czml::outage_czml;
use std::sync::Arc;

const PING_PORT: u16 = 7;
const UDP_PORT: u16 = 9;

/// What one workload run under a given fault schedule measured.
struct DegradedRun {
    goodput_mbps: f64,
    mean_rtt_ms: f64,
    ping_loss: f64,
    fault_drops: u64,
}

/// The failure-resilience sweep as a registered experiment.
pub struct ExtFailureResilience;

impl Experiment for ExtFailureResilience {
    fn name(&self) -> &'static str {
        "ext_failure_resilience"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Extension")
    }

    fn title(&self) -> &'static str {
        "Failure resilience: degradation vs satellite failure rate (Kuiper K1)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        let mut spec = ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(if full { 100 } else { 20 }),
            // A long ISL route whose endpoints sit inside even the reduced
            // 20-city ground segment.
            pairs: PairSelection::Named(vec![("Sao Paulo".into(), "Istanbul".into())]),
            duration: SimDuration::from_secs(if full { 100 } else { 20 }),
            ..ExperimentSpec::default()
        };
        spec.params.insert(
            "fail_fracs".to_string(),
            ParamValue::List(if full {
                vec![0.01, 0.02, 0.05, 0.1, 0.2]
            } else {
                vec![0.02, 0.05, 0.1]
            }),
        );
        spec.params.insert("mttr_s".to_string(), ParamValue::Num(if full { 30.0 } else { 10.0 }));
        spec.params.insert("ping_interval_ms".to_string(), ParamValue::Num(20.0));
        spec
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        // `--set fail_fracs=0.1` parses as a single number, a comma list
        // as a list; accept both.
        let fracs: Vec<f64> = match (ctx.spec.list("fail_fracs"), ctx.spec.num("fail_fracs")) {
            (Some(v), _) => v.to_vec(),
            (None, Some(x)) => vec![x],
            (None, None) => vec![0.02, 0.05, 0.1],
        };
        if let Some(bad) = fracs.iter().copied().find(|&f| f <= 0.0 || f >= 1.0) {
            return Err(RunError::BadSpec(format!("fail_fracs must lie in (0, 1), got {bad}")));
        }
        let mttr_s = ctx.spec.num("mttr_s").unwrap_or(10.0);
        let ping_interval =
            SimDuration::from_secs_f64(ctx.spec.num("ping_interval_ms").unwrap_or(20.0) / 1e3);
        let (src_name, dst_name) = first_pair(&ctx.spec)?;
        let scenario = ctx.scenario();
        let src = scenario.gs_by_name(&src_name)?;
        let dst = scenario.gs_by_name(&dst_name)?;
        let duration = ctx.spec.duration;

        // Fault-free baseline (whatever faults the spec itself carries —
        // normally none — stay in, so explicit windows compose with the
        // swept flap process).
        let (base, events, wall_s, engine) =
            run_workload(&scenario, src, dst, duration, ping_interval);
        ctx.sink.record_sim(events, wall_s);
        ctx.sink.record_engine(&engine);
        println!(
            "{:<10} {:>14} {:>10} {:>8} {:>12} {:>12} {:>8} {:>12}",
            "fail_frac",
            "goodput(Mbps)",
            "rtt(ms)",
            "loss",
            "reroute(ms)",
            "unreachable",
            "churn",
            "fault_drops"
        );
        println!(
            "{:<10} {:>14.3} {:>10.2} {:>8.4} {:>12} {:>12} {:>8} {:>12}",
            "0 (base)", base.goodput_mbps, base.mean_rtt_ms, base.ping_loss, "-", "-", "-", "-"
        );

        let mut goodput = vec![(0.0, base.goodput_mbps)];
        let mut inflation = vec![(0.0, 1.0)];
        let mut loss = vec![(0.0, base.ping_loss)];
        let mut reroute = Vec::new();
        let mut unreachable = Vec::new();
        let mut churn = Vec::new();
        let mut worst_schedule: Option<Arc<FaultSchedule>> = None;

        for &frac in &fracs {
            let mut faults = ctx.spec.faults.clone().unwrap_or_default();
            faults.sat_flap = Some(FlapProcess::from_unavailability(frac, mttr_s));
            let schedule =
                Arc::new(FaultSchedule::compile(&faults, &scenario.constellation, duration));

            let mut degraded = scenario.clone();
            degraded.sim_config.faults = Some(schedule.clone());
            let (r, events, wall_s, engine) =
                run_workload(&degraded, src, dst, duration, ping_interval);
            ctx.sink.record_sim(events, wall_s);
            ctx.sink.record_engine(&engine);

            let reroute_ms = mean_reroute_latency_ms(&schedule, ctx.spec.step);
            let (unreach_frac, churn_frac) = routing_degradation(&degraded, &schedule, duration);

            println!(
                "{:<10} {:>14.3} {:>10.2} {:>8.4} {:>12.2} {:>12.4} {:>8.4} {:>12}",
                format!("{frac}"),
                r.goodput_mbps,
                r.mean_rtt_ms,
                r.ping_loss,
                reroute_ms,
                unreach_frac,
                churn_frac,
                r.fault_drops
            );

            goodput.push((frac, r.goodput_mbps));
            inflation.push((
                frac,
                if base.mean_rtt_ms > 0.0 { r.mean_rtt_ms / base.mean_rtt_ms } else { f64::NAN },
            ));
            loss.push((frac, r.ping_loss));
            reroute.push((frac, reroute_ms));
            unreachable.push((frac, unreach_frac));
            churn.push((frac, churn_frac));
            worst_schedule = Some(schedule);
        }

        ctx.sink.write_series("ext_failure_goodput.dat", "fail_frac goodput_mbps", &goodput)?;
        ctx.sink.write_series(
            "ext_failure_rtt_inflation.dat",
            "fail_frac rtt_inflation",
            &inflation,
        )?;
        ctx.sink.write_series("ext_failure_loss.dat", "fail_frac loss_fraction", &loss)?;
        ctx.sink.write_series("ext_failure_reroute_ms.dat", "fail_frac reroute_ms", &reroute)?;
        ctx.sink.write_series(
            "ext_failure_unreachable.dat",
            "fail_frac unreachable_fraction",
            &unreachable,
        )?;
        ctx.sink.write_series("ext_failure_churn.dat", "fail_frac churn_fraction", &churn)?;

        if let Some(schedule) = worst_schedule {
            // Outage layer for the harshest sweep point: red dots while a
            // component is down, overlayable on the Fig. 11 trajectories.
            let mut sat_windows = Vec::new();
            let mut gs_windows = Vec::new();
            for (target, from, until) in schedule.outage_windows() {
                match target {
                    FaultTarget::Satellite(s) => sat_windows.push((s, from, until)),
                    FaultTarget::GroundStation(g) => gs_windows.push((g, from, until)),
                    FaultTarget::Isl(..) => {}
                }
            }
            let packets = outage_czml(&scenario.constellation, &sat_windows, &gs_windows);
            ctx.sink.write_czml("ext_failure_outages.czml", &packets)?;
        }

        println!();
        println!("Takeaway: the +Grid mesh offers alternate paths, so moderate");
        println!("failure rates cost latency (detours) long before they cost");
        println!("connectivity; loss concentrates in the window between a failure");
        println!("and the next forwarding-state update.");
        Ok(())
    }
}

/// Run the ping + paced-UDP workload over `scenario`'s configuration
/// (including any attached fault schedule). Returns the measurements plus
/// `(events, wall_s)` for the sink's simulation record.
fn run_workload(
    scenario: &Scenario,
    src: NodeId,
    dst: NodeId,
    duration: SimDuration,
    ping_interval: SimDuration,
) -> (DegradedRun, u64, f64, EngineReport) {
    let stop_at = SimTime::ZERO + duration;
    // UDP at half the line rate: enough headroom that queueing does not
    // mask fault-induced loss.
    let udp_rate =
        DataRate::from_bps((scenario.sim_config.link_rate.mbps_f64() * 1e6 / 2.0).round() as u64);

    let mut sim = scenario.simulator(vec![src, dst]);
    let ping = sim.add_app(src, PING_PORT, Box::new(PingApp::new(dst, ping_interval, stop_at)));
    sim.add_app(src, UDP_PORT, Box::new(UdpSource::new(dst, 1, udp_rate, 1000, stop_at)));
    let sink = sim.add_app(dst, UDP_PORT, Box::new(UdpSink::new()));

    let t0 = std::time::Instant::now();
    // Run past the stop time so late detoured packets still arrive.
    sim.run_until(stop_at + SimDuration::from_secs(1));
    let wall_s = t0.elapsed().as_secs_f64();

    let ping: &PingApp = sim.app_as(ping).expect("ping app");
    let udp: &UdpSink = sim.app_as(sink).expect("udp sink");
    let rtts = ping.rtts();
    let mean_rtt_ms = if rtts.is_empty() {
        f64::NAN
    } else {
        rtts.iter().map(|(_, rtt)| rtt.secs_f64() * 1e3).sum::<f64>() / rtts.len() as f64
    };
    (
        DegradedRun {
            goodput_mbps: udp.goodput_bps().unwrap_or(0.0) / 1e6,
            mean_rtt_ms,
            ping_loss: ping.loss_fraction(),
            fault_drops: sim.stats.fault_drops,
        },
        sim.stats.events,
        wall_s,
        sim.engine_report(),
    )
}

/// Mean time from a failure to the next forwarding-state boundary, ms —
/// the window during which packets are still steered into the hole.
fn mean_reroute_latency_ms(schedule: &FaultSchedule, step: SimDuration) -> f64 {
    let step_ns = step.nanos().max(1);
    let mut total_ns = 0u64;
    let mut n = 0u64;
    for e in schedule.events() {
        if e.kind != FaultKind::Fail {
            continue;
        }
        let t_ns = e.t.nanos();
        let next_boundary = t_ns.div_ceil(step_ns) * step_ns;
        total_ns += next_boundary - t_ns;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total_ns as f64 / n as f64 / 1e6
    }
}

/// Sample masked forwarding states once per second across the horizon and
/// average unreachable-pair and next-hop-churn fractions over the ground
/// segment.
fn routing_degradation(
    scenario: &Scenario,
    schedule: &FaultSchedule,
    duration: SimDuration,
) -> (f64, f64) {
    let c = &*scenario.constellation;
    let gs_nodes: Vec<NodeId> = (0..c.num_ground_stations()).map(|i| c.gs_node(i)).collect();
    let cadence = SimDuration::from_secs(1);
    let samples = (duration / cadence).max(1);

    let mut prev = None;
    let mut unreach_sum = 0.0;
    let mut churn_sum = 0.0;
    let mut churn_n = 0u64;
    for k in 0..=samples {
        let t = SimTime::ZERO + cadence * k;
        let mask = FaultState::at(schedule, t);
        let state = compute_forwarding_state_masked(c, t, &gs_nodes, Some(&mask));
        unreach_sum += reachability_of(&state, &gs_nodes).unreachable_fraction();
        if let Some(prev) = &prev {
            churn_sum += churn_between(prev, &state, &gs_nodes).churn_fraction();
            churn_n += 1;
        }
        prev = Some(state);
    }
    (unreach_sum / (samples + 1) as f64, churn_sum / churn_n.max(1) as f64)
}
