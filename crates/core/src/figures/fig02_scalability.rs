//! Fig. 2 — simulator scalability: slowdown vs network-wide goodput.
//!
//! Paper setup: Kuiper K1, 100 most populous cities, random-permutation
//! traffic, TCP and UDP, line rates swept from 1 Mbit/s to 10 Gbit/s, on
//! one core. We report the same series; absolute slowdown depends on the
//! host CPU, the shape (slowdown ∝ goodput; TCP ≈ 2× UDP) is the result.

use crate::experiments::scalability::{sweep, Workload};
use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection, ParamValue};
use hypatia_util::{DataRate, SimDuration};

/// Fig. 2 as a registered experiment.
pub struct Fig02;

impl Experiment for Fig02 {
    fn name(&self) -> &'static str {
        "fig02_scalability"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Fig. 2")
    }

    fn title(&self) -> &'static str {
        "Scalability: slowdown vs goodput (TCP and UDP)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        let mut spec = ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(if full { 100 } else { 30 }),
            pairs: PairSelection::Permutation,
            duration: SimDuration::from_secs(1),
            seed: 2020,
            ..ExperimentSpec::default()
        };
        let rates = if full {
            vec![1.0, 10.0, 25.0, 100.0, 250.0, 1000.0, 10000.0]
        } else {
            vec![1.0, 10.0, 25.0]
        };
        spec.params.insert("line_rates_mbps".to_string(), ParamValue::List(rates));
        spec
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let rates: Vec<DataRate> = ctx
            .spec
            .list("line_rates_mbps")
            .ok_or_else(|| {
                RunError::BadSpec("fig02_scalability needs a line_rates_mbps list".into())
            })?
            .iter()
            .map(|&m| DataRate::from_bps((m * 1e6).round() as u64))
            .collect();
        let duration = ctx.spec.duration;
        let seed = ctx.spec.seed;
        let scenario = ctx.scenario();

        println!(
            "{:<9} {:>12} {:>16} {:>14} {:>14}",
            "workload", "line rate", "goodput (Gbps)", "slowdown (x)", "events"
        );
        for workload in [Workload::Udp, Workload::Tcp] {
            let points = sweep(&scenario, workload, &rates, duration, seed);
            let series: Vec<(f64, f64)> =
                points.iter().map(|p| (p.goodput_gbps, p.slowdown)).collect();
            for p in &points {
                println!(
                    "{:<9} {:>12} {:>16.4} {:>14.1} {:>14}",
                    p.workload.name(),
                    format!("{}", p.line_rate),
                    p.goodput_gbps,
                    p.slowdown,
                    p.events
                );
            }
            ctx.sink.write_series(
                &format!("fig02_slowdown_{}.dat", workload.name().to_lowercase()),
                "goodput_gbps slowdown",
                &series,
            )?;
            // The paper's key observation: slowdown grows with goodput.
            if points.len() >= 2 {
                let first = &points[0];
                let last = &points[points.len() - 1];
                println!(
                    "  -> {}: goodput x{:.1} => slowdown x{:.1}",
                    workload.name(),
                    last.goodput_gbps / first.goodput_gbps,
                    last.slowdown / first.slowdown
                );
            }
        }
        Ok(())
    }
}
