//! Fig. 2 — simulator scalability: slowdown vs network-wide goodput.
//!
//! Paper setup: Kuiper K1, 100 most populous cities, random-permutation
//! traffic, TCP and UDP, line rates swept from 1 Mbit/s to 10 Gbit/s, on
//! one core. We report the same series; absolute slowdown depends on the
//! host CPU, the shape (slowdown ∝ goodput; TCP ≈ 2× UDP) is the result.

use crate::experiments::scalability::{sweep_with, FlowTable, Workload};
use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection, ParamValue};
use hypatia_netsim::QueueKind;
use hypatia_util::{DataRate, SimDuration};

/// Fig. 2 as a registered experiment.
pub struct Fig02;

impl Experiment for Fig02 {
    fn name(&self) -> &'static str {
        "fig02_scalability"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Fig. 2")
    }

    fn title(&self) -> &'static str {
        "Scalability: slowdown vs goodput (TCP and UDP)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        let mut spec = ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(if full { 100 } else { 30 }),
            pairs: PairSelection::Permutation,
            duration: SimDuration::from_secs(1),
            seed: 2020,
            ..ExperimentSpec::default()
        };
        let rates = if full {
            vec![1.0, 10.0, 25.0, 100.0, 250.0, 1000.0, 10000.0]
        } else {
            vec![1.0, 10.0, 25.0]
        };
        spec.params.insert("line_rates_mbps".to_string(), ParamValue::List(rates));
        // Event-scheduler escape hatch (`--set queue=heap` to compare).
        spec.params
            .insert("queue".to_string(), ParamValue::Text(QueueKind::default().name().to_string()));
        // `--set slowdown=false` drops the wall-clock slowdown artifacts,
        // leaving only deterministic outputs (for golden-manifest tests).
        spec.params.insert("slowdown".to_string(), ParamValue::Flag(true));
        // `--set flow_table=arena` switches per-flow apps to arena tables;
        // artifacts are byte-identical either way.
        spec.params
            .insert("flow_table".to_string(), ParamValue::Text(FlowTable::Apps.name().to_string()));
        spec
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        // `--set line_rates_mbps=10` parses as a single number, a comma
        // list as a list; accept both (a bare number is a one-point sweep).
        let rates_mbps: Vec<f64> =
            match (ctx.spec.list("line_rates_mbps"), ctx.spec.num("line_rates_mbps")) {
                (Some(xs), _) => xs.to_vec(),
                (None, Some(x)) => vec![x],
                (None, None) => {
                    return Err(RunError::BadSpec(
                        "fig02_scalability needs a line_rates_mbps list".into(),
                    ))
                }
            };
        let rates: Vec<DataRate> =
            rates_mbps.iter().map(|&m| DataRate::from_bps((m * 1e6).round() as u64)).collect();
        let duration = ctx.spec.duration;
        let seed = ctx.spec.seed;
        let queue = match ctx.spec.text("queue") {
            None => QueueKind::default(),
            Some(s) => QueueKind::parse(s)
                .ok_or_else(|| RunError::BadSpec(format!("unknown queue kind {s:?}")))?,
        };
        let with_slowdown = ctx.spec.flag("slowdown").unwrap_or(true);
        let flow_table = match ctx.spec.text("flow_table") {
            None => FlowTable::Apps,
            Some(s) => FlowTable::parse(s)
                .ok_or_else(|| RunError::BadSpec(format!("unknown flow table {s:?}")))?,
        };
        let mut scenario = ctx.scenario();
        scenario.sim_config.queue = queue;
        let drive_opts = ctx.drive_options();
        let watchdog = ctx.watchdog.clone();

        println!(
            "{:<9} {:>12} {:>16} {:>14} {:>14}   queue={}",
            "workload",
            "line rate",
            "goodput (Gbps)",
            "slowdown (x)",
            "events",
            queue.name()
        );
        for workload in [Workload::Udp, Workload::Tcp] {
            let outcomes = sweep_with(
                &scenario,
                workload,
                flow_table,
                &rates,
                duration,
                seed,
                &drive_opts,
                &watchdog,
            )?;
            let points: Vec<_> = outcomes.iter().map(|(p, _)| p.clone()).collect();
            let series: Vec<(f64, f64)> =
                points.iter().map(|p| (p.goodput_gbps, p.slowdown)).collect();
            for (p, outcome) in &outcomes {
                println!(
                    "{:<9} {:>12} {:>16.4} {:>14.1} {:>14}",
                    p.workload.name(),
                    format!("{}", p.line_rate),
                    p.goodput_gbps,
                    p.slowdown,
                    p.events
                );
                ctx.sink.record_sim(p.events, p.wall_s);
                ctx.sink.record_engine(&p.engine);
                if let Some(last) = &outcome.last_checkpoint {
                    ctx.sink.record_checkpoints(outcome.checkpoints, last);
                }
                if outcome.audit_checks > 0 {
                    ctx.sink.record_audit(outcome.audit_checks, &outcome.violations);
                }
            }
            if with_slowdown {
                ctx.sink.write_series(
                    &format!("fig02_slowdown_{}.dat", workload.name().to_lowercase()),
                    "goodput_gbps slowdown",
                    &series,
                )?;
            }
            // Event counts are pure simulation observables — deterministic
            // for any queue implementation and thread count, unlike the
            // wall-clock slowdown series.
            let events_series: Vec<(f64, f64)> =
                points.iter().map(|p| (p.goodput_gbps, p.events as f64)).collect();
            ctx.sink.write_series(
                &format!("fig02_events_{}.dat", workload.name().to_lowercase()),
                "goodput_gbps events",
                &events_series,
            )?;
            // The paper's key observation: slowdown grows with goodput.
            if points.len() >= 2 {
                let first = &points[0];
                let last = &points[points.len() - 1];
                println!(
                    "  -> {}: goodput x{:.1} => slowdown x{:.1}",
                    workload.name(),
                    last.goodput_gbps / first.goodput_gbps,
                    last.slowdown / first.slowdown
                );
            }
        }
        Ok(())
    }
}
