//! Fig. 12 — the ground observer's view from St. Petersburg over Kuiper K1.
//!
//! Scans for connected and disconnected instants, renders both as ASCII
//! sky panoramas (azimuth × elevation, `#` connectable / `.` below the
//! minimum elevation), and reports the connectivity windows behind the
//! Fig. 3(a) outage.

use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection, ParamValue};
use hypatia_constellation::GroundStation;
use hypatia_util::SimDuration;
use hypatia_viz::ground_view::{connectivity_windows, GroundView};

/// Fig. 12 as a registered experiment.
pub struct Fig12;

impl Experiment for Fig12 {
    fn name(&self) -> &'static str {
        "fig12_ground_view"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Fig. 12")
    }

    fn title(&self) -> &'static str {
        "Ground observer view: St. Petersburg over Kuiper K1"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        let mut spec = ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::Cities(vec![GroundStation::new(
                "Saint Petersburg",
                59.9311,
                30.3609,
            )]),
            pairs: PairSelection::Named(Vec::new()),
            duration: SimDuration::from_secs(if full { 1200 } else { 600 }),
            ..ExperimentSpec::default()
        };
        spec.params.insert("scan_step_s".to_string(), ParamValue::Num(5.0));
        spec
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let stations = ctx.spec.ground.stations();
        let gs = stations.first().cloned().ok_or_else(|| {
            RunError::BadSpec("fig12_ground_view needs one ground station".into())
        })?;
        let c = ctx.spec.constellation.build(vec![gs.clone()]);

        let horizon = ctx.spec.duration;
        let scan_step = SimDuration::from_secs_f64(ctx.spec.num("scan_step_s").unwrap_or(5.0));
        let windows = connectivity_windows(&c, &gs, horizon, scan_step);

        println!("connectivity windows over {:.0} s:", horizon.secs_f64());
        for w in &windows {
            println!(
                "  {:>7.1}s – {:>7.1}s : {}",
                w.from.secs_f64(),
                w.until.secs_f64(),
                if w.connected { "CONNECTED" } else { "no satellite above 30°" }
            );
        }
        let disconnected: f64 =
            windows.iter().filter(|w| !w.connected).map(|w| w.until.since(w.from).secs_f64()).sum();
        println!(
            "total disconnected: {disconnected:.0} s ({:.0}% of horizon)",
            disconnected / horizon.secs_f64() * 100.0
        );

        // Render one connected and one disconnected snapshot, as in the figure.
        let connected_at = windows.iter().find(|w| w.connected).map(|w| w.from);
        let disconnected_at = windows.iter().find(|w| !w.connected).map(|w| w.from);
        for (label, at) in [("connected", connected_at), ("disconnected", disconnected_at)] {
            match at {
                Some(t) => {
                    let view = GroundView::compute(&c, &gs, t);
                    let art = view.render_ascii(100, 16);
                    println!("\n--- {label} snapshot ---\n{art}");
                    ctx.sink.write_text(&format!("fig12_{label}.txt"), &art)?;
                    ctx.sink.write_json(&format!("fig12_{label}.json"), &view.to_json())?;
                }
                None => println!("\n(no {label} instant within the horizon)"),
            }
        }

        println!("Check: St. Petersburg (59.93°N) is intermittently reachable from");
        println!("K1's 51.9°-inclination shell — the Fig. 3(a) outage mechanism.");
        Ok(())
    }
}
