//! Fig. 9 — forwarding-state granularity: what coarser time-steps miss.
//!
//! Expected shape (paper §5.3): 100 ms sees roughly 2× the changes per
//! step of 50 ms and misses changes for a negligible share of pairs
//! (~0.4%); 1000 ms misses one or more changes for a substantial share
//! (~6%).

use crate::experiments::granularity::{run, GranularityConfig};
use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection, ParamValue};
use hypatia_util::SimDuration;
use hypatia_viz::csv::ecdf;

/// Fig. 9 as a registered experiment.
pub struct Fig09;

impl Experiment for Fig09 {
    fn name(&self) -> &'static str {
        "fig09_timestep"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Fig. 9")
    }

    fn title(&self) -> &'static str {
        "Time-step granularity for forwarding updates (Kuiper K1)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        let mut spec = ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(if full { 100 } else { 20 }),
            pairs: PairSelection::MinDistance { km: 500.0 },
            duration: SimDuration::from_secs(if full { 200 } else { 60 }),
            step: SimDuration::from_millis(if full { 50 } else { 250 }),
            ..ExperimentSpec::default()
        };
        spec.params.insert("coarse_multiples".to_string(), ParamValue::List(vec![2.0, 20.0]));
        spec
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let cfg = GranularityConfig {
            duration: ctx.spec.duration,
            fine_step: ctx.spec.step,
            coarse_multiples: ctx
                .spec
                .list("coarse_multiples")
                .unwrap_or(&[2.0, 20.0])
                .iter()
                .map(|&m| m as u64)
                .collect(),
            min_pair_distance_km: match ctx.spec.pairs {
                PairSelection::MinDistance { km } => km,
                _ => 500.0,
            },
            threads: ctx.spec.threads,
            routing: ctx.spec.routing_config(),
        };
        let scenario = ctx.scenario();
        let r = run(&scenario.constellation, &cfg);

        println!("pairs analysed: {}", r.pairs);
        println!(
            "{:>12} {:>16} {:>18} {:>18}",
            "step (ms)", "total changes", "frac miss >=1", "frac miss >=2"
        );
        for s in &r.stats {
            println!(
                "{:>12} {:>16} {:>18.4} {:>18.4}",
                s.step.millis(),
                s.total_changes(),
                s.fraction_missing_at_least(1),
                s.fraction_missing_at_least(2)
            );
            let slug = format!("{}ms", s.step.millis());
            let per_step: Vec<f64> = s.changes_per_step.iter().map(|&c| c as f64).collect();
            ctx.sink.write_series(
                &format!("fig09a_changes_per_step_{slug}.dat"),
                "changes_in_step ecdf",
                &ecdf(&per_step),
            )?;
            let missed: Vec<f64> = s.missed_per_pair.iter().map(|&m| m as f64).collect();
            ctx.sink.write_series(
                &format!("fig09b_missed_per_pair_{slug}.dat"),
                "missed_changes ecdf",
                &ecdf(&missed),
            )?;
        }

        let fine = r.stats[0].total_changes() as f64;
        println!();
        for s in &r.stats[1..] {
            let factor = s.step.nanos() as f64 / r.stats[0].step.nanos() as f64;
            println!(
                "step x{factor:.0}: observed {:.2}x the per-step change count (ideal {factor:.0}x), \
                 missed {:.1}% of fine-grained changes",
                s.total_changes() as f64 / (fine / factor).max(1.0),
                (1.0 - s.total_changes() as f64 / fine.max(1.0)) * 100.0
            );
        }
        println!();
        println!("Paper's conclusion: 100 ms is a good compromise; 1000 ms misses");
        println!("a substantial number of changes for some pairs.");
        Ok(())
    }
}
