//! Fig. 4 — TCP congestion-window evolution with the BDP+Q overlay.
//!
//! NewReno on the paper's three pairs, 10 Mbit/s links, 100-packet queues.
//! The window should oscillate between BDP and BDP+Q; reordering after
//! path shortenings cuts it without loss.

use super::{named_pairs, pair_slug, CANONICAL_PAIRS};
use crate::experiments::tcp_single::run;
use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection};
use hypatia_util::SimDuration;

/// Fig. 4 as a registered experiment.
pub struct Fig04;

impl Experiment for Fig04 {
    fn name(&self) -> &'static str {
        "fig04_cwnd_bdp"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Fig. 4")
    }

    fn title(&self) -> &'static str {
        "TCP (NewReno) cwnd evolution vs BDP+Q (Kuiper K1)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(100),
            pairs: PairSelection::Named(
                CANONICAL_PAIRS.iter().map(|&(s, d, _)| (s.to_string(), d.to_string())).collect(),
            ),
            duration: SimDuration::from_secs(if full { 200 } else { 40 }),
            ..ExperimentSpec::default()
        }
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let duration = ctx.spec.duration;
        let cc = ctx.spec.cc;
        let pairs = named_pairs(&ctx.spec)?;
        let scenario = ctx.scenario();

        println!(
            "{:<36} {:>9} {:>10} {:>9} {:>9} {:>12}",
            "pair", "goodput", "fast rtx", "RTOs", "reorder", "cwnd range"
        );
        for (src, dst) in &pairs {
            let r = run(&scenario, src, dst, cc, duration)?;
            ctx.sink.record_sim(r.events, r.wall_s);
            ctx.sink.record_engine(&r.engine);
            let max_cwnd = r.cwnd_series.iter().map(|&(_, w)| w).fold(0.0, f64::max);
            let min_cwnd = r.cwnd_series.iter().map(|&(_, w)| w).fold(f64::INFINITY, f64::min);
            println!(
                "{:<36} {:>7.2}Mb {:>10} {:>9} {:>9} {:>5.0}-{:.0}pk",
                format!("{src} -> {dst}"),
                r.goodput_mbps(duration),
                r.fast_retransmits,
                r.timeouts,
                r.reordered_arrivals,
                min_cwnd,
                max_cwnd
            );
            let slug = pair_slug(src, dst);
            ctx.sink.write_series(
                &format!("fig04_{slug}_cwnd.dat"),
                "t_s cwnd_pkts",
                &r.cwnd_series,
            )?;
            ctx.sink.write_series(
                &format!("fig04_{slug}_bdpq.dat"),
                "t_s bdp_plus_q_pkts",
                &r.bdp_plus_q_series,
            )?;
        }
        println!();
        println!("Check: cwnd peaks should track the BDP+Q overlay; cuts without");
        println!("RTOs when the path shortens are reordering-induced (paper §4.2).");
        Ok(())
    }
}
