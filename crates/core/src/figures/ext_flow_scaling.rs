//! Extension study — offered-load scaling, 1k → 1M gravity flows.
//!
//! Sweeps the offered flow count under a population-gravity traffic
//! matrix and reports, per point: simulator throughput (events per
//! wall-clock second), network-wide goodput, Jain fairness over per-flow
//! delivered bytes, steady-state flow-table bytes per flow, and — where
//! the platform reports it — peak RSS. The flow-count series is the
//! scaling result the paper's permutation workload (one flow per city,
//! Fig. 2) cannot produce; `scripts/bench_flows.sh` runs each point in
//! its own process so the RSS column is per-point rather than a running
//! maximum.
//!
//! Spec knobs: `--set flows=N` pins a single point (replacing the
//! `flow_counts` list), `--set trace_sample_every=K` keeps packet
//! tracing affordable by recording only every K-th flow (a manifest
//! warning flags the partial trace), and `--set flow_rate_kbps=R` paces
//! each flow.

use crate::experiments::flow_scaling::run_flow_point;
use crate::experiments::scalability::FlowTable;
use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, ParamValue};
use hypatia_util::{DataRate, SimDuration};

/// The flow-count scaling sweep as a registered experiment.
pub struct ExtFlowScaling;

impl Experiment for ExtFlowScaling {
    fn name(&self) -> &'static str {
        "ext_flow_scaling"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Extension")
    }

    fn title(&self) -> &'static str {
        "Traffic scaling: gravity matrix, 1k to 1M flows (Kuiper K1)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        let mut spec = ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(if full { 100 } else { 20 }),
            duration: SimDuration::from_secs(if full { 2 } else { 1 }),
            seed: 2020,
            ..ExperimentSpec::default()
        };
        spec.params.insert(
            "flow_counts".to_string(),
            ParamValue::List(if full {
                vec![1_000.0, 10_000.0, 100_000.0, 1_000_000.0]
            } else {
                vec![1_000.0, 4_000.0, 10_000.0]
            }),
        );
        // Per-flow pacing: 16 kbps keeps a million flows within one
        // machine's event budget while every flow still sends.
        spec.params.insert("flow_rate_kbps".to_string(), ParamValue::Num(16.0));
        // `--set flow_table=apps` switches to one boxed application per
        // flow (the seed layout); artifacts are byte-identical either
        // way, but the apps layout caps at 20k flows per node.
        spec.params.insert(
            "flow_table".to_string(),
            ParamValue::Text(FlowTable::Arena.name().to_string()),
        );
        // `--set perf_series=false` drops the wall-clock artifacts
        // (events/sec, peak RSS), leaving only deterministic outputs —
        // the determinism gate in scripts/check.sh relies on this.
        spec.params.insert("perf_series".to_string(), ParamValue::Flag(true));
        spec
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        // `--set flows=N` pins a single sweep point; otherwise the
        // `flow_counts` list drives the sweep (a bare number is accepted).
        let counts: Vec<u64> = match ctx.spec.flows {
            Some(n) => vec![n],
            None => match (ctx.spec.list("flow_counts"), ctx.spec.num("flow_counts")) {
                (Some(v), _) => v.iter().map(|&x| x.round() as u64).collect(),
                (None, Some(x)) => vec![x.round() as u64],
                (None, None) => vec![1_000, 4_000, 10_000],
            },
        };
        if let Some(&bad) = counts.iter().find(|&&n| n == 0) {
            return Err(RunError::BadSpec(format!("flow_counts must be positive, got {bad}")));
        }
        let rate_kbps = ctx.spec.num("flow_rate_kbps").unwrap_or(16.0);
        if !rate_kbps.is_finite() || rate_kbps <= 0.0 {
            return Err(RunError::BadSpec(format!(
                "flow_rate_kbps must be positive, got {rate_kbps}"
            )));
        }
        let per_flow_rate = DataRate::from_bps((rate_kbps * 1e3).round() as u64);
        let flow_table = match ctx.spec.text("flow_table") {
            None => FlowTable::Arena,
            Some(s) => FlowTable::parse(s)
                .ok_or_else(|| RunError::BadSpec(format!("unknown flow table {s:?}")))?,
        };
        let with_perf_series = ctx.spec.flag("perf_series").unwrap_or(true);
        let duration = ctx.spec.duration;
        let seed = ctx.spec.seed;
        if ctx.spec.trace_sample_every > 1 {
            ctx.sink.warn(format!(
                "trace sampling active (1 in {} flows): packet traces are partial",
                ctx.spec.trace_sample_every
            ));
        }
        let scenario = ctx.scenario();

        println!(
            "{:>10} {:>14} {:>16} {:>8} {:>14} {:>12}",
            "flows", "events/sec", "goodput (Gbps)", "jain", "bytes/flow", "peak RSS"
        );
        let mut events_per_sec = Vec::new();
        let mut goodput = Vec::new();
        let mut jain = Vec::new();
        let mut bytes_per_flow = Vec::new();
        let mut peak_rss = Vec::new();
        for &flows in &counts {
            let p = run_flow_point(&scenario, flows, flow_table, per_flow_rate, duration, seed);
            println!(
                "{:>10} {:>14.0} {:>16.6} {:>8.4} {:>14.1} {:>12}",
                p.flows,
                p.events_per_sec,
                p.goodput_gbps,
                p.jain,
                p.bytes_per_flow,
                p.peak_rss_bytes.map_or_else(|| "-".to_string(), |b| format!("{} MB", b >> 20)),
            );
            ctx.sink.record_sim(p.events, p.wall_s);
            ctx.sink.record_engine(&p.engine);
            let x = p.flows as f64;
            events_per_sec.push((x, p.events_per_sec));
            goodput.push((x, p.goodput_gbps));
            jain.push((x, p.jain));
            bytes_per_flow.push((x, p.bytes_per_flow));
            if let Some(b) = p.peak_rss_bytes {
                peak_rss.push((x, b as f64 / (1 << 20) as f64));
            }
        }

        if with_perf_series {
            ctx.sink.write_series(
                "ext_flow_scaling_events_per_sec.dat",
                "flows events_per_sec",
                &events_per_sec,
            )?;
            if !peak_rss.is_empty() {
                // In-process running maximum; per-point numbers come from
                // `bench_flows`, which forks one process per point.
                ctx.sink.write_series(
                    "ext_flow_scaling_peak_rss_mb.dat",
                    "flows peak_rss_mb",
                    &peak_rss,
                )?;
            }
        }
        ctx.sink.write_series("ext_flow_scaling_goodput.dat", "flows goodput_gbps", &goodput)?;
        ctx.sink.write_series("ext_flow_scaling_jain.dat", "flows jain_index", &jain)?;
        ctx.sink.write_series(
            "ext_flow_scaling_bytes_per_flow.dat",
            "flows bytes_per_flow",
            &bytes_per_flow,
        )?;

        println!();
        println!("Takeaway: arena flow tables hold endpoint state near 32 B/flow,");
        println!("so the event loop — not memory — is what a million flows stress;");
        println!("gravity skew concentrates load on big metros and drags Jain");
        println!("fairness down as the flow count grows.");
        Ok(())
    }
}
