//! The paper's figures and extension studies as registered experiments.
//!
//! Each submodule implements one [`crate::runner::Experiment`]:
//! it declares its default [`crate::spec::ExperimentSpec`]
//! at reduced and paper ("full") scale, and executes against a
//! [`crate::runner::RunContext`] — writing every artifact
//! through the context's sink so the run ends with a complete manifest.
//! The bench binaries are thin shims over this registry; a spec file plus
//! `run_experiment` reproduces any of them.

pub mod ext_bbr_study;
pub mod ext_failure_resilience;
pub mod ext_flow_scaling;
pub mod ext_hybrid_mode;
pub mod ext_multipath_diversity;
pub mod ext_multipath_te;
pub mod fig02_scalability;
pub mod fig03_rtt_fluctuations;
pub mod fig04_cwnd_bdp;
pub mod fig05_rates_rtt;
pub mod fig06_rtt_stretch_ecdf;
pub mod fig07_rtt_cdfs;
pub mod fig08_path_hop_cdfs;
pub mod fig09_timestep;
pub mod fig10_unused_bandwidth;
pub mod fig11_constellation_czml;
pub mod fig12_ground_view;
pub mod fig13_path_viz;
pub mod fig14_15_utilization;
pub mod fig16_19_bent_pipe;
pub mod table1;

use crate::experiments::pair_sweep::{self, PairStats, PairSweepConfig};
use crate::runner::{Experiment, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection};

/// Every built-in experiment, in the paper's order.
pub fn builtin_experiments() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(table1::Table1),
        Box::new(fig02_scalability::Fig02),
        Box::new(fig03_rtt_fluctuations::Fig03),
        Box::new(fig04_cwnd_bdp::Fig04),
        Box::new(fig05_rates_rtt::Fig05),
        Box::new(fig06_rtt_stretch_ecdf::Fig06),
        Box::new(fig07_rtt_cdfs::Fig07),
        Box::new(fig08_path_hop_cdfs::Fig08),
        Box::new(fig09_timestep::Fig09),
        Box::new(fig10_unused_bandwidth::Fig10),
        Box::new(fig11_constellation_czml::Fig11),
        Box::new(fig12_ground_view::Fig12),
        Box::new(fig13_path_viz::Fig13),
        Box::new(fig14_15_utilization::Fig14_15),
        Box::new(fig16_19_bent_pipe::Fig16_19),
        Box::new(ext_bbr_study::ExtBbrStudy),
        Box::new(ext_multipath_diversity::ExtMultipathDiversity),
        Box::new(ext_multipath_te::ExtMultipathTe),
        Box::new(ext_failure_resilience::ExtFailureResilience),
        Box::new(ext_flow_scaling::ExtFlowScaling),
        Box::new(ext_hybrid_mode::ExtHybridMode),
    ]
}

/// The paper's three canonical Fig. 3/4 pairs, with their historic file
/// slugs.
pub(crate) const CANONICAL_PAIRS: [(&str, &str, &str); 3] = [
    ("Rio de Janeiro", "Saint Petersburg", "rio_stpetersburg"),
    ("Manila", "Dalian", "manila_dalian"),
    ("Istanbul", "Nairobi", "istanbul_nairobi"),
];

/// File-name slug for a city pair: the historic names for the paper's
/// canonical pairs, a mechanical lowercase join otherwise.
pub(crate) fn pair_slug(src: &str, dst: &str) -> String {
    for (s, d, slug) in CANONICAL_PAIRS {
        if s == src && d == dst {
            return slug.to_string();
        }
    }
    format!("{}_{}", city_slug(src), city_slug(dst))
}

fn city_slug(name: &str) -> String {
    name.to_lowercase().replace(' ', "")
}

/// The named pairs of a spec, or a BadSpec error naming the experiment.
pub(crate) fn named_pairs(spec: &ExperimentSpec) -> Result<Vec<(String, String)>, RunError> {
    match spec.pairs.named() {
        Some(pairs) if !pairs.is_empty() => Ok(pairs.to_vec()),
        _ => Err(RunError::BadSpec(format!(
            "{} needs named pairs (e.g. --set \"pairs=Paris:Moscow\")",
            spec.experiment
        ))),
    }
}

/// The first named pair of a spec.
pub(crate) fn first_pair(spec: &ExperimentSpec) -> Result<(String, String), RunError> {
    Ok(named_pairs(spec)?.swap_remove(0))
}

/// The three-constellation pair sweep shared by Figs. 6, 7 and 8, driven
/// by one spec: ground segment, duration, step, minimum pair distance and
/// thread count all come from it. Returns `(constellation name, per-pair
/// statistics)` for Telesat T1, Kuiper K1 and Starlink S1 — the paper's
/// comparison set.
pub fn three_constellation_sweep(spec: &ExperimentSpec) -> Vec<(&'static str, Vec<PairStats>)> {
    let gses = spec.ground.stations();
    let cities = gses.len();
    let cfg = PairSweepConfig {
        duration: spec.duration,
        step: spec.step,
        min_pair_distance_km: match spec.pairs {
            PairSelection::MinDistance { km } => km,
            _ => 500.0,
        },
        threads: spec.threads,
        routing: spec.routing_config(),
    };

    let choices = [
        ("Telesat T1", ConstellationChoice::TelesatT1),
        ("Kuiper K1", ConstellationChoice::KuiperK1),
        ("Starlink S1", ConstellationChoice::StarlinkS1),
    ];
    choices
        .into_iter()
        .map(|(name, choice)| {
            eprintln!("  sweeping {name} ({cities} cities)...");
            let c = choice.build(gses.clone());
            (name, pair_sweep::run(&c, &cfg))
        })
        .collect()
}

/// The shared spec skeleton of the three-constellation sweep figures.
pub(crate) fn sweep_spec(experiment: &str, full: bool) -> ExperimentSpec {
    ExperimentSpec {
        experiment: experiment.to_string(),
        constellation: ConstellationChoice::KuiperK1,
        ground: GroundSegment::TopCities(if full { 100 } else { 40 }),
        pairs: PairSelection::MinDistance { km: 500.0 },
        duration: hypatia_util::SimDuration::from_secs(200),
        step: hypatia_util::SimDuration::from_millis(if full { 100 } else { 500 }),
        ..ExperimentSpec::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_slugs_are_stable() {
        assert_eq!(pair_slug("Rio de Janeiro", "Saint Petersburg"), "rio_stpetersburg");
        assert_eq!(pair_slug("Manila", "Dalian"), "manila_dalian");
        assert_eq!(pair_slug("Paris", "Sao Paulo"), "paris_saopaulo");
    }

    #[test]
    fn named_pairs_rejects_empty() {
        let mut spec = ExperimentSpec { experiment: "x".into(), ..ExperimentSpec::default() };
        assert!(named_pairs(&spec).is_err());
        spec.pairs = PairSelection::Named(vec![("A".into(), "B".into())]);
        assert_eq!(first_pair(&spec).unwrap(), ("A".to_string(), "B".to_string()));
    }
}
