//! Extension study — BBR on LEO paths (paper §4.2: "once a mature
//! implementation of BBR is available, evaluating its behavior on LEO
//! networks would be of high interest").
//!
//! Repeats the Fig. 5 setting (a path whose baseline RTT shifts) with all
//! four controllers. The hypothesis, which the run quantifies: BBR's
//! windowed RTprop expires and re-learns a lengthened path, so its
//! late-run throughput stays high where Vegas's collapses.

use super::first_pair;
use crate::experiments::tcp_single::{run, CcKind};
use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection};
use hypatia_util::SimDuration;

/// The BBR extension study as a registered experiment.
pub struct ExtBbrStudy;

impl Experiment for ExtBbrStudy {
    fn name(&self) -> &'static str {
        "ext_bbr_study"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Extension")
    }

    fn title(&self) -> &'static str {
        "BBR vs NewReno/Vegas/CUBIC over LEO dynamics"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(100),
            pairs: PairSelection::Named(vec![(
                "Rio de Janeiro".to_string(),
                "Saint Petersburg".to_string(),
            )]),
            duration: SimDuration::from_secs(if full { 200 } else { 60 }),
            ..ExperimentSpec::default()
        }
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let duration = ctx.spec.duration;
        let (src, dst) = first_pair(&ctx.spec)?;
        let scenario = ctx.scenario();
        println!("flow: {src} -> {dst}, {:.0} s\n", duration.secs_f64());

        println!(
            "{:<9} {:>10} {:>16} {:>9} {:>9}",
            "CC", "goodput", "2nd-half tput", "fast rtx", "RTOs"
        );
        let half = duration.secs_f64() / 2.0;
        let mut late = Vec::new();
        for cc in [CcKind::NewReno, CcKind::Vegas, CcKind::Cubic, CcKind::Bbr] {
            let r = run(&scenario, &src, &dst, cc, duration)?;
            ctx.sink.record_sim(r.events, r.wall_s);
            ctx.sink.record_engine(&r.engine);
            let late_pts: Vec<f64> =
                r.throughput_series.iter().filter(|&&(t, _)| t >= half).map(|&(_, m)| m).collect();
            let late_mean = late_pts.iter().sum::<f64>() / late_pts.len().max(1) as f64;
            println!(
                "{:<9} {:>7.2}Mb {:>13.2}Mb {:>9} {:>9}",
                cc.name(),
                r.goodput_mbps(duration),
                late_mean,
                r.fast_retransmits,
                r.timeouts
            );
            let slug = cc.name().to_lowercase();
            ctx.sink.write_series(
                &format!("ext_bbr_study_{slug}_throughput.dat"),
                "t_s mbps",
                &r.throughput_series,
            )?;
            late.push((cc, late_mean));
        }

        let vegas = late.iter().find(|(c, _)| *c == CcKind::Vegas).expect("ran Vegas").1;
        let bbr = late.iter().find(|(c, _)| *c == CcKind::Bbr).expect("ran BBR").1;
        println!();
        println!(
            "late-run throughput — BBR {bbr:.2} vs Vegas {vegas:.2} Mbps: BBR sustains {}",
            if bbr > vegas { "HOLDS" } else { "DIFFERS (check scale/params)" }
        );
        println!("Mechanism: BBR's RTprop is a 10 s windowed minimum, so a path-RTT");
        println!("increase ages out; Vegas's baseRTT is a lifetime minimum and the");
        println!("inflated RTT reads as permanent congestion (paper Fig. 5).");
        Ok(())
    }
}
