//! Fig. 8 — path-structure evolution: (a) number of path changes per pair,
//! (b) hop-count difference, (c) hop-count ratio, as ECDFs per
//! constellation.
//!
//! Expected shape: Telesat's paths change less than Kuiper's/Starlink's
//! (median 2 vs 4 changes over 200 s in the paper); Starlink shows the
//! largest hop-count spreads (>1/3 of pairs with ≥2 extra hops).

use super::{sweep_spec, three_constellation_sweep};
use crate::analysis::percentile;
use crate::runner::{Experiment, RunContext, RunError};
use crate::spec::ExperimentSpec;
use hypatia_viz::csv::ecdf;

/// Fig. 8 as a registered experiment.
pub struct Fig08;

impl Experiment for Fig08 {
    fn name(&self) -> &'static str {
        "fig08_path_hop_cdfs"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Fig. 8")
    }

    fn title(&self) -> &'static str {
        "Path structure changes (ECDFs across pairs)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        sweep_spec(self.name(), full)
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let sweeps = three_constellation_sweep(&ctx.spec);

        println!(
            "{:<14} {:>12} {:>14} {:>14}",
            "constellation", "med changes", "med hop delta", "med hop ratio"
        );
        for (name, stats) in &sweeps {
            let changes: Vec<f64> = stats.iter().map(|s| s.path_changes as f64).collect();
            let hop_deltas: Vec<f64> = stats.iter().map(|s| s.hop_delta() as f64).collect();
            let hop_ratios: Vec<f64> =
                stats.iter().map(|s| s.hop_ratio()).filter(|v| v.is_finite()).collect();

            let slug = name.to_lowercase().replace(' ', "_");
            ctx.sink.write_series(
                &format!("fig08a_path_changes_{slug}.dat"),
                "path_changes ecdf",
                &ecdf(&changes),
            )?;
            ctx.sink.write_series(
                &format!("fig08b_hop_delta_{slug}.dat"),
                "max_minus_min_hops ecdf",
                &ecdf(&hop_deltas),
            )?;
            ctx.sink.write_series(
                &format!("fig08c_hop_ratio_{slug}.dat"),
                "max_over_min_hops ecdf",
                &ecdf(&hop_ratios),
            )?;

            println!(
                "{:<14} {:>12.1} {:>14.1} {:>14.3}",
                name,
                percentile(&changes, 50.0).unwrap_or(f64::NAN),
                percentile(&hop_deltas, 50.0).unwrap_or(f64::NAN),
                percentile(&hop_ratios, 50.0).unwrap_or(f64::NAN),
            );
        }

        // The headline comparison: Telesat changes less than the dense shells.
        let med_changes: Vec<f64> = sweeps
            .iter()
            .map(|(_, stats)| {
                let v: Vec<f64> = stats.iter().map(|s| s.path_changes as f64).collect();
                percentile(&v, 50.0).unwrap_or(f64::NAN)
            })
            .collect();
        println!();
        println!(
            "median path changes — Telesat {:.0}, Kuiper {:.0}, Starlink {:.0}: Telesat-lowest {}",
            med_changes[0],
            med_changes[1],
            med_changes[2],
            if med_changes[0] <= med_changes[1] && med_changes[0] <= med_changes[2] {
                "HOLDS"
            } else {
                "DIFFERS (check scale/params)"
            }
        );
        Ok(())
    }
}
