//! Table 1 — shell configurations for Starlink phase 1, Kuiper, Telesat.
//!
//! Regenerates the paper's table from the encoded FCC/ITU filing values
//! and verifies the per-constellation satellite totals.

use crate::runner::{Experiment, RunContext, RunError};
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection};
use hypatia_constellation::presets;

/// Table 1 as a registered experiment (console output only).
pub struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1_constellations"
    }

    fn title(&self) -> &'static str {
        "Shell configurations (from FCC/ITU filings)"
    }

    fn spec(&self, _full: bool) -> ExperimentSpec {
        ExperimentSpec {
            experiment: self.name().to_string(),
            ground: GroundSegment::Cities(Vec::new()),
            pairs: PairSelection::Named(Vec::new()),
            ..ExperimentSpec::default()
        }
    }

    fn run(&self, _ctx: &mut RunContext) -> Result<(), RunError> {
        println!("Table 1: Shell configurations (from FCC/ITU filings)");
        println!();
        println!(
            "{:<10} {:<6} {:>8} {:>8} {:>12} {:>8}",
            "Const.", "shell", "h (km)", "orbits", "sats/orbit", "incl."
        );
        let groups = [
            ("Starlink", presets::starlink_shells()),
            ("Kuiper", presets::kuiper_shells()),
            ("Telesat", presets::telesat_shells()),
        ];
        for (name, shells) in &groups {
            let mut total = 0;
            for s in shells {
                println!(
                    "{:<10} {:<6} {:>8} {:>8} {:>12} {:>7}°",
                    name, s.name, s.altitude_km, s.num_orbits, s.sats_per_orbit, s.inclination_deg
                );
                total += s.num_satellites();
            }
            println!("{:<10} total satellites: {total}", name);
            println!();
        }
        println!(
            "Minimum elevation angles: Starlink {}°, Kuiper {}°, Telesat {}°",
            presets::STARLINK_MIN_ELEVATION_DEG,
            presets::KUIPER_MIN_ELEVATION_DEG,
            presets::TELESAT_MIN_ELEVATION_DEG
        );
        Ok(())
    }
}
