//! Fig. 7 — per-pair RTT variation ECDFs: (a) max RTT, (b) max−min,
//! (c) max/min, across the three constellations.
//!
//! Expected shape: Starlink S1 sees the largest variations (~10 ms median
//! delta; >30% of pairs with max ≥ 1.2× min); Telesat the smallest.

use super::{sweep_spec, three_constellation_sweep};
use crate::analysis::{fraction_where, percentile};
use crate::runner::{Experiment, RunContext, RunError};
use crate::spec::ExperimentSpec;
use hypatia_viz::csv::ecdf;

/// Fig. 7 as a registered experiment.
pub struct Fig07;

impl Experiment for Fig07 {
    fn name(&self) -> &'static str {
        "fig07_rtt_cdfs"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Fig. 7")
    }

    fn title(&self) -> &'static str {
        "RTTs and variations therein (ECDFs across pairs)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        sweep_spec(self.name(), full)
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let sweeps = three_constellation_sweep(&ctx.spec);

        println!(
            "{:<14} {:>12} {:>14} {:>14} {:>20}",
            "constellation", "med max(ms)", "med delta(ms)", "med ratio", "frac ratio>1.2"
        );
        for (name, stats) in &sweeps {
            let maxes: Vec<f64> =
                stats.iter().map(|s| s.max_rtt_ms).filter(|v| v.is_finite()).collect();
            let deltas: Vec<f64> =
                stats.iter().map(|s| s.rtt_delta_ms()).filter(|v| v.is_finite()).collect();
            let ratios: Vec<f64> =
                stats.iter().map(|s| s.rtt_ratio()).filter(|v| v.is_finite()).collect();

            let slug = name.to_lowercase().replace(' ', "_");
            ctx.sink.write_series(
                &format!("fig07a_max_rtt_{slug}.dat"),
                "max_rtt_ms ecdf",
                &ecdf(&maxes),
            )?;
            ctx.sink.write_series(
                &format!("fig07b_rtt_delta_{slug}.dat"),
                "max_minus_min_ms ecdf",
                &ecdf(&deltas),
            )?;
            ctx.sink.write_series(
                &format!("fig07c_rtt_ratio_{slug}.dat"),
                "max_over_min ecdf",
                &ecdf(&ratios),
            )?;

            println!(
                "{:<14} {:>12.1} {:>14.1} {:>14.3} {:>20.2}",
                name,
                percentile(&maxes, 50.0).unwrap_or(f64::NAN),
                percentile(&deltas, 50.0).unwrap_or(f64::NAN),
                percentile(&ratios, 50.0).unwrap_or(f64::NAN),
                fraction_where(&ratios, |v| v >= 1.2),
            );
        }

        println!();
        println!("Paper's qualitative checks:");
        println!("  * Starlink S1 shows both higher and more variable RTTs than Kuiper K1;");
        println!("  * Telesat T1's variations are smallest (low min elevation keeps");
        println!("    the same satellites reachable longer);");
        println!("  * for Starlink, >30% of pairs see max RTT at least 1.2x the min.");
        Ok(())
    }
}
