//! Extension study — path diversity for multi-path routing / TE.
//!
//! The paper's §5.4 takeaway: traffic could be shifted away from links
//! about to become bottlenecks, and §6 points at "substantial value in
//! using non-shortest path and multi-path routing" across hot regions.
//! This study quantifies the raw material for that: how close are the
//! K shortest alternates to the shortest path, and how disjoint are they?

use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection, ParamValue};
use hypatia_routing::graph::DelayGraph;
use hypatia_routing::ksp::k_shortest_paths;
use hypatia_util::SimTime;
use hypatia_viz::csv::ecdf;

/// The K-shortest-path diversity study as a registered experiment.
pub struct ExtMultipathDiversity;

impl Experiment for ExtMultipathDiversity {
    fn name(&self) -> &'static str {
        "ext_multipath_diversity"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Extension")
    }

    fn title(&self) -> &'static str {
        "K-shortest-path diversity on Kuiper K1"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        let (cities, k, instants) = if full { (40, 8.0, 5.0) } else { (15, 4.0, 2.0) };
        let mut spec = ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(cities),
            pairs: PairSelection::MinDistance { km: 2000.0 },
            ..ExperimentSpec::default()
        };
        spec.params.insert("k".to_string(), ParamValue::Num(k));
        spec.params.insert("instants".to_string(), ParamValue::Num(instants));
        spec
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let k = ctx.spec.num("k").unwrap_or(4.0) as usize;
        let instants = ctx.spec.num("instants").unwrap_or(2.0) as u64;
        let min_km = match ctx.spec.pairs {
            PairSelection::MinDistance { km } => km,
            _ => 2000.0,
        };
        let scenario = ctx.scenario();
        let c = &*scenario.constellation;
        let cities = c.num_ground_stations();

        let mut stretch_2nd = Vec::new(); // delay(2nd)/delay(1st)
        let mut stretch_kth = Vec::new(); // delay(kth)/delay(1st)
        let mut disjointness = Vec::new(); // fraction of 2nd path's satellites not on 1st

        for inst in 0..instants {
            let t = SimTime::from_secs(inst * 40);
            let graph = DelayGraph::snapshot(c, t);
            for i in 0..cities {
                for j in (i + 1)..cities {
                    if c.ground_stations[i].distance_km(&c.ground_stations[j]) < min_km {
                        continue; // long routes are where TE matters
                    }
                    let paths = k_shortest_paths(&graph, c.gs_node(i).0, c.gs_node(j).0, k);
                    if paths.len() < 2 {
                        continue;
                    }
                    let d0 = paths[0].delay_ns as f64;
                    stretch_2nd.push(paths[1].delay_ns as f64 / d0);
                    stretch_kth.push(paths.last().expect("non-empty").delay_ns as f64 / d0);
                    let first: std::collections::HashSet<u32> =
                        paths[0].nodes.iter().copied().collect();
                    let alt = &paths[1].nodes;
                    let interior = &alt[1..alt.len() - 1];
                    let fresh = interior.iter().filter(|n| !first.contains(n)).count() as f64;
                    disjointness.push(fresh / interior.len().max(1) as f64);
                }
            }
        }

        let med = |v: &[f64]| crate::analysis::percentile(v, 50.0).unwrap_or(f64::NAN);
        println!("pairs × instants analysed: {}", stretch_2nd.len());
        println!("median delay stretch of 2nd-best path : {:.4}", med(&stretch_2nd));
        println!("median delay stretch of {k}th-best path: {:.4}", med(&stretch_kth));
        println!("median node-disjointness of 2nd path  : {:.2}", med(&disjointness));
        ctx.sink.write_series(
            "ext_multipath_stretch2_ecdf.dat",
            "stretch ecdf",
            &ecdf(&stretch_2nd),
        )?;
        ctx.sink.write_series(
            "ext_multipath_disjoint_ecdf.dat",
            "fraction ecdf",
            &ecdf(&disjointness),
        )?;

        println!();
        if med(&stretch_2nd) < 1.05 {
            println!("Alternate paths cost <5% extra delay in the median: the +Grid");
            println!("mesh offers near-equal-cost multipath — the TE headroom the");
            println!("paper's Fig. 15 hotspots call for.");
        } else {
            println!("Alternate paths carry a noticeable delay penalty at this scale.");
        }
        Ok(())
    }
}
