//! Extension study — does loop-free multipath actually relieve hotspots?
//!
//! The paper's §5.4/§6 TE takeaway, tested end-to-end: run the same
//! cross-traffic workload (Fig. 10's permutation TCP matrix) with single
//! shortest-path forwarding and with downhill-alternate multipath
//! (stretch 1.2), then compare hotspot utilization and total goodput.

use super::first_pair;
use crate::experiments::cross_traffic::{run, CrossTrafficConfig};
use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection, ParamValue};
use hypatia_util::{DataRate, SimDuration, SimTime};
use hypatia_viz::util_viz::{isl_utilization_map, summarize, top_hotspots};

/// The multipath traffic-engineering study as a registered experiment.
pub struct ExtMultipathTe;

impl Experiment for ExtMultipathTe {
    fn name(&self) -> &'static str {
        "ext_multipath_te"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Extension")
    }

    fn title(&self) -> &'static str {
        "Loop-free multipath vs single-path TE (Kuiper K1)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        let (cities, secs) = if full { (100, 200) } else { (30, 60) };
        let mut spec = ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(cities),
            pairs: PairSelection::Named(vec![("Tokyo".to_string(), "Sao Paulo".to_string())]),
            duration: SimDuration::from_secs(secs),
            line_rate: DataRate::from_mbps(10),
            utilization_bucket: Some(SimDuration::from_secs(1)),
            ..ExperimentSpec::default()
        };
        spec.params.insert("multipath_stretch".to_string(), ParamValue::Num(1.2));
        spec
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let duration = ctx.spec.duration;
        let seed = ctx.spec.seed;
        let stretch = ctx.spec.num("multipath_stretch").unwrap_or(1.2);
        let snapshot_sec = duration.secs_f64() as u64 - 10;
        let observed = first_pair(&ctx.spec)?;
        let scenario = ctx.scenario();

        println!(
            "{:<22} {:>10} {:>12} {:>12} {:>14}",
            "forwarding", "goodput", "mean util", "links >90%", "active links"
        );
        let mut rows = Vec::new();
        for (label, stretch) in
            [("single shortest path", None), ("multipath (1.2x)", Some(stretch))]
        {
            eprintln!("  running {label}...");
            let r = run(
                &scenario,
                &observed.0,
                &observed.1,
                &CrossTrafficConfig { duration, seed, frozen: false, multipath_stretch: stretch },
            )?;
            ctx.sink.record_sim(r.sim.stats.events, r.wall_s);
            ctx.sink.record_engine(&r.sim.engine_report());
            let map = isl_utilization_map(
                &r.sim,
                snapshot_sec as usize,
                SimTime::from_secs(snapshot_sec),
            );
            let s = summarize(&map);
            let hot = map.iter().filter(|l| l.utilization > 0.9).count();
            println!(
                "{:<22} {:>7.1}Mb {:>12.4} {:>12} {:>14}",
                label, r.total_goodput_mbps, s.mean, hot, s.active_links
            );
            let _ = top_hotspots(&map, 1);
            rows.push((label, r.total_goodput_mbps, hot, s.active_links));
        }

        println!();
        let (sp, mp) = (&rows[0], &rows[1]);
        println!(
            "multipath spreads load over {} vs {} links and changes >90%-utilized links {} -> {}",
            mp.3, sp.3, sp.2, mp.2
        );
        println!(
            "goodput: {:.1} -> {:.1} Mbit/s ({})",
            sp.1,
            mp.1,
            if mp.1 >= sp.1 * 0.95 { "no tax" } else { "note: stretch costs some goodput" }
        );
        println!("Takeaway: downhill alternates add loop-free capacity exactly where");
        println!("the paper's Fig. 15 shows shortest-path concentration.");
        Ok(())
    }
}
