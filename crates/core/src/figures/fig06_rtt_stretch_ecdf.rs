//! Fig. 6 — ECDF of max-RTT / geodesic-RTT per pair, three constellations.
//!
//! Expected shape (paper §5.1): >80% of pairs below 2× the geodesic for
//! every constellation; Telesat lowest despite the fewest satellites
//! (its 10° minimum elevation admits many more GSL options); Starlink
//! above Kuiper (22 vs 34 satellites per orbit forces zig-zag paths).

use super::{sweep_spec, three_constellation_sweep};
use crate::analysis::{fraction_where, percentile};
use crate::runner::{Experiment, RunContext, RunError};
use crate::spec::ExperimentSpec;
use hypatia_viz::csv::ecdf;

/// Fig. 6 as a registered experiment.
pub struct Fig06;

impl Experiment for Fig06 {
    fn name(&self) -> &'static str {
        "fig06_rtt_stretch_ecdf"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Fig. 6")
    }

    fn title(&self) -> &'static str {
        "Max RTT over time vs geodesic RTT (ECDF across pairs)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        sweep_spec(self.name(), full)
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let sweeps = three_constellation_sweep(&ctx.spec);

        println!(
            "{:<14} {:>7} {:>12} {:>12} {:>16}",
            "constellation", "pairs", "median (x)", "p90 (x)", "frac below 2x"
        );
        for (name, stats) in &sweeps {
            let stretches: Vec<f64> =
                stats.iter().map(|s| s.rtt_stretch()).filter(|v| v.is_finite()).collect();
            let slug = name.to_lowercase().replace(' ', "_");
            ctx.sink.write_series(
                &format!("fig06_stretch_ecdf_{slug}.dat"),
                "max_rtt_over_geodesic ecdf",
                &ecdf(&stretches),
            )?;
            println!(
                "{:<14} {:>7} {:>12.2} {:>12.2} {:>16.2}",
                name,
                stretches.len(),
                percentile(&stretches, 50.0).unwrap_or(f64::NAN),
                percentile(&stretches, 90.0).unwrap_or(f64::NAN),
                fraction_where(&stretches, |v| v < 2.0)
            );
        }

        println!();
        println!("Paper's qualitative checks:");
        println!("  * every constellation: >80% of pairs below 2x geodesic;");
        println!("  * ordering of medians: Telesat < Kuiper < Starlink.");
        let medians: Vec<f64> = sweeps
            .iter()
            .map(|(_, stats)| {
                let v: Vec<f64> =
                    stats.iter().map(|s| s.rtt_stretch()).filter(|x| x.is_finite()).collect();
                percentile(&v, 50.0).unwrap_or(f64::NAN)
            })
            .collect();
        let ordering_holds = medians[0] <= medians[1] && medians[1] <= medians[2];
        println!(
            "  measured medians: Telesat {:.2}, Kuiper {:.2}, Starlink {:.2} -> ordering {}",
            medians[0],
            medians[1],
            medians[2],
            if ordering_holds { "HOLDS" } else { "DIFFERS (check scale/params)" }
        );
        Ok(())
    }
}
