//! Extension study — packet vs fluid vs hybrid simulation of bulk flows.
//!
//! Runs the same gravity-drawn bulk workload under every [`SimMode`] the
//! spec's `sim_mode` knob names (all three by default) and reports, per
//! flow count and mode: simulator throughput (events per wall-clock
//! second), network-wide goodput (packet payload plus analytically
//! delivered fluid bytes), Jain fairness over merged per-flow bytes, and
//! the fluid solver's re-solve count. The headline artifact is the
//! events-per-second ratio: the hybrid engine processes the same offered
//! load in a small fraction of the packet engine's events while goodput
//! and fairness stay within the discretization tolerance.
//!
//! Spec knobs: `--set sim_mode=packet|fluid|hybrid` pins one mode
//! (default: compare all three), `--set flows=N` pins a single flow
//! count, `--set fluid_threshold_kbps=X` keeps flows with demand below X
//! packet-level, and `--set flow_rate_kbps=R` paces each flow.

use crate::experiments::hybrid::run_hybrid_point;
use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, ParamValue};
use hypatia_netsim::SimMode;
use hypatia_util::{DataRate, SimDuration};

/// The three-mode comparison as a registered experiment.
pub struct ExtHybridMode;

impl Experiment for ExtHybridMode {
    fn name(&self) -> &'static str {
        "ext_hybrid_mode"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Extension")
    }

    fn title(&self) -> &'static str {
        "Hybrid fluid/packet simulation: speedup at matched goodput (Kuiper K1)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        let mut spec = ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(if full { 100 } else { 10 }),
            duration: SimDuration::from_secs(2),
            seed: 2020,
            ..ExperimentSpec::default()
        };
        spec.params.insert(
            "flow_counts".to_string(),
            ParamValue::List(if full { vec![10_000.0, 100_000.0] } else { vec![400.0, 1_000.0] }),
        );
        // Bulk pacing: fast enough that packet mode is event-dominated,
        // slow enough that the reduced-scale run stays unbottlenecked.
        spec.params.insert("flow_rate_kbps".to_string(), ParamValue::Num(256.0));
        // `--set perf_series=false` drops the wall-clock artifacts,
        // leaving only deterministic outputs — the determinism gate in
        // scripts/check.sh relies on this.
        spec.params.insert("perf_series".to_string(), ParamValue::Flag(true));
        spec
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let counts: Vec<u64> = match ctx.spec.flows {
            Some(n) => vec![n],
            None => match ctx.spec.list("flow_counts") {
                Some(v) => v.iter().map(|&x| x.round() as u64).collect(),
                None => vec![400, 1_000],
            },
        };
        if let Some(&bad) = counts.iter().find(|&&n| n == 0) {
            return Err(RunError::BadSpec(format!("flow_counts must be positive, got {bad}")));
        }
        let rate_kbps = ctx.spec.num("flow_rate_kbps").unwrap_or(256.0);
        if !rate_kbps.is_finite() || rate_kbps <= 0.0 {
            return Err(RunError::BadSpec(format!(
                "flow_rate_kbps must be positive, got {rate_kbps}"
            )));
        }
        let per_flow_rate = DataRate::from_bps((rate_kbps * 1e3).round() as u64);
        let threshold = DataRate::from_bps((ctx.spec.fluid_threshold_kbps * 1e3).round() as u64);
        // `--set sim_mode=...` pins one mode; the default spec (packet)
        // means "compare all three".
        let modes: Vec<SimMode> = if ctx.spec.sim_mode == SimMode::Packet {
            vec![SimMode::Packet, SimMode::Fluid, SimMode::Hybrid]
        } else {
            vec![ctx.spec.sim_mode]
        };
        let with_perf_series = ctx.spec.flag("perf_series").unwrap_or(true);
        let duration = ctx.spec.duration;
        let seed = ctx.spec.seed;
        let scenario = ctx.scenario();

        println!(
            "{:>10} {:>8} {:>12} {:>14} {:>16} {:>8} {:>10}",
            "flows", "mode", "events", "events/sec", "goodput (Gbps)", "jain", "resolves"
        );
        for mode in &modes {
            let mut events_per_sec = Vec::new();
            let mut goodput = Vec::new();
            let mut jain = Vec::new();
            for &flows in &counts {
                let p = run_hybrid_point(
                    &scenario,
                    flows,
                    *mode,
                    per_flow_rate,
                    threshold,
                    duration,
                    seed,
                );
                println!(
                    "{:>10} {:>8} {:>12} {:>14.0} {:>16.6} {:>8.4} {:>10}",
                    p.flows,
                    p.mode.name(),
                    p.events,
                    p.events_per_sec,
                    p.goodput_gbps,
                    p.jain,
                    p.fluid_resolves,
                );
                ctx.sink.record_sim(p.events, p.wall_s);
                ctx.sink.record_engine(&p.engine);
                let x = p.flows as f64;
                events_per_sec.push((x, p.events_per_sec));
                goodput.push((x, p.goodput_gbps));
                jain.push((x, p.jain));
            }
            let slug = mode.name();
            if with_perf_series {
                ctx.sink.write_series(
                    &format!("ext_hybrid_{slug}_events_per_sec.dat"),
                    "flows events_per_sec",
                    &events_per_sec,
                )?;
            }
            ctx.sink.write_series(
                &format!("ext_hybrid_{slug}_goodput.dat"),
                "flows goodput_gbps",
                &goodput,
            )?;
            ctx.sink.write_series(
                &format!("ext_hybrid_{slug}_jain.dat"),
                "flows jain_index",
                &jain,
            )?;
        }

        println!();
        println!("Takeaway: modelling bulk flows as max-min fair fluid rates removes");
        println!("their per-packet events entirely; goodput and fairness match the");
        println!("packet reference within the integration tolerance, and in hybrid");
        println!("mode control traffic still crosses real residual-capacity queues.");
        Ok(())
    }
}
