//! Figs. 14 & 15 — link-utilization visualization under cross-traffic.
//!
//! Fig. 14: utilization along one pair's path (Chicago → Zhengzhou) at two
//! instants, showing congestion shifting even with static input traffic.
//! Fig. 15: the constellation-wide utilization map with its hotspots (the
//! paper highlights the trans-Atlantic corridor).

use super::first_pair;
use crate::experiments::cross_traffic::{run, CrossTrafficConfig};
use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection, ParamValue};
use hypatia_routing::forwarding::compute_forwarding_state;
use hypatia_util::{DataRate, SimDuration, SimTime};
use hypatia_viz::util_viz::{
    isl_utilization_map, mean_utilization_in_lon_band, summarize, to_json, top_hotspots,
};

/// Figs. 14/15 as one registered experiment.
#[allow(non_camel_case_types)]
pub struct Fig14_15;

impl Experiment for Fig14_15 {
    fn name(&self) -> &'static str {
        "fig14_15_utilization"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Figs. 14/15")
    }

    fn title(&self) -> &'static str {
        "Congestion shifts and constellation-wide utilization"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        // Chicago–Zhengzhou (the paper's pair) needs the full city set; the
        // reduced run observes a transatlantic pair from the top 30.
        let (cities, secs, snapshots, observed) = if full {
            (100, 200, (10.0, 150.0), ("Chicago", "Zhengzhou"))
        } else {
            (30, 60, (10.0, 50.0), ("New York", "Moscow"))
        };
        let mut spec = ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(cities),
            pairs: PairSelection::Named(vec![(observed.0.to_string(), observed.1.to_string())]),
            duration: SimDuration::from_secs(secs),
            line_rate: DataRate::from_mbps(10),
            utilization_bucket: Some(SimDuration::from_secs(1)),
            ..ExperimentSpec::default()
        };
        spec.params.insert("snapshot_early_s".to_string(), ParamValue::Num(snapshots.0));
        spec.params.insert("snapshot_late_s".to_string(), ParamValue::Num(snapshots.1));
        spec
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let duration = ctx.spec.duration;
        let seed = ctx.spec.seed;
        let snapshots = (
            ctx.spec.num("snapshot_early_s").unwrap_or(10.0) as u64,
            ctx.spec.num("snapshot_late_s").unwrap_or(duration.secs_f64() as u64 as f64 - 10.0)
                as u64,
        );
        let observed = first_pair(&ctx.spec)?;
        let scenario = ctx.scenario();

        println!("observed pair: {} -> {}", observed.0, observed.1);
        let r = run(
            &scenario,
            &observed.0,
            &observed.1,
            &CrossTrafficConfig { duration, seed, frozen: false, multipath_stretch: None },
        )?;
        ctx.sink.record_sim(r.sim.stats.events, r.wall_s);
        ctx.sink.record_engine(&r.sim.engine_report());
        println!("flows: {}, total goodput {:.1} Mbps", r.flows, r.total_goodput_mbps);

        // Fig. 14: the observed path's per-link utilization at two instants.
        let src = scenario.gs_by_name(&observed.0)?;
        let dst = scenario.gs_by_name(&observed.1)?;
        for (label, sec) in [("early", snapshots.0), ("late", snapshots.1)] {
            let t = SimTime::from_secs(sec);
            let state = compute_forwarding_state(&scenario.constellation, t, &[dst]);
            match state.path(src, dst) {
                Some(path) => {
                    print!("t={sec:>4}s path utilization per hop:");
                    let mut utils = Vec::new();
                    for w in path.windows(2) {
                        let node = r.sim.node(w[0]);
                        let dev = node.device_for(w[1]).expect("device");
                        let u = node.devices[dev].utilization(sec as usize).unwrap_or(0.0);
                        utils.push((w[0].0 as f64, u));
                        print!(" {u:.2}");
                    }
                    println!();
                    ctx.sink.write_series(
                        &format!("fig14_path_util_t{sec}.dat"),
                        "hop_node utilization",
                        &utils,
                    )?;
                    let _ = label;
                }
                None => println!("t={sec}s: pair disconnected"),
            }
        }

        // Fig. 15: global map + hotspots at the late snapshot.
        let t = SimTime::from_secs(snapshots.1);
        let map = isl_utilization_map(&r.sim, snapshots.1 as usize, t);
        let summary = summarize(&map);
        println!();
        println!(
            "global ISL utilization: {} directed links, {} active, mean {:.3}, max {:.2}",
            summary.links, summary.active_links, summary.mean, summary.max
        );
        ctx.sink.write_json("fig15_utilization_map.json", &to_json(&map))?;

        println!("top hotspots (sat -> sat @ lat/lon, utilization):");
        for h in top_hotspots(&map, 10) {
            println!(
                "  {:>5} -> {:<5} @ ({:>6.1}, {:>7.1})  {:.2}",
                h.from_sat, h.to_sat, h.from_lat_lon.0, h.from_lat_lon.1, h.utilization
            );
        }

        // The paper's trans-Atlantic observation, quantified: mean utilization
        // over the Atlantic longitude band vs the Pacific one.
        let atlantic = mean_utilization_in_lon_band(&map, -60.0, 0.0).unwrap_or(0.0);
        let pacific = mean_utilization_in_lon_band(&map, 160.0, 180.0).unwrap_or(0.0);
        println!();
        println!(
            "mean utilization — Atlantic band (60W..0): {atlantic:.3}, \
             Pacific band (160E..180): {pacific:.3} -> Atlantic hotter: {}",
            if atlantic > pacific { "HOLDS" } else { "DIFFERS (check scale/params)" }
        );
        Ok(())
    }
}
