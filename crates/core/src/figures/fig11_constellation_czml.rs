//! Fig. 11 — constellation trajectory visualizations.
//!
//! Emits Cesium-loadable CZML for Telesat T1, Kuiper K1 and Starlink S1,
//! and prints coverage summaries (satellites over high latitudes vs the
//! tropics) that capture the figure's visual point: Telesat's 98.98°
//! inclination covers the poles, the others concentrate density at the
//! latitudes where people live.

use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection, ParamValue};
use hypatia_orbit::frames::ecef_to_geodetic;
use hypatia_util::{SimDuration, SimTime};
use hypatia_viz::czml::{constellation_czml, CzmlOptions};

/// Fig. 11 as a registered experiment.
pub struct Fig11;

impl Experiment for Fig11 {
    fn name(&self) -> &'static str {
        "fig11_constellation_czml"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Fig. 11")
    }

    fn title(&self) -> &'static str {
        "Constellation trajectories (CZML export)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        // `duration` is the CZML document horizon and `step` its sample
        // interval; no ground segment or packet simulation is involved.
        let mut spec = ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::Cities(Vec::new()),
            pairs: PairSelection::Named(Vec::new()),
            duration: SimDuration::from_secs(if full { 6000 } else { 600 }),
            step: SimDuration::from_secs(10),
            ..ExperimentSpec::default()
        };
        spec.params.insert("pixel_size".to_string(), ParamValue::Num(3.0));
        spec
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let opts = CzmlOptions {
            sample_interval: ctx.spec.step,
            duration: ctx.spec.duration,
            pixel_size: ctx.spec.num("pixel_size").unwrap_or(3.0) as u32,
        };

        for choice in [
            ConstellationChoice::TelesatT1,
            ConstellationChoice::KuiperK1,
            ConstellationChoice::StarlinkS1,
        ] {
            let c = choice.build(vec![]);
            let czml = constellation_czml(&c, &opts);
            let slug = choice.name().to_lowercase().replace(' ', "_");
            ctx.sink.write_czml(&format!("fig11_{slug}.czml"), &czml)?;

            // Latitude histogram at t = 0 — the figure's visual takeaway.
            let mut polar = 0usize; // |lat| > 60°
            let mut temperate = 0usize; // 30° < |lat| <= 60°
            let mut tropical = 0usize; // |lat| <= 30°
            for i in 0..c.num_satellites() {
                let lat =
                    ecef_to_geodetic(c.sat_position_ecef(i, SimTime::ZERO)).latitude_deg.abs();
                if lat > 60.0 {
                    polar += 1;
                } else if lat > 30.0 {
                    temperate += 1;
                } else {
                    tropical += 1;
                }
            }
            println!(
                "{:<14} {:>5} sats | polar(>60°): {:>4}  temperate(30-60°): {:>4}  tropical(<=30°): {:>4}",
                choice.name(),
                c.num_satellites(),
                polar,
                temperate,
                tropical
            );
        }

        println!();
        println!("Check: only Telesat T1 places satellites above 60° latitude;");
        println!("Kuiper/Starlink concentrate where the population lives.");
        Ok(())
    }
}
