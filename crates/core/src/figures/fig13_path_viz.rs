//! Fig. 13 — shortest-path snapshots over time: Paris → Luanda on
//! Starlink S1.
//!
//! Finds the instants of maximum and minimum RTT across the horizon and
//! exports both path geometries (the paper's 117 ms vs 85 ms snapshots,
//! where the long path needs 9 zig-zag hops to exit the orbit vs 6).

use super::first_pair;
use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection};
use hypatia_routing::forwarding::compute_forwarding_state;
use hypatia_util::time::TimeSteps;
use hypatia_util::{SimDuration, SimTime};
use hypatia_viz::path_viz::PathSnapshot;

/// Fig. 13 as a registered experiment.
pub struct Fig13;

impl Experiment for Fig13 {
    fn name(&self) -> &'static str {
        "fig13_path_viz"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Fig. 13")
    }

    fn title(&self) -> &'static str {
        "Shortest-path changes over time: Paris -> Luanda (Starlink S1)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        let (secs, step_ms) = if full { (200, 100) } else { (120, 1000) };
        ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::StarlinkS1,
            ground: GroundSegment::TopCities(100),
            pairs: PairSelection::Named(vec![("Paris".to_string(), "Luanda".to_string())]),
            duration: SimDuration::from_secs(secs),
            step: SimDuration::from_millis(step_ms),
            ..ExperimentSpec::default()
        }
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let (duration, step) = (ctx.spec.duration, ctx.spec.step);
        let (src_name, dst_name) = first_pair(&ctx.spec)?;
        let scenario = ctx.scenario();
        let c = &*scenario.constellation;
        let src = scenario.gs_by_name(&src_name)?;
        let dst = scenario.gs_by_name(&dst_name)?;
        let slug = super::pair_slug(&src_name, &dst_name);

        let mut best: Option<(SimTime, f64)> = None;
        let mut worst: Option<(SimTime, f64)> = None;
        for t in TimeSteps::new(SimTime::ZERO, SimTime::ZERO + duration, step) {
            let state = compute_forwarding_state(c, t, &[dst]);
            if let Some(d) = state.distance(src, dst) {
                let ms = 2.0 * d.secs_f64() * 1e3;
                if best.is_none() || ms < best.unwrap().1 {
                    best = Some((t, ms));
                }
                if worst.is_none() || ms > worst.unwrap().1 {
                    worst = Some((t, ms));
                }
            }
        }

        for (label, inst) in [("max_rtt", worst), ("min_rtt", best)] {
            let (t, ms) = inst.ok_or_else(|| {
                RunError::BadSpec(format!(
                    "{src_name}–{dst_name} never connected within the horizon"
                ))
            })?;
            let state = compute_forwarding_state(c, t, &[dst]);
            // The instant came from a connected sample, but go through the
            // typed error anyway: a panic here would take down the whole
            // figure sweep.
            let path = state
                .try_path(src, dst)
                .map_err(|e| RunError::BadSpec(format!("{label} instant lost its route: {e}")))?;
            let snap = PathSnapshot::capture(c, &path, t);
            println!(
                "{label}: t={:.1}s RTT {:.1} ms, {} hops, {:.0} km",
                t.secs_f64(),
                ms,
                snap.hops(),
                snap.length_km()
            );
            println!("  {}", snap.describe());
            ctx.sink.write_json(&format!("fig13_{slug}_{label}.json"), &snap.to_json())?;
        }

        let (wt, wms) = worst.expect("checked above");
        let (bt, bms) = best.expect("checked above");
        println!();
        println!(
            "RTT range {bms:.1}–{wms:.1} ms (paper: 85–117 ms) at t={:.0}s/{:.0}s",
            bt.secs_f64(),
            wt.secs_f64()
        );
        println!("Check: north-south paths ride one orbit as long as possible; the");
        println!("slow snapshot needs more zig-zag hops to exit towards the destination.");
        Ok(())
    }
}
