//! Fig. 10 — unused bandwidth under cross-traffic, dynamic vs frozen.
//!
//! A fixed permutation of long-running TCP flows; the Rio de Janeiro →
//! St. Petersburg pair is observed. Expected shape: in the *moving*
//! network, path changes shift the cross-traffic mix and leave substantial
//! capacity unused (paper: >1/3 of capacity unused for 31% of the time,
//! vs 11% if frozen at t = 0).

use super::first_pair;
use crate::experiments::cross_traffic::{run, CrossTrafficConfig};
use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection};
use hypatia_util::{DataRate, SimDuration};

/// Fig. 10 as a registered experiment.
pub struct Fig10;

impl Experiment for Fig10 {
    fn name(&self) -> &'static str {
        "fig10_unused_bandwidth"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Fig. 10")
    }

    fn title(&self) -> &'static str {
        "Unused bandwidth with cross-traffic (Kuiper K1)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        // Reduced: fewer flows and a shorter horizon. Rio–Moscow is a
        // long, churning route that stays connected (unlike St.Petersburg)
        // so the series has no gaps.
        let (cities, secs, pair) = if full {
            (100, 200, ("Rio de Janeiro", "Saint Petersburg"))
        } else {
            (30, 100, ("Rio de Janeiro", "Moscow"))
        };
        ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(cities),
            pairs: PairSelection::Named(vec![(pair.0.to_string(), pair.1.to_string())]),
            duration: SimDuration::from_secs(secs),
            line_rate: DataRate::from_mbps(10),
            utilization_bucket: Some(SimDuration::from_secs(1)),
            ..ExperimentSpec::default()
        }
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let duration = ctx.spec.duration;
        let seed = ctx.spec.seed;
        let pair = first_pair(&ctx.spec)?;
        let scenario = ctx.scenario();

        println!("observed pair: {} -> {}", pair.0, pair.1);
        let mut rows = Vec::new();
        for frozen in [false, true] {
            let label = if frozen { "frozen(t=0)" } else { "dynamic" };
            eprintln!("  running {label} network...");
            let r = run(
                &scenario,
                &pair.0,
                &pair.1,
                &CrossTrafficConfig { duration, seed, frozen, multipath_stretch: None },
            )?;
            ctx.sink.record_sim(r.sim.stats.events, r.wall_s);
            ctx.sink.record_engine(&r.sim.engine_report());
            let frac = r.fraction_time_unused_above(1.0 / 3.0);
            println!(
                "{label:<12}: flows={:<4} total goodput {:>7.1} Mbps, \
                 time with >1/3 capacity unused: {:>5.1}%",
                r.flows,
                r.total_goodput_mbps,
                frac * 100.0
            );
            ctx.sink.write_series(
                &format!("fig10_unused_{}.dat", if frozen { "frozen" } else { "dynamic" }),
                "t_s unused_mbps",
                &r.unused_bandwidth_series,
            )?;
            rows.push((label, frac));
        }

        println!();
        println!(
            "Paper's qualitative check: dynamic ({:.1}%) > frozen ({:.1}%) — {}",
            rows[0].1 * 100.0,
            rows[1].1 * 100.0,
            if rows[0].1 >= rows[1].1 { "HOLDS" } else { "DIFFERS (check scale/params)" }
        );
        Ok(())
    }
}
