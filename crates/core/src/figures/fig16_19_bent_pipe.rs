//! Figs. 16–19 (Appendix A) — ISL vs bent-pipe connectivity,
//! Paris → Moscow over Kuiper K1.
//!
//! Expected shapes: bent-pipe paths alternate satellite/ground-relay and
//! carry ~5 ms more RTT (Fig. 18c); TCP over bent-pipe shows a noisier
//! congestion window (ACKs queue behind data at the shared satellite GSL
//! device) and modestly lower throughput (Fig. 19).

use crate::experiments::bent_pipe::{run, BentPipeConfig};
use crate::runner::{Experiment, RunContext, RunError};
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection, ParamValue};
use hypatia_constellation::GroundStation;
use hypatia_util::SimDuration;

/// Figs. 16–19 as one registered experiment.
#[allow(non_camel_case_types)]
pub struct Fig16_19;

impl Experiment for Fig16_19 {
    fn name(&self) -> &'static str {
        "fig16_19_bent_pipe"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Figs. 16-19")
    }

    fn title(&self) -> &'static str {
        "Paris -> Moscow: ISLs vs bent-pipe ground relays"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        let (secs, spacing, margin) = if full { (200, 3.0, 3.0) } else { (60, 4.0, 2.0) };
        let mut spec = ExperimentSpec {
            experiment: self.name().to_string(),
            ground: GroundSegment::Cities(vec![
                GroundStation::new("Paris", 48.8566, 2.3522),
                GroundStation::new("Moscow", 55.7558, 37.6173),
            ]),
            pairs: PairSelection::Named(vec![("Paris".to_string(), "Moscow".to_string())]),
            duration: SimDuration::from_secs(secs),
            ..ExperimentSpec::default()
        };
        spec.params.insert("relay_spacing_deg".to_string(), ParamValue::Num(spacing));
        spec.params.insert("relay_margin_deg".to_string(), ParamValue::Num(margin));
        spec
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let cfg = BentPipeConfig {
            duration: ctx.spec.duration,
            relay_spacing_deg: ctx.spec.num("relay_spacing_deg").unwrap_or(3.0),
            relay_margin_deg: ctx.spec.num("relay_margin_deg").unwrap_or(3.0),
        };
        let stations = ctx.spec.ground.stations();
        let [src_city, dst_city] = stations.as_slice() else {
            return Err(RunError::BadSpec(
                "fig16_19_bent_pipe needs exactly two ground stations (endpoints)".into(),
            ));
        };
        let r = run(src_city.clone(), dst_city.clone(), &cfg);

        for leg in [&r.isl, &r.bent_pipe] {
            ctx.sink.record_sim(leg.events, leg.wall_s);
            ctx.sink.record_engine(&leg.engine);
            let slug = leg.label.replace('-', "_");
            println!();
            println!("[{}]", leg.label);
            println!("  mean computed RTT: {:.1} ms", leg.mean_computed_rtt_ms);
            println!(
                "  bytes delivered: {} ({:.2} Mbps over {:.0} s)",
                leg.bytes_received,
                leg.bytes_received as f64 * 8.0 / cfg.duration.secs_f64() / 1e6,
                cfg.duration.secs_f64()
            );
            ctx.sink.write_series(
                &format!("fig18_rtt_computed_{slug}.dat"),
                "t_s rtt_ms",
                &leg.computed_rtt_series,
            )?;
            ctx.sink.write_series(
                &format!("fig18_rtt_tcp_{slug}.dat"),
                "t_s rtt_ms",
                &leg.tcp_rtt_series,
            )?;
            ctx.sink.write_series(
                &format!("fig19_cwnd_{slug}.dat"),
                "t_s cwnd_pkts",
                &leg.cwnd_series,
            )?;
            ctx.sink.write_series(
                &format!("fig19_throughput_{slug}.dat"),
                "t_s mbps",
                &leg.throughput_series,
            )?;
        }

        println!();
        println!(
            "RTT gap (bent-pipe - ISL): {:.1} ms  (paper: typically ~5 ms)",
            r.bent_pipe.mean_computed_rtt_ms - r.isl.mean_computed_rtt_ms
        );

        // Figs. 16/17: path geometry at t = 0 for both configurations.
        // (Fig. 17's mid-run snapshots come from re-running with the chosen
        // instant; the t = 0 snapshot documents the structure.)
        for (leg, slug) in [(&r.isl, "fig16a_isl"), (&r.bent_pipe, "fig16b_bent_pipe")] {
            if let Some(path) = &leg.path_t0 {
                println!("{}: {} nodes end-to-end at t=0", leg.label, path.len());
                let _ = slug;
            }
        }
        // cwnd volatility comparison (Fig. 19's point): count window cuts.
        let cuts =
            |series: &[(f64, f64)]| series.windows(2).filter(|w| w[1].1 < w[0].1 * 0.75).count();
        println!(
            "cwnd cuts — ISL: {}, bent-pipe: {} (bent-pipe expected noisier)",
            cuts(&r.isl.cwnd_series),
            cuts(&r.bent_pipe.cwnd_series)
        );
        Ok(())
    }
}
