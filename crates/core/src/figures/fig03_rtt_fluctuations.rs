//! Fig. 3 — RTT fluctuations on Kuiper K1 for the paper's three pairs:
//! Rio de Janeiro → St. Petersburg, Manila → Dalian, Istanbul → Nairobi.
//!
//! Prints the min/max computed RTT, the disconnection time (the
//! St. Petersburg outage), and the ping-vs-computed agreement, and writes
//! both series per pair.

use super::{named_pairs, pair_slug, CANONICAL_PAIRS};
use crate::experiments::rtt_fluctuations::{run, RttFluctuationConfig};
use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection, ParamValue};
use hypatia_util::SimDuration;

/// Fig. 3 as a registered experiment.
pub struct Fig03;

impl Experiment for Fig03 {
    fn name(&self) -> &'static str {
        "fig03_rtt_fluctuations"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Fig. 3")
    }

    fn title(&self) -> &'static str {
        "RTT fluctuations: pings vs computed (Kuiper K1)"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        let mut spec = ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(100),
            pairs: PairSelection::Named(
                CANONICAL_PAIRS.iter().map(|&(s, d, _)| (s.to_string(), d.to_string())).collect(),
            ),
            duration: SimDuration::from_secs(if full { 200 } else { 60 }),
            ..ExperimentSpec::default()
        };
        spec.params
            .insert("ping_interval_ms".to_string(), ParamValue::Num(if full { 1.0 } else { 20.0 }));
        spec
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let cfg = RttFluctuationConfig {
            duration: ctx.spec.duration,
            ping_interval: SimDuration::from_secs_f64(
                ctx.spec.num("ping_interval_ms").unwrap_or(10.0) / 1e3,
            ),
        };
        let pairs = named_pairs(&ctx.spec)?;
        let scenario = ctx.scenario();

        println!(
            "{:<36} {:>10} {:>10} {:>8} {:>12} {:>12}",
            "pair", "min (ms)", "max (ms)", "ratio", "outage (s)", "pings rx/tx"
        );
        for (src, dst) in &pairs {
            let r = run(&scenario, src, dst, &cfg)?;
            ctx.sink.record_sim(r.events, r.wall_s);
            ctx.sink.record_engine(&r.engine);
            println!(
                "{:<36} {:>10.1} {:>10.1} {:>8.2} {:>12.1} {:>7}/{}",
                format!("{src} -> {dst}"),
                r.min_computed_ms,
                r.max_computed_ms,
                r.max_computed_ms / r.min_computed_ms,
                r.disconnected_seconds,
                r.received,
                r.sent
            );
            let slug = pair_slug(src, dst);
            ctx.sink.write_series(
                &format!("fig03_{slug}_pings.dat"),
                "t_s rtt_ms",
                &r.ping_series,
            )?;
            ctx.sink.write_series(
                &format!("fig03_{slug}_computed.dat"),
                "t_s rtt_ms",
                &r.computed_series,
            )?;
        }
        println!();
        println!("Paper's qualitative checks:");
        println!("  * Manila–Dalian RTT varies ~2x over time (paper: 25–48 ms).");
        println!("  * Istanbul–Nairobi varies between ~47–70 ms.");
        println!("  * Rio–St.Petersburg shows a disconnection window (St. Petersburg");
        println!("    has no visible Kuiper satellite at sufficient elevation).");
        Ok(())
    }
}
