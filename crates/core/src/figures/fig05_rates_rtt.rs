//! Fig. 5 — loss- vs delay-based congestion control on a changing path.
//!
//! NewReno and Vegas run *separately* (no competition) on the same pair.
//! Expected shapes: NewReno fills the queue (RTT rides at computed + Q);
//! Vegas tracks the computed RTT with a near-empty queue until the path
//! lengthens, then misreads the latency jump as congestion and its
//! throughput collapses for the rest of the run.

use super::first_pair;
use crate::experiments::tcp_single::{run, CcKind, TcpSingleResult};
use crate::runner::{Experiment, RunContext, RunError};
use crate::scenario::ConstellationChoice;
use crate::spec::{ExperimentSpec, GroundSegment, PairSelection};
use hypatia_util::SimDuration;

/// Fig. 5 as a registered experiment.
pub struct Fig05;

impl Experiment for Fig05 {
    fn name(&self) -> &'static str {
        "fig05_rates_rtt"
    }

    fn label(&self) -> Option<&'static str> {
        Some("Fig. 5")
    }

    fn title(&self) -> &'static str {
        "NewReno vs Vegas on Rio de Janeiro -> St. Petersburg"
    }

    fn spec(&self, full: bool) -> ExperimentSpec {
        ExperimentSpec {
            experiment: self.name().to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(100),
            pairs: PairSelection::Named(vec![(
                "Rio de Janeiro".to_string(),
                "Saint Petersburg".to_string(),
            )]),
            duration: SimDuration::from_secs(if full { 200 } else { 60 }),
            ..ExperimentSpec::default()
        }
    }

    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError> {
        let duration = ctx.spec.duration;
        let (src, dst) = first_pair(&ctx.spec)?;
        let scenario = ctx.scenario();

        let mut results = Vec::new();
        for cc in [CcKind::NewReno, CcKind::Vegas] {
            let r = run(&scenario, &src, &dst, cc, duration)?;
            ctx.sink.record_sim(r.events, r.wall_s);
            ctx.sink.record_engine(&r.engine);
            let slug = cc.name().to_lowercase();
            ctx.sink.write_series(&format!("fig05_{slug}_rtt.dat"), "t_s rtt_ms", &r.rtt_series)?;
            ctx.sink.write_series(
                &format!("fig05_{slug}_cwnd.dat"),
                "t_s cwnd_pkts",
                &r.cwnd_series,
            )?;
            ctx.sink.write_series(
                &format!("fig05_{slug}_throughput.dat"),
                "t_s mbps",
                &r.throughput_series,
            )?;
            results.push(r);
        }

        println!();
        println!(
            "{:<9} {:>12} {:>12} {:>10} {:>10}",
            "CC", "goodput", "mean RTT", "fast rtx", "RTOs"
        );
        for r in &results {
            let mean_rtt = if r.rtt_series.is_empty() {
                f64::NAN
            } else {
                r.rtt_series.iter().map(|&(_, x)| x).sum::<f64>() / r.rtt_series.len() as f64
            };
            println!(
                "{:<9} {:>9.2}Mb {:>9.1}ms {:>10} {:>10}",
                r.cc.name(),
                r.goodput_mbps(duration),
                mean_rtt,
                r.fast_retransmits,
                r.timeouts
            );
        }

        // Second-half throughput comparison — Vegas's collapse shows up here.
        let half = duration.secs_f64() / 2.0;
        let late_tput = |r: &TcpSingleResult| {
            let pts: Vec<f64> =
                r.throughput_series.iter().filter(|&&(t, _)| t >= half).map(|&(_, m)| m).collect();
            pts.iter().sum::<f64>() / pts.len().max(1) as f64
        };
        let (nr, vg) = (late_tput(&results[0]), late_tput(&results[1]));
        println!();
        println!("Second-half mean throughput: NewReno {nr:.2} Mbps, Vegas {vg:.2} Mbps");
        println!("Paper's qualitative check: after a path-RTT increase, Vegas stays low");
        println!("while NewReno recovers (loss-based ignores baseline RTT shifts).");
        Ok(())
    }
}
