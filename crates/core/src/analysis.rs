//! Distribution analysis shared by the figure harness.
//!
//! Thin, well-tested wrappers over [`hypatia_viz::csv`]'s ECDF machinery
//! plus summary statistics used in `EXPERIMENTS.md` reporting.

pub use hypatia_viz::csv::{ecdf, fraction_where, percentile};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count (finite values only).
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Median (nearest rank).
    pub median: f64,
    /// Mean.
    pub mean: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarize a sample; `None` when no finite values exist.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return None;
    }
    let n = finite.len();
    let mean = finite.iter().sum::<f64>() / n as f64;
    Some(Summary {
        n,
        min: percentile(&finite, 0.0)?,
        median: percentile(&finite, 50.0)?,
        mean,
        p90: percentile(&finite, 90.0)?,
        max: percentile(&finite, 100.0)?,
    })
}

/// Format a [`Summary`] as a compact table row.
pub fn summary_row(label: &str, s: &Summary) -> String {
    format!(
        "{label:<32} n={:<6} min={:<10.3} med={:<10.3} mean={:<10.3} p90={:<10.3} max={:.3}",
        s.n, s.min, s.median, s.mean, s.p90, s.max
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_basic() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summarize_skips_nan() {
        let s = summarize(&[f64::NAN, 2.0, 4.0]).unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn summarize_empty_is_none() {
        assert!(summarize(&[]).is_none());
        assert!(summarize(&[f64::NAN]).is_none());
    }

    #[test]
    fn row_formats() {
        let s = summarize(&[1.0, 2.0]).unwrap();
        let row = summary_row("test", &s);
        assert!(row.starts_with("test"));
        assert!(row.contains("n=2"));
    }
}
