//! Scenario assembly: constellation + ground segment + simulator config.
//!
//! A [`Scenario`] bundles everything the paper calls an "experiment setup"
//! (§3.4): which constellation, which ground stations, what line rate,
//! queue size, and forwarding-state granularity, and which GS pairs talk.

use hypatia_constellation::ground::top_cities;
use hypatia_constellation::{Constellation, GroundStation, NodeId};
use hypatia_netsim::{SimConfig, Simulator};
use hypatia_util::rng::DetRng;
use std::fmt;
use std::sync::Arc;

/// Which preset constellation to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ConstellationChoice {
    /// Starlink's first shell S1 (72 × 22 at 550 km, 53°, l = 25°).
    StarlinkS1,
    /// Kuiper's first shell K1 (34 × 34 at 630 km, 51.9°, l = 30°).
    KuiperK1,
    /// Telesat's first shell T1 (27 × 13 at 1015 km, 98.98°, l = 10°).
    TelesatT1,
    /// Kuiper K1 without ISLs (bent-pipe, Appendix A).
    KuiperK1BentPipe,
}

impl ConstellationChoice {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ConstellationChoice::StarlinkS1 => "Starlink S1",
            ConstellationChoice::KuiperK1 => "Kuiper K1",
            ConstellationChoice::TelesatT1 => "Telesat T1",
            ConstellationChoice::KuiperK1BentPipe => "Kuiper K1 (bent-pipe)",
        }
    }

    /// Stable machine-readable identifier (used in spec JSON and slugs).
    pub fn slug(self) -> &'static str {
        match self {
            ConstellationChoice::StarlinkS1 => "starlink_s1",
            ConstellationChoice::KuiperK1 => "kuiper_k1",
            ConstellationChoice::TelesatT1 => "telesat_t1",
            ConstellationChoice::KuiperK1BentPipe => "kuiper_k1_bent_pipe",
        }
    }

    /// Parse a [`slug`](Self::slug) or display name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        let all = [
            ConstellationChoice::StarlinkS1,
            ConstellationChoice::KuiperK1,
            ConstellationChoice::TelesatT1,
            ConstellationChoice::KuiperK1BentPipe,
        ];
        all.into_iter()
            .find(|c| s.eq_ignore_ascii_case(c.slug()) || s.eq_ignore_ascii_case(c.name()))
    }

    /// Build the constellation with the given ground stations.
    pub fn build(self, gses: Vec<GroundStation>) -> Constellation {
        use hypatia_constellation::presets;
        match self {
            ConstellationChoice::StarlinkS1 => presets::starlink_s1(gses),
            ConstellationChoice::KuiperK1 => presets::kuiper_k1(gses),
            ConstellationChoice::TelesatT1 => presets::telesat_t1(gses),
            ConstellationChoice::KuiperK1BentPipe => presets::kuiper_k1_bent_pipe(gses),
        }
    }
}

/// Lookup of a ground station by a name the scenario doesn't contain.
///
/// Carries the available city names so callers (in particular the
/// experiment runner's CLI surface) can print an actionable message
/// instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownCityError {
    /// The name that was requested.
    pub name: String,
    /// Every ground-station name in the scenario, in index order.
    pub available: Vec<String>,
}

impl fmt::Display for UnknownCityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no ground station named {:?}; available ({}): ",
            self.name,
            self.available.len()
        )?;
        const SHOWN: usize = 20;
        for (i, city) in self.available.iter().take(SHOWN).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{city}")?;
        }
        if self.available.len() > SHOWN {
            write!(f, ", … and {} more", self.available.len() - SHOWN)?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownCityError {}

/// A fully-assembled scenario.
#[derive(Clone)]
pub struct Scenario {
    /// The constellation (shared with any simulators built from this).
    pub constellation: Arc<Constellation>,
    /// Simulator configuration.
    pub sim_config: SimConfig,
}

impl Scenario {
    /// GS node id by ground-station index.
    pub fn gs(&self, idx: usize) -> NodeId {
        self.constellation.gs_node(idx)
    }

    /// GS node id by city name; errs with the list of available cities if
    /// the scenario's ground segment has no station of that name.
    pub fn gs_by_name(&self, name: &str) -> Result<NodeId, UnknownCityError> {
        match self.constellation.find_gs(name) {
            Some(idx) => Ok(self.constellation.gs_node(idx)),
            None => Err(UnknownCityError {
                name: name.to_string(),
                available: self
                    .constellation
                    .ground_stations
                    .iter()
                    .map(|gs| gs.name.clone())
                    .collect(),
            }),
        }
    }

    /// Build a packet simulator routing towards `dests`.
    pub fn simulator(&self, dests: Vec<NodeId>) -> Simulator {
        Simulator::new(self.constellation.clone(), self.sim_config.clone(), dests)
    }

    /// The paper's standard traffic matrix: a fixed random permutation
    /// among the ground stations (no GS talks to itself), seeded for
    /// reproducibility. Returns `(src_gs_idx, dst_gs_idx)` pairs.
    pub fn permutation_pairs(&self, seed: u64) -> Vec<(usize, usize)> {
        let n = self.constellation.num_ground_stations();
        let perm = DetRng::new(seed).permutation_pairs(n);
        perm.into_iter().enumerate().collect()
    }
}

/// Builder for [`Scenario`].
pub struct ScenarioBuilder {
    choice: ConstellationChoice,
    gses: Vec<GroundStation>,
    sim_config: SimConfig,
}

impl ScenarioBuilder {
    /// Start from a preset constellation; defaults to the world's 100 most
    /// populous cities and the paper's default simulator config.
    pub fn new(choice: ConstellationChoice) -> Self {
        ScenarioBuilder { choice, gses: top_cities(100), sim_config: SimConfig::default() }
    }

    /// Replace the ground segment.
    pub fn ground_stations(mut self, gses: Vec<GroundStation>) -> Self {
        assert!(!gses.is_empty(), "need at least one ground station");
        self.gses = gses;
        self
    }

    /// Use only the `n` most populous cities.
    pub fn top_cities(mut self, n: usize) -> Self {
        self.gses = top_cities(n);
        self
    }

    /// Override the simulator configuration.
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim_config = cfg;
        self
    }

    /// Assemble.
    pub fn build(self) -> Scenario {
        Scenario {
            constellation: Arc::new(self.choice.build(self.gses)),
            sim_config: self.sim_config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_util::DataRate;

    #[test]
    fn builder_defaults_to_100_cities() {
        let s = ScenarioBuilder::new(ConstellationChoice::KuiperK1).top_cities(5).build();
        assert_eq!(s.constellation.num_ground_stations(), 5);
        assert_eq!(s.constellation.num_satellites(), 1156);
    }

    #[test]
    fn gs_lookup_by_name() {
        let s = ScenarioBuilder::new(ConstellationChoice::KuiperK1).top_cities(25).build();
        let moscow = s.gs_by_name("Moscow").expect("Moscow in top 25");
        assert!(!s.constellation.is_satellite(moscow));
    }

    #[test]
    fn unknown_city_lists_available() {
        let s = ScenarioBuilder::new(ConstellationChoice::KuiperK1).top_cities(3).build();
        let err = s.gs_by_name("Atlantis").unwrap_err();
        assert_eq!(err.name, "Atlantis");
        assert_eq!(err.available.len(), 3);
        let msg = err.to_string();
        assert!(msg.contains("Atlantis"), "{msg}");
        assert!(msg.contains(&err.available[0]), "{msg}");
    }

    #[test]
    fn permutation_pairs_are_reproducible_and_fixed_point_free() {
        let s = ScenarioBuilder::new(ConstellationChoice::KuiperK1).top_cities(20).build();
        let a = s.permutation_pairs(42);
        let b = s.permutation_pairs(42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        for &(src, dst) in &a {
            assert_ne!(src, dst);
        }
    }

    #[test]
    fn choices_build_expected_constellations() {
        let gs = vec![GroundStation::new("x", 0.0, 0.0)];
        assert_eq!(ConstellationChoice::TelesatT1.build(gs.clone()).num_satellites(), 351);
        assert!(ConstellationChoice::KuiperK1BentPipe.build(gs).isls.is_empty());
        assert_eq!(ConstellationChoice::StarlinkS1.name(), "Starlink S1");
    }

    #[test]
    fn simulator_uses_configured_rate() {
        let s = ScenarioBuilder::new(ConstellationChoice::KuiperK1)
            .top_cities(2)
            .sim_config(SimConfig::default().with_link_rate(DataRate::from_mbps(25)))
            .build();
        let sim = s.simulator(vec![s.gs(0), s.gs(1)]);
        assert_eq!(sim.config().link_rate, DataRate::from_mbps(25));
    }
}
