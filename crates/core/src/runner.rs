//! The experiment runner: name → spec → run → manifest.
//!
//! Every figure of the paper (and every extension study) is registered
//! here as an [`Experiment`]: it names itself, provides its default
//! [`ExperimentSpec`] at reduced or full scale, and runs against a
//! [`RunContext`] that hands it the scenario and the
//! [`hypatia_viz::sink::ArtifactSink`] all outputs flow
//! through. The [`ExperimentRunner`] owns the registry and the shared
//! lifecycle: build the spec, assemble the constellation once, execute,
//! then write the run's `manifest.json`.

use crate::scenario::{Scenario, UnknownCityError};
use crate::spec::{ExperimentSpec, SpecError};
use hypatia_viz::sink::ArtifactSink;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Why an experiment run failed.
#[derive(Debug)]
pub enum RunError {
    /// The requested name is not in the registry.
    UnknownExperiment {
        /// The requested name.
        name: String,
        /// Every registered experiment name.
        available: Vec<String>,
    },
    /// A city name in the spec is not in the scenario's ground segment.
    UnknownCity(UnknownCityError),
    /// The spec is malformed for this experiment.
    BadSpec(String),
    /// Writing an artifact failed.
    Io(io::Error),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnknownExperiment { name, available } => {
                write!(f, "no experiment named {name:?}; available: ")?;
                for (i, n) in available.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}")?;
                }
                Ok(())
            }
            RunError::UnknownCity(e) => write!(f, "{e}"),
            RunError::BadSpec(msg) => write!(f, "bad spec: {msg}"),
            RunError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<UnknownCityError> for RunError {
    fn from(e: UnknownCityError) -> Self {
        RunError::UnknownCity(e)
    }
}

impl From<SpecError> for RunError {
    fn from(e: SpecError) -> Self {
        RunError::BadSpec(e.0)
    }
}

impl From<io::Error> for RunError {
    fn from(e: io::Error) -> Self {
        RunError::Io(e)
    }
}

/// Everything an experiment needs while running.
pub struct RunContext {
    /// The spec being executed.
    pub spec: ExperimentSpec,
    /// Where all artifacts go.
    pub sink: ArtifactSink,
    scenario: Option<Scenario>,
}

impl RunContext {
    /// A context executing `spec` into `sink`.
    pub fn new(spec: ExperimentSpec, sink: ArtifactSink) -> Self {
        RunContext { spec, sink, scenario: None }
    }

    /// The spec's scenario, built once and cached. Returns a cheap clone
    /// (the constellation is shared behind an `Arc`), so the context stays
    /// borrowable for the sink while the scenario is in use.
    pub fn scenario(&mut self) -> Scenario {
        if self.scenario.is_none() {
            self.scenario = Some(self.spec.build_scenario());
        }
        self.scenario.clone().expect("just built")
    }
}

/// One registered experiment.
pub trait Experiment {
    /// Registry name, e.g. `fig03_rtt_fluctuations`.
    fn name(&self) -> &'static str;
    /// The paper's figure label, e.g. `Fig. 3` (None for label-less runs
    /// like Table 1 — the driver prints a banner only when this is Some).
    fn label(&self) -> Option<&'static str> {
        None
    }
    /// Human-readable title (the figure caption's subject).
    fn title(&self) -> &'static str;
    /// The default spec at reduced (`full = false`) or paper (`full = true`)
    /// scale.
    fn spec(&self, full: bool) -> ExperimentSpec;
    /// Execute against the context, writing artifacts through `ctx.sink`.
    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError>;
}

/// The registry plus the shared run lifecycle.
pub struct ExperimentRunner {
    experiments: Vec<Box<dyn Experiment>>,
}

impl Default for ExperimentRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl ExperimentRunner {
    /// A runner with every built-in experiment registered.
    pub fn new() -> Self {
        ExperimentRunner { experiments: crate::figures::builtin_experiments() }
    }

    /// A runner with no experiments (register your own).
    pub fn empty() -> Self {
        ExperimentRunner { experiments: Vec::new() }
    }

    /// Add an experiment (replaces any registered one of the same name).
    pub fn register(&mut self, exp: Box<dyn Experiment>) {
        self.experiments.retain(|e| e.name() != exp.name());
        self.experiments.push(exp);
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.experiments.iter().map(|e| e.name().to_string()).collect()
    }

    /// Look up an experiment by name.
    pub fn get(&self, name: &str) -> Result<&dyn Experiment, RunError> {
        self.experiments.iter().find(|e| e.name() == name).map(|e| e.as_ref()).ok_or_else(|| {
            RunError::UnknownExperiment { name: name.to_string(), available: self.names() }
        })
    }

    /// The default spec for `name` at the given scale.
    pub fn spec(&self, name: &str, full: bool) -> Result<ExperimentSpec, RunError> {
        Ok(self.get(name)?.spec(full))
    }

    /// Execute `spec` with artifacts under `out_dir`; writes the run's
    /// `manifest.json` last. Returns the manifest path.
    pub fn run(&self, spec: ExperimentSpec, out_dir: PathBuf) -> Result<PathBuf, RunError> {
        let exp = self.get(&spec.experiment)?;
        let name = spec.experiment.clone();
        let mut ctx = RunContext::new(spec, ArtifactSink::new(out_dir));
        exp.run(&mut ctx)?;
        Ok(ctx.sink.write_manifest(&name)?)
    }

    /// Like [`run`](Self::run), but with a caller-supplied sink (e.g. one
    /// with `verbose` disabled) — still finishes with the manifest.
    pub fn run_with_sink(
        &self,
        spec: ExperimentSpec,
        sink: ArtifactSink,
    ) -> Result<(PathBuf, ArtifactSink), RunError> {
        let exp = self.get(&spec.experiment)?;
        let name = spec.experiment.clone();
        let mut ctx = RunContext::new(spec, sink);
        exp.run(&mut ctx)?;
        let path = ctx.sink.write_manifest(&name)?;
        Ok((path, ctx.sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_figures() {
        let runner = ExperimentRunner::new();
        let names = runner.names();
        for expected in [
            "table1_constellations",
            "fig02_scalability",
            "fig03_rtt_fluctuations",
            "fig04_cwnd_bdp",
            "fig05_rates_rtt",
            "fig06_rtt_stretch_ecdf",
            "fig07_rtt_cdfs",
            "fig08_path_hop_cdfs",
            "fig09_timestep",
            "fig10_unused_bandwidth",
            "fig11_constellation_czml",
            "fig12_ground_view",
            "fig13_path_viz",
            "fig14_15_utilization",
            "fig16_19_bent_pipe",
            "ext_bbr_study",
            "ext_multipath_diversity",
            "ext_multipath_te",
            "ext_failure_resilience",
            "ext_flow_scaling",
            "ext_hybrid_mode",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn unknown_name_lists_available() {
        let runner = ExperimentRunner::new();
        let err = match runner.get("fig99_nope") {
            Err(e) => e,
            Ok(_) => panic!("lookup should have failed"),
        };
        let msg = err.to_string();
        assert!(msg.contains("fig99_nope"), "{msg}");
        assert!(msg.contains("fig03_rtt_fluctuations"), "{msg}");
    }

    #[test]
    fn spec_lookup_reports_unknown_names_as_typed_errors() {
        // The `--print-spec` path surfaces this error verbatim: it must
        // name the request and carry the registry, not panic.
        let runner = ExperimentRunner::new();
        match runner.spec("fig99_nope", false) {
            Err(RunError::UnknownExperiment { name, available }) => {
                assert_eq!(name, "fig99_nope");
                assert_eq!(available, runner.names());
            }
            other => panic!("expected UnknownExperiment, got {other:?}"),
        }
    }

    #[test]
    fn every_spec_round_trips_and_names_itself() {
        let runner = ExperimentRunner::new();
        for name in runner.names() {
            for full in [false, true] {
                let spec = runner
                    .spec(&name, full)
                    .unwrap_or_else(|e| panic!("spec lookup for {name} (full={full}): {e}"));
                assert_eq!(spec.experiment, name);
                let back = ExperimentSpec::from_json(&spec.to_json_string())
                    .unwrap_or_else(|e| panic!("{name} (full={full}): {e}"));
                assert_eq!(spec, back, "{name} full={full}");
            }
        }
    }

    #[test]
    fn register_replaces_by_name() {
        struct Dummy;
        impl Experiment for Dummy {
            fn name(&self) -> &'static str {
                "fig03_rtt_fluctuations"
            }
            fn title(&self) -> &'static str {
                "dummy"
            }
            fn spec(&self, _full: bool) -> ExperimentSpec {
                ExperimentSpec::default()
            }
            fn run(&self, _ctx: &mut RunContext) -> Result<(), RunError> {
                Ok(())
            }
        }
        let mut runner = ExperimentRunner::new();
        let before = runner.names().len();
        runner.register(Box::new(Dummy));
        assert_eq!(runner.names().len(), before);
        assert_eq!(runner.get("fig03_rtt_fluctuations").unwrap().title(), "dummy");
    }
}
